// Cityops: a city-scale synthetic workload (the paper's Table V generator,
// scaled down) simulated end-to-end under every approach, with a comparison
// table of scores, waste, travel and latency. This is the workload a
// platform operator would run to choose an allocator.
//
//	go run ./examples/cityops [-scale 0.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"dasc"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale factor (1.0 = 5K workers, 5K tasks)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := dasc.DefaultSynthetic().Scale(*scale)
	cfg.Seed = *seed
	in, err := dasc.GenerateSynthetic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := in.ComputeStats()
	fmt.Printf("city workload: %d workers, %d tasks, skill universe %d,\n", st.Workers, st.Tasks, cfg.SkillUniverse)
	fmt.Printf("%d dependency edges (mean dep set %.1f, max %d), critical path %d\n\n",
		st.Edges, st.MeanDepSetSize, st.MaxDepSetSize, st.CriticalPathLength)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "allocator\tscore\twasted\texpired\ttravel\tmean delay\ttime")
	for _, name := range dasc.AllocatorNames() {
		alloc, err := dasc.NewAllocator(name, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		res, err := dasc.Simulate(in, dasc.SimConfig{Allocator: alloc})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%.2f\t%v\n",
			name, res.AssignedPairs, res.WastedPairs, res.ExpiredTasks,
			res.TotalTravel, res.MeanStartDelay, time.Since(start).Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Println("\nscore = valid worker-and-task pairs; wasted = dependency-violating")
	fmt.Println("dispatches by the oblivious baselines; expired = tasks never assigned.")
}
