// Quickstart: run every DA-SC allocator on the paper's motivating example
// (Figure 1) and print the assignments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dasc"
)

func main() {
	in := dasc.Example1()
	fmt.Println("Example 1 (Ni et al., ICDE 2020): 3 workers, 5 tasks,")
	fmt.Println("dependencies t2→t1, t3→{t1,t2}, t5→t4.")
	fmt.Println()
	for i := range in.Workers {
		fmt.Printf("  %v\n", &in.Workers[i])
	}
	for i := range in.Tasks {
		fmt.Printf("  %v\n", &in.Tasks[i])
	}
	fmt.Println()

	fmt.Println("Dependency-oblivious nearest matching finishes 1 task;")
	fmt.Println("dependency-aware allocation finishes 3:")
	fmt.Println()
	for _, name := range dasc.AllocatorNames() {
		alloc, err := dasc.NewAllocator(name, 42)
		if err != nil {
			panic(err)
		}
		m := dasc.Assign(in, alloc)
		fmt.Printf("  %-8s score=%d  %v\n", name, m.Size(), m)
	}

	// The exact optimum, for reference (feasible only on tiny instances).
	opt := dasc.Assign(in, dasc.NewDFS(dasc.DFSOptions{}))
	fmt.Printf("\n  %-8s score=%d  %v\n", "DFS", opt.Size(), opt)
}
