// Triage: the weighted-objective extension on a disaster-response scenario.
//
// After a storm, response tasks carry priorities: medical evacuations
// (weight 10) depend on road clearing (weight 4); damage surveys are routine
// (weight 1). Crews with different skills are scarce, so the allocator must
// trade task *count* against task *value*. Unit weights reproduce the
// paper's objective; with priorities the weighted greedy sacrifices cheap
// surveys to staff the evacuation chains.
//
//	go run ./examples/triage
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"dasc"
)

var (
	skills    = dasc.NewSkillNames()
	clearing  = skills.MustIntern("road-clearing")
	medical   = skills.MustIntern("medical")
	surveying = skills.MustIntern("surveying")
)

func main() {
	fmt.Println("storm response: 4 crews, 8 tasks; evacuations (w=10) depend on road clearing (w=4)")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "objective\tallocator\ttasks done\ttotal value")
	for _, weighted := range []bool{false, true} {
		in := buildScenario(weighted)
		for _, name := range []string{"Greedy", "G-G", "Closest"} {
			alloc, err := dasc.NewAllocator(name, 1)
			if err != nil {
				fail(err)
			}
			m := dasc.Assign(in, alloc)
			label := "unit (paper)"
			if weighted {
				label = "weighted"
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\n", label, name, m.Size(), m.WeightSum(in))
		}
	}
	tw.Flush()
	fmt.Println("\nwith weights, the allocator staffs the clearing→evacuation chains")
	fmt.Println("(4+10 value each) ahead of the nearby 1-point surveys.")
}

// buildScenario lays out two evacuation chains and four routine surveys,
// with only four crews — not enough for everything.
func buildScenario(weighted bool) *dasc.Instance {
	w := func(v float64) float64 {
		if weighted {
			return v
		}
		return 1
	}
	in := &dasc.Instance{SkillUniverse: skills.Len()}
	in.Tasks = []dasc.Task{
		// Chain north: clear the road, then evacuate.
		{ID: 0, Loc: dasc.Pt(2, 8), Start: 0, Wait: 24, Requires: clearing, Weight: w(4)},
		{ID: 1, Loc: dasc.Pt(2.2, 8.1), Start: 0, Wait: 24, Requires: medical, Weight: w(10), Deps: []dasc.TaskID{0}},
		// Chain south.
		{ID: 2, Loc: dasc.Pt(7, 1), Start: 0, Wait: 24, Requires: clearing, Weight: w(4)},
		{ID: 3, Loc: dasc.Pt(7.1, 1.2), Start: 0, Wait: 24, Requires: medical, Weight: w(10), Deps: []dasc.TaskID{2}},
		// Routine surveys scattered near the depot.
		{ID: 4, Loc: dasc.Pt(4.9, 5.0), Start: 0, Wait: 24, Requires: surveying, Weight: w(1)},
		{ID: 5, Loc: dasc.Pt(5.1, 5.1), Start: 0, Wait: 24, Requires: surveying, Weight: w(1)},
		{ID: 6, Loc: dasc.Pt(5.0, 4.9), Start: 0, Wait: 24, Requires: surveying, Weight: w(1)},
		{ID: 7, Loc: dasc.Pt(4.8, 5.2), Start: 0, Wait: 24, Requires: surveying, Weight: w(1)},
	}
	// Crews at the depot: two multi-skilled, one medic, one surveyor.
	mk := func(id dasc.WorkerID, sk ...dasc.Skill) dasc.Worker {
		return dasc.Worker{
			ID: id, Loc: dasc.Pt(5, 5), Start: 0, Wait: 24,
			Velocity: 2, MaxDist: 40, Skills: dasc.NewSkillSet(sk...),
		}
	}
	in.Workers = []dasc.Worker{
		mk(0, clearing, surveying),
		mk(1, clearing, surveying),
		mk(2, medical, surveying),
		mk(3, medical, surveying),
	}
	if err := in.Validate(); err != nil {
		fail(err)
	}
	return in
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "triage example:", err)
	os.Exit(1)
}
