// Roadnetwork: the paper notes its approaches work with any travel metric,
// "e.g., road-network distance". This example builds a synthetic city road
// network over the task region, plugs its shortest-path metric into the
// instance, and compares allocation under Euclidean vs road-network travel:
// detours shrink each worker's reachable set, so scores drop and travel
// grows — but the approach ordering is unchanged.
//
//	go run ./examples/roadnetwork [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dasc"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale factor")
	flag.Parse()

	cfg := dasc.DefaultSynthetic().Scale(*scale)
	cfg.Seed = 7
	in, err := dasc.GenerateSynthetic(cfg)
	if err != nil {
		fail(err)
	}

	net, err := dasc.GenerateRoadGrid(dasc.DefaultRoadGrid(dasc.BBox{
		Min: dasc.Pt(0, 0), Max: dasc.Pt(0.5, 0.5),
	}))
	if err != nil {
		fail(err)
	}
	g := net.Graph()
	fmt.Printf("road network: %d junctions, %d road segments\n\n", g.NumNodes(), g.NumEdges())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tallocator\tscore\texpired\ttravel")
	for _, metric := range []struct {
		name string
		fn   dasc.DistanceFunc
	}{
		{"euclidean", nil}, // nil = the instance default
		{"road", net.DistanceFunc()},
	} {
		in.Dist = metric.fn
		for _, name := range []string{"Greedy", "G-G", "Closest"} {
			alloc, err := dasc.NewAllocator(name, 7)
			if err != nil {
				fail(err)
			}
			res, err := dasc.Simulate(in, dasc.SimConfig{Allocator: alloc})
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\n",
				metric.name, name, res.AssignedPairs, res.ExpiredTasks, res.TotalTravel)
		}
	}
	tw.Flush()
	fmt.Println("\nroad-network distances dominate straight lines, so scores can only")
	fmt.Println("drop relative to the euclidean rows; the allocator ordering persists.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "roadnetwork example:", err)
	os.Exit(1)
}
