// House repair: the paper's introductory motivation as a runnable scenario.
//
// Three houses are being renovated in different neighbourhoods. Each house
// needs plumbing installed before the walls can be painted, painting and
// electrics done before cleaning, and an independent garden job. A pool of
// contractors with different trades (plumber, painter, electrician, cleaner,
// gardener) appears over the morning. The platform assigns batch-by-batch;
// the run compares the dependency-aware greedy against the nearest-first
// baseline that keeps sending painters before the pipes are in.
//
//	go run ./examples/houserepair
package main

import (
	"fmt"

	"dasc"
)

// Trades, registered by name — the skill-name registry assigns the dense
// IDs the allocator works with.
var (
	trades    = dasc.NewSkillNames()
	plumbing  = trades.MustIntern("plumbing")
	painting  = trades.MustIntern("painting")
	electrics = trades.MustIntern("electrics")
	cleaning  = trades.MustIntern("cleaning")
	gardening = trades.MustIntern("gardening")
)

func main() {
	in := buildProject()
	if err := in.Validate(); err != nil {
		panic(err)
	}
	st := in.ComputeStats()
	fmt.Printf("house-repair project: %d contractors, %d jobs, %d dependency edges, critical path %d\n",
		st.Workers, st.Tasks, st.Edges, st.CriticalPathLength)
	for i := range in.Workers {
		w := &in.Workers[i]
		fmt.Printf("  crew %d at %v from %02.0f:00: %s\n",
			w.ID, w.Loc, w.Start+8, trades.Describe(w.Skills))
	}
	fmt.Println()

	for _, alloc := range []dasc.Allocator{
		dasc.NewGreedy(),
		dasc.NewGame(dasc.GameOptions{Seed: 7, GreedyInit: true}),
		dasc.NewClosest(),
	} {
		res, err := dasc.Simulate(in, dasc.SimConfig{
			Allocator:     alloc,
			BatchInterval: 1,
			ServiceTime:   2, // each job takes 2 hours on site
			OnBatch: func(br dasc.SimBatchResult) {
				if br.Assignment.Size() > 0 {
					fmt.Printf("  [%s t=%.0f] batch %d assigns %d job(s): %v\n",
						alloc.Name(), br.Time, br.Index, br.Assignment.Size(), br.Assignment)
				}
			},
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s finished %d/%d jobs, %d wasted dispatches, travel %.1f km, mean start delay %.1f h\n\n",
			alloc.Name(), res.CompletedTasks, len(in.Tasks), res.WastedPairs,
			res.TotalTravel, res.MeanStartDelay)
	}
}

// buildProject lays out 3 houses × 5 jobs and 9 contractors.
func buildProject() *dasc.Instance {
	in := &dasc.Instance{SkillUniverse: trades.Len()}

	// Houses at three corners of the city (distances in km, times in hours).
	houses := []dasc.Point{dasc.Pt(2, 2), dasc.Pt(8, 3), dasc.Pt(5, 8)}
	var tid dasc.TaskID
	addTask := func(house int, offset dasc.Point, start float64, trade dasc.Skill, deps ...dasc.TaskID) dasc.TaskID {
		id := tid
		tid++
		in.Tasks = append(in.Tasks, dasc.Task{
			ID:       id,
			Loc:      houses[house].Add(offset),
			Start:    start,
			Wait:     12, // jobs must start within the working day
			Requires: trade,
			Deps:     deps,
		})
		return id
	}
	for h := range houses {
		start := float64(h) // staggered project kick-offs
		pipes := addTask(h, dasc.Pt(0, 0), start, plumbing)
		paint := addTask(h, dasc.Pt(0.1, 0), start, painting, pipes)
		wires := addTask(h, dasc.Pt(0, 0.1), start, electrics)
		// Cleaning needs pipes, paint and wires all done (closed dep set).
		addTask(h, dasc.Pt(0.1, 0.1), start, cleaning, pipes, paint, wires)
		addTask(h, dasc.Pt(0.2, 0), start, gardening)
	}

	// Contractors: three plumbers/painters/multi-skilled crews around town.
	type crew struct {
		loc    dasc.Point
		start  float64
		trades []dasc.Skill
	}
	crews := []crew{
		{dasc.Pt(1, 1), 0, []dasc.Skill{plumbing}},
		{dasc.Pt(9, 2), 0, []dasc.Skill{plumbing, electrics}},
		{dasc.Pt(4, 9), 0, []dasc.Skill{plumbing, painting}},
		{dasc.Pt(3, 2), 1, []dasc.Skill{painting}},
		{dasc.Pt(7, 4), 1, []dasc.Skill{painting, cleaning}},
		{dasc.Pt(5, 5), 0, []dasc.Skill{electrics}},
		{dasc.Pt(2, 7), 2, []dasc.Skill{cleaning, gardening}},
		{dasc.Pt(8, 8), 2, []dasc.Skill{cleaning}},
		{dasc.Pt(6, 1), 0, []dasc.Skill{gardening, painting}},
	}
	for i, c := range crews {
		in.Workers = append(in.Workers, dasc.Worker{
			ID:       dasc.WorkerID(i),
			Loc:      c.loc,
			Start:    c.start,
			Wait:     14,
			Velocity: 30, // 30 km/h through town
			MaxDist:  60,
			Skills:   dasc.NewSkillSet(c.trades...),
		})
	}
	return in
}
