// Meetup: reproduce the paper's real-data pipeline end to end — generate the
// Hong Kong Meetup-substitute workload (Section V-A's construction over a
// synthetic event-based social network), persist it as JSON, reload it, and
// compare the Game variants on it.
//
//	go run ./examples/meetup [-scale 0.25] [-out hk.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dasc"
)

func main() {
	scale := flag.Float64("scale", 0.25, "population scale (1.0 = 3,525 workers / 1,282 tasks)")
	out := flag.String("out", "", "persist the generated workload to this JSON path (default: temp dir)")
	flag.Parse()

	cfg := dasc.DefaultMeetup().Scale(*scale)
	cfg.Seed = 2020
	in, err := dasc.GenerateMeetup(cfg)
	if err != nil {
		fail(err)
	}
	st := in.ComputeStats()
	fmt.Printf("Hong Kong Meetup-substitute: %d workers, %d tasks (%d task-group dependency edges)\n",
		st.Workers, st.Tasks, st.Edges)
	fmt.Printf("region: lon %.3f–%.3f, lat %.3f–%.3f\n\n",
		cfg.Region.Min.X, cfg.Region.Max.X, cfg.Region.Min.Y, cfg.Region.Max.Y)

	// Persist and reload, as an operator archiving daily workloads would.
	path := *out
	if path == "" {
		path = filepath.Join(os.TempDir(), "dasc-meetup.json")
	}
	if err := dasc.SaveInstance(path, in); err != nil {
		fail(err)
	}
	reloaded, err := dasc.LoadInstance(path)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload archived to %s and reloaded (%d workers, %d tasks)\n\n",
		path, len(reloaded.Workers), len(reloaded.Tasks))

	// Compare the game-theoretic variants, as in the paper's Figure 2 trade-off.
	for _, opt := range []dasc.GameOptions{
		{Seed: 1},                   // strict Nash equilibrium
		{Seed: 1, Threshold: 0.05},  // Game-5%
		{Seed: 1, GreedyInit: true}, // G-G
	} {
		alloc := dasc.NewGame(opt)
		res, err := dasc.Simulate(reloaded, dasc.SimConfig{Allocator: alloc, BatchInterval: 1})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-8s assigned %4d / %d tasks (%d expired unreachable)\n",
			alloc.Name(), res.AssignedPairs, len(reloaded.Tasks), res.ExpiredTasks)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "meetup example:", err)
	os.Exit(1)
}
