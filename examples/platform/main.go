// Platform: drive the DA-SC platform service end-to-end over HTTP, exactly
// as external worker apps and requester dashboards would. The example boots
// the server in-process on a loopback port, registers the paper's Example 1
// population through the JSON API, ticks two batches, and prints the stats
// and assignments it reads back.
//
//	go run ./examples/platform
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"dasc"
	"dasc/internal/core"
	"dasc/internal/server"
)

func main() {
	// Boot the platform with the G-G allocator on a loopback listener.
	p, err := server.NewPlatform(server.Config{
		Allocator: core.NewGame(core.GameOptions{Seed: 1, GreedyInit: true}),
	})
	if err != nil {
		fail(err)
	}
	ts := httptest.NewServer(server.Handler(p))
	defer ts.Close()
	fmt.Println("platform listening on", ts.URL)

	// Register the Example 1 population through the public API.
	ex := dasc.Example1()
	for i := range ex.Workers {
		w := &ex.Workers[i]
		id := post(ts.URL+"/v1/workers", map[string]any{
			"x": w.Loc.X, "y": w.Loc.Y,
			"start": 0, "wait": 1000, "velocity": 10, "max_dist": 1000,
			"skills": w.Skills.Skills(),
		})
		fmt.Printf("  registered worker w%d\n", id)
	}
	for i := range ex.Tasks {
		t := &ex.Tasks[i]
		deps := t.Deps
		if deps == nil {
			deps = []dasc.TaskID{}
		}
		id := post(ts.URL+"/v1/tasks", map[string]any{
			"x": t.Loc.X, "y": t.Loc.Y,
			"start": 0, "wait": 1000,
			"requires": t.Requires, "deps": deps,
		})
		fmt.Printf("  registered task t%d (deps %v)\n", id, t.Deps)
	}

	// Two batch ticks: the first assigns the three dependency-ready tasks,
	// the second mops up the unlocked chain tasks with the freed workers.
	for _, tick := range []float64{0, 5} {
		resp, err := http.Post(fmt.Sprintf("%s/v1/tick?t=%g", ts.URL, tick), "application/json", nil)
		if err != nil {
			fail(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("\ntick t=%g → %s", tick, body)
	}

	// Read the final state back.
	fmt.Println("\nfinal stats:")
	get(ts.URL+"/v1/stats", os.Stdout)
	fmt.Println("assignments:")
	get(ts.URL+"/v1/assignments", os.Stdout)
}

// post sends a JSON body and returns the created ID.
func post(url string, body map[string]any) int {
	raw, err := json.Marshal(body)
	if err != nil {
		fail(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    int    `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fail(err)
	}
	if out.Error != "" {
		fail(fmt.Errorf("%s: %s", url, out.Error))
	}
	return out.ID
}

// get streams a response body to w.
func get(url string, w io.Writer) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "platform example:", err)
	os.Exit(1)
}
