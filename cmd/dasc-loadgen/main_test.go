package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dasc/internal/core"
	"dasc/internal/server"
)

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5},
		{0.90, 9},
		{0.99, 10},
		{0.01, 1},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if s := summarise(nil); s.P50MS != 0 || s.MaxMS != 0 {
		t.Errorf("summarise(nil) = %+v, want zero", s)
	}
}

// TestRunLoadClosedLoop drives the closed-loop generator against an
// in-process platform with the group-commit pipeline enabled, then checks
// the -verify-journal path: the replayed journal must match the served
// instance byte for byte.
func TestRunLoadClosedLoop(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "events.jsonl")
	jf, err := os.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	j := server.NewJournal(jf, nil)
	p, err := server.NewPlatform(server.Config{
		Allocator:   core.NewGreedy(),
		Journal:     j,
		IngestQueue: 512,
		IngestBatch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(p))
	defer ts.Close()

	const total = 300
	rep, err := runLoad(loadConfig{
		BaseURL:  ts.URL,
		Clients:  8,
		N:        total,
		TaskFrac: 0.4,
		DepFrac:  0.5,
		Seed:     7,
		Timeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Errorf("mode = %q, want closed", rep.Mode)
	}
	if rep.Succeeded != total {
		t.Fatalf("succeeded = %d, want %d (429s=%d 503s=%d other=%d)",
			rep.Succeeded, total, rep.Status429, rep.Status503, rep.StatusOther)
	}
	if rep.Workers+rep.Tasks != total || rep.Workers == 0 || rep.Tasks == 0 {
		t.Errorf("workers=%d tasks=%d, want a mix summing to %d", rep.Workers, rep.Tasks, total)
	}
	if rep.Latency.MaxMS < rep.Latency.P50MS {
		t.Errorf("latency max %.3f < p50 %.3f", rep.Latency.MaxMS, rep.Latency.P50MS)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", rep.Throughput)
	}

	p.Close() // final drain lands in the journal before we replay it
	v, err := verifyJournal(ts.URL, 10*time.Second, jpath, "")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Errorf("journal replay diverges from served state: %s", v.Detail)
	}
	if v.ServedBytes == 0 || v.ReplayedBytes == 0 {
		t.Errorf("verify sizes = %d/%d, want non-zero", v.ServedBytes, v.ReplayedBytes)
	}
}

// TestRunLoadOpenLoop exercises the paced mode end to end (small rate so the
// test stays fast) without a journal — the synchronous fallback path.
func TestRunLoadOpenLoop(t *testing.T) {
	p, err := server.NewPlatform(server.Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler(p))
	defer ts.Close()

	rep, err := runLoad(loadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		N:        40,
		Rate:     2000,
		TaskFrac: 0.25,
		Seed:     1,
		Timeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Mode)
	}
	if rep.Succeeded != 40 {
		t.Errorf("succeeded = %d, want 40", rep.Succeeded)
	}
}
