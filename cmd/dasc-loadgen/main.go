// Command dasc-loadgen drives registration load against a running
// dasc-server and reports ingest throughput and latency percentiles as
// JSON. It exists to measure the group-commit ingest pipeline: N concurrent
// clients POST workers and tasks, and the report shows how many commits per
// second the server sustains and what the acknowledgement latency
// distribution looks like (p50/p90/p99/max).
//
//	dasc-loadgen -url http://127.0.0.1:8080 -clients 64 -n 5000
//
// Two pacing modes:
//
//   - closed loop (default): each client issues its next request as soon as
//     the previous one is acknowledged — measures the server's saturated
//     throughput.
//   - open loop (-rate R): requests are launched on a fixed schedule of R
//     per second regardless of completions — measures latency at a target
//     arrival rate, including queueing delay when the server falls behind.
//
// Backpressure (HTTP 429) and journal-failure (503) responses are counted
// and retried with a short backoff; only 2xx acknowledgements count toward
// throughput and the latency distribution.
//
// With -verify-journal the run ends by replaying the server's journal (and
// snapshot, if one exists) into a fresh in-process platform and comparing
// the replayed registries byte-for-byte against GET /v1/instance — proving
// that everything the server acknowledged is durable and nothing diverged.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dasc/internal/core"
	"dasc/internal/dataset"
	"dasc/internal/server"
)

func main() {
	cfg := loadConfig{}
	var (
		out       = flag.String("out", "", "write the JSON report to this path (default stdout)")
		verifyJnl = flag.String("verify-journal", "", "after the run, replay this journal and compare against GET /v1/instance")
		verifySnp = flag.String("verify-snapshot", "", "snapshot restored before the -verify-journal replay (default <journal>.snap if it exists)")
	)
	flag.StringVar(&cfg.BaseURL, "url", "http://127.0.0.1:8080", "base URL of the dasc-server under test")
	flag.IntVar(&cfg.Clients, "clients", 64, "concurrent client goroutines")
	flag.IntVar(&cfg.N, "n", 5000, "total registrations to issue")
	flag.Float64Var(&cfg.Rate, "rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	flag.Float64Var(&cfg.TaskFrac, "task-frac", 0.25, "fraction of registrations that are tasks (the rest are workers)")
	flag.Float64Var(&cfg.DepFrac, "dep-frac", 0.3, "fraction of tasks that depend on an earlier task")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload generator seed")
	flag.DurationVar(&cfg.Timeout, "timeout", 10*time.Second, "per-request HTTP timeout")
	flag.StringVar(&cfg.IDPrefix, "request-id-prefix", "",
		"send X-Request-ID: <prefix>-<client>-<seq> on every registration and verify the server echoes it (empty = no correlation headers)")
	flag.Parse()

	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasc-loadgen:", err)
		os.Exit(1)
	}
	if *verifyJnl != "" {
		snap := *verifySnp
		if snap == "" {
			if _, err := os.Stat(*verifyJnl + ".snap"); err == nil {
				snap = *verifyJnl + ".snap"
			}
		}
		v, err := verifyJournal(cfg.BaseURL, cfg.Timeout, *verifyJnl, snap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dasc-loadgen: verify:", err)
			os.Exit(1)
		}
		rep.Verify = &v
		if !v.Match {
			writeReport(rep, *out)
			fmt.Fprintln(os.Stderr, "dasc-loadgen: journal replay DIVERGES from served state:", v.Detail)
			os.Exit(1)
		}
	}
	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dasc-loadgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dasc-loadgen: %d ok (%d workers, %d tasks) in %.2fs = %.0f req/s; p50 %.2fms p99 %.2fms; %d backpressured, %d failed\n",
		rep.Succeeded, rep.Workers, rep.Tasks, rep.DurationS, rep.Throughput,
		rep.Latency.P50MS, rep.Latency.P99MS, rep.Status429, rep.Status503+rep.StatusOther)
}

// loadConfig parameterises one load run.
type loadConfig struct {
	BaseURL  string
	Clients  int
	N        int
	Rate     float64 // 0 = closed loop
	TaskFrac float64
	DepFrac  float64
	Seed     int64
	Timeout  time.Duration
	// IDPrefix, when non-empty, sends X-Request-ID: <prefix>-<client>-<seq>
	// on every registration and counts responses whose echoed ID does not
	// match (Report.IDMismatches) — an end-to-end check of the server's
	// correlation middleware under load.
	IDPrefix string
}

// Report is the JSON document a run emits.
type Report struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	URL         string  `json:"url"`
	Clients     int     `json:"clients"`
	RateTarget  float64 `json:"rate_target,omitempty"`
	Requests    int     `json:"requests"`
	Succeeded   int     `json:"succeeded"`
	Workers     int     `json:"workers"`
	Tasks       int     `json:"tasks"`
	Status429   int     `json:"status_429"`
	Status503   int     `json:"status_503"`
	StatusOther int     `json:"status_other"`
	Retries     int     `json:"retries"`
	// IDMismatches counts acknowledged requests whose echoed X-Request-ID
	// differed from the one sent (only counted with -request-id-prefix).
	IDMismatches int           `json:"id_mismatches"`
	DurationS    float64       `json:"duration_s"`
	Throughput   float64       `json:"throughput_rps"` // successful registrations per second
	Latency      LatencyStats  `json:"latency"`
	Verify       *VerifyResult `json:"verify,omitempty"`
}

// LatencyStats summarises acknowledgement latency over successful requests.
type LatencyStats struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// VerifyResult reports the journal-replay equivalence check.
type VerifyResult struct {
	Match         bool   `json:"match"`
	ServedBytes   int    `json:"served_bytes"`
	ReplayedBytes int    `json:"replayed_bytes"`
	Detail        string `json:"detail,omitempty"`
}

// clientStats is one client goroutine's tallies, merged after the run.
type clientStats struct {
	latencies  []float64 // ms, successful requests only
	workers    int
	tasks      int
	s429       int
	s503       int
	other      int
	retries    int
	mismatched int // echoed X-Request-ID differed from the one sent
}

// runLoad executes the configured load and summarises it.
func runLoad(cfg loadConfig) (*Report, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("clients must be positive (got %d)", cfg.Clients)
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("n must be positive (got %d)", cfg.N)
	}

	// Open loop: a pacer releases one token per 1/rate seconds; clients
	// block on the token channel, so launch times follow the schedule (a
	// backed-up server shows up as queueing delay, not a lower rate).
	var tokens chan struct{}
	if cfg.Rate > 0 {
		tokens = make(chan struct{}, cfg.N)
		go func() {
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for i := 0; i < cfg.N; i++ {
				tokens <- struct{}{}
				<-tick.C
			}
			close(tokens)
		}()
	}

	var (
		issued  atomic.Int64 // closed-loop request budget
		maxTask atomic.Int64 // highest acknowledged task ID + 1, for deps
		stats   = make([]clientStats, cfg.Clients)
		wg      sync.WaitGroup
	)
	maxTask.Store(0)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			st := &stats[c]
			rc, err := newRawClient(cfg.BaseURL, cfg.Timeout)
			if err != nil {
				st.other++
				return
			}
			defer rc.close()
			// Pre-generate a pool of request bodies (wrk-style): float
			// formatting off the hot loop means the generator steals less of
			// the core it usually shares with the server under test. Tasks
			// that draw a dependency still need a fresh body, because the
			// dependable ID range only grows as acknowledgements come back.
			const poolSize = 256
			wbodies := make([][]byte, poolSize)
			tbodies := make([][]byte, poolSize)
			for i := range wbodies {
				wbodies[i] = workerBody(rng)
				tbodies[i] = taskBody(rng, 0, 0)
			}
			pick := 0
			seq := 0
			for {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				} else if issued.Add(1) > int64(cfg.N) {
					return
				}
				isTask := rng.Float64() < cfg.TaskFrac
				var path string
				var body []byte
				pick++
				if isTask {
					path = "/v1/tasks"
					if mt := maxTask.Load(); mt > 0 && rng.Float64() < cfg.DepFrac {
						body = taskBody(rng, 1, mt)
					} else {
						body = tbodies[pick%poolSize]
					}
				} else {
					path, body = "/v1/workers", wbodies[pick%poolSize]
				}
				var reqID string
				if cfg.IDPrefix != "" {
					seq++
					reqID = cfg.IDPrefix + "-" + strconv.Itoa(c) + "-" + strconv.Itoa(seq)
				}
				id, ok := post(rc, path, body, reqID, st)
				if !ok {
					continue
				}
				if isTask {
					st.tasks++
					for { // publish max acknowledged task ID for future deps
						cur := maxTask.Load()
						if int64(id)+1 <= cur || maxTask.CompareAndSwap(cur, int64(id)+1) {
							break
						}
					}
				} else {
					st.workers++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Mode:       "closed",
		URL:        cfg.BaseURL,
		Clients:    cfg.Clients,
		RateTarget: cfg.Rate,
		DurationS:  elapsed.Seconds(),
	}
	if cfg.Rate > 0 {
		rep.Mode = "open"
	}
	var all []float64
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		rep.Workers += st.workers
		rep.Tasks += st.tasks
		rep.Status429 += st.s429
		rep.Status503 += st.s503
		rep.StatusOther += st.other
		rep.Retries += st.retries
		rep.IDMismatches += st.mismatched
	}
	rep.Succeeded = rep.Workers + rep.Tasks
	rep.Requests = rep.Succeeded + rep.Status429 + rep.Status503 + rep.StatusOther
	if rep.DurationS > 0 {
		rep.Throughput = float64(rep.Succeeded) / rep.DurationS
	}
	rep.Latency = summarise(all)
	return rep, nil
}

// post issues one registration, retrying 429/503 with a short backoff (the
// bench deliberately ignores the server's 1s Retry-After hint: it measures
// how fast the queue reopens, not how polite clients should be). Returns the
// assigned ID and whether the registration was acknowledged.
//
// The hot path avoids net/http and encoding/json on purpose: the loadgen
// often shares a core with the server under test, so every cycle it burns is
// stolen from the system being measured (the same reason wrk and friends
// speak hand-rolled HTTP). The {"id":n} acknowledgement is parsed with a
// byte scan.
func post(rc *rawClient, path string, body []byte, reqID string, st *clientStats) (int, bool) {
	const maxAttempts = 100
	backoff := time.Millisecond
	for attempt := 0; attempt < maxAttempts; attempt++ {
		t0 := time.Now()
		status, respBody, echoOK, err := rc.post(path, body, reqID)
		if err != nil {
			st.other++
			return 0, false
		}
		switch {
		case status == http.StatusCreated || status == http.StatusOK:
			id, ok := parseID(respBody)
			if !ok {
				st.other++
				return 0, false
			}
			if !echoOK {
				st.mismatched++
			}
			st.latencies = append(st.latencies, float64(time.Since(t0))/float64(time.Millisecond))
			return id, true
		case status == http.StatusTooManyRequests:
			st.s429++
		case status == http.StatusServiceUnavailable:
			st.s503++
		default:
			st.other++
			return 0, false
		}
		st.retries++
		time.Sleep(backoff)
		if backoff < 32*time.Millisecond {
			backoff *= 2
		}
	}
	return 0, false
}

// rawClient is a minimal HTTP/1.1 client over a single keep-alive
// connection: preformatted request bytes out, status line + headers + sized
// body back, reusing one buffer for everything. Responses must carry
// Content-Length (net/http always sets it for small bodies); anything else
// is an error rather than a slow path.
type rawClient struct {
	network string
	addr    string
	host    string
	timeout time.Duration

	deadlineAt time.Time
	conn       net.Conn
	br         *bufio.Reader
	reqBuf     []byte
	body       []byte
}

func newRawClient(base string, timeout time.Duration) (*rawClient, error) {
	network, addr, host, err := parseTarget(base)
	if err != nil {
		return nil, err
	}
	return &rawClient{network: network, addr: addr, host: host, timeout: timeout}, nil
}

// parseTarget resolves -url into a dialable (network, address) pair plus the
// Host header to send. "unix:/path/to.sock" targets a Unix-domain socket —
// the transport dasc-server exposes via -addr unix:/path — and plain
// http://host:port stays TCP.
func parseTarget(base string) (network, addr, host string, err error) {
	if path, ok := strings.CutPrefix(base, "unix:"); ok && path != "" {
		return "unix", path, "localhost", nil
	}
	u, err := url.Parse(base)
	if err != nil {
		return "", "", "", err
	}
	if u.Scheme != "http" {
		return "", "", "", fmt.Errorf("loadgen speaks plain http only (got %q)", base)
	}
	addr = u.Host
	if u.Port() == "" {
		addr = net.JoinHostPort(u.Hostname(), "80")
	}
	return "tcp", addr, u.Host, nil
}

func (c *rawClient) dial() error {
	conn, err := net.DialTimeout(c.network, c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	if c.br == nil {
		c.br = bufio.NewReaderSize(conn, 4096)
	} else {
		c.br.Reset(conn)
	}
	return nil
}

func (c *rawClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// post performs one round trip, redialing once on a stale keep-alive
// connection. The returned body is only valid until the next call. reqID,
// when non-empty, is sent as X-Request-ID; echoOK reports whether the
// response echoed it back verbatim (always true when reqID is empty).
func (c *rawClient) post(path string, body []byte, reqID string) (int, []byte, bool, error) {
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			if err := c.dial(); err != nil {
				return 0, nil, false, err
			}
		}
		status, respBody, echoOK, err := c.roundTrip(path, body, reqID)
		if err != nil {
			c.close()
			if attempt == 0 {
				continue
			}
			return 0, nil, false, err
		}
		return status, respBody, echoOK, nil
	}
}

func (c *rawClient) roundTrip(path string, body []byte, reqID string) (int, []byte, bool, error) {
	b := c.reqBuf[:0]
	b = append(b, "POST "...)
	b = append(b, path...)
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, c.host...)
	if reqID != "" {
		b = append(b, "\r\nX-Request-ID: "...)
		b = append(b, reqID...)
	}
	b = append(b, "\r\nContent-Type: application/json\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\n\r\n"...)
	b = append(b, body...)
	c.reqBuf = b
	// Refresh the socket deadline lazily: the deadline only needs to bound a
	// hung server, so resetting it once it has burned half its slack (rather
	// than on every request) keeps two timer updates off the per-request path
	// while still guaranteeing at least timeout/2 per round trip.
	if now := time.Now(); now.After(c.deadlineAt.Add(-c.timeout / 2)) {
		c.deadlineAt = now.Add(c.timeout)
		c.conn.SetDeadline(c.deadlineAt)
	}
	if _, err := c.conn.Write(b); err != nil {
		return 0, nil, false, err
	}

	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return 0, nil, false, err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.1 ")) {
		return 0, nil, false, fmt.Errorf("malformed status line %q", line)
	}
	status, err := strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, nil, false, fmt.Errorf("malformed status line %q", line)
	}

	clen := -1
	closing := false
	echoOK := reqID == ""
	for {
		line, err = c.br.ReadSlice('\n')
		if err != nil {
			return 0, nil, false, err
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			break
		}
		if k, v, ok := bytes.Cut(line, []byte(":")); ok {
			v = bytes.TrimSpace(v)
			switch {
			case bytes.EqualFold(k, []byte("Content-Length")):
				if clen, err = strconv.Atoi(string(v)); err != nil {
					return 0, nil, false, fmt.Errorf("malformed Content-Length %q", v)
				}
			case bytes.EqualFold(k, []byte("Connection")):
				closing = bytes.EqualFold(v, []byte("close"))
			case bytes.EqualFold(k, []byte("X-Request-ID")):
				echoOK = reqID != "" && string(v) == reqID
			}
		}
	}
	if clen < 0 {
		return 0, nil, false, errors.New("response without Content-Length")
	}
	if cap(c.body) < clen {
		c.body = make([]byte, clen)
	}
	respBody := c.body[:clen]
	if _, err := io.ReadFull(c.br, respBody); err != nil {
		return 0, nil, false, err
	}
	if closing {
		c.close()
	}
	return status, respBody, echoOK, nil
}

// parseID scans an acknowledgement body for `"id":<digits>`.
func parseID(b []byte) (int, bool) {
	i := bytes.Index(b, []byte(`"id":`))
	if i < 0 {
		return 0, false
	}
	i += len(`"id":`)
	for i < len(b) && b[i] == ' ' {
		i++
	}
	id, ok := 0, false
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		id = id*10 + int(b[i]-'0')
		i++
		ok = true
	}
	return id, ok
}

// workerBody generates a valid worker registration without encoding/json
// (see post for why the hot path stays allocation-lean).
func workerBody(rng *rand.Rand) []byte {
	return fmt.Appendf(nil,
		`{"x":%.4f,"y":%.4f,"start":0,"wait":1000000,"velocity":%.4f,"max_dist":1000000,"skills":[%d]}`,
		rng.Float64()*100, rng.Float64()*100, 1+rng.Float64(), rng.Intn(8))
}

// taskBody generates a valid task registration; with probability depFrac it
// depends on one already-acknowledged task (IDs < maxTask are guaranteed
// registered, so the dependency always validates).
func taskBody(rng *rand.Rand, depFrac float64, maxTask int64) []byte {
	b := fmt.Appendf(nil,
		`{"x":%.4f,"y":%.4f,"start":0,"wait":1000000,"requires":%d,"weight":%.4f`,
		rng.Float64()*100, rng.Float64()*100, rng.Intn(8), 1+rng.Float64())
	if maxTask > 0 && rng.Float64() < depFrac {
		b = fmt.Appendf(b, `,"deps":[%d]`, rng.Int63n(maxTask))
	}
	return append(b, '}')
}

// summarise computes the latency distribution; quantiles use the
// nearest-rank method on the sorted sample.
func summarise(ms []float64) LatencyStats {
	var s LatencyStats
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	s.MeanMS = sum / float64(len(ms))
	s.P50MS = quantile(ms, 0.50)
	s.P90MS = quantile(ms, 0.90)
	s.P99MS = quantile(ms, 0.99)
	s.MaxMS = ms[len(ms)-1]
	return s
}

// quantile returns the nearest-rank q-quantile of sorted.
func quantile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// verifyJournal replays the server's durable state (snapshot restore, then
// journal tail) into a fresh in-process platform and byte-compares the
// replayed registries against what the live server serves from memory. Both
// sides are normalised through the dataset codec, so a match means every
// acknowledged registration is durable with identical fields and IDs. The
// journal file is only read — unlike server.Recover this never truncates a
// torn tail, since the file still belongs to the live server.
func verifyJournal(baseURL string, timeout time.Duration, journalPath, snapPath string) (VerifyResult, error) {
	var v VerifyResult
	network, addr, _, err := parseTarget(baseURL)
	if err != nil {
		return v, err
	}
	httpc := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, network, addr)
			},
		},
	}
	resp, err := httpc.Get("http://localhost/v1/instance")
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("GET /v1/instance: %s", resp.Status)
	}
	servedInst, err := dataset.Read(resp.Body)
	if err != nil {
		return v, fmt.Errorf("served instance: %w", err)
	}
	var served bytes.Buffer
	if err := dataset.WriteCompact(&served, servedInst); err != nil {
		return v, err
	}

	p, err := server.NewPlatform(server.Config{Allocator: core.NewGreedy()})
	if err != nil {
		return v, err
	}
	if snapPath != "" {
		f, err := os.Open(snapPath)
		if err != nil {
			return v, fmt.Errorf("snapshot: %w", err)
		}
		rerr := p.ReadSnapshot(f)
		f.Close()
		if rerr != nil {
			return v, fmt.Errorf("snapshot: %w", rerr)
		}
	}
	jf, err := os.Open(journalPath)
	if err != nil {
		return v, err
	}
	_, rerr := server.ReplayJournal(jf, p)
	jf.Close()
	if rerr != nil {
		return v, fmt.Errorf("replay: %w", rerr)
	}
	var replayed bytes.Buffer
	if err := dataset.WriteCompact(&replayed, p.Instance()); err != nil {
		return v, err
	}
	v.ServedBytes = served.Len()
	v.ReplayedBytes = replayed.Len()
	v.Match = bytes.Equal(served.Bytes(), replayed.Bytes())
	if !v.Match {
		v.Detail = fmt.Sprintf("served %d bytes != replayed %d bytes", served.Len(), replayed.Len())
		if sw, rw := len(servedInst.Workers), workerCount(&replayed); sw != rw {
			v.Detail += fmt.Sprintf(" (workers %d vs %d)", sw, rw)
		}
	}
	return v, nil
}

// workerCount pulls the worker count back out of a compact instance document
// for divergence diagnostics.
func workerCount(doc *bytes.Buffer) int {
	in, err := dataset.Read(bytes.NewReader(doc.Bytes()))
	if err != nil {
		return -1
	}
	return len(in.Workers)
}

// writeReport emits the report as indented JSON to path or stdout.
func writeReport(rep *Report, path string) error {
	b, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
