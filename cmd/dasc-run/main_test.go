package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dasc/internal/dataset"
	"dasc/internal/model"
)

func writeExample1(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ex1.json")
	if err := dataset.Save(path, model.Example1()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunStatic(t *testing.T) {
	path := writeExample1(t)
	var stdout bytes.Buffer
	if err := run([]string{"-in", path, "-alg", "Greedy", "-static", "-pairs"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "score: 3") {
		t.Errorf("output missing score 3:\n%s", out)
	}
	if !strings.Contains(out, `"pairs"`) {
		t.Errorf("output missing pairs JSON:\n%s", out)
	}
}

func TestRunSimulated(t *testing.T) {
	path := writeExample1(t)
	for _, alg := range []string{"Greedy", "Game-5%", "G-G", "Closest", "Random"} {
		var stdout bytes.Buffer
		if err := run([]string{"-in", path, "-alg", alg, "-interval", "2"}, &stdout, &bytes.Buffer{}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !strings.Contains(stdout.String(), "assigned_pairs:") {
			t.Errorf("%s: missing metrics:\n%s", alg, stdout.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.json"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeExample1(t)
	if err := run([]string{"-in", path, "-alg", "Bogus"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunStaticVizOutputs(t *testing.T) {
	path := writeExample1(t)
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	svg := filepath.Join(dir, "g.svg")
	var stdout bytes.Buffer
	if err := run([]string{"-in", path, "-alg", "Greedy", "-static", "-dot", dot, "-svg", svg}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	dotData, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dotData), "digraph dasc") {
		t.Error("dot output wrong")
	}
	svgData, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svgData), "<svg") {
		t.Error("svg output wrong")
	}
}

func TestRunSimTrace(t *testing.T) {
	path := writeExample1(t)
	trace := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-in", path, "-alg", "Greedy", "-trace", trace}, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "batch,time,") {
		t.Errorf("trace header wrong: %q", string(data[:20]))
	}
}

func TestRunStaticPoA(t *testing.T) {
	path := writeExample1(t)
	var stdout bytes.Buffer
	if err := run([]string{"-in", path, "-alg", "Greedy", "-static", "-poa", "4"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "optimum: 3 (exact: true)") {
		t.Errorf("poa output wrong:\n%s", out)
	}
	if !strings.Contains(out, "poa_estimate:") {
		t.Errorf("missing poa estimate:\n%s", out)
	}
}

func TestRunMetricsExposition(t *testing.T) {
	path := writeExample1(t)

	// -metrics - appends the text exposition after the run summary.
	var stdout bytes.Buffer
	if err := run([]string{"-in", path, "-interval", "2", "-metrics", "-"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"assigned_pairs:", "# TYPE dasc_batches_total counter", "dasc_assigned_pairs_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	// -metrics <file> writes the same exposition to disk.
	mpath := filepath.Join(t.TempDir(), "metrics.prom")
	if err := run([]string{"-in", path, "-interval", "2", "-metrics", mpath}, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dasc_batches_total") {
		t.Errorf("metrics file missing counters:\n%s", data)
	}

	// -metrics composes with -trace: both outputs must be produced.
	tpath := filepath.Join(t.TempDir(), "trace.csv")
	mpath2 := filepath.Join(t.TempDir(), "metrics2.prom")
	if err := run([]string{"-in", path, "-interval", "2", "-trace", tpath, "-metrics", mpath2}, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "batch,time,") || len(strings.Split(strings.TrimSpace(string(csv)), "\n")) < 2 {
		t.Errorf("trace CSV not written alongside metrics:\n%s", csv)
	}
	if _, err := os.Stat(mpath2); err != nil {
		t.Errorf("metrics file not written alongside trace: %v", err)
	}
}
