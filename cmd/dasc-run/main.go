// Command dasc-run executes one allocation over a JSON workload instance.
// By default it simulates the full batch loop and prints the run metrics;
// with -static it runs the allocator once over the whole instance and prints
// the resulting assignment.
//
// Usage:
//
//	dasc-run -in workload.json -alg Greedy
//	dasc-run -in workload.json -alg Game-5% -interval 5
//	dasc-run -in workload.json -alg G-G -static -pairs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dasc/internal/core"
	"dasc/internal/dataset"
	"dasc/internal/obs"
	"dasc/internal/sim"
	"dasc/internal/stats"
	"dasc/internal/viz"
)

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return fn(f)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dasc-run:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dasc-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		inPath   = fs.String("in", "", "input instance JSON (required)")
		alg      = fs.String("alg", core.NameGreedy, "allocator: "+strings.Join(append(core.AllNames(), core.NameDFS), ", "))
		seed     = fs.Int64("seed", 1, "random seed for the allocator")
		static   = fs.Bool("static", false, "single static batch instead of the simulation loop")
		pairs    = fs.Bool("pairs", false, "with -static: print the assignment pairs as JSON")
		dotPath  = fs.String("dot", "", "with -static: write the dependency graph (with the assignment highlighted) as Graphviz DOT to this file")
		svgPath  = fs.String("svg", "", "with -static: write the spatial layout (with the assignment drawn) as SVG to this file")
		interval = fs.Float64("interval", 5, "batch interval for the simulation loop")
		service  = fs.Float64("service", 0, "service duration per task")
		trace    = fs.String("trace", "", "write a per-batch CSV trace of the simulation to this file")
		metrics  = fs.String("metrics", "", "write aggregated run metrics (Prometheus text format) to this file, or - for stdout")
		poa      = fs.Int("poa", 0, "with -static: sample N random-init game equilibria against the exact optimum (small instances only)")
		noGameWL = fs.Bool("no-game-worklist", false, "run game allocators with the naive full best-response sweep instead of the incremental worklist engine")
		verifyWL = fs.Bool("verify-game-worklist", false, "cross-check the game worklist engine against the naive sweep every batch (differential mode; slow)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("missing -in")
	}
	in, err := dataset.Load(*inPath)
	if err != nil {
		return err
	}
	alloc, err := core.NewByName(*alg, *seed)
	if err != nil {
		return err
	}

	if *noGameWL {
		if g, ok := alloc.(*core.Game); ok {
			alloc = g.WithWorklistDisabled(true)
		}
	}

	timer := stats.StartTimer()
	if *static {
		b := core.NewStaticBatch(in)
		if *verifyWL {
			if g, ok := alloc.(*core.Game); ok {
				if err := g.VerifyWorklist(b); err != nil {
					return fmt.Errorf("game worklist diverged: %w", err)
				}
			}
		}
		m := core.DependencyFixpoint(b, alloc.Assign(b))
		fmt.Fprintf(stdout, "algorithm: %s\nscore: %d\ntime_ms: %.3f\n",
			alloc.Name(), m.Size(), timer.ElapsedMS())
		if *poa > 0 {
			q := core.MeasureEquilibriumQuality(b, core.GameOptions{}, core.DFSOptions{}, *poa, *seed)
			fmt.Fprintf(stdout, "optimum: %d (exact: %v)\nequilibria: best=%d worst=%d mean=%.2f over %d samples\npos_estimate: %.3f\npoa_estimate: %.3f\n",
				q.Optimum, q.Exact, q.Best, q.Worst, q.Mean, q.Samples, q.BestRatio, q.WorstRatio)
		}
		if *dotPath != "" {
			if err := writeFileWith(*dotPath, func(f io.Writer) error {
				return viz.WriteDot(f, in, viz.DotOptions{Assignment: m, Reduce: true})
			}); err != nil {
				return err
			}
		}
		if *svgPath != "" {
			if err := writeFileWith(*svgPath, func(f io.Writer) error {
				return viz.WriteSVG(f, in, viz.SVGOptions{Assignment: m, DrawDeps: true})
			}); err != nil {
				return err
			}
		}
		if *pairs {
			return dataset.WriteAssignment(stdout, m)
		}
		return nil
	}

	cfg := sim.Config{
		Allocator:          alloc,
		BatchInterval:      *interval,
		ServiceTime:        *service,
		VerifyGameWorklist: *verifyWL,
	}
	var traceFile *os.File
	var csvSink func(sim.BatchResult)
	if *trace != "" {
		traceFile, err = os.Create(*trace)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		if err := sim.WriteCSVHeader(traceFile); err != nil {
			return err
		}
		csvSink = sim.CSVTrace(traceFile, func(err error) {
			fmt.Fprintln(stderr, "trace:", err)
		})
	}
	var reg *obs.Registry
	var metricsSink func(sim.BatchResult)
	if *metrics != "" {
		reg = obs.NewRegistry()
		metricsSink = sim.MetricsSink(reg)
	}
	cfg.OnBatch = sim.TeeBatch(csvSink, metricsSink)
	p, err := sim.New(in, cfg)
	if err != nil {
		return err
	}
	res, err := p.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "algorithm: %s\nbatches: %d\nassigned_pairs: %d\ncompleted_tasks: %d\nexpired_tasks: %d\ntotal_travel: %.4f\nmean_start_delay: %.4f\ntime_ms: %.3f\n",
		alloc.Name(), res.Batches, res.AssignedPairs, res.CompletedTasks,
		res.ExpiredTasks, res.TotalTravel, res.MeanStartDelay, timer.ElapsedMS())
	if reg != nil {
		if *metrics == "-" {
			return reg.WriteText(stdout)
		}
		return writeFileWith(*metrics, reg.WriteText)
	}
	return nil
}
