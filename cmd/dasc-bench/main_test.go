package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var osReadFile = os.ReadFile

func TestBenchList(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, id := range []string{"fig2", "fig15", "table6", "ablation-alpha"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q", id)
		}
	}
}

func TestBenchRunMarkdown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "fig6", "-scale", "0.05", "-seed", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "Running time") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "score=") {
		t.Error("progress lines missing on stderr")
	}
}

func TestBenchRunCSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	err := run([]string{"-exp", "fig6", "-scale", "0.05", "-format", "csv", "-out", path, "-q"},
		&bytes.Buffer{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(data, "experiment,point,algorithm,score,time_ms") {
		t.Errorf("csv header missing:\n%s", data[:80])
	}
	// 5 points × 6 algorithms + header.
	if lines := strings.Count(data, "\n"); lines != 31 {
		t.Errorf("csv lines = %d, want 31", lines)
	}
}

func TestBenchErrors(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -exp accepted")
	}
	if err := run([]string{"-exp", "fig99"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "fig6", "-scale", "0.05", "-format", "xml", "-q"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNoHeaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &noHeaderWriter{w: &buf}
	// Header split across two writes, then body.
	if _, err := w.Write([]byte("head")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("er\nbody1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("body2\n")); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "body1\nbody2\n" {
		t.Errorf("noHeaderWriter output = %q", got)
	}
}

// readFile is a tiny helper avoiding an os import at every call site.
func readFile(path string) (string, error) {
	data, err := osReadFile(path)
	return string(data), err
}

func TestBenchRunJSON(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-exp", "fig6", "-scale", "0.05", "-format", "json", "-q"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{`"experiment": "fig6"`, `"cells"`, `"algorithm": "Greedy"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q", want)
		}
	}
}

func TestBenchRunChart(t *testing.T) {
	var stdout bytes.Buffer
	if err := run([]string{"-exp", "fig6", "-scale", "0.05", "-format", "chart", "-q"}, &stdout, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Figure 6") {
		t.Error("chart output wrong")
	}
}

func TestBenchRunHTMLToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.html")
	err := run([]string{"-exp", "fig6", "-scale", "0.05", "-format", "html", "-out", path, "-q"},
		&bytes.Buffer{}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "<svg") || !strings.Contains(data, "</html>") {
		t.Error("html report malformed")
	}
}
