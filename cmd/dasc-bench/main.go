// Command dasc-bench regenerates the paper's tables and figures. Each
// experiment sweeps one parameter over the six approaches and prints the
// score and running-time grids that correspond to the paper's (a)/(b)
// subfigure pairs.
//
// Usage:
//
//	dasc-bench -list
//	dasc-bench -exp fig3 -scale 0.1 -seed 1
//	dasc-bench -exp all -scale 0.05 -format csv -out results.csv
//
// Scale 1.0 reproduces the paper's population sizes (5K×5K synthetic,
// 3,525×1,282 real-substitute); smaller scales shrink proportionally for
// quick runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dasc/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dasc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dasc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID   = fs.String("exp", "", "experiment ID (see -list), or \"all\"")
		list    = fs.Bool("list", false, "list available experiments and exit")
		verify  = fs.Bool("verify", false, "run every paper trend check (Figures 3-15) and report ✓/✗")
		slack   = fs.Float64("slack", 0.15, "relative tolerance for -verify direction checks")
		scale   = fs.Float64("scale", 0.1, "population scale factor in (0, 1]; 1.0 = paper size")
		seed    = fs.Int64("seed", 1, "base random seed")
		repeats = fs.Int("repeats", 1, "seeds to average over")
		par     = fs.Int("parallel", 1, "concurrent cells (skews time measurements; use for score surveys)")
		format  = fs.String("format", "markdown", "output format: markdown, csv, chart, json or html")
		outPath = fs.String("out", "", "write output to this file instead of stdout")
		quiet   = fs.Bool("q", false, "suppress per-cell progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		reg := bench.Registry()
		for _, id := range bench.IDs() {
			e := reg[id]
			fmt.Fprintf(stdout, "%-16s %-28s %s\n", id, e.Paper, e.Title)
		}
		return nil
	}
	if *verify {
		opt := bench.RunOptions{Scale: *scale, Seed: *seed, Repeats: *repeats, Parallel: *par}
		failed, err := bench.VerifyAll(stdout, opt, *slack)
		if err != nil {
			return err
		}
		if failed > 0 {
			return fmt.Errorf("%d trend check(s) failed", failed)
		}
		return nil
	}
	if *expID == "" {
		return fmt.Errorf("missing -exp (try -list)")
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	var ids []string
	if *expID == "all" {
		ids = bench.IDs()
	} else {
		ids = []string{*expID}
	}

	opt := bench.RunOptions{Scale: *scale, Seed: *seed, Repeats: *repeats, Parallel: *par}
	if !*quiet {
		opt.Progress = func(s string) { fmt.Fprintln(stderr, s) }
	}
	csvHeaderDone := false
	if *format == "html" {
		if err := bench.WriteHTMLHeader(out, "DA-SC experiment report"); err != nil {
			return err
		}
	}
	for _, id := range ids {
		e, err := bench.Lookup(id)
		if err != nil {
			return err
		}
		tbl, err := e.Run(opt)
		if err != nil {
			return err
		}
		switch *format {
		case "markdown":
			if err := tbl.RenderMarkdown(out); err != nil {
				return err
			}
		case "html":
			if err := tbl.RenderHTML(out); err != nil {
				return err
			}
		case "json":
			if err := tbl.RenderJSON(out); err != nil {
				return err
			}
		case "chart":
			if err := tbl.RenderChart(out, 48); err != nil {
				return err
			}
		case "csv":
			// One shared header across experiments.
			if csvHeaderDone {
				var tmp noHeaderWriter
				tmp.w = out
				if err := tbl.RenderCSV(&tmp); err != nil {
					return err
				}
			} else {
				if err := tbl.RenderCSV(out); err != nil {
					return err
				}
				csvHeaderDone = true
			}
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *format == "html" {
		return bench.WriteHTMLFooter(out)
	}
	return nil
}

// noHeaderWriter drops the first line written through it (the CSV header).
type noHeaderWriter struct {
	w    io.Writer
	done bool
}

func (n *noHeaderWriter) Write(p []byte) (int, error) {
	if n.done {
		return n.w.Write(p)
	}
	for i, b := range p {
		if b == '\n' {
			n.done = true
			if _, err := n.w.Write(p[i+1:]); err != nil {
				return 0, err
			}
			return len(p), nil
		}
	}
	return len(p), nil // header spans multiple writes; keep dropping
}
