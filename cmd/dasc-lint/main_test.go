package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the smoke gate: the multichecker must exit 0 over the
// whole module, findings-free. If this fails, either real code regressed an
// invariant or an analyzer grew a false positive — both block the build.
func TestRepoIsClean(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"dasc/..."}, &out, &errs); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errs.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run wrote findings to stdout:\n%s", out.String())
	}
	if !strings.Contains(errs.String(), "determinism") {
		t.Errorf("stderr missing per-analyzer stats:\n%s", errs.String())
	}
}

// seedViolatingModule writes a throwaway `module dasc` tree whose
// internal/core package reads the wall clock, and chdirs into it.
func seedViolatingModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	core := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(core, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module dasc\n\ngo 1.22\n",
		filepath.Join(core, "bad.go"): `package core

import "time"

func Stamp() time.Time { return time.Now() }
`,
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

func TestSeededViolationExitsOne(t *testing.T) {
	seedViolatingModule(t)
	var out, errs bytes.Buffer
	if code := run([]string{"./..."}, &out, &errs); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errs.String())
	}
	if !strings.Contains(out.String(), "time.Now") || !strings.Contains(out.String(), "[determinism]") {
		t.Errorf("findings missing the seeded time.Now violation:\n%s", out.String())
	}
}

func TestJSONOutputShape(t *testing.T) {
	seedViolatingModule(t)
	var out, errs bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errs); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errs.String())
	}
	var res struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
		Analyzers []struct {
			Name      string  `json:"name"`
			Packages  int     `json:"packages"`
			Findings  int     `json:"findings"`
			ElapsedMS float64 `json:"elapsed_ms"`
		} `json:"analyzers"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if len(res.Analyzers) != 5 {
		t.Errorf("analyzers = %d, want 5", len(res.Analyzers))
	}
	found := false
	for _, f := range res.Findings {
		if f.Analyzer == "determinism" && strings.Contains(f.Message, "time.Now") && f.Line > 0 && strings.HasSuffix(f.File, "bad.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("no determinism finding for the seeded time.Now in %s", out.String())
	}
}

func TestListAndRunFlags(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "epsfloat", "poolescape", "metricinventory", "lockdiscipline"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"-run", "nosuch", "./..."}, &out, &errs); code != 2 {
		t.Errorf("-run=nosuch exit = %d, want 2", code)
	}
}

// TestRunSubsetSkipsOthers: -run restricts the analyzer set, so the seeded
// determinism violation is invisible to an epsfloat-only run.
func TestRunSubsetSkipsOthers(t *testing.T) {
	seedViolatingModule(t)
	var out, errs bytes.Buffer
	if code := run([]string{"-run", "epsfloat", "./..."}, &out, &errs); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s", code, out.String())
	}
}
