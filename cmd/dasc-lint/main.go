// Command dasc-lint is the repo's invariant multichecker: it runs the
// internal/lint analyzers (determinism, epsfloat, poolescape,
// metricinventory, lockdiscipline) over the packages matching its
// arguments and exits non-zero on any finding. scripts/verify.sh runs it
// as a hard gate before the test phase.
//
// Usage:
//
//	dasc-lint [-json] [-run name] [packages...]
//
// With no package arguments it analyzes ./.... Findings go to stdout (one
// per line, vet style); per-analyzer timing goes to stderr, or into the
// JSON payload with -json. Exit codes: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dasc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, with the streams injectable so the
// CLI tests can assert on exit codes and output shape in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dasc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings and per-analyzer stats as one JSON object on stdout")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 || len(sel) == 0 {
			fmt.Fprintf(stderr, "dasc-lint: unknown analyzer in -run=%s (use -list)\n", *only)
			return 2
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "dasc-lint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := res.RenderJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "dasc-lint: %v\n", err)
			return 2
		}
	} else {
		res.RenderText(stdout, stderr)
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}
