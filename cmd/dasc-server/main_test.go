package main

import (
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dasc/internal/core"
	"dasc/internal/model"
	"dasc/internal/server"
)

// testWriter routes slog output through t.Log so it shows up only when the
// test fails or runs verbose.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}

func TestBuildLogger(t *testing.T) {
	for _, lv := range []string{"debug", "info", "warn", "error"} {
		for _, f := range []string{"text", "json"} {
			if _, err := buildLogger(lv, f); err != nil {
				t.Errorf("buildLogger(%q, %q): %v", lv, f, err)
			}
		}
	}
	if _, err := buildLogger("trace", "text"); err == nil {
		t.Error("buildLogger accepted bogus level")
	}
	if _, err := buildLogger("info", "logfmt"); err == nil {
		t.Error("buildLogger accepted bogus format")
	}
}

func TestTickOnceAssignsAndLogsWithoutPanicking(t *testing.T) {
	p, err := server.NewPlatform(server.Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	ex := model.Example1()
	for _, w := range ex.Workers {
		if _, err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range ex.Tasks {
		if _, err := p.AddTask(tk); err != nil {
			t.Fatal(err)
		}
	}
	logger := slog.New(slog.NewTextHandler(testWriter{t}, nil))
	tickOnce(p, logger, 0)
	if st := p.Snapshot(); st.AssignedTasks != 3 {
		t.Errorf("assigned = %d, want 3", st.AssignedTasks)
	}
	// A tick that goes backwards logs the error instead of panicking.
	tickOnce(p, logger, -1)
	if st := p.Snapshot(); st.Batches != 1 {
		t.Errorf("backward tick counted: %+v", st)
	}
}

func TestRunTickerStopsOnClose(t *testing.T) {
	p, err := server.NewPlatform(server.Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		// Tiny interval so the loop is demonstrably live before stopping.
		runTicker(p, slog.New(slog.NewTextHandler(testWriter{t}, nil)), 0.001, 1000, stop)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for p.Snapshot().Batches == 0 {
		select {
		case <-deadline:
			t.Fatal("ticker never ticked")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	select {
	case <-done:
	case <-deadline:
		t.Fatal("ticker did not stop")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})}
	ts := httptest.NewUnstartedServer(nil)
	ts.Config = srv
	ts.Start()
	if err := shutdown(srv, time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(ts.URL + "/"); err == nil {
		t.Error("server still accepting after shutdown")
	}
}

func TestWithPprofMountsProfilesAndKeepsAPI(t *testing.T) {
	p, err := server.NewPlatform(server.Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(withPprof(server.Handler(p)))
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/v1/stats", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}
