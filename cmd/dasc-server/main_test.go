package main

import (
	"testing"

	"dasc/internal/core"
	"dasc/internal/model"
	"dasc/internal/server"
)

func TestTickOnceAssignsAndLogsWithoutPanicking(t *testing.T) {
	p, err := server.NewPlatform(server.Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	ex := model.Example1()
	for _, w := range ex.Workers {
		if _, err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range ex.Tasks {
		if _, err := p.AddTask(tk); err != nil {
			t.Fatal(err)
		}
	}
	tickOnce(p, 0)
	if st := p.Snapshot(); st.AssignedTasks != 3 {
		t.Errorf("assigned = %d, want 3", st.AssignedTasks)
	}
	// A tick that goes backwards logs the error instead of panicking.
	tickOnce(p, -1)
	if st := p.Snapshot(); st.Batches != 1 {
		t.Errorf("backward tick counted: %+v", st)
	}
}
