// Command dasc-server runs the dependency-aware spatial-crowdsourcing
// platform as an HTTP service. Requesters POST tasks, workers POST
// themselves, and every -interval of logical time a batch process assigns
// the active workers to the pending tasks with the chosen allocator.
//
//	dasc-server -addr :8080 -alg G-G -interval 5 -timescale 1
//
// Logical time advances at -timescale units per wall-clock second; with
// -manual the clock only advances through explicit POST /v1/tick?t=<time>
// calls (useful for tests and demos).
//
// API (see internal/server.Handler):
//
//	POST /v1/workers      {"x":..,"y":..,"start":..,"wait":..,"velocity":..,"max_dist":..,"skills":[..]}
//	POST /v1/tasks        {"x":..,"y":..,"start":..,"wait":..,"requires":..,"deps":[..]}
//	POST /v1/tick?t=12.5  run one batch at logical time 12.5
//	GET  /v1/stats | /v1/assignments | /v1/instance | /v1/svg
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"dasc/internal/core"
	"dasc/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		alg         = flag.String("alg", core.NameGreedy, "allocator name")
		seed        = flag.Int64("seed", 1, "allocator seed")
		interval    = flag.Float64("interval", 5, "batch interval in logical time units")
		timescale   = flag.Float64("timescale", 1, "logical time units per wall-clock second")
		service     = flag.Float64("service", 0, "service duration per task")
		manual      = flag.Bool("manual", false, "no automatic ticker; advance time via POST /v1/tick")
		journal     = flag.String("journal", "", "append-only JSONL event log; replayed on startup to restore state")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/")
		traceDepth  = flag.Int("trace-depth", 0, "per-batch traces kept for GET /v1/trace (0 = default)")
	)
	flag.Parse()

	alloc, err := core.NewByName(*alg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasc-server:", err)
		os.Exit(1)
	}
	cfg := server.Config{Allocator: alloc, ServiceTime: *service, TraceDepth: *traceDepth}
	if *journal != "" {
		j, err := server.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dasc-server:", err)
			os.Exit(1)
		}
		defer j.Close()
		cfg.Journal = j
	}
	p, err := server.NewPlatform(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasc-server:", err)
		os.Exit(1)
	}
	if *journal != "" {
		if f, err := os.Open(*journal); err == nil {
			if err := server.Replay(f, p); err != nil {
				fmt.Fprintln(os.Stderr, "dasc-server: replay:", err)
				os.Exit(1)
			}
			f.Close()
			st := p.Snapshot()
			log.Printf("replayed journal %s: %d workers, %d tasks, %d assigned",
				*journal, st.Workers, st.Tasks, st.AssignedTasks)
		}
	}

	if !*manual {
		go runTicker(p, *interval, *timescale)
	}
	handler := server.Handler(p)
	if *enablePprof {
		handler = withPprof(handler)
		log.Printf("pprof enabled at /debug/pprof/")
	}
	log.Printf("dasc-server: %s allocator, batch interval %g, listening on %s", alloc.Name(), *interval, *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, "dasc-server:", err)
		os.Exit(1)
	}
}

// withPprof mounts the net/http/pprof handlers next to the API without
// going through http.DefaultServeMux (a blank import would profile every
// binary that links this package; the flag keeps it opt-in).
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// runTicker advances logical time at the configured rate, running one batch
// per interval, until the process exits.
func runTicker(p *server.Platform, interval, timescale float64) {
	if timescale <= 0 {
		timescale = 1
	}
	wall := time.Duration(float64(time.Second) * interval / timescale)
	if wall <= 0 {
		wall = time.Second
	}
	start := time.Now()
	for range time.Tick(wall) {
		tickOnce(p, time.Since(start).Seconds()*timescale)
	}
}

// tickOnce runs one batch at logical time now and logs non-empty outcomes.
func tickOnce(p *server.Platform, now float64) {
	out, err := p.Tick(now)
	if err != nil {
		log.Printf("tick at %.1f failed: %v", now, err)
		return
	}
	if len(out.Assigned) > 0 || out.Wasted > 0 {
		log.Printf("batch %d at t=%.1f: %d workers, %d tasks, %d assigned, %d wasted",
			out.Batch, out.Time, out.Workers, out.Tasks, len(out.Assigned), out.Wasted)
	}
}
