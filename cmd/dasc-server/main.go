// Command dasc-server runs the dependency-aware spatial-crowdsourcing
// platform as an HTTP service. Requesters POST tasks, workers POST
// themselves, and every -interval of logical time a batch process assigns
// the active workers to the pending tasks with the chosen allocator.
//
//	dasc-server -addr :8080 -alg G-G -interval 5 -timescale 1
//
// Logical time advances at -timescale units per wall-clock second; with
// -manual the clock only advances through explicit POST /v1/tick?t=<time>
// calls (useful for tests and demos).
//
// Durability: -journal appends every event to a JSONL log (fsynced per
// -fsync), -snapshot/-snapshot-every write atomic state snapshots that
// rotate the journal, and startup recovery is snapshot-load plus journal
// tail replay (a torn final line from a crash mid-append is truncated with
// a warning). SIGINT/SIGTERM drain in-flight requests via http.Server
// Shutdown and flush+close the journal on every exit path.
//
// API (see internal/server.Handler):
//
//	POST /v1/workers      {"x":..,"y":..,"start":..,"wait":..,"velocity":..,"max_dist":..,"skills":[..]}
//	POST /v1/tasks        {"x":..,"y":..,"start":..,"wait":..,"requires":..,"deps":[..],"weight":..}
//	POST /v1/tick?t=12.5  run one batch at logical time 12.5
//	POST /v1/snapshot     write a state snapshot now
//	GET  /v1/stats | /v1/assignments | /v1/instance | /v1/svg
//	GET  /v1/healthz | /v1/readyz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dasc/internal/core"
	"dasc/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dasc-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address (TCP host:port, or unix:/path for a Unix-domain socket)")
		alg         = flag.String("alg", core.NameGreedy, "allocator name")
		seed        = flag.Int64("seed", 1, "allocator seed")
		interval    = flag.Float64("interval", 5, "batch interval in logical time units")
		timescale   = flag.Float64("timescale", 1, "logical time units per wall-clock second")
		service     = flag.Float64("service", 0, "service duration per task")
		manual      = flag.Bool("manual", false, "no automatic ticker; advance time via POST /v1/tick")
		journal     = flag.String("journal", "", "append-only JSONL event log; replayed on startup to restore state")
		ingQueue    = flag.Int("ingest-queue", 4096, "group-commit admission queue capacity; 0 = synchronous per-request commits")
		ingBatch    = flag.Int("ingest-batch", server.DefaultIngestBatch, "max registrations committed per group-commit drain")
		ingWait     = flag.Duration("ingest-wait", 0, "group-commit formation window: gather registrations this long (or to -ingest-batch) before each commit; 0 commits whatever has queued")
		fsync       = flag.String("fsync", "interval", "journal durability: always, interval or never")
		fsyncEvery  = flag.Duration("fsync-interval", server.DefaultFsyncInterval, "fsync cadence for -fsync=interval")
		snapshot    = flag.String("snapshot", "", "state snapshot path (default <journal>.snap when -journal is set)")
		snapEvery   = flag.Int("snapshot-every", 0, "snapshot + rotate the journal every N ticks (0 = via POST /v1/snapshot only)")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body cap in bytes (413 beyond)")
		readTO      = flag.Duration("read-timeout", 10*time.Second, "http.Server read timeout")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "http.Server write timeout")
		idleTO      = flag.Duration("idle-timeout", 2*time.Minute, "http.Server idle timeout")
		drainTO     = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain limit on SIGINT/SIGTERM")
		enablePprof = flag.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/")
		traceDepth  = flag.Int("trace-depth", 0, "per-batch traces kept for GET /v1/trace (0 = default)")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "structured log encoding: text or json")
		accessEvery = flag.Int("access-log-every", 100, "log every Nth HTTP request with its X-Request-ID (1 = all, 0 = no access log)")
		noGameWL    = flag.Bool("no-game-worklist", false, "run game allocators with the naive full best-response sweep instead of the incremental worklist engine")
		verifyWL    = flag.Bool("verify-game-worklist", false, "cross-check the game worklist engine against the naive sweep every tick (differential mode; slow)")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	alloc, err := core.NewByName(*alg, *seed)
	if err != nil {
		return err
	}
	mode, err := server.ParseFsyncMode(*fsync)
	if err != nil {
		return err
	}
	snapPath := *snapshot
	if snapPath == "" && *journal != "" {
		snapPath = *journal + ".snap"
	}
	cfg := server.Config{
		Allocator:           alloc,
		ServiceTime:         *service,
		TraceDepth:          *traceDepth,
		SnapshotPath:        snapPath,
		SnapshotEvery:       *snapEvery,
		MaxBodyBytes:        *maxBody,
		IngestQueue:         *ingQueue,
		IngestBatch:         *ingBatch,
		IngestWait:          *ingWait,
		Logger:              logger,
		AccessLogEvery:      *accessEvery,
		DisableGameWorklist: *noGameWL,
		VerifyGameWorklist:  *verifyWL,
	}
	if *journal != "" {
		j, err := server.OpenJournalMode(*journal, mode, *fsyncEvery)
		if err != nil {
			return err
		}
		// Every exit path below returns through this defer, so the journal
		// is always flushed and closed (the old os.Exit paths skipped it).
		defer func() {
			if cerr := j.Close(); cerr != nil {
				logger.Error("journal close failed", "error", cerr.Error())
			}
		}()
		cfg.Journal = j
	}
	p, err := server.NewPlatform(cfg)
	if err != nil {
		return err
	}
	// Stop the ingest committer (final drain included) before the journal
	// defer above flushes and closes the file.
	defer p.Close()

	// Serve before recovering: /v1/healthz answers immediately, /v1/readyz
	// and the mutating endpoints gate on recovery finishing.
	p.SetReady(false)
	ln, err := listen(*addr)
	if err != nil {
		return err
	}
	handler := server.Handler(p)
	if *enablePprof {
		handler = withPprof(handler)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{
		Handler:      handler,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		IdleTimeout:  *idleTO,
	}
	// The address stays inside the message — scripts (and humans) find the
	// serving endpoint by grepping the log for "listening on <addr>".
	logger.Info(fmt.Sprintf("listening on %s", ln.Addr()),
		"alg", alloc.Name(), "interval", *interval, "fsync", mode.String())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if *journal != "" || snapPath != "" {
		rep, err := server.Recover(p, snapPath, *journal)
		if err != nil {
			shutdown(srv, *drainTO)
			return fmt.Errorf("recover: %w", err)
		}
		server.LogRecovery(logger, rep, p.Snapshot())
	}
	p.SetReady(true)

	tickerStop := make(chan struct{})
	defer close(tickerStop)
	if !*manual {
		go runTicker(p, logger, *interval, *timescale, tickerStop)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop()
		drained := server.LogShutdown(logger, *drainTO)
		err := shutdown(srv, *drainTO)
		<-serveErr // Serve has returned ErrServerClosed
		drained(err)
		return nil
	}
}

// buildLogger constructs the process logger from the -log-level/-log-format
// flags; events go to stderr.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// listen opens the serving socket: "unix:/path" binds a Unix-domain socket
// (a stale socket file from a previous run is removed first; Go unlinks it
// again on listener close), anything else is a TCP address. Local reverse
// proxies and benchmark rigs use the unix form to skip the TCP loopback
// stack.
func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok && path != "" {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("remove stale socket %s: %w", path, err)
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// shutdown drains in-flight requests, bounded by the configured limit.
func shutdown(srv *http.Server, limit time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	err := srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return srv.Close()
	}
	return err
}

// withPprof mounts the net/http/pprof handlers next to the API without
// going through http.DefaultServeMux (a blank import would profile every
// binary that links this package; the flag keeps it opt-in).
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// runTicker advances logical time at the configured rate, running one batch
// per interval, until stop closes.
func runTicker(p *server.Platform, logger *slog.Logger, interval, timescale float64, stop <-chan struct{}) {
	if timescale <= 0 {
		timescale = 1
	}
	wall := time.Duration(float64(time.Second) * interval / timescale)
	if wall <= 0 {
		wall = time.Second
	}
	start := time.Now()
	t := time.NewTicker(wall)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			tickOnce(p, logger, time.Since(start).Seconds()*timescale)
		}
	}
}

// tickOnce runs one batch at logical time now and logs non-empty outcomes.
func tickOnce(p *server.Platform, logger *slog.Logger, now float64) {
	out, err := p.Tick(now)
	if err != nil {
		logger.Error("tick failed", "t", now, "error", err.Error())
		return
	}
	if len(out.Assigned) > 0 || out.Wasted > 0 {
		logger.Info("batch complete",
			"batch", out.Batch, "t", out.Time, "workers", out.Workers,
			"tasks", out.Tasks, "assigned", len(out.Assigned), "wasted", out.Wasted)
	}
}
