package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dasc/internal/dataset"
)

func TestGenKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"synthetic", "meetup", "smallscale", "example1"} {
		out := filepath.Join(dir, kind+".json")
		var stdout, stderr bytes.Buffer
		err := run([]string{"-kind", kind, "-scale", "0.02", "-out", out}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		in, err := dataset.Load(out)
		if err != nil {
			t.Fatalf("%s: reload: %v", kind, err)
		}
		if len(in.Workers) == 0 || len(in.Tasks) == 0 {
			t.Errorf("%s: empty instance", kind)
		}
		if !strings.Contains(stderr.String(), "generated") {
			t.Errorf("%s: missing summary on stderr: %q", kind, stderr.String())
		}
	}
}

func TestGenStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-kind", "example1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), `"version"`) {
		t.Error("no JSON on stdout")
	}
}

func TestGenOverrides(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "o.json")
	if err := run([]string{"-kind", "synthetic", "-workers", "7", "-tasks", "9", "-out", out}, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	in, err := dataset.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != 7 || len(in.Tasks) != 9 {
		t.Errorf("overrides ignored: %d/%d", len(in.Workers), len(in.Tasks))
	}
}

func TestGenErrors(t *testing.T) {
	if err := run([]string{"-kind", "bogus"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-badflag"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
}
