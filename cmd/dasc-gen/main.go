// Command dasc-gen generates DA-SC workload instances as JSON files.
//
// Usage:
//
//	dasc-gen -kind synthetic -scale 0.1 -seed 7 -out workload.json
//	dasc-gen -kind meetup -workers 500 -tasks 200 -out hk.json
//	dasc-gen -kind smallscale -out table6.json
//	dasc-gen -kind example1 -out fig1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dasc/internal/dataset"
	"dasc/internal/gen"
	"dasc/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dasc-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dasc-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "synthetic", "workload kind: synthetic, meetup, smallscale, example1")
		seed    = fs.Int64("seed", 1, "random seed")
		scale   = fs.Float64("scale", 1.0, "population scale factor in (0, 1]")
		workers = fs.Int("workers", 0, "override worker count (0 = config default)")
		tasks   = fs.Int("tasks", 0, "override task count (0 = config default)")
		outPath = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		in  *model.Instance
		err error
	)
	switch *kind {
	case "synthetic":
		c := gen.DefaultSynthetic().Scale(*scale)
		c.Seed = *seed
		if *workers > 0 {
			c.Workers = *workers
		}
		if *tasks > 0 {
			c.Tasks = *tasks
		}
		in, err = gen.Synthetic(c)
	case "smallscale":
		c := gen.SmallScale()
		c.Seed = *seed
		if *workers > 0 {
			c.Workers = *workers
		}
		if *tasks > 0 {
			c.Tasks = *tasks
		}
		in, err = gen.Synthetic(c)
	case "meetup":
		c := gen.DefaultMeetup().Scale(*scale)
		c.Seed = *seed
		if *workers > 0 {
			c.Workers = *workers
		}
		if *tasks > 0 {
			c.Tasks = *tasks
		}
		in, err = gen.Meetup(c)
	case "example1":
		in = model.Example1()
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	st := in.ComputeStats()
	fmt.Fprintf(stderr, "generated %d workers, %d tasks, %d dependency edges (max dep set %d, critical path %d)\n",
		st.Workers, st.Tasks, st.Edges, st.MaxDepSetSize, st.CriticalPathLength)

	if *outPath == "" {
		return dataset.Write(stdout, in)
	}
	return dataset.Save(*outPath, in)
}
