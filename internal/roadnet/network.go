package roadnet

import (
	"fmt"
	"math/rand"
	"sync"

	"dasc/internal/geo"
)

// Network wraps a road Graph with a spatial index for snapping arbitrary
// locations to their nearest road vertex, and exposes the whole thing as a
// geo.DistanceFunc usable anywhere the library takes a metric.
type Network struct {
	g    *Graph
	tree *geo.KDTree

	// bounded records that every edge weight dominates its straight-line
	// length, so Distance(a, b) ≥ Euclidean(a, b) for all pairs: the walks
	// to and from the snap vertices are straight lines, and every path
	// through the network is at least the straight line between its ends.
	bounded bool

	mu    sync.Mutex
	cache map[NodeID][]float64 // memoised single-source distances
}

// registerBounded announces the straight-line lower bound of Network.Distance
// to geo.EuclideanBoundScale once per process. All *Network method values
// share one code pointer, so this must only ever cover networks that
// actually satisfy the bound — DistanceFunc hands out looseDistance (a
// distinct, unregistered method) for the rest.
var registerBounded sync.Once

// NewNetwork indexes an existing graph. The graph must not be mutated
// afterwards.
func NewNetwork(g *Graph) (*Network, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("roadnet: empty graph")
	}
	items := make([]geo.KDItem, g.NumNodes())
	for i := range items {
		items[i] = geo.KDItem{ID: i, Pt: g.Node(NodeID(i))}
	}
	n := &Network{
		g:       g,
		tree:    geo.NewKDTree(items),
		bounded: g.EuclideanLowerBounded(),
		cache:   make(map[NodeID][]float64),
	}
	if n.bounded {
		registerBounded.Do(func() { geo.RegisterEuclideanBound(n.Distance, 1) })
	}
	return n, nil
}

// Graph returns the underlying road graph.
func (n *Network) Graph() *Graph { return n.g }

// Snap returns the road vertex nearest to p and the straight-line distance
// to it.
func (n *Network) Snap(p geo.Point) (NodeID, float64) {
	id, d, _ := n.tree.Nearest(p) // tree is never empty
	return NodeID(id), d
}

// distancesFrom returns (and memoises) the single-source shortest distances
// from a road vertex. Safe for concurrent use.
func (n *Network) distancesFrom(src NodeID) []float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d, ok := n.cache[src]; ok {
		return d
	}
	d := n.g.ShortestDistances(src)
	n.cache[src] = d
	return d
}

// Distance returns the road-network travel distance between two arbitrary
// locations: straight-line walk to the nearest vertex, shortest path through
// the network, straight-line walk from the nearest vertex to the target.
// Unreachable pairs return +Inf (so feasibility checks reject them).
func (n *Network) Distance(a, b geo.Point) float64 {
	sa, da := n.Snap(a)
	sb, db := n.Snap(b)
	if sa == sb {
		// Same access vertex: walking directly is never worse than the
		// detour through it.
		direct := a.DistanceTo(b)
		viaNode := da + db
		if direct < viaNode {
			return direct
		}
		return viaNode
	}
	return da + n.distancesFrom(sa)[sb] + db
}

// looseDistance is Distance behind a distinct method identity: networks
// whose edge weights undercut the straight line hand this out instead of
// Distance, so the RegisterEuclideanBound registration (keyed by code
// pointer, shared across receivers) never covers them.
func (n *Network) looseDistance(a, b geo.Point) float64 { return n.Distance(a, b) }

// DistanceFunc adapts the network to the library-wide metric type. For
// networks whose edge weights all dominate the straight-line length (every
// generated and default-weighted graph), the returned metric is recognised
// by geo.EuclideanBoundScale with scale 1, so batch engines keep
// spatial-grid pruning on road-network runs; other networks get an
// unrecognised metric and exhaustive filtering.
func (n *Network) DistanceFunc() geo.DistanceFunc {
	if n.bounded {
		return n.Distance
	}
	return n.looseDistance
}

// GridNetworkConfig parameterises the synthetic road-network generator.
type GridNetworkConfig struct {
	Box  geo.BBox
	Cols int
	Rows int
	// Jitter displaces each vertex by up to this fraction of a cell in each
	// axis, so the network is not a perfect lattice. 0–0.49.
	Jitter float64
	// RemoveFrac removes this fraction of non-bridging edges, creating
	// detours. 0–0.4.
	RemoveFrac float64
	// DiagonalFrac adds diagonal shortcut edges to this fraction of cells.
	DiagonalFrac float64
	Seed         int64
}

// DefaultGrid returns a reasonable city-like network over the box.
func DefaultGrid(box geo.BBox) GridNetworkConfig {
	return GridNetworkConfig{
		Box: box, Cols: 16, Rows: 16,
		Jitter: 0.25, RemoveFrac: 0.15, DiagonalFrac: 0.1, Seed: 1,
	}
}

// GenerateGrid builds a connected jittered-grid road network. Removing an
// edge is skipped when it would disconnect the graph, so the result is
// always connected.
func GenerateGrid(c GridNetworkConfig) (*Network, error) {
	if c.Cols < 2 || c.Rows < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2 vertices, got %dx%d", c.Cols, c.Rows)
	}
	if c.Jitter < 0 || c.Jitter > 0.49 {
		return nil, fmt.Errorf("roadnet: jitter %v outside [0, 0.49]", c.Jitter)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	g := NewGraph()
	cw := c.Box.Width() / float64(c.Cols-1)
	ch := c.Box.Height() / float64(c.Rows-1)
	id := func(col, row int) NodeID { return NodeID(row*c.Cols + col) }
	for row := 0; row < c.Rows; row++ {
		for col := 0; col < c.Cols; col++ {
			jx := (rng.Float64()*2 - 1) * c.Jitter * cw
			jy := (rng.Float64()*2 - 1) * c.Jitter * ch
			g.AddNode(geo.Pt(
				c.Box.Min.X+float64(col)*cw+jx,
				c.Box.Min.Y+float64(row)*ch+jy,
			))
		}
	}
	type edge struct{ u, v NodeID }
	var edges []edge
	for row := 0; row < c.Rows; row++ {
		for col := 0; col < c.Cols; col++ {
			if col+1 < c.Cols {
				edges = append(edges, edge{id(col, row), id(col+1, row)})
			}
			if row+1 < c.Rows {
				edges = append(edges, edge{id(col, row), id(col, row+1)})
			}
			if col+1 < c.Cols && row+1 < c.Rows && rng.Float64() < c.DiagonalFrac {
				edges = append(edges, edge{id(col, row), id(col+1, row+1)})
			}
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, 0); err != nil {
			return nil, err
		}
	}
	// Remove a fraction of edges, but never disconnect. Rebuilding the graph
	// per removal is O(edges²) in the worst case, fine at generator sizes.
	removals := int(float64(len(edges)) * c.RemoveFrac)
	perm := rng.Perm(len(edges))
	removed := make(map[int]bool)
	for _, ei := range perm {
		if removals == 0 {
			break
		}
		removed[ei] = true
		trial := NewGraph()
		for i := 0; i < g.NumNodes(); i++ {
			trial.AddNode(g.Node(NodeID(i)))
		}
		for i, e := range edges {
			if !removed[i] {
				if err := trial.AddEdge(e.u, e.v, 0); err != nil {
					return nil, err
				}
			}
		}
		if trial.Connected() {
			removals--
		} else {
			delete(removed, ei)
		}
	}
	final := NewGraph()
	for i := 0; i < g.NumNodes(); i++ {
		final.AddNode(g.Node(NodeID(i)))
	}
	for i, e := range edges {
		if !removed[i] {
			if err := final.AddEdge(e.u, e.v, 0); err != nil {
				return nil, err
			}
		}
	}
	return NewNetwork(final)
}
