package roadnet

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dasc/internal/geo"
)

// square builds a 4-cycle: 0-(1)-1-(1)-2-(1)-3-(1)-0 with unit edges at the
// corners of a unit square.
func square(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	g.AddNode(geo.Pt(0, 0))
	g.AddNode(geo.Pt(1, 0))
	g.AddNode(geo.Pt(1, 1))
	g.AddNode(geo.Pt(0, 1))
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := square(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("graph %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", g.Degree(0))
	}
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 99, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestShortestPathSquare(t *testing.T) {
	g := square(t)
	path, d, err := g.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("distance 0→2 = %v, want 2", d)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Errorf("path = %v", path)
	}
	// A cheap diagonal shortcut must win.
	if err := g.AddEdge(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	_, d2, err := g.ShortestPath(0, 2)
	if err != nil || d2 != 0.5 {
		t.Errorf("with shortcut: d = %v err = %v", d2, err)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddNode(geo.Pt(0, 0))
	g.AddNode(geo.Pt(1, 1))
	if _, _, err := g.ShortestPath(0, 1); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	d := g.ShortestDistances(0)
	if !math.IsInf(d[1], 1) || d[0] != 0 {
		t.Errorf("distances = %v", d)
	}
}

func TestShortestDistancesMatchBruteForce(t *testing.T) {
	// Random connected graph; cross-check Dijkstra against Bellman–Ford.
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(15)
		g := NewGraph()
		for i := 0; i < n; i++ {
			g.AddNode(geo.Pt(rng.Float64(), rng.Float64()))
		}
		type edge struct {
			u, v NodeID
			w    float64
		}
		var edges []edge
		for i := 1; i < n; i++ { // spanning chain keeps it connected
			e := edge{NodeID(i - 1), NodeID(i), rng.Float64() + 0.1}
			edges = append(edges, e)
		}
		for k := 0; k < n; k++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				edges = append(edges, edge{u, v, rng.Float64() + 0.1})
			}
		}
		for _, e := range edges {
			if err := g.AddEdge(e.u, e.v, e.w); err != nil {
				t.Fatal(err)
			}
		}
		src := NodeID(rng.Intn(n))
		got := g.ShortestDistances(src)
		// Bellman–Ford oracle.
		want := make([]float64, n)
		for i := range want {
			want[i] = math.Inf(1)
		}
		want[src] = 0
		for iter := 0; iter < n; iter++ {
			for _, e := range edges {
				if want[e.u]+e.w < want[e.v] {
					want[e.v] = want[e.u] + e.w
				}
				if want[e.v]+e.w < want[e.u] {
					want[e.u] = want[e.v] + e.w
				}
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: dist[%d] = %v, bellman-ford %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNetworkSnapAndDistance(t *testing.T) {
	net, err := NewNetwork(square(t))
	if err != nil {
		t.Fatal(err)
	}
	id, d := net.Snap(geo.Pt(0.1, 0.1))
	if id != 0 || d > 0.2 {
		t.Errorf("Snap = %d, %v", id, d)
	}
	// Distance from near-corner-0 to near-corner-2: walk + two edges + walk.
	got := net.Distance(geo.Pt(0, 0), geo.Pt(1, 1))
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("network distance = %v, want 2", got)
	}
	// Same snap vertex: direct walking wins.
	got = net.Distance(geo.Pt(0.05, 0), geo.Pt(0, 0.05))
	if want := geo.Pt(0.05, 0).DistanceTo(geo.Pt(0, 0.05)); math.Abs(got-want) > 1e-9 {
		t.Errorf("same-vertex distance = %v, want %v", got, want)
	}
	// Caching: repeated queries agree.
	a, b := geo.Pt(0.1, 0.2), geo.Pt(0.9, 0.8)
	if d1, d2 := net.Distance(a, b), net.Distance(a, b); d1 != d2 {
		t.Errorf("cache inconsistency: %v vs %v", d1, d2)
	}
}

func TestNetworkDistanceDominatesEuclidean(t *testing.T) {
	net, err := GenerateGrid(DefaultGrid(geo.NewBBox(geo.Pt(0, 0), geo.Pt(1, 1))))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		a := geo.Pt(rng.Float64(), rng.Float64())
		b := geo.Pt(rng.Float64(), rng.Float64())
		road := net.Distance(a, b)
		if road+1e-9 < a.DistanceTo(b)*0.999 {
			t.Fatalf("road distance %v below Euclidean %v", road, a.DistanceTo(b))
		}
		// Symmetry.
		if back := net.Distance(b, a); math.Abs(road-back) > 1e-9 {
			t.Fatalf("asymmetric network distance: %v vs %v", road, back)
		}
	}
}

func TestGenerateGridConnectedAndDeterministic(t *testing.T) {
	c := DefaultGrid(geo.NewBBox(geo.Pt(0, 0), geo.Pt(1, 1)))
	c.RemoveFrac = 0.3
	n1, err := GenerateGrid(c)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Graph().Connected() {
		t.Fatal("generated network disconnected")
	}
	n2, err := GenerateGrid(c)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Graph().NumEdges() != n2.Graph().NumEdges() {
		t.Error("same seed, different networks")
	}
	if n1.Graph().NumNodes() != c.Cols*c.Rows {
		t.Errorf("nodes = %d", n1.Graph().NumNodes())
	}
}

func TestGenerateGridValidation(t *testing.T) {
	c := DefaultGrid(geo.NewBBox(geo.Pt(0, 0), geo.Pt(1, 1)))
	c.Cols = 1
	if _, err := GenerateGrid(c); err == nil {
		t.Error("1-column grid accepted")
	}
	c = DefaultGrid(geo.NewBBox(geo.Pt(0, 0), geo.Pt(1, 1)))
	c.Jitter = 0.9
	if _, err := GenerateGrid(c); err == nil {
		t.Error("excess jitter accepted")
	}
	if _, err := NewNetwork(NewGraph()); err == nil {
		t.Error("empty network accepted")
	}
}

// TestNetworkEuclideanBoundRecognition: default-weighted networks (every
// edge weight is the Euclidean edge length) must hand out a metric that
// geo.EuclideanBoundScale recognises with scale 1, so batch engines keep
// spatial-grid pruning on road-network runs; a network with an explicitly
// underweighted edge (a shortcut faster than straight-line travel) must hand
// out an unrecognised metric instead.
func TestNetworkEuclideanBoundRecognition(t *testing.T) {
	net, err := GenerateGrid(DefaultGrid(geo.NewBBox(geo.Pt(0, 0), geo.Pt(1, 1))))
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph().EuclideanLowerBounded() {
		t.Fatal("default-weighted grid not Euclidean lower bounded")
	}
	if s, ok := geo.EuclideanBoundScale(net.DistanceFunc()); !ok || s != 1 {
		t.Fatalf("bounded network metric: scale=%v ok=%v, want 1 true", s, ok)
	}

	// A unit-square cycle with one edge undercutting its straight-line
	// length: the lower bound no longer holds.
	g := square(t)
	g.AddNode(geo.Pt(0.5, 0.5))
	if err := g.AddEdge(0, 4, 0.1); err != nil { // straight line ≈ 0.707
		t.Fatal(err)
	}
	if g.EuclideanLowerBounded() {
		t.Fatal("underweighted edge not detected")
	}
	loose, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := geo.EuclideanBoundScale(loose.DistanceFunc()); ok {
		t.Fatal("underweighted network metric recognised; pruning would be unsound")
	}
	// The loose metric still computes the same distances.
	a, b := geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.8)
	if d1, d2 := loose.DistanceFunc()(a, b), loose.Distance(a, b); d1 != d2 {
		t.Fatalf("looseDistance %v != Distance %v", d1, d2)
	}
}
