// Package roadnet provides a road-network distance substrate. The paper
// notes its approaches "can also be used with other distance functions
// (e.g., road-network distance)"; this package makes that concrete: a
// weighted road graph with Dijkstra shortest paths, point snapping, and a
// geo.DistanceFunc adapter with per-source caching so allocators can use
// network distances as a drop-in replacement for Euclidean.
package roadnet

import (
	"errors"
	"fmt"
	"math"

	"dasc/internal/geo"
)

// NodeID identifies a road-network vertex.
type NodeID int32

// Graph is an undirected weighted road network. Edge weights are travel
// distances; they default to the Euclidean length of the edge but may model
// slower roads with larger weights.
type Graph struct {
	pts    []geo.Point
	adj    [][]halfEdge
	nEdges int
}

type halfEdge struct {
	to NodeID
	w  float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a vertex at p and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	g.pts = append(g.pts, p)
	g.adj = append(g.adj, nil)
	return NodeID(len(g.pts) - 1)
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.nEdges }

// Node returns the location of vertex id.
func (g *Graph) Node(id NodeID) geo.Point { return g.pts[id] }

// AddEdge connects u and v with the given weight; a non-positive weight
// means "use the Euclidean length". Self-loops and out-of-range vertices are
// errors.
func (g *Graph) AddEdge(u, v NodeID, weight float64) error {
	if u == v {
		return fmt.Errorf("roadnet: self-loop on node %d", u)
	}
	if int(u) >= len(g.pts) || int(v) >= len(g.pts) || u < 0 || v < 0 {
		return fmt.Errorf("roadnet: edge %d–%d out of range", u, v)
	}
	if weight <= 0 {
		weight = g.pts[u].DistanceTo(g.pts[v])
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: weight})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: weight})
	g.nEdges++
	return nil
}

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// EuclideanLowerBounded reports whether every edge weight is at least the
// straight-line length of its endpoints. When it holds, any path through
// the network is at least as long as the straight line between its ends
// (triangle inequality over the segments), so network distances are
// lower-bounded by Euclidean distance and spatial indexes can prune for
// them — see Network.DistanceFunc. Weights default to the Euclidean edge
// length, so graphs only lose the property by explicitly underweighting an
// edge (a "shortcut" faster than straight-line travel).
func (g *Graph) EuclideanLowerBounded() bool {
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.w < g.pts[u].DistanceTo(g.pts[e.to]) {
				return false
			}
		}
	}
	return true
}

// ErrUnreachable is returned by ShortestPath when no path exists.
var ErrUnreachable = errors.New("roadnet: no path between nodes")

// ShortestDistances runs Dijkstra from src and returns the distance to every
// vertex (+Inf where unreachable).
func (g *Graph) ShortestDistances(src NodeID) []float64 {
	dist := make([]float64, len(g.pts))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &nodeHeap{}
	h.push(nodeCand{id: src, d: 0})
	for h.len() > 0 {
		c := h.pop()
		if c.d > dist[c.id] {
			continue // stale entry
		}
		for _, e := range g.adj[c.id] {
			if nd := c.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(nodeCand{id: e.to, d: nd})
			}
		}
	}
	return dist
}

// ShortestPath returns the node sequence and length of a shortest path from
// src to dst, or ErrUnreachable.
func (g *Graph) ShortestPath(src, dst NodeID) ([]NodeID, float64, error) {
	dist := make([]float64, len(g.pts))
	prev := make([]NodeID, len(g.pts))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	h := &nodeHeap{}
	h.push(nodeCand{id: src, d: 0})
	for h.len() > 0 {
		c := h.pop()
		if c.id == dst {
			break
		}
		if c.d > dist[c.id] {
			continue
		}
		for _, e := range g.adj[c.id] {
			if nd := c.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = c.id
				h.push(nodeCand{id: e.to, d: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, ErrUnreachable
	}
	var path []NodeID
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], nil
}

// Connected reports whether every vertex is reachable from vertex 0.
func (g *Graph) Connected() bool {
	if len(g.pts) == 0 {
		return true
	}
	d := g.ShortestDistances(0)
	for _, v := range d {
		if math.IsInf(v, 1) {
			return false
		}
	}
	return true
}

// nodeHeap is a min-heap on distance.
type nodeCand struct {
	id NodeID
	d  float64
}

type nodeHeap struct{ a []nodeCand }

func (h *nodeHeap) len() int { return len(h.a) }

func (h *nodeHeap) push(c nodeCand) {
	h.a = append(h.a, c)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].d <= h.a[i].d {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nodeHeap) pop() nodeCand {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l].d < h.a[small].d {
			small = l
		}
		if r < last && h.a[r].d < h.a[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
