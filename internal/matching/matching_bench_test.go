package matching

import (
	"math/rand"
	"testing"
)

func benchCost(n, m int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	return cost
}

func BenchmarkHungarian32(b *testing.B) {
	cost := benchCost(32, 48, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuction32(b *testing.B) {
	cost := benchCost(32, 48, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Auction(cost, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarian128(b *testing.B) {
	cost := benchCost(128, 160, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuction128(b *testing.B) {
	cost := benchCost(128, 160, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Auction(cost, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKuhnSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := NewBipartite(200, 200)
	for u := 0; u < 200; u++ {
		for k := 0; k < 6; k++ {
			g.AddEdge(u, rng.Intn(200))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxMatchingKuhn()
	}
}

func BenchmarkHKSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := NewBipartite(200, 200)
	for u := 0; u < 200; u++ {
		for k := 0; k < 6; k++ {
			g.AddEdge(u, rng.Intn(200))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxMatchingHK()
	}
}
