package matching

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteAssignment finds the optimal assignment cost by trying every injection
// of rows into columns. Exponential; for tests only.
func bruteAssignment(cost [][]float64) (float64, bool) {
	n := len(cost)
	if n == 0 {
		return 0, true
	}
	m := len(cost[0])
	usedC := make([]bool, m)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < m; j++ {
			if usedC[j] || cost[i][j] >= Forbidden/2 {
				continue
			}
			usedC[j] = true
			rec(i+1, acc+cost[i][j])
			usedC[j] = false
		}
	}
	rec(0, 0)
	return best, !math.IsInf(best, 1)
}

func TestHungarianKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %v, want 5 (assign=%v)", total, assign)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// 2 rows, 4 columns: pick the two cheapest compatible columns.
	cost := [][]float64{
		{10, 1, 8, 7},
		{10, 1, 2, 7},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 { // row0→col1 (1), row1→col2 (2)
		t.Errorf("total = %v (assign=%v)", total, assign)
	}
	if assign[0] == assign[1] {
		t.Error("duplicate column assignment")
	}
}

func TestHungarianInfeasible(t *testing.T) {
	cost := [][]float64{
		{Forbidden, Forbidden},
		{1, Forbidden},
	}
	if _, _, err := Hungarian(cost); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// Two rows forced onto a single usable column.
	cost2 := [][]float64{
		{1, Forbidden},
		{2, Forbidden},
	}
	if _, _, err := Hungarian(cost2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestHungarianShapeErrors(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1}, {2}, {3}}); err == nil {
		t.Error("rows > cols accepted") // 3 rows × 1 col
	}
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if assign, total, err := Hungarian(nil); err != nil || assign != nil || total != 0 {
		t.Error("empty matrix should trivially succeed")
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.15 {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = math.Floor(rng.Float64()*100) / 10
				}
			}
		}
		want, feasible := bruteAssignment(cost)
		assign, total, err := Hungarian(cost)
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: want ErrInfeasible, got %v (total=%v)", trial, err, total)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: unexpected err %v (brute=%v)", trial, err, want)
		}
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: total %v, brute %v (assign=%v)", trial, total, want, assign)
		}
		// Assignment must be an injection using real edges.
		seen := make(map[int]bool)
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("trial %d: invalid assignment %v", trial, assign)
			}
			seen[j] = true
			if cost[i][j] >= Forbidden/2 {
				t.Fatalf("trial %d: forbidden edge used", trial)
			}
		}
	}
}

func TestHungarianZeroCosts(t *testing.T) {
	cost := [][]float64{{0, 0}, {0, 0}}
	_, total, err := Hungarian(cost)
	if err != nil || total != 0 {
		t.Errorf("zero matrix: total=%v err=%v", total, err)
	}
}
