// Package matching implements the bipartite matching algorithms the DA-SC
// allocators rely on: Kuhn's augmenting-path matcher and Hopcroft–Karp for
// maximum-cardinality matching (feasibility of an associative task set), and
// the Hungarian algorithm (Kuhn–Munkres) for minimum-cost assignment, which
// Algorithm 1 of the paper invokes to pick the worker set for a task set.
package matching

// Bipartite is an adjacency-list bipartite graph with len(Adj) left vertices
// and N right vertices. Adj[u] lists the right vertices u may be matched to.
type Bipartite struct {
	Adj [][]int
	N   int // number of right vertices
}

// NewBipartite returns an empty graph with left left-vertices and right
// right-vertices.
func NewBipartite(left, right int) *Bipartite {
	return &Bipartite{Adj: make([][]int, left), N: right}
}

// AddEdge connects left vertex u to right vertex v. Out-of-range vertices
// panic, as they indicate a caller bug.
func (b *Bipartite) AddEdge(u, v int) {
	if u < 0 || u >= len(b.Adj) || v < 0 || v >= b.N {
		panic("matching: edge out of range")
	}
	b.Adj[u] = append(b.Adj[u], v)
}

// Left returns the number of left vertices.
func (b *Bipartite) Left() int { return len(b.Adj) }

// MaxMatchingKuhn computes a maximum matching with Kuhn's augmenting-path
// algorithm in O(V·E). It returns matchL where matchL[u] is the right vertex
// matched to left vertex u, or -1. Simple and fast for the small per-task-set
// graphs DASC_Greedy feeds it.
func (b *Bipartite) MaxMatchingKuhn() (matchL []int, size int) {
	nL := len(b.Adj)
	matchL = make([]int, nL)
	matchR := make([]int, b.N)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	visited := make([]bool, b.N)
	var try func(u int) bool
	try = func(u int) bool {
		for _, v := range b.Adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || try(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < nL; u++ {
		for i := range visited {
			visited[i] = false
		}
		if try(u) {
			size++
		}
	}
	return matchL, size
}

// MaxMatchingHK computes a maximum matching with Hopcroft–Karp in
// O(E·√V), the right choice for the batch-wide graphs. Return shape matches
// MaxMatchingKuhn.
func (b *Bipartite) MaxMatchingHK() (matchL []int, size int) {
	const inf = int32(1) << 30
	nL := len(b.Adj)
	matchL = make([]int, nL)
	matchR := make([]int, b.N)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int32, nL)
	queue := make([]int, 0, nL)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nL; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range b.Adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range b.Adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nL; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchL, size
}

// HasPerfectLeftMatching reports whether every left vertex can be matched.
// This is the feasibility test for "can this associative task set be fully
// staffed by distinct workers".
func (b *Bipartite) HasPerfectLeftMatching() bool {
	_, size := b.MaxMatchingHK()
	return size == len(b.Adj)
}
