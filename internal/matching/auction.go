package matching

import (
	"errors"
	"math"
)

// Auction solves the same rectangular minimum-cost assignment problem as
// Hungarian with Bertsekas' auction algorithm (forward auction with
// ε-scaling). It returns an ε-optimal assignment: total cost within
// n·epsilon of the optimum, and exactly optimal when all costs are integer
// multiples of some unit u and the final epsilon < u/n.
//
// It exists as an independently-implemented cross-check for the Hungarian
// solver (the two agree on every random instance in the tests) and as the
// better choice for dense instances with many similar costs, where the
// auction's price mechanism converges quickly.
func Auction(cost [][]float64, epsilon float64) (assign []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if n > m {
		return nil, 0, errors.New("matching: more rows than columns")
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("matching: ragged cost matrix")
		}
	}
	// Rectangular instances break the auction's ε-optimality argument (the
	// columns a rival solution could use for free keep zero price). Pad to a
	// square matrix with zero-cost dummy rows, which absorb the surplus
	// columns without changing the optimum, then solve the square problem.
	realRows := n
	if n < m {
		padded := make([][]float64, m)
		copy(padded, cost)
		zero := make([]float64, m)
		for i := n; i < m; i++ {
			padded[i] = zero
		}
		cost = padded
		n = m
	}
	// Work with benefits (negated costs): the forward auction maximises.
	maxAbs := 1.0
	for i := range cost {
		for j := range cost[i] {
			if c := cost[i][j]; c < Forbidden/2 && math.Abs(c) > maxAbs {
				maxAbs = math.Abs(c)
			}
		}
	}
	if epsilon <= 0 {
		epsilon = maxAbs / float64(8*n)
		if epsilon <= 0 {
			epsilon = 1e-9
		}
	}

	price := make([]float64, m)
	owner := make([]int, m) // column -> row, -1 free
	assign = make([]int, n) // row -> column, -1 free
	for j := range owner {
		owner[j] = -1
	}

	// ε-scaling: start coarse, refine to the target epsilon.
	eps := maxAbs / 2
	if eps < epsilon {
		eps = epsilon
	}
	for {
		for i := range assign {
			assign[i] = -1
		}
		for j := range owner {
			owner[j] = -1
		}
		// Queue of unassigned rows.
		queue := make([]int, n)
		for i := range queue {
			queue[i] = i
		}
		guard := 0
		// Loose iteration guard: the auction terminates in
		// O(n·m·maxAbs/eps) bids; blow past that and the matrix must be
		// infeasible (all remaining bids forbidden).
		maxBids := int(float64(n*m) * (maxAbs/eps + 2) * 4)
		for len(queue) > 0 {
			guard++
			if guard > maxBids {
				return nil, 0, ErrInfeasible
			}
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			// Find the best and second-best values v_ij = -cost - price.
			best, second := math.Inf(-1), math.Inf(-1)
			bestJ := -1
			for j := 0; j < m; j++ {
				if cost[i][j] >= Forbidden/2 {
					continue
				}
				v := -cost[i][j] - price[j]
				if v > best {
					second = best
					best, bestJ = v, j
				} else if v > second {
					second = v
				}
			}
			if bestJ < 0 {
				return nil, 0, ErrInfeasible
			}
			if math.IsInf(second, -1) {
				second = best - maxAbs // sole option: bid it up decisively
			}
			price[bestJ] += best - second + eps
			if prev := owner[bestJ]; prev >= 0 {
				assign[prev] = -1
				queue = append(queue, prev)
			}
			owner[bestJ] = i
			assign[i] = bestJ
		}
		if eps <= epsilon {
			break
		}
		eps /= 4
		if eps < epsilon {
			eps = epsilon
		}
	}
	assign = assign[:realRows]
	for i, j := range assign {
		total += cost[i][j]
	}
	return assign, total, nil
}
