package matching

import (
	"errors"
	"math"
)

// ErrInfeasible is returned by Hungarian when no complete assignment of rows
// to columns exists under the given cost matrix (all completions touch a
// forbidden cell).
var ErrInfeasible = errors.New("matching: no feasible complete assignment")

// Forbidden marks a row/column pair that must not be matched. Any cost at or
// above Forbidden/2 is treated as forbidden. The sentinel is large enough to
// dominate any realistic travel cost yet small enough that sums of a few
// sentinels stay finite inside the potential updates.
const Forbidden = 1e15

// Hungarian solves the rectangular minimum-cost assignment problem with the
// Jonker-style O(n²·m) shortest-augmenting-path formulation of the
// Kuhn–Munkres algorithm. cost[i][j] is the cost of assigning row i to
// column j; len(cost) rows must be ≤ len(cost[0]) columns (pad or transpose
// otherwise). It returns assign with assign[i] = column of row i, and the
// total cost. Rows and columns are fully assigned; if that is impossible
// because of Forbidden entries, ErrInfeasible is returned.
//
// In DASC_Greedy the rows are the tasks of one associative task set, the
// columns are candidate workers and the costs are travel times, so the chosen
// worker set is the cheapest complete staffing.
func Hungarian(cost [][]float64) (assign []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if n > m {
		return nil, 0, errors.New("matching: more rows than columns")
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("matching: ragged cost matrix")
		}
	}

	const unassigned = 0
	// 1-based potentials as in the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row assigned to column j (1-based); 0 = none
	way := make([]int, m+1)
	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				return nil, 0, ErrInfeasible
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == unassigned {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] != unassigned {
			assign[p[j]-1] = j - 1
		}
	}
	for i, j := range assign {
		if j < 0 {
			return nil, 0, ErrInfeasible
		}
		c := cost[i][j]
		if c >= Forbidden/2 {
			return nil, 0, ErrInfeasible
		}
		total += c
	}
	return assign, total, nil
}
