package matching

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestAuctionKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Auction(cost, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-5) > 1e-3 {
		t.Errorf("total = %v, want 5 (assign=%v)", total, assign)
	}
}

func TestAuctionMatchesHungarianOnIntegerCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		m := n + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		_, wantTotal, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		// Integer costs with ε < 1/m (m = padded square size) guarantee
		// exact optimality.
		assign, total, err := Auction(cost, 0.9/float64(m+1))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(total-wantTotal) > 1e-9 {
			t.Fatalf("trial %d: auction %v, hungarian %v", trial, total, wantTotal)
		}
		// Injection over real edges.
		seen := map[int]bool{}
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("trial %d: invalid assignment %v", trial, assign)
			}
			seen[j] = true
			if cost[i][j] >= Forbidden/2 {
				t.Fatalf("trial %d: forbidden edge used", trial)
			}
		}
	}
}

func TestAuctionEpsilonOptimalOnFloatCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		_, wantTotal, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		eps := 0.01
		_, total, err := Auction(cost, eps)
		if err != nil {
			t.Fatal(err)
		}
		if total < wantTotal-1e-9 {
			t.Fatalf("trial %d: auction beat the optimum?! %v < %v", trial, total, wantTotal)
		}
		// The ε-bound is m·ε for the internally padded square problem.
		if total > wantTotal+float64(m)*eps+1e-9 {
			t.Fatalf("trial %d: auction %v exceeds ε-bound over %v", trial, total, wantTotal)
		}
	}
}

func TestAuctionForbiddenAndInfeasible(t *testing.T) {
	// Feasible with forbidden entries.
	cost := [][]float64{
		{Forbidden, 1},
		{2, Forbidden},
	}
	assign, total, err := Auction(cost, 0.1)
	if err != nil || math.Abs(total-3) > 1e-6 {
		t.Errorf("assign=%v total=%v err=%v", assign, total, err)
	}
	// Row with no usable column.
	bad := [][]float64{
		{Forbidden, Forbidden},
		{1, 2},
	}
	if _, _, err := Auction(bad, 0.1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// Two rows forced onto one usable column.
	squeeze := [][]float64{
		{1, Forbidden},
		{2, Forbidden},
	}
	if _, _, err := Auction(squeeze, 0.1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("squeeze err = %v, want ErrInfeasible", err)
	}
}

func TestAuctionShapesAndDefaults(t *testing.T) {
	if _, _, err := Auction([][]float64{{1}, {2}}, 0.1); err == nil {
		t.Error("rows > cols accepted")
	}
	if _, _, err := Auction([][]float64{{1, 2}, {3}}, 0.1); err == nil {
		t.Error("ragged matrix accepted")
	}
	if assign, total, err := Auction(nil, 0.1); err != nil || assign != nil || total != 0 {
		t.Error("empty matrix should trivially succeed")
	}
	// epsilon <= 0 picks a sane default.
	if _, _, err := Auction([][]float64{{0, 0}, {0, 0}}, 0); err != nil {
		t.Errorf("default epsilon failed: %v", err)
	}
}
