package matching

import (
	"math/rand"
	"testing"
)

// bruteMaxMatching enumerates all subsets of edges implicitly via recursion:
// for small graphs it returns the true maximum matching size.
func bruteMaxMatching(b *Bipartite) int {
	usedR := make([]bool, b.N)
	var rec func(u int) int
	rec = func(u int) int {
		if u == len(b.Adj) {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range b.Adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if r := 1 + rec(u+1); r > best {
					best = r
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func randBipartite(rng *rand.Rand, left, right int, p float64) *Bipartite {
	b := NewBipartite(left, right)
	for u := 0; u < left; u++ {
		for v := 0; v < right; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b
}

func validateMatching(t *testing.T, b *Bipartite, matchL []int, size int) {
	t.Helper()
	seenR := make(map[int]bool)
	count := 0
	for u, v := range matchL {
		if v == -1 {
			continue
		}
		count++
		if seenR[v] {
			t.Fatalf("right vertex %d matched twice", v)
		}
		seenR[v] = true
		found := false
		for _, w := range b.Adj[u] {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", u, v)
		}
	}
	if count != size {
		t.Fatalf("reported size %d, actual %d", size, count)
	}
}

func TestMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		left := 1 + rng.Intn(7)
		right := 1 + rng.Intn(7)
		b := randBipartite(rng, left, right, 0.4)
		want := bruteMaxMatching(b)
		mk, sk := b.MaxMatchingKuhn()
		validateMatching(t, b, mk, sk)
		if sk != want {
			t.Fatalf("trial %d: Kuhn size %d, brute %d", trial, sk, want)
		}
		mh, sh := b.MaxMatchingHK()
		validateMatching(t, b, mh, sh)
		if sh != want {
			t.Fatalf("trial %d: HK size %d, brute %d", trial, sh, want)
		}
	}
}

func TestMatchingKnownCases(t *testing.T) {
	// Perfect matching exists: 0-0, 1-1.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	if !b.HasPerfectLeftMatching() {
		t.Error("perfect matching not found")
	}
	// Both left vertices compete for the same single right vertex.
	c := NewBipartite(2, 1)
	c.AddEdge(0, 0)
	c.AddEdge(1, 0)
	if c.HasPerfectLeftMatching() {
		t.Error("impossible perfect matching reported")
	}
	if _, size := c.MaxMatchingHK(); size != 1 {
		t.Errorf("size = %d, want 1", size)
	}
	// Augmenting-path case: greedy 0→0 must be undone.
	d := NewBipartite(2, 2)
	d.AddEdge(0, 0)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	if _, size := d.MaxMatchingHK(); size != 2 {
		t.Errorf("augmenting case size = %d, want 2", size)
	}
}

func TestMatchingEmptyGraphs(t *testing.T) {
	b := NewBipartite(0, 5)
	if _, size := b.MaxMatchingHK(); size != 0 {
		t.Error("empty left should match nothing")
	}
	if !b.HasPerfectLeftMatching() {
		t.Error("vacuous perfect matching should hold")
	}
	c := NewBipartite(3, 0)
	if _, size := c.MaxMatchingKuhn(); size != 0 {
		t.Error("no right vertices should match nothing")
	}
}

func TestAddEdgeBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	b := NewBipartite(1, 1)
	b.AddEdge(0, 5)
}

func TestHKAgreesWithKuhnLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		b := randBipartite(rng, 60, 70, 0.1)
		_, sk := b.MaxMatchingKuhn()
		_, sh := b.MaxMatchingHK()
		if sk != sh {
			t.Fatalf("trial %d: Kuhn %d != HK %d", trial, sk, sh)
		}
	}
}
