package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram over a closed value range, used by
// the harness to summarise per-batch score and latency distributions.
// Values outside the range clamp into the edge buckets.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
	sum    float64
}

// NewHistogram creates a histogram with the given bucket count over
// [lo, hi]. Panics on a non-positive bucket count or an empty range, which
// indicate caller bugs.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	if !(hi > lo) {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, buckets)}
}

// Add records one observation. Non-finite values are dropped: a NaN has no
// bucket, and a single ±Inf would clamp into an edge bucket while poisoning
// the running sum (and so Mean) forever.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += v
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Sum returns the sum of the observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean of the observations (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Bucket returns the [lo, hi) bounds and count of bucket i.
func (h *Histogram) Bucket(i int) (lo, hi float64, count int) {
	width := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + float64(i)*width, h.lo + float64(i+1)*width, h.counts[i]
}

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an approximate q-quantile (0 ≤ q ≤ 1) assuming uniform
// density within buckets; NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	acc := 0.0
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		next := acc + float64(c)
		if next >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(i)+frac)*width
		}
		acc = next
	}
	return h.hi
}

// Render writes a fixed-width ASCII bar chart, one line per bucket.
func (h *Histogram) Render(w io.Writer, barWidth int) error {
	if barWidth < 1 {
		barWidth = 40
	}
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i := range h.counts {
		lo, hi, c := h.Bucket(i)
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if _, err := fmt.Fprintf(w, "[%8.3g, %8.3g) %6d %s\n",
			lo, hi, c, strings.Repeat("█", bar)); err != nil {
			return err
		}
	}
	return nil
}
