// Package stats provides the small numeric aggregation helpers the
// experiment harness uses to summarise repeated measurements.
package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value (mean of the two middles for even length),
// or NaN for an empty slice. The input is not modified.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks, or NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the extrema, or (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Timer measures wall-clock durations for the harness.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// ElapsedMS returns the elapsed time in milliseconds.
func (t *Timer) ElapsedMS() float64 {
	return float64(time.Since(t.start)) / float64(time.Millisecond)
}
