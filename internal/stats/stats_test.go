package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty inputs should be NaN")
	}
	lo, hi := MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty MinMax should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []int16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := MinMax(xs)
		got := Percentile(xs, float64(p%101))
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if ms := tm.ElapsedMS(); ms < 0 {
		t.Errorf("ElapsedMS = %v", ms)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1, 2.5, 5, 9.99, 10, -3, 42} {
		h.Add(v)
	}
	h.Add(math.NaN()) // ignored
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	// Clamping: -3 lands in bucket 0, 42 in the last bucket.
	if _, _, c := h.Bucket(0); c != 3 { // 0, 1, -3
		t.Errorf("bucket 0 count = %d", c)
	}
	if _, _, c := h.Bucket(4); c != 3 { // 9.99, 10, 42
		t.Errorf("bucket 4 count = %d", c)
	}
	if h.Buckets() != 5 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
	lo, hi, _ := h.Bucket(1)
	if lo != 2 || hi != 4 {
		t.Errorf("bucket 1 bounds = [%v, %v)", lo, hi)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if m := h.Mean(); math.Abs(m-49.5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
	if q := h.Quantile(0.5); q < 40 || q > 60 {
		t.Errorf("median estimate = %v", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram should be NaN")
	}
}

func TestHistogramIgnoresNonFinite(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	h.Add(5)
	h.Add(math.Inf(1))  // would blow out the top bucket and the sum
	h.Add(math.Inf(-1)) // would blow out the bottom bucket and the sum
	h.Add(math.NaN())
	if h.Total() != 1 {
		t.Errorf("Total = %d, want 1", h.Total())
	}
	if h.Sum() != 5 || h.Mean() != 5 {
		t.Errorf("Sum = %v, Mean = %v, want 5, 5", h.Sum(), h.Mean())
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	for i := 0; i < 4; i++ {
		h.Add(float64(i))
	}
	// With one bucket the quantile interpolates linearly across the whole
	// range and must stay inside it at every q.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		if got < 0 || got > 10 {
			t.Errorf("Quantile(%v) = %v, outside [0, 10]", q, got)
		}
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("single-bucket median = %v, want 5", got)
	}
}

func TestHistogramQuantileAllClamped(t *testing.T) {
	// Every observation clamps into an edge bucket; quantiles must still be
	// finite and inside [lo, hi].
	h := NewHistogram(0, 1, 4)
	for i := 0; i < 10; i++ {
		h.Add(100) // all in the top bucket
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("top-clamped Quantile(%v) = %v", q, got)
		}
	}
	g := NewHistogram(0, 1, 4)
	for i := 0; i < 10; i++ {
		g.Add(-100) // all in the bottom bucket
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := g.Quantile(q)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("bottom-clamped Quantile(%v) = %v", q, got)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	var sb strings.Builder
	if err := h.Render(&sb, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "██████████") {
		t.Errorf("max bucket bar wrong: %q", lines[0])
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
