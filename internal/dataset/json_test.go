package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dasc/internal/gen"
	"dasc/internal/model"
)

func roundTrip(t *testing.T, in *model.Instance) *model.Instance {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripExample1(t *testing.T) {
	in := model.Example1()
	out := roundTrip(t, in)
	if out.SkillUniverse != in.SkillUniverse {
		t.Errorf("universe %d != %d", out.SkillUniverse, in.SkillUniverse)
	}
	if len(out.Workers) != len(in.Workers) || len(out.Tasks) != len(in.Tasks) {
		t.Fatal("population mismatch")
	}
	for i := range in.Workers {
		a, b := &in.Workers[i], &out.Workers[i]
		if a.Loc != b.Loc || a.Start != b.Start || a.Wait != b.Wait ||
			a.Velocity != b.Velocity || a.MaxDist != b.MaxDist ||
			!a.Skills.Equal(b.Skills) {
			t.Errorf("worker %d changed: %+v vs %+v", i, a, b)
		}
	}
	for i := range in.Tasks {
		a, b := &in.Tasks[i], &out.Tasks[i]
		if a.Loc != b.Loc || a.Requires != b.Requires || !reflect.DeepEqual(a.Deps, b.Deps) {
			t.Errorf("task %d changed", i)
		}
	}
}

func TestRoundTripGenerated(t *testing.T) {
	in, err := gen.Synthetic(gen.DefaultSynthetic().Scale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	out := roundTrip(t, in)
	if len(out.Tasks) != len(in.Tasks) {
		t.Fatal("task count changed")
	}
	for i := range in.Tasks {
		if !reflect.DeepEqual(in.Tasks[i].Deps, out.Tasks[i].Deps) {
			t.Fatalf("deps of task %d changed", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	in := model.Example1()
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Workers) != 3 || len(out.Tasks) != 5 {
		t.Errorf("loaded %d/%d", len(out.Workers), len(out.Tasks))
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"version": 99, "skill_universe": 1, "workers": [], "tasks": []}`,
		"unknown field": `{"version": 1, "skill_universe": 1, "workers": [], "tasks": [], "extra": 1}`,
		"invalid instance (no skills)": `{"version": 1, "skill_universe": 1,
		  "workers": [{"id":0,"x":0,"y":0,"start":0,"wait":1,"velocity":1,"max_dist":1,"skills":[]}],
		  "tasks": []}`,
		"cyclic deps": `{"version": 1, "skill_universe": 1, "workers": [],
		  "tasks": [
		    {"id":0,"x":0,"y":0,"start":0,"wait":1,"requires":0,"deps":[1]},
		    {"id":1,"x":0,"y":0,"start":0,"wait":1,"requires":0,"deps":[0]}]}`,
	}
	for name, body := range cases {
		if _, err := Read(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadDedupsDuplicateDeps(t *testing.T) {
	// A file listing the same dependency twice loads with the duplicates
	// collapsed (first-occurrence order), rather than failing validation or
	// inflating associative-set weights downstream.
	body := `{"version": 1, "skill_universe": 1, "workers": [],
	  "tasks": [
	    {"id":0,"x":0,"y":0,"start":0,"wait":1,"requires":0},
	    {"id":1,"x":0,"y":0,"start":0,"wait":1,"requires":0},
	    {"id":2,"x":0,"y":0,"start":0,"wait":1,"requires":0,"deps":[1,0,1,0,1]}]}`
	in, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.Tasks[2].Deps, []model.TaskID{1, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("deps = %v, want %v", got, want)
	}
}

func TestWriteAssignment(t *testing.T) {
	a := model.NewAssignment()
	a.Add(1, 2)
	a.Add(0, 0)
	a.Sort()
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, a); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"size": 2`) || !strings.Contains(s, `"worker": 1`) {
		t.Errorf("assignment JSON = %s", s)
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	if err := Save(filepath.Join(os.DevNull, "nope", "x.json"), model.Example1()); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestWriteCompactRoundTripsAndIsSmaller(t *testing.T) {
	in := model.Example1()
	var compact, indented bytes.Buffer
	if err := WriteCompact(&compact, in); err != nil {
		t.Fatal(err)
	}
	if err := Write(&indented, in); err != nil {
		t.Fatal(err)
	}
	if compact.Len() >= indented.Len() {
		t.Errorf("compact form %d bytes >= indented %d", compact.Len(), indented.Len())
	}
	// Single line (plus the encoder's trailing newline): embeddable in JSONL.
	if n := strings.Count(strings.TrimRight(compact.String(), "\n"), "\n"); n != 0 {
		t.Errorf("compact form spans %d extra lines", n+1)
	}
	out, err := Read(&compact)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Workers) != len(in.Workers) || len(out.Tasks) != len(in.Tasks) {
		t.Error("compact round trip lost population")
	}
}
