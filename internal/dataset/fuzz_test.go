package dataset

import (
	"bytes"
	"strings"
	"testing"

	"dasc/internal/model"
)

// FuzzRead checks that arbitrary byte input never panics the decoder and
// that anything it accepts is a valid instance that survives a round trip.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, model.Example1()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version":1,"skill_universe":1,"workers":[],"tasks":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"skill_universe":1,"workers":[],"tasks":[{"id":0,"x":0,"y":0,"start":0,"wait":1,"requires":0,"deps":[0]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must be a valid instance…
		if err := in.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid instance: %v", err)
		}
		// …and must round-trip.
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			t.Fatalf("Write after Read: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Workers) != len(in.Workers) || len(back.Tasks) != len(in.Tasks) {
			t.Fatal("round trip changed population")
		}
	})
}

// FuzzReadAssignmentHeader exercises the version/unknown-field guards with
// structured-ish inputs.
func FuzzReadAssignmentHeader(f *testing.F) {
	f.Add(1, "workers")
	f.Add(0, "tasks")
	f.Add(99, "extra")
	f.Fuzz(func(t *testing.T, version int, field string) {
		if strings.ContainsAny(field, `"\`) {
			return
		}
		body := `{"version":` + itoa(version) + `,"skill_universe":1,"` + field + `":[]}`
		_, _ = Read(strings.NewReader(body)) // must not panic
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
