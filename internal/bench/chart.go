package bench

import (
	"fmt"
	"io"
	"strings"
)

// RenderChart writes the score grid as horizontal ASCII bar charts — the
// terminal rendition of the paper's "(a)" subfigures. One block per point
// per algorithm, bars scaled to the experiment-wide maximum.
func (t *Table) RenderChart(w io.Writer, barWidth int) error {
	if barWidth < 8 {
		barWidth = 48
	}
	e := t.Experiment
	maxScore := 0.0
	for _, row := range t.Rows {
		for _, a := range e.Algorithms {
			if c := row[a.Label]; c.Score > maxScore {
				maxScore = c.Score
			}
		}
	}
	labelWidth := 0
	for _, a := range e.Algorithms {
		if len(a.Label) > labelWidth {
			labelWidth = len(a.Label)
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\nscore by %s (bar = %g at full width)\n\n",
		e.Paper, e.Title, e.Axis, maxScore); err != nil {
		return err
	}
	for i, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s = %s\n", e.Axis, e.Points[i].Label); err != nil {
			return err
		}
		for _, a := range e.Algorithms {
			c := row[a.Label]
			bar := 0
			if maxScore > 0 {
				bar = int(c.Score / maxScore * float64(barWidth))
			}
			if _, err := fmt.Fprintf(w, "  %-*s %7.1f %s\n",
				labelWidth, a.Label, c.Score, strings.Repeat("▇", bar)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
