package bench

import (
	"os"
	"strconv"
	"testing"

	"dasc/internal/core"
	"dasc/internal/model"
)

// gameBenchInstance generates the fig10-max workload the game benchmarks
// run on (5K workers / 8K tasks — largestRegistryInstance's sweep point).
// DASC_GAME_BENCH_SCALE scales it down for smoke runs (scripts/bench.sh
// -quick sets 0.05 so the naive sweep stays in CI budget).
func gameBenchInstance(b *testing.B) *model.Instance {
	b.Helper()
	scale := 1.0
	if s := os.Getenv("DASC_GAME_BENCH_SCALE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > 1 {
			b.Fatalf("bad DASC_GAME_BENCH_SCALE %q", s)
		}
		scale = v
	}
	w := DefaultSyntheticWorkload()
	w.Syn.Tasks = 8000
	in, err := w.Generate(scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// benchmarkGameAssign measures the DASC_Game assign phase alone: the batch
// index is pre-built outside the timer, so the numbers isolate the
// best-response sweep + resolution the worklist engine optimises.
func benchmarkGameAssign(b *testing.B, disableWorklist bool) {
	in := gameBenchInstance(b)
	g := core.NewGame(core.GameOptions{Seed: 1}).
		WithWorklistDisabled(disableWorklist)

	// Differential gate: every bench run first proves the worklist engine
	// bit-exact against the naive sweep on this exact batch, so a speedup
	// number can never come from a diverging engine.
	verify := core.NewStaticBatch(in)
	verify.Index()
	if err := g.VerifyWorklist(verify); err != nil {
		b.Fatal(err)
	}

	// Assign does not mutate the batch, so one pre-indexed batch serves every
	// iteration; the timer sees only the best-response sweep + resolution.
	batch := core.NewStaticBatch(in)
	batch.Index()
	var rounds, evaluated, skipped int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tr := g.AssignTraced(batch)
		rounds = int64(tr.Rounds)
		evaluated, skipped = tr.Evaluated, tr.Skipped
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(evaluated), "evaluated")
	b.ReportMetric(float64(skipped), "skipped")
}

// BenchmarkGameAssignWorklist is the default engine: incremental dirty-worker
// sweep over the pooled CSR game state.
func BenchmarkGameAssignWorklist(b *testing.B) { benchmarkGameAssign(b, false) }

// BenchmarkGameAssignNaive is Algorithm 3's full sweep — every worker's whole
// strategy set re-evaluated every round (GameOptions.DisableWorklist).
func BenchmarkGameAssignNaive(b *testing.B) { benchmarkGameAssign(b, true) }
