package bench

import (
	"testing"

	"dasc/internal/core"
	"dasc/internal/model"
)

// largestRegistryInstance generates fig10's maximum sweep point — the
// heaviest workload in the registry (5K workers / 8K tasks, Table V bold
// defaults otherwise). The candidate-engine benchmarks below measure strategy
// set + candidate list construction on this batch, indexed vs brute force:
//
//	go test ./internal/bench -bench BenchmarkBatchCandidates -benchtime 3x
func largestRegistryInstance(b *testing.B) *model.Instance {
	b.Helper()
	w := DefaultSyntheticWorkload()
	w.Syn.Tasks = 8000
	in, err := w.Generate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkBatchCandidatesIndexed builds the BatchIndex: strategy sets,
// per-task candidate lists, and the travel-time memo in one pruned pass.
func BenchmarkBatchCandidatesIndexed(b *testing.B) {
	in := largestRegistryInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		batch := core.NewStaticBatch(in)
		pairs = batch.Index().FeasiblePairs()
	}
	b.ReportMetric(float64(pairs), "feasible_pairs")
}

// BenchmarkBatchCandidatesScanStrategy is the brute-force baseline for the
// worker side alone: every worker × every task feasibility scan.
func BenchmarkBatchCandidatesScanStrategy(b *testing.B) {
	in := largestRegistryInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := core.NewStaticBatch(in)
		batch.ScanStrategySets()
	}
}

// BenchmarkBatchCandidatesScanFull is what allocators actually consumed
// before the index: the strategy-set scan plus a per-task candidate scan —
// two full O(n·m) passes per batch.
func BenchmarkBatchCandidatesScanFull(b *testing.B) {
	in := largestRegistryInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := core.NewStaticBatch(in)
		batch.ScanStrategySets()
		for _, t := range batch.Tasks {
			batch.ScanCandidateWorkers(t)
		}
	}
}

// TestBatchCandidatesBenchmarkAgree pins the benchmark pair to the same
// answer, so the speedup numbers always compare equal work.
func TestBatchCandidatesBenchmarkAgree(t *testing.T) {
	w := DefaultSyntheticWorkload()
	in, err := w.Generate(0.02, 1) // 100×100: cheap but non-trivial
	if err != nil {
		t.Fatal(err)
	}
	batch := core.NewStaticBatch(in)
	indexed := batch.StrategySets()
	scanned := batch.ScanStrategySets()
	for wi := range indexed {
		if len(indexed[wi]) != len(scanned[wi]) {
			t.Fatalf("worker %d: index %v != scan %v", wi, indexed[wi], scanned[wi])
		}
		for k := range indexed[wi] {
			if indexed[wi][k] != scanned[wi][k] {
				t.Fatalf("worker %d: index %v != scan %v", wi, indexed[wi], scanned[wi])
			}
		}
	}
}
