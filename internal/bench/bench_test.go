package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dasc/internal/core"
)

func TestRegistryCoversEveryPaperExhibit(t *testing.T) {
	want := []string{
		"fig2", "table6",
		"fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15",
		"ablation-alpha", "ablation-matcher", "ablation-batch", "ablation-spatial",
		"ablation-augment", "ablation-weighted", "ablation-online", "ablation-skills",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		e, ok := reg[id]
		if !ok {
			t.Errorf("missing experiment %q", id)
			continue
		}
		if e.ID != id {
			t.Errorf("experiment %q has ID %q", id, e.ID)
		}
		if len(e.Points) == 0 || len(e.Algorithms) == 0 {
			t.Errorf("experiment %q has no points or algorithms", id)
		}
		if e.Paper == "" || e.Title == "" || e.Axis == "" {
			t.Errorf("experiment %q lacks documentation fields", id)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig3"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	ids := IDs()
	if len(ids) == 0 || !strings.HasPrefix(ids[0], "ablation") {
		t.Errorf("IDs order unexpected: %v", ids)
	}
}

func TestPaperSweepsHaveFivePoints(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"} {
		e, _ := Lookup(id)
		if len(e.Points) != 5 {
			t.Errorf("%s has %d points, want 5 (as in the paper)", id, len(e.Points))
		}
		if len(e.Algorithms) != 6 {
			t.Errorf("%s has %d algorithms, want the paper's 6", id, len(e.Algorithms))
		}
	}
}

func TestTable6IncludesDFS(t *testing.T) {
	e, _ := Lookup("table6")
	if e.Algorithms[0].Label != core.NameDFS {
		t.Errorf("table6 first algorithm = %q, want DFS", e.Algorithms[0].Label)
	}
	if len(e.Algorithms) != 7 {
		t.Errorf("table6 has %d algorithms, want 7 (Table VI rows)", len(e.Algorithms))
	}
	if !e.Base.StaticBatch {
		t.Error("table6 must run the static single-batch setting")
	}
}

func TestRunTinySweep(t *testing.T) {
	e, _ := Lookup("fig6") // real-data waiting-time sweep, cheap at tiny scale
	var lines []string
	tbl, err := e.Run(RunOptions{
		Scale: 0.04, Seed: 3,
		Progress: func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(e.Points) {
		t.Fatalf("rows %d != points %d", len(tbl.Rows), len(e.Points))
	}
	if len(lines) != len(e.Points)*len(e.Algorithms) {
		t.Errorf("progress lines %d, want %d", len(lines), len(e.Points)*len(e.Algorithms))
	}
	for i, row := range tbl.Rows {
		for _, a := range e.Algorithms {
			c, ok := row[a.Label]
			if !ok {
				t.Fatalf("row %d missing %q", i, a.Label)
			}
			if c.Score < 0 || c.TimeMS < 0 {
				t.Fatalf("negative cell %+v", c)
			}
		}
	}
	// Scores should (weakly) increase as waiting time grows for the
	// dependency-aware approaches: compare first vs last point.
	greedy := tbl.Column(core.NameGreedy)
	if greedy[len(greedy)-1] < greedy[0] {
		t.Logf("note: greedy did not increase over waiting-time sweep at tiny scale: %v", greedy)
	}
}

func TestRunTable6TinyAndDFSDominates(t *testing.T) {
	e, _ := Lookup("table6")
	// Shrink further for test speed: 8 workers / 16 tasks.
	e.Base.Syn.Workers = 8
	e.Base.Syn.Tasks = 16
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	opt := row[core.NameDFS].Score
	for _, a := range e.Algorithms {
		if row[a.Label].Score > opt+1e-9 {
			t.Errorf("%s score %.1f exceeds DFS optimum %.1f", a.Label, row[a.Label].Score, opt)
		}
	}
	// Theorem III.2's per-batch bound for the greedy.
	if g := row[core.NameGreedy].Score; g < (1-1/2.718281828)*opt-1e-9 {
		t.Errorf("greedy %.1f below (1−1/e)·%.1f", g, opt)
	}
}

func TestRenderMarkdownAndCSV(t *testing.T) {
	e, _ := Lookup("table6")
	e.Base.Syn.Workers = 5
	e.Base.Syn.Tasks = 8
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	if err := tbl.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"Table VI", "Assignment score", "Running time", "| DFS |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 1+len(e.Algorithms) {
		t.Errorf("csv lines = %d, want %d", lines, 1+len(e.Algorithms))
	}
}

func TestRunRepeatsAveraging(t *testing.T) {
	e, _ := Lookup("table6")
	e.Base.Syn.Workers = 5
	e.Base.Syn.Tasks = 8
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 2, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Options.Repeats != 3 {
		t.Errorf("Repeats = %d", tbl.Options.Repeats)
	}
}

func TestWorkloadGenerateUnknownKind(t *testing.T) {
	w := Workload{Kind: WorkloadKind(9)}
	if _, err := w.Generate(1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	e, _ := Lookup("fig6")
	seq, err := e.Run(RunOptions{Scale: 0.04, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(RunOptions{Scale: 0.04, Seed: 3, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Rows {
		for _, a := range e.Algorithms {
			if seq.Rows[i][a.Label].Score != par.Rows[i][a.Label].Score {
				t.Fatalf("point %d %s: sequential %v != parallel %v",
					i, a.Label, seq.Rows[i][a.Label].Score, par.Rows[i][a.Label].Score)
			}
		}
	}
}

func TestRenderChart(t *testing.T) {
	e, _ := Lookup("table6")
	e.Base.Syn.Workers = 10
	e.Base.Syn.Tasks = 16
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.RenderChart(&buf, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table VI") || !strings.Contains(out, "DFS") {
		t.Errorf("chart missing labels:\n%s", out)
	}
	if !strings.Contains(out, "▇") {
		t.Errorf("chart has no bars:\n%s", out)
	}
}

func TestDirectionHolds(t *testing.T) {
	cases := []struct {
		series []float64
		trend  Trend
		want   bool
	}{
		{[]float64{1, 2, 3}, TrendUp, true},
		{[]float64{3, 2, 1}, TrendUp, false},
		{[]float64{3, 2, 1}, TrendDown, true},
		{[]float64{1, 2, 3}, TrendDown, false},
		{[]float64{1, 3, 3}, TrendUpThenFlat, true},
		{[]float64{10, 9.5, 9.2}, TrendDown, true},
		{[]float64{10, 10.5}, TrendDown, true}, // within 15% slack... no: 10.5 <= 10*1.15 → true
		{[]float64{10, 13}, TrendDown, false},
		{[]float64{5}, TrendUp, true}, // single point: vacuous
		{[]float64{1, 2}, TrendNone, true},
	}
	for i, c := range cases {
		if got := directionHolds(c.series, c.trend, 0.15); got != c.want {
			t.Errorf("case %d: directionHolds(%v, %v) = %v", i, c.series, c.trend, got)
		}
	}
}

func TestPaperTrendsCoverSweepFigures(t *testing.T) {
	specs := PaperTrends()
	if len(specs) != 13 {
		t.Fatalf("PaperTrends = %d, want the 13 sweep figures", len(specs))
	}
	for _, s := range specs {
		if _, err := Lookup(s.Experiment); err != nil {
			t.Errorf("%s: %v", s.Experiment, err)
		}
	}
}

func TestVerifyTrendTiny(t *testing.T) {
	// fig6 at tiny real scale: waiting time up → score up is the most robust
	// claim; verify the machinery end to end.
	r := VerifyTrend(TrendSpec{Experiment: "fig6", Score: TrendUp, ApproachesDominate: true},
		RunOptions{Scale: 0.15, Seed: 1}, 0.2)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.OK() {
		t.Errorf("fig6 trend failed: %+v", r)
	}
	if got := VerifyTrend(TrendSpec{Experiment: "nope"}, RunOptions{Scale: 0.1}, 0.2); got.Err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRenderJSON(t *testing.T) {
	e, _ := Lookup("table6")
	e.Base.Syn.Workers = 5
	e.Base.Syn.Tasks = 8
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["experiment"] != "table6" {
		t.Errorf("experiment = %v", doc["experiment"])
	}
	cells := doc["cells"].([]any)
	if len(cells) != len(e.Algorithms) {
		t.Errorf("cells = %d", len(cells))
	}
}

func TestVerifyAllTiny(t *testing.T) {
	// A generous-slack tiny-scale verification exercises the full reporting
	// path; direction checks may individually fail at this scale, which is
	// fine — we assert the mechanics, not the science, here.
	var buf bytes.Buffer
	failed, err := VerifyAll(&buf, RunOptions{Scale: 0.04, Seed: 1, Parallel: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(PaperTrends()) {
		t.Errorf("report lines = %d, want %d", lines, len(PaperTrends()))
	}
	t.Logf("tiny-scale verify: %d failed (allowed)", failed)
}

func TestTimeColumn(t *testing.T) {
	e, _ := Lookup("table6")
	e.Base.Syn.Workers = 5
	e.Base.Syn.Tasks = 8
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.TimeColumn("Greedy"); len(got) != 1 || got[0] < 0 {
		t.Errorf("TimeColumn = %v", got)
	}
	if got := tbl.Column("Greedy"); len(got) != 1 {
		t.Errorf("Column = %v", got)
	}
}

func TestRenderHTML(t *testing.T) {
	e, _ := Lookup("table6")
	e.Base.Syn.Workers = 10
	e.Base.Syn.Tasks = 16
	tbl, err := e.Run(RunOptions{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTMLHeader(&buf, "report"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.RenderHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTMLFooter(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "Table VI", "Assignment score", "</html>"} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// One bar per (point, algorithm).
	if got := strings.Count(out, "<rect"); got != len(e.Algorithms) {
		t.Errorf("bars = %d, want %d", got, len(e.Algorithms))
	}
}
