package bench

import (
	"fmt"
	"sort"

	"dasc/internal/core"
	"dasc/internal/gen"
)

// Registry returns every experiment of the paper's evaluation, keyed by ID.
// fig2/table6 are the Section V-B/V-C setup studies; fig3–fig6 the real-data
// sweeps; fig7–fig11 the synthetic sweeps; fig12–fig15 the technical-report
// appendix sweeps; the ablation-* entries probe this implementation's own
// design choices (DESIGN.md §6).
func Registry() map[string]*Experiment {
	exps := []*Experiment{
		fig2(), table6(),
		fig3(), fig4(), fig5(), fig6(),
		fig7(), fig8(), fig9(), fig10(), fig11(),
		fig12(), fig13(), fig14(), fig15(),
		ablationAlpha(), ablationMatcher(), ablationBatchInterval(),
		ablationSpatial(), ablationAugment(), ablationWeighted(),
		ablationOnline(), ablationSkillDist(),
	}
	m := make(map[string]*Experiment, len(exps))
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

// IDs returns the registry keys in a stable order.
func IDs() []string {
	m := Registry()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Lookup fetches one experiment by ID.
func Lookup(id string) (*Experiment, error) {
	if e, ok := Registry()[id]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, IDs())
}

// rangePoints builds sweep points over [lo,hi] ranges.
func rangePoints(ranges []gen.Range, apply func(*Workload, gen.Range)) []Point {
	pts := make([]Point, len(ranges))
	for i, r := range ranges {
		r := r
		pts[i] = Point{
			Label: r.String(),
			Apply: func(w *Workload) { apply(w, r) },
		}
	}
	return pts
}

// intPoints builds sweep points over integer population values.
func intPoints(values []int, format string, apply func(*Workload, int)) []Point {
	pts := make([]Point, len(values))
	for i, v := range values {
		v := v
		pts[i] = Point{
			Label: fmt.Sprintf(format, v),
			Apply: func(w *Workload) { apply(w, v) },
		}
	}
	return pts
}

// --- Setup studies -----------------------------------------------------

func fig2() *Experiment {
	thresholds := []float64{0, 0.01, 0.025, 0.05, 0.075, 0.10}
	var algs []AllocatorSpec
	for _, th := range thresholds {
		th := th
		algs = append(algs, AllocatorSpec{
			Label: fmt.Sprintf("Game-%.1f%%", th*100),
			Make: func(seed int64) core.Allocator {
				return core.NewGame(core.GameOptions{Seed: seed, Threshold: th})
			},
		})
	}
	return &Experiment{
		ID:    "fig2",
		Paper: "Figure 2(a,b)",
		Title: "Effect of the Game termination threshold (real data)",
		Axis:  "threshold θ of the strategy-update ratio",
		Base:  DefaultMeetupWorkload(),
		Points: []Point{{
			Label: "default", Apply: func(w *Workload) {},
		}},
		Algorithms: algs,
		FullScale:  "3,525 workers / 1,282 tasks",
	}
}

func table6() *Experiment {
	algs := []AllocatorSpec{{
		Label: core.NameDFS,
		Make: func(seed int64) core.Allocator {
			return core.NewDFS(core.DFSOptions{})
		},
	}}
	algs = append(algs, paperAllocators()...)
	w := Workload{Kind: Synthetic, Syn: gen.SmallScale(), StaticBatch: true}
	return &Experiment{
		ID:    "table6",
		Paper: "Table VI",
		Title: "Small-scale comparison against the exact DFS optimum",
		Axis:  "single configuration: 20 workers, 40 tasks, r=10, WS∈[1,3], |D|∈[0,8]",
		Base:  w,
		Points: []Point{{
			Label: "small-scale", Apply: func(w *Workload) {},
		}},
		Algorithms: algs,
		FullScale:  "20 workers / 40 tasks",
	}
}

// --- Real-data (Meetup-substitute) sweeps, Figures 3–6 ------------------

func fig3() *Experiment {
	return &Experiment{
		ID:    "fig3",
		Paper: "Figure 3(a,b)",
		Title: "Effect of the maximum moving distance range (real data)",
		Axis:  "[d−, d+]",
		Base:  DefaultMeetupWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0.02, 0.025), gen.R(0.025, 0.03), gen.R(0.03, 0.035),
			gen.R(0.035, 0.04), gen.R(0.04, 0.045),
		}, func(w *Workload, r gen.Range) { w.Meet.MaxDist = r }),
		Algorithms: paperAllocators(),
		FullScale:  "3,525 workers / 1,282 tasks",
	}
}

func fig4() *Experiment {
	return &Experiment{
		ID:    "fig4",
		Paper: "Figure 4(a,b)",
		Title: "Effect of the velocity range (real data)",
		Axis:  "[v−, v+]",
		Base:  DefaultMeetupWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0.001, 0.005), gen.R(0.005, 0.01), gen.R(0.01, 0.015),
			gen.R(0.015, 0.02), gen.R(0.02, 0.025),
		}, func(w *Workload, r gen.Range) { w.Meet.Velocity = r }),
		Algorithms: paperAllocators(),
		FullScale:  "3,525 workers / 1,282 tasks",
	}
}

func fig5() *Experiment {
	return &Experiment{
		ID:    "fig5",
		Paper: "Figure 5(a,b)",
		Title: "Effect of the start timestamp range (real data)",
		Axis:  "[st−, st+]",
		Base:  DefaultMeetupWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0, 150), gen.R(0, 175), gen.R(0, 200), gen.R(0, 225), gen.R(0, 250),
		}, func(w *Workload, r gen.Range) { w.Meet.StartTime = r }),
		Algorithms: paperAllocators(),
		FullScale:  "3,525 workers / 1,282 tasks",
	}
}

func fig6() *Experiment {
	return &Experiment{
		ID:    "fig6",
		Paper: "Figure 6(a,b)",
		Title: "Effect of the waiting time range (real data)",
		Axis:  "[wt−, wt+]",
		Base:  DefaultMeetupWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(1, 3), gen.R(2, 4), gen.R(3, 5), gen.R(4, 6), gen.R(5, 7),
		}, func(w *Workload, r gen.Range) { w.Meet.WaitTime = r }),
		Algorithms: paperAllocators(),
		FullScale:  "3,525 workers / 1,282 tasks",
	}
}

// --- Synthetic sweeps, Figures 7–11 -------------------------------------

func fig7() *Experiment {
	return &Experiment{
		ID:    "fig7",
		Paper: "Figure 7(a,b)",
		Title: "Effect of the dependency-set size range (synthetic)",
		Axis:  "|D| range",
		Base:  DefaultSyntheticWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0, 50), gen.R(0, 60), gen.R(0, 70), gen.R(0, 80), gen.R(0, 90),
		}, func(w *Workload, r gen.Range) { w.Syn.DepSize = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func fig8() *Experiment {
	return &Experiment{
		ID:    "fig8",
		Paper: "Figure 8(a,b)",
		Title: "Effect of the skill-universe size (synthetic)",
		Axis:  "r",
		Base:  DefaultSyntheticWorkload(),
		Points: intPoints([]int{1100, 1300, 1500, 1700, 1900}, "%d",
			func(w *Workload, v int) { w.Syn.SkillUniverse = v }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func fig9() *Experiment {
	return &Experiment{
		ID:    "fig9",
		Paper: "Figure 9(a,b)",
		Title: "Effect of the worker skill-set size range (synthetic)",
		Axis:  "[sp−, sp+]",
		Base:  DefaultSyntheticWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(1, 5), gen.R(1, 10), gen.R(1, 15), gen.R(1, 20), gen.R(1, 25),
		}, func(w *Workload, r gen.Range) { w.Syn.WorkerSkills = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func fig10() *Experiment {
	return &Experiment{
		ID:    "fig10",
		Paper: "Figure 10(a,b)",
		Title: "Effect of the number of tasks (synthetic)",
		Axis:  "m",
		Base:  DefaultSyntheticWorkload(),
		Points: intPoints([]int{2000, 3500, 5000, 6500, 8000}, "%d",
			func(w *Workload, v int) { w.Syn.Tasks = v }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / m tasks",
	}
}

func fig11() *Experiment {
	return &Experiment{
		ID:    "fig11",
		Paper: "Figure 11(a,b)",
		Title: "Effect of the number of workers (synthetic)",
		Axis:  "n",
		Base:  DefaultSyntheticWorkload(),
		Points: intPoints([]int{3000, 4000, 5000, 6000, 7000}, "%d",
			func(w *Workload, v int) { w.Syn.Workers = v }),
		Algorithms: paperAllocators(),
		FullScale:  "n workers / 5K tasks",
	}
}

// --- Appendix sweeps, Figures 12–15 --------------------------------------

func fig12() *Experiment {
	return &Experiment{
		ID:    "fig12",
		Paper: "Figure 12(a,b) (appendix)",
		Title: "Effect of the maximum moving distance range (synthetic)",
		Axis:  "[d−, d+]",
		Base:  DefaultSyntheticWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0.1, 0.2), gen.R(0.2, 0.3), gen.R(0.3, 0.4),
			gen.R(0.4, 0.5), gen.R(0.5, 0.6),
		}, func(w *Workload, r gen.Range) { w.Syn.MaxDist = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func fig13() *Experiment {
	return &Experiment{
		ID:    "fig13",
		Paper: "Figure 13(a,b) (appendix)",
		Title: "Effect of the velocity range (synthetic)",
		Axis:  "[v−, v+]",
		Base:  DefaultSyntheticWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0.01, 0.02), gen.R(0.02, 0.03), gen.R(0.03, 0.04),
			gen.R(0.04, 0.05), gen.R(0.05, 0.06),
		}, func(w *Workload, r gen.Range) { w.Syn.Velocity = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func fig14() *Experiment {
	return &Experiment{
		ID:    "fig14",
		Paper: "Figure 14(a,b) (appendix)",
		Title: "Effect of the start timestamp range (synthetic)",
		Axis:  "[st−, st+]",
		Base:  DefaultSyntheticWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(0, 65), gen.R(0, 70), gen.R(0, 75), gen.R(0, 80), gen.R(0, 85),
		}, func(w *Workload, r gen.Range) { w.Syn.StartTime = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func fig15() *Experiment {
	return &Experiment{
		ID:    "fig15",
		Paper: "Figure 15(a,b) (appendix)",
		Title: "Effect of the waiting time range (synthetic)",
		Axis:  "[wt−, wt+]",
		Base:  DefaultSyntheticWorkload(),
		Points: rangePoints([]gen.Range{
			gen.R(8, 13), gen.R(9, 14), gen.R(10, 15), gen.R(11, 16), gen.R(12, 17),
		}, func(w *Workload, r gen.Range) { w.Syn.WaitTime = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

// --- Ablations of this implementation's design choices -------------------

func ablationAlpha() *Experiment {
	var algs []AllocatorSpec
	for _, alpha := range []float64{2, 5, 10, 50, 200} {
		alpha := alpha
		algs = append(algs, AllocatorSpec{
			Label: fmt.Sprintf("Game α=%g", alpha),
			Make: func(seed int64) core.Allocator {
				return core.NewGame(core.GameOptions{Seed: seed, Alpha: alpha})
			},
		})
	}
	return &Experiment{
		ID:    "ablation-alpha",
		Paper: "— (implementation ablation)",
		Title: "Sensitivity of DASC_Game to the normalisation parameter α",
		Axis:  "α",
		Base:  DefaultSyntheticWorkload(),
		Points: []Point{{
			Label: "default", Apply: func(w *Workload) {},
		}},
		Algorithms: algs,
		FullScale:  "5K workers / 5K tasks",
	}
}

func ablationMatcher() *Experiment {
	algs := []AllocatorSpec{
		{Label: "Greedy/Hungarian", Make: func(seed int64) core.Allocator {
			return core.NewGreedyOpt(core.GreedyOptions{Matcher: core.MatchHungarian})
		}},
		{Label: "Greedy/HK-only", Make: func(seed int64) core.Allocator {
			return core.NewGreedyOpt(core.GreedyOptions{Matcher: core.MatchFeasible})
		}},
		{Label: "Greedy/Auction", Make: func(seed int64) core.Allocator {
			return core.NewGreedyOpt(core.GreedyOptions{Matcher: core.MatchAuction})
		}},
	}
	return &Experiment{
		ID:    "ablation-matcher",
		Paper: "— (implementation ablation)",
		Title: "Hungarian min-travel staffing vs plain feasibility matching in DASC_Greedy",
		Axis:  "matcher kind",
		Base:  DefaultSyntheticWorkload(),
		Points: []Point{{
			Label: "default", Apply: func(w *Workload) {},
		}},
		Algorithms: algs,
		FullScale:  "5K workers / 5K tasks",
	}
}

func ablationSpatial() *Experiment {
	return &Experiment{
		ID:    "ablation-spatial",
		Paper: "— (implementation ablation)",
		Title: "Uniform locations (the paper's setting) vs clustered hotspots",
		Axis:  "#hotspots (0 = uniform)",
		Base:  DefaultSyntheticWorkload(),
		Points: intPoints([]int{0, 2, 4, 8, 16}, "%d",
			func(w *Workload, v int) { w.Syn.Hotspots = v }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func ablationAugment() *Experiment {
	algs := []AllocatorSpec{
		{Label: "Greedy", Make: func(seed int64) core.Allocator { return core.NewGreedy() }},
		{Label: "Greedy+aug", Make: func(seed int64) core.Allocator { return core.NewImproved(core.NewGreedy()) }},
		{Label: "Game-5%", Make: func(seed int64) core.Allocator {
			return core.NewGame(core.GameOptions{Seed: seed, Threshold: 0.05})
		}},
		{Label: "Game-5%+aug", Make: func(seed int64) core.Allocator {
			return core.NewImproved(core.NewGame(core.GameOptions{Seed: seed, Threshold: 0.05}))
		}},
		{Label: "Random+aug", Make: func(seed int64) core.Allocator {
			return core.NewImproved(core.NewRandom(seed))
		}},
	}
	return &Experiment{
		ID:    "ablation-augment",
		Paper: "— (implementation extension)",
		Title: "Matching-augmentation post-pass on top of the paper's allocators",
		Axis:  "allocator (+aug = Improve post-pass)",
		Base:  DefaultSyntheticWorkload(),
		Points: []Point{{
			Label: "default", Apply: func(w *Workload) {},
		}},
		Algorithms: algs,
		FullScale:  "5K workers / 5K tasks",
	}
}

func ablationWeighted() *Experiment {
	base := DefaultSyntheticWorkload()
	base.WeightedScore = true
	return &Experiment{
		ID:    "ablation-weighted",
		Paper: "— (implementation extension)",
		Title: "Weighted objective Σ w_t·I(w,t) (unit weights = the paper's Equation 1)",
		Axis:  "task weight range",
		Base:  base,
		Points: rangePoints([]gen.Range{
			gen.R(1, 1), gen.R(1, 3), gen.R(1, 5), gen.R(1, 9),
		}, func(w *Workload, r gen.Range) { w.Syn.TaskWeight = r }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func ablationSkillDist() *Experiment {
	return &Experiment{
		ID:    "ablation-skills",
		Paper: "— (implementation ablation)",
		Title: "Uniform skill popularity (the paper's setting) vs Zipf-distributed tags",
		Axis:  "skill distribution",
		Base:  DefaultSyntheticWorkload(),
		Points: []Point{
			{Label: "uniform", Apply: func(w *Workload) {}},
			{Label: "zipf s=1.2", Apply: func(w *Workload) { w.Syn.ZipfSkills = 1.2 }},
			{Label: "zipf s=1.5", Apply: func(w *Workload) { w.Syn.ZipfSkills = 1.5 }},
			{Label: "zipf s=2.0", Apply: func(w *Workload) { w.Syn.ZipfSkills = 2.0 }},
		},
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}

func ablationOnline() *Experiment {
	return &Experiment{
		ID:    "ablation-online",
		Paper: "— (implementation extension)",
		Title: "Batch allocation (the paper's regime) vs per-arrival online matching",
		Axis:  "regime",
		Base:  DefaultSyntheticWorkload(),
		Points: []Point{
			{Label: "batch Δ=1", Apply: func(w *Workload) { w.BatchInterval = 1 }},
			{Label: "batch Δ=5", Apply: func(w *Workload) { w.BatchInterval = 5 }},
			{Label: "online", Apply: func(w *Workload) { w.Online = true }},
		},
		Algorithms: []AllocatorSpec{
			{Label: "Greedy", Make: func(seed int64) core.Allocator { return core.NewGreedy() }},
			{Label: "G-G", Make: func(seed int64) core.Allocator {
				return core.NewGame(core.GameOptions{Seed: seed, GreedyInit: true})
			}},
		},
		FullScale: "5K workers / 5K tasks",
	}
}

func ablationBatchInterval() *Experiment {
	return &Experiment{
		ID:    "ablation-batch",
		Paper: "— (implementation ablation)",
		Title: "Sensitivity to the platform batch interval",
		Axis:  "batch interval",
		Base:  DefaultSyntheticWorkload(),
		Points: intPoints([]int{1, 2, 5, 10, 20}, "Δ=%d",
			func(w *Workload, v int) { w.BatchInterval = float64(v) }),
		Algorithms: paperAllocators(),
		FullScale:  "5K workers / 5K tasks",
	}
}
