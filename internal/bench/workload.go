// Package bench is the experiment harness: it holds a registry with one
// entry per table and figure of the paper's evaluation (Section V plus the
// technical-report appendix), regenerates each one as a parameter sweep over
// the six approaches, and renders score/time tables mirroring the paper's
// (a)/(b) subfigures.
package bench

import (
	"fmt"
	"time"

	"dasc/internal/core"
	"dasc/internal/gen"
	"dasc/internal/model"
	"dasc/internal/sim"
)

// WorkloadKind selects the dataset family.
type WorkloadKind int

const (
	// Synthetic is the Table V generator.
	Synthetic WorkloadKind = iota
	// Meetup is the Table IV real-data substitute.
	Meetup
)

// Workload is a fully specified dataset configuration plus the platform
// parameters under which it is executed.
type Workload struct {
	Kind WorkloadKind
	Syn  gen.SyntheticConfig
	Meet gen.MeetupConfig
	// BatchInterval for the platform loop; zero = 5.
	BatchInterval float64
	// StaticBatch runs the allocator once over the whole instance instead
	// of simulating batches — the paper's small-scale Table VI setting.
	StaticBatch bool
	// WeightedScore reports the weighted objective Σ w_t instead of the
	// pair count — the weighted-extension experiments use it.
	WeightedScore bool
	// Online replaces the batch loop with the per-arrival online regime
	// (sim.RunOnline); the allocator is ignored there — the online rule is
	// fixed — but its wall time still measures the run.
	Online bool
}

// DefaultSyntheticWorkload wraps Table V's bold defaults.
func DefaultSyntheticWorkload() Workload {
	return Workload{Kind: Synthetic, Syn: gen.DefaultSynthetic()}
}

// DefaultMeetupWorkload wraps Table IV's bold defaults. The batch interval
// is 1 time unit: Table IV's waiting times are only 3–5 units, so the
// paper's example interval of 5 would let most workers expire between
// batches.
func DefaultMeetupWorkload() Workload {
	return Workload{Kind: Meetup, Meet: gen.DefaultMeetup(), BatchInterval: 1}
}

// Generate materialises the workload's instance at the given scale and seed.
func (w Workload) Generate(scale float64, seed int64) (*model.Instance, error) {
	switch w.Kind {
	case Synthetic:
		c := w.Syn.Scale(scale)
		c.Seed = seed
		return gen.Synthetic(c)
	case Meetup:
		c := w.Meet.Scale(scale)
		c.Seed = seed
		return gen.Meetup(c)
	default:
		return nil, fmt.Errorf("bench: unknown workload kind %d", w.Kind)
	}
}

// timedAllocator wraps an allocator and accumulates the wall-clock time
// spent inside Assign — the paper's "running time" measures the algorithm,
// not the surrounding simulation bookkeeping.
type timedAllocator struct {
	inner   core.Allocator
	elapsed time.Duration
}

func (t *timedAllocator) Name() string { return t.inner.Name() }

func (t *timedAllocator) Assign(b *core.Batch) *model.Assignment {
	start := time.Now()
	a := t.inner.Assign(b)
	t.elapsed += time.Since(start)
	return a
}

// Execute runs one allocator over the workload's instance and returns the
// total score (pair count, or Σ w_t with WeightedScore) and the
// allocator-only wall time in milliseconds.
func (w Workload) Execute(in *model.Instance, alloc core.Allocator) (score float64, timeMS float64, err error) {
	ta := &timedAllocator{inner: alloc}
	if w.StaticBatch {
		b := core.NewStaticBatch(in)
		a := ta.Assign(b)
		// Baselines return raw assignments; only the dependency-consistent
		// subset scores (the paper's "valid worker-and-task pairs").
		valid := core.DependencyFixpoint(b, a)
		score = float64(valid.Size())
		if w.WeightedScore {
			score = valid.WeightSum(in)
		}
		return score, float64(ta.elapsed) / float64(time.Millisecond), nil
	}
	var res *sim.Result
	if w.Online {
		start := time.Now()
		res, err = sim.RunOnline(in, sim.Config{Allocator: ta.inner})
		ta.elapsed += time.Since(start)
	} else {
		var p *sim.Platform
		p, err = sim.New(in, sim.Config{
			Allocator:     ta,
			BatchInterval: w.BatchInterval,
		})
		if err != nil {
			return 0, 0, err
		}
		res, err = p.Run()
	}
	if err != nil {
		return 0, 0, err
	}
	score = float64(res.AssignedPairs)
	if w.WeightedScore {
		score = res.AssignedWeight
	}
	return score, float64(ta.elapsed) / float64(time.Millisecond), nil
}
