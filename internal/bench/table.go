package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes the result grid as two GitHub-flavoured markdown
// tables — assignment score and running time — mirroring the paper's (a)/(b)
// subfigure pairs.
func (t *Table) RenderMarkdown(w io.Writer) error {
	e := t.Experiment
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", e.Paper, e.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "Axis: %s. Paper scale: %s. Run at scale %.2f, seed %d, repeats %d.\n\n",
		e.Axis, e.FullScale, t.Options.Scale, t.Options.Seed, max(1, t.Options.Repeats))

	labels := make([]string, len(e.Algorithms))
	for i, a := range e.Algorithms {
		labels[i] = a.Label
	}

	write := func(title string, cell func(Cell) string) {
		fmt.Fprintf(w, "### %s\n\n", title)
		fmt.Fprintf(w, "| %s | %s |\n", e.Axis, strings.Join(labels, " | "))
		fmt.Fprintf(w, "|%s\n", strings.Repeat("---|", len(labels)+1))
		for i, row := range t.Rows {
			cells := make([]string, len(labels))
			for j, lab := range labels {
				cells[j] = cell(row[lab])
			}
			fmt.Fprintf(w, "| %s | %s |\n", e.Points[i].Label, strings.Join(cells, " | "))
		}
		fmt.Fprintln(w)
	}
	write("Assignment score (valid worker-and-task pairs)",
		func(c Cell) string { return fmt.Sprintf("%.1f", c.Score) })
	write("Running time (ms)",
		func(c Cell) string { return fmt.Sprintf("%.2f", c.TimeMS) })
	return nil
}

// RenderCSV writes the grid as long-form CSV:
// experiment,point,algorithm,score,time_ms.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,point,algorithm,score,time_ms"); err != nil {
		return err
	}
	for i, row := range t.Rows {
		for _, a := range t.Experiment.Algorithms {
			c := row[a.Label]
			if _, err := fmt.Fprintf(w, "%s,%q,%q,%.3f,%.4f\n",
				t.Experiment.ID, t.Experiment.Points[i].Label, a.Label, c.Score, c.TimeMS); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderJSON writes the grid as a single JSON document for programmatic
// consumers.
func (t *Table) RenderJSON(w io.Writer) error {
	type cellDTO struct {
		Point     string  `json:"point"`
		Algorithm string  `json:"algorithm"`
		Score     float64 `json:"score"`
		TimeMS    float64 `json:"time_ms"`
	}
	doc := struct {
		Experiment string    `json:"experiment"`
		Paper      string    `json:"paper"`
		Title      string    `json:"title"`
		Axis       string    `json:"axis"`
		Scale      float64   `json:"scale"`
		Seed       int64     `json:"seed"`
		Repeats    int       `json:"repeats"`
		Cells      []cellDTO `json:"cells"`
	}{
		Experiment: t.Experiment.ID,
		Paper:      t.Experiment.Paper,
		Title:      t.Experiment.Title,
		Axis:       t.Experiment.Axis,
		Scale:      t.Options.Scale,
		Seed:       t.Options.Seed,
		Repeats:    max(1, t.Options.Repeats),
	}
	for i, row := range t.Rows {
		for _, a := range t.Experiment.Algorithms {
			c := row[a.Label]
			doc.Cells = append(doc.Cells, cellDTO{
				Point: t.Experiment.Points[i].Label, Algorithm: a.Label,
				Score: c.Score, TimeMS: c.TimeMS,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Column extracts one algorithm's score series across the sweep.
func (t *Table) Column(label string) []float64 {
	out := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = row[label].Score
	}
	return out
}

// TimeColumn extracts one algorithm's time series across the sweep.
func (t *Table) TimeColumn(label string) []float64 {
	out := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = row[label].TimeMS
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
