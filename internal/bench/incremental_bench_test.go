package bench

import (
	"math/rand"
	"testing"

	"dasc/internal/core"
	"dasc/internal/geo"
	"dasc/internal/model"
)

// tickTrace is a precomputed multi-tick platform evolution: per tick, the
// worker states (a small fraction moved and spent budget, everyone's clock
// advanced) and the pending task set (some retired, some newly arrived).
// Both benchmark variants replay the same trace, so the only difference
// measured is incremental maintenance vs from-scratch construction.
type tickTrace struct {
	in    *model.Instance
	ticks []tickState
}

type tickState struct {
	workers []core.BatchWorker
	tasks   []*model.Task
}

// newTickTrace simulates the steady-state tick regime of fig10's heaviest
// sweep point: per tick ~2% of the workers were dispatched (moved, budget
// spent), ~5% of the pending tasks retired, and a handful of new tasks
// arrived. The batch interval is small relative to the waiting times, so the
// overwhelming majority of workers are unchanged between consecutive ticks —
// exactly the regime the cross-batch engine targets.
func newTickTrace(b *testing.B, ticks int) *tickTrace {
	b.Helper()
	return traceFromInstance(largestRegistryInstance(b), ticks)
}

func traceFromInstance(in *model.Instance, ticks int) *tickTrace {
	rng := rand.New(rand.NewSource(7))
	dist := in.Distance()

	type wstate struct {
		loc    geo.Point
		budget float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{loc: in.Workers[i].Loc, budget: in.Workers[i].MaxDist}
	}
	pending := make(map[int]bool, len(in.Tasks))
	var unseen []int
	for ti := range in.Tasks {
		if ti%10 != 0 {
			pending[ti] = true
		} else {
			unseen = append(unseen, ti)
		}
	}

	tr := &tickTrace{in: in}
	now := 0.0
	for k := 0; k < ticks; k++ {
		now += 1
		for i := range ws {
			if rng.Float64() < 0.02 {
				dst := in.Tasks[rng.Intn(len(in.Tasks))].Loc
				ws[i].budget -= dist(ws[i].loc, dst)
				ws[i].loc = dst
			}
		}
		// Iterate in task order, not map order: the trace must be identical
		// across calls so both benchmark variants replay the same ticks.
		for ti := range in.Tasks {
			if pending[ti] && rng.Float64() < 0.05 {
				delete(pending, ti)
			}
		}
		for n := 0; n < 20 && len(unseen) > 0; n++ {
			ti := unseen[len(unseen)-1]
			unseen = unseen[:len(unseen)-1]
			pending[ti] = true
		}

		st := tickState{workers: make([]core.BatchWorker, len(in.Workers))}
		for i := range in.Workers {
			st.workers[i] = core.BatchWorker{
				W: &in.Workers[i], Loc: ws[i].loc, ReadyAt: now, DistBudget: ws[i].budget,
			}
		}
		for ti := range in.Tasks {
			if pending[ti] {
				st.tasks = append(st.tasks, &in.Tasks[ti])
			}
		}
		tr.ticks = append(tr.ticks, st)
	}
	return tr
}

const benchTicks = 8

// BenchmarkIncrementalEngineCached measures the multi-tick candidate-engine
// cost with the cross-batch EngineCache carried from tick to tick: the first
// tick pays a full build, every later tick revalidates unmoved workers by
// pure time arithmetic over memoized travel times.
//
//	go test ./internal/bench -bench BenchmarkIncrementalEngine -benchtime 3x
func BenchmarkIncrementalEngineCached(b *testing.B) {
	tr := newTickTrace(b, benchTicks)
	b.ReportAllocs()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		cache := core.NewEngineCache()
		for _, st := range tr.ticks {
			batch := core.NewBatch(tr.in, st.workers, st.tasks, nil)
			cache.Attach(batch)
			pairs = batch.Index().FeasiblePairs()
		}
	}
	b.ReportMetric(float64(pairs), "feasible_pairs")
	b.ReportMetric(float64(benchTicks), "ticks/op")
}

// BenchmarkIncrementalEngineScratch is the baseline: the same tick trace with
// the engine rebuilt from scratch every tick (the pre-cache behaviour of both
// platforms).
func BenchmarkIncrementalEngineScratch(b *testing.B) {
	tr := newTickTrace(b, benchTicks)
	b.ReportAllocs()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		for _, st := range tr.ticks {
			batch := core.NewBatch(tr.in, st.workers, st.tasks, nil)
			pairs = batch.Index().FeasiblePairs()
		}
	}
	b.ReportMetric(float64(pairs), "feasible_pairs")
	b.ReportMetric(float64(benchTicks), "ticks/op")
}

// TestIncrementalEngineBenchmarkAgree pins the benchmark pair to identical
// engines on a scaled-down trace: at every tick the cached build must equal a
// fresh build bit for bit, so the speedup numbers compare equal work.
func TestIncrementalEngineBenchmarkAgree(t *testing.T) {
	w := DefaultSyntheticWorkload()
	in, err := w.Generate(0.02, 1) // 100 workers × 100 tasks: cheap but non-trivial
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	dist := in.Distance()

	type wstate struct {
		loc    geo.Point
		budget float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{loc: in.Workers[i].Loc, budget: in.Workers[i].MaxDist}
	}
	pending := make(map[int]bool, len(in.Tasks))
	for ti := range in.Tasks {
		pending[ti] = true
	}

	cache := core.NewEngineCache()
	now := 0.0
	for k := 0; k < 6; k++ {
		now += 1
		for i := range ws {
			if rng.Float64() < 0.05 {
				dst := in.Tasks[rng.Intn(len(in.Tasks))].Loc
				ws[i].budget -= dist(ws[i].loc, dst)
				ws[i].loc = dst
			}
		}
		for ti := range in.Tasks {
			if pending[ti] && rng.Float64() < 0.05 {
				delete(pending, ti)
			}
		}
		workers := make([]core.BatchWorker, len(in.Workers))
		for i := range in.Workers {
			workers[i] = core.BatchWorker{
				W: &in.Workers[i], Loc: ws[i].loc, ReadyAt: now, DistBudget: ws[i].budget,
			}
		}
		var tasks []*model.Task
		for ti := range in.Tasks {
			if pending[ti] {
				tasks = append(tasks, &in.Tasks[ti])
			}
		}
		batch := core.NewBatch(in, workers, tasks, nil)
		cache.Attach(batch)
		if err := batch.VerifyIndex(); err != nil {
			t.Fatalf("tick %d: %v", k, err)
		}
	}
	if st := cache.Stats(); st.WorkersReused == 0 {
		t.Fatalf("trace never took the revalidation fast path: %+v", st)
	}
}
