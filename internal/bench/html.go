package bench

import (
	"fmt"
	"html"
	"io"
)

// htmlPalette colours the algorithm series; cycled when an experiment has
// more columns.
var htmlPalette = []string{
	"#2563eb", "#9333ea", "#c026d3", "#16a34a", "#ea580c", "#dc2626",
	"#0891b2", "#4d7c0f",
}

// WriteHTMLHeader starts a self-contained report document.
func WriteHTMLHeader(w io.Writer, title string) error {
	_, err := fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
 body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #111; }
 h2 { border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
 table { border-collapse: collapse; margin: 1rem 0; }
 th, td { border: 1px solid #ddd; padding: .3rem .6rem; text-align: right; }
 th:first-child, td:first-child { text-align: left; }
 .legend span { display: inline-block; margin-right: 1rem; }
 .swatch { display: inline-block; width: .8em; height: .8em; margin-right: .3em; }
</style></head><body>
<h1>%s</h1>
`, html.EscapeString(title), html.EscapeString(title))
	return err
}

// WriteHTMLFooter closes the document.
func WriteHTMLFooter(w io.Writer) error {
	_, err := fmt.Fprintln(w, "</body></html>")
	return err
}

// RenderHTML writes one experiment as a section: an inline-SVG grouped bar
// chart of the scores (the paper's "(a)" subfigure) followed by the score
// and running-time tables. The output is self-contained — no scripts, no
// external assets.
func (t *Table) RenderHTML(w io.Writer) error {
	e := t.Experiment
	if _, err := fmt.Fprintf(w, "<h2>%s — %s</h2>\n<p>Axis: %s. Scale %.2f, seed %d, repeats %d.</p>\n",
		html.EscapeString(e.Paper), html.EscapeString(e.Title),
		html.EscapeString(e.Axis), t.Options.Scale, t.Options.Seed, max(1, t.Options.Repeats)); err != nil {
		return err
	}
	if err := t.renderSVGChart(w); err != nil {
		return err
	}
	writeTable := func(caption string, cell func(Cell) string) error {
		if _, err := fmt.Fprintf(w, "<table><caption>%s</caption><tr><th>%s</th>",
			html.EscapeString(caption), html.EscapeString(e.Axis)); err != nil {
			return err
		}
		for _, a := range e.Algorithms {
			fmt.Fprintf(w, "<th>%s</th>", html.EscapeString(a.Label))
		}
		fmt.Fprintln(w, "</tr>")
		for i, row := range t.Rows {
			fmt.Fprintf(w, "<tr><td>%s</td>", html.EscapeString(e.Points[i].Label))
			for _, a := range e.Algorithms {
				fmt.Fprintf(w, "<td>%s</td>", cell(row[a.Label]))
			}
			fmt.Fprintln(w, "</tr>")
		}
		_, err := fmt.Fprintln(w, "</table>")
		return err
	}
	if err := writeTable("Assignment score", func(c Cell) string { return fmt.Sprintf("%.1f", c.Score) }); err != nil {
		return err
	}
	return writeTable("Running time (ms)", func(c Cell) string { return fmt.Sprintf("%.2f", c.TimeMS) })
}

// renderSVGChart draws grouped vertical bars: one group per sweep point, one
// bar per algorithm.
func (t *Table) renderSVGChart(w io.Writer) error {
	e := t.Experiment
	const (
		chartH  = 220
		barW    = 14
		gapBar  = 3
		gapGrp  = 26
		marginL = 40
		marginB = 40
	)
	nAlg := len(e.Algorithms)
	grpW := nAlg*(barW+gapBar) + gapGrp
	width := marginL + len(t.Rows)*grpW + 20
	maxScore := 1.0
	for _, row := range t.Rows {
		for _, a := range e.Algorithms {
			if s := row[a.Label].Score; s > maxScore {
				maxScore = s
			}
		}
	}
	if _, err := fmt.Fprintf(w, `<svg width="%d" height="%d" role="img">`+"\n", width, chartH+marginB+20); err != nil {
		return err
	}
	// Y axis line and max label.
	fmt.Fprintf(w, `<line x1="%d" y1="10" x2="%d" y2="%d" stroke="#999"/>`+"\n", marginL, marginL, chartH+10)
	fmt.Fprintf(w, `<text x="%d" y="16" font-size="10" text-anchor="end">%.0f</text>`+"\n", marginL-4, maxScore)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10" text-anchor="end">0</text>`+"\n", marginL-4, chartH+10)
	for gi, row := range t.Rows {
		gx := marginL + gi*grpW + gapGrp/2
		for ai, a := range e.Algorithms {
			s := row[a.Label].Score
			h := int(s / maxScore * float64(chartH))
			x := gx + ai*(barW+gapBar)
			fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s @ %s: %.1f</title></rect>`+"\n",
				x, chartH+10-h, barW, h, htmlPalette[ai%len(htmlPalette)],
				html.EscapeString(a.Label), html.EscapeString(e.Points[gi].Label), s)
		}
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			gx+(nAlg*(barW+gapBar))/2, chartH+24, html.EscapeString(e.Points[gi].Label))
	}
	if _, err := fmt.Fprintln(w, "</svg>"); err != nil {
		return err
	}
	// Legend.
	if _, err := fmt.Fprint(w, `<p class="legend">`); err != nil {
		return err
	}
	for ai, a := range e.Algorithms {
		fmt.Fprintf(w, `<span><span class="swatch" style="background:%s"></span>%s</span>`,
			htmlPalette[ai%len(htmlPalette)], html.EscapeString(a.Label))
	}
	_, err := fmt.Fprintln(w, "</p>")
	return err
}
