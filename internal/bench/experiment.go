package bench

import (
	"fmt"
	"sync"

	"dasc/internal/core"
	"dasc/internal/stats"
)

// Point is one x-axis value of a sweep: a label (e.g. "[0.02, 0.025]") and a
// mutation applying it to the base workload.
type Point struct {
	Label string
	Apply func(*Workload)
}

// AllocatorSpec names an algorithm column and builds its allocator. Most
// experiments use the six paper approaches; Figure 2 and the ablations build
// custom variants.
type AllocatorSpec struct {
	Label string
	Make  func(seed int64) core.Allocator
}

// Experiment is one table/figure of the evaluation.
type Experiment struct {
	ID         string // registry key, e.g. "fig3"
	Paper      string // e.g. "Figure 3(a,b)"
	Title      string
	Axis       string // swept parameter description
	Base       Workload
	Points     []Point
	Algorithms []AllocatorSpec
	// FullScale notes the paper's population at scale 1.0, recorded in the
	// table header for context.
	FullScale string
}

// RunOptions controls an experiment run.
type RunOptions struct {
	// Scale shrinks the population (0 < Scale ≤ 1); 1 reproduces the
	// paper's sizes.
	Scale float64
	// Seed drives dataset generation and every allocator's randomness.
	Seed int64
	// Repeats averages measurements over this many seeds; zero means 1.
	Repeats int
	// Parallel runs up to this many (point, algorithm) cells concurrently;
	// zero or one is sequential. Concurrent cells contend for CPU, so use
	// parallelism for score surveys and keep the default for the paper's
	// running-time measurements.
	Parallel int
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(string)
}

// Cell is one (point, algorithm) measurement, averaged over repeats.
type Cell struct {
	Score  float64
	TimeMS float64
}

// Table is an experiment's full result grid.
type Table struct {
	Experiment *Experiment
	Options    RunOptions
	// Rows[i][algLabel] is the cell for point i.
	Rows []map[string]Cell
}

// Run executes the experiment.
func (e *Experiment) Run(opt RunOptions) (*Table, error) {
	if opt.Scale <= 0 || opt.Scale > 1 {
		opt.Scale = 1
	}
	if opt.Repeats <= 0 {
		opt.Repeats = 1
	}
	tbl := &Table{Experiment: e, Options: opt}
	tbl.Rows = make([]map[string]Cell, len(e.Points))
	for i := range tbl.Rows {
		tbl.Rows[i] = make(map[string]Cell, len(e.Algorithms))
	}

	type cellJob struct {
		point int
		alg   int
	}
	jobs := make([]cellJob, 0, len(e.Points)*len(e.Algorithms))
	for pi := range e.Points {
		for ai := range e.Algorithms {
			jobs = append(jobs, cellJob{point: pi, alg: ai})
		}
	}

	runCell := func(j cellJob) (Cell, error) {
		w := e.Base
		e.Points[j.point].Apply(&w)
		spec := e.Algorithms[j.alg]
		var scores, times []float64
		for rep := 0; rep < opt.Repeats; rep++ {
			seed := opt.Seed + int64(rep)
			in, err := w.Generate(opt.Scale, seed)
			if err != nil {
				return Cell{}, fmt.Errorf("bench: %s point %q: %w", e.ID, e.Points[j.point].Label, err)
			}
			alloc := spec.Make(seed)
			score, ms, err := w.Execute(in, alloc)
			if err != nil {
				return Cell{}, fmt.Errorf("bench: %s point %q alg %q: %w", e.ID, e.Points[j.point].Label, spec.Label, err)
			}
			scores = append(scores, score)
			times = append(times, ms)
		}
		return Cell{Score: stats.Mean(scores), TimeMS: stats.Mean(times)}, nil
	}
	report := func(j cellJob, c Cell) {
		if opt.Progress != nil {
			opt.Progress(fmt.Sprintf("%s %s %s: score=%.1f time=%.2fms",
				e.ID, e.Points[j.point].Label, e.Algorithms[j.alg].Label, c.Score, c.TimeMS))
		}
	}

	if opt.Parallel <= 1 {
		for _, j := range jobs {
			c, err := runCell(j)
			if err != nil {
				return nil, err
			}
			tbl.Rows[j.point][e.Algorithms[j.alg].Label] = c
			report(j, c)
		}
		return tbl, nil
	}

	// Bounded worker pool over the cell list. Cells write to disjoint
	// (point, label) slots; the mutex only guards the maps and the error.
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, opt.Parallel)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			mu.Lock()
			stop := firstErr != nil
			mu.Unlock()
			if stop {
				return
			}
			c, err := runCell(j)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			tbl.Rows[j.point][e.Algorithms[j.alg].Label] = c
			report(j, c)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return tbl, nil
}

// paperAllocators returns the six approaches of Section V in plotting order.
func paperAllocators() []AllocatorSpec {
	specs := make([]AllocatorSpec, 0, 6)
	for _, name := range core.AllNames() {
		name := name
		specs = append(specs, AllocatorSpec{
			Label: name,
			Make: func(seed int64) core.Allocator {
				a, err := core.NewByName(name, seed)
				if err != nil {
					panic(err) // unreachable: names come from AllNames
				}
				return a
			},
		})
	}
	return specs
}
