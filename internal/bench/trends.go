package bench

import (
	"fmt"
	"io"

	"dasc/internal/core"
	"dasc/internal/stats"
)

// Trend is the direction the paper reports for a score series along a sweep.
type Trend int

const (
	// TrendNone makes no directional claim.
	TrendNone Trend = iota
	// TrendUp: scores increase along the sweep.
	TrendUp
	// TrendDown: scores decrease along the sweep.
	TrendDown
	// TrendUpThenFlat: scores increase then saturate (velocity/distance
	// sweeps where other constraints take over).
	TrendUpThenFlat
)

func (t Trend) String() string {
	switch t {
	case TrendUp:
		return "increasing"
	case TrendDown:
		return "decreasing"
	case TrendUpThenFlat:
		return "increasing-then-flat"
	default:
		return "none"
	}
}

// TrendSpec encodes one exhibit's paper claims: the expected score direction
// and whether the approaches must dominate the baselines.
type TrendSpec struct {
	Experiment string
	Score      Trend
	// ApproachesDominate asserts mean(G-G, Game, Game-5%, Greedy) ≥
	// mean(Closest, Random) on every sweep point.
	ApproachesDominate bool
}

// PaperTrends lists the directional claims of Figures 3–15 (Figure 2 and
// Table VI are single-point exhibits; the ablations are ours).
func PaperTrends() []TrendSpec {
	return []TrendSpec{
		{Experiment: "fig3", Score: TrendUp, ApproachesDominate: true},
		{Experiment: "fig4", Score: TrendUpThenFlat, ApproachesDominate: true},
		{Experiment: "fig5", Score: TrendDown, ApproachesDominate: true},
		{Experiment: "fig6", Score: TrendUp, ApproachesDominate: true},
		{Experiment: "fig7", Score: TrendDown, ApproachesDominate: true},
		{Experiment: "fig8", Score: TrendDown, ApproachesDominate: true},
		{Experiment: "fig9", Score: TrendUp, ApproachesDominate: true},
		{Experiment: "fig10", Score: TrendUp, ApproachesDominate: true},
		{Experiment: "fig11", Score: TrendUp, ApproachesDominate: true},
		{Experiment: "fig12", Score: TrendUpThenFlat, ApproachesDominate: true},
		{Experiment: "fig13", Score: TrendUpThenFlat, ApproachesDominate: true},
		{Experiment: "fig14", Score: TrendDown, ApproachesDominate: true},
		{Experiment: "fig15", Score: TrendUp, ApproachesDominate: true},
	}
}

// TrendResult is the verdict for one exhibit.
type TrendResult struct {
	Spec      TrendSpec
	ScoreOK   bool
	DominOK   bool
	Series    []float64 // mean approach score per point
	Baselines []float64 // mean baseline score per point
	Err       error
}

// OK reports whether every claim held.
func (r TrendResult) OK() bool { return r.Err == nil && r.ScoreOK && r.DominOK }

// VerifyTrend runs one exhibit and checks its claims. slack is the relative
// tolerance for direction checks (e.g. 0.1 forgives a 10% counter-move —
// single-seed runs are noisy; use repeats ≥ 3 for tighter slack).
func VerifyTrend(spec TrendSpec, opt RunOptions, slack float64) TrendResult {
	res := TrendResult{Spec: spec}
	e, err := Lookup(spec.Experiment)
	if err != nil {
		res.Err = err
		return res
	}
	tbl, err := e.Run(opt)
	if err != nil {
		res.Err = err
		return res
	}
	approaches := []string{core.NameGG, core.NameGame, core.NameGame5, core.NameGreedy}
	baselines := []string{core.NameClosest, core.NameRandom}
	for i := range tbl.Rows {
		res.Series = append(res.Series, meanOf(tbl.Rows[i], approaches))
		res.Baselines = append(res.Baselines, meanOf(tbl.Rows[i], baselines))
	}
	res.ScoreOK = directionHolds(res.Series, spec.Score, slack)
	res.DominOK = true
	if spec.ApproachesDominate {
		for i := range res.Series {
			if res.Series[i] < res.Baselines[i]*(1-slack) {
				res.DominOK = false
				break
			}
		}
	}
	return res
}

func meanOf(row map[string]Cell, labels []string) float64 {
	vals := make([]float64, 0, len(labels))
	for _, l := range labels {
		vals = append(vals, row[l].Score)
	}
	return stats.Mean(vals)
}

// directionHolds checks a direction claim with relative slack.
func directionHolds(series []float64, trend Trend, slack float64) bool {
	if len(series) < 2 {
		return true
	}
	first, last := series[0], series[len(series)-1]
	switch trend {
	case TrendUp, TrendUpThenFlat:
		// Endpoint rise, allowing the saturating variant to end flat.
		return last >= first*(1-slack) && maxOfSeries(series) >= first
	case TrendDown:
		return last <= first*(1+slack)
	default:
		return true
	}
}

func maxOfSeries(s []float64) float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// VerifyAll runs every paper trend and writes a ✓/✗ report. It returns the
// number of failed exhibits.
func VerifyAll(w io.Writer, opt RunOptions, slack float64) (failed int, err error) {
	for _, spec := range PaperTrends() {
		r := VerifyTrend(spec, opt, slack)
		status := "✓"
		if !r.OK() {
			status = "✗"
			failed++
		}
		if r.Err != nil {
			if _, werr := fmt.Fprintf(w, "%s %-6s error: %v\n", status, spec.Experiment, r.Err); werr != nil {
				return failed, werr
			}
			continue
		}
		if _, werr := fmt.Fprintf(w, "%s %-6s score %-22s (measured %s) dominance=%v  approaches=%v\n",
			status, spec.Experiment, spec.Score, seriesDirection(r.Series), r.DominOK, compact(r.Series)); werr != nil {
			return failed, werr
		}
	}
	return failed, nil
}

// seriesDirection labels the measured endpoint movement.
func seriesDirection(s []float64) string {
	if len(s) < 2 {
		return "flat"
	}
	switch {
	case s[len(s)-1] > s[0]:
		return "up"
	case s[len(s)-1] < s[0]:
		return "down"
	default:
		return "flat"
	}
}

func compact(s []float64) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = float64(int(v*10)) / 10
	}
	return out
}
