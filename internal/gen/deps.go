package gen

import (
	"math/rand"

	"dasc/internal/model"
)

// growDeps implements the paper's dependency construction for one task:
// draw a target size from sizeRange, then repeatedly pick a uniformly random
// earlier task from candidates, adding it *and its whole dependency set*
// (keeping the set transitively closed and acyclic) until the target size is
// reached or the candidates are exhausted. tasks[:i] must already carry
// closed dependency sets.
func growDeps(rng *rand.Rand, tasks []model.Task, candidates []model.TaskID, sizeRange Range) []model.TaskID {
	target := sizeRange.SampleInt(rng)
	if target <= 0 || len(candidates) == 0 {
		return nil
	}
	in := make(map[model.TaskID]bool)
	var deps []model.TaskID
	add := func(id model.TaskID) {
		if !in[id] {
			in[id] = true
			deps = append(deps, id)
		}
	}
	// Copy so the shuffle does not disturb the caller's slice.
	pool := append([]model.TaskID(nil), candidates...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	for _, cand := range pool {
		if len(deps) >= target {
			break
		}
		add(cand)
		for _, dd := range tasks[cand].Deps {
			add(dd)
		}
	}
	sortTaskIDs(deps)
	return deps
}

func sortTaskIDs(a []model.TaskID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
