// Package gen produces the paper's workloads as seeded, deterministic
// model.Instances: the synthetic generator of Table V, the Meetup-substitute
// generator of Table IV (Section V-A's construction reproduced over a
// synthetic event-based social network, since the original crawl is not
// redistributable), and the small-scale configuration of Table VI.
package gen

import (
	"fmt"
	"math/rand"
)

// Range is a closed interval [Lo, Hi] sampled uniformly, the form every
// experimental parameter takes in Tables IV and V.
type Range struct {
	Lo, Hi float64
}

// R is shorthand for constructing a Range.
func R(lo, hi float64) Range { return Range{Lo: lo, Hi: hi} }

// Sample draws a uniform value from the range.
func (r Range) Sample(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

// SampleInt draws a uniform integer from {⌊Lo⌋, …, ⌊Hi⌋}.
func (r Range) SampleInt(rng *rand.Rand) int {
	lo, hi := int(r.Lo), int(r.Hi)
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Mid returns the interval midpoint.
func (r Range) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// Scale returns the range with both endpoints multiplied by k — Tables IV
// and V express the velocity and distance ranges with such factors
// (e.g. "[1, 1.5] * 0.01").
func (r Range) Scale(k float64) Range { return Range{Lo: r.Lo * k, Hi: r.Hi * k} }

// String implements fmt.Stringer.
func (r Range) String() string { return fmt.Sprintf("[%g, %g]", r.Lo, r.Hi) }
