package gen

import (
	"math/rand"
	"testing"

	"dasc/internal/model"
)

func TestRangeSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := R(2, 5)
	for i := 0; i < 100; i++ {
		v := r.Sample(rng)
		if v < 2 || v > 5 {
			t.Fatalf("Sample = %v outside [2,5]", v)
		}
		n := r.SampleInt(rng)
		if n < 2 || n > 5 {
			t.Fatalf("SampleInt = %d outside {2..5}", n)
		}
	}
	if got := R(3, 3).Sample(rng); got != 3 {
		t.Errorf("degenerate Sample = %v", got)
	}
	if got := R(3, 3).SampleInt(rng); got != 3 {
		t.Errorf("degenerate SampleInt = %v", got)
	}
	if got := R(1, 2).Scale(0.01); got != R(0.01, 0.02) {
		t.Errorf("Scale = %v", got)
	}
	if got := R(2, 4).Mid(); got != 3 {
		t.Errorf("Mid = %v", got)
	}
	if got := R(0, 70).String(); got != "[0, 70]" {
		t.Errorf("String = %q", got)
	}
}

func TestSyntheticDefaultsSmall(t *testing.T) {
	c := DefaultSynthetic().Scale(0.02) // 100 workers, 100 tasks
	in, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != 100 || len(in.Tasks) != 100 {
		t.Fatalf("sizes %d/%d", len(in.Workers), len(in.Tasks))
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Parameter ranges respected.
	for i := range in.Workers {
		w := &in.Workers[i]
		if w.Velocity < 0.03 || w.Velocity > 0.04 {
			t.Fatalf("velocity %v outside Table V default", w.Velocity)
		}
		if w.MaxDist < 0.3 || w.MaxDist > 0.4 {
			t.Fatalf("max dist %v outside default", w.MaxDist)
		}
		if n := w.Skills.Len(); n < 1 || n > 15 {
			t.Fatalf("skill count %d outside [1,15]", n)
		}
		if w.Start < 0 || w.Start > 75 || w.Wait < 10 || w.Wait > 15 {
			t.Fatalf("temporal params out of range: %+v", w)
		}
		if !c.Region.Contains(w.Loc) {
			t.Fatalf("worker outside region: %v", w.Loc)
		}
	}
	for i := range in.Tasks {
		tk := &in.Tasks[i]
		if int(tk.Requires) >= c.SkillUniverse {
			t.Fatalf("skill %d outside universe", tk.Requires)
		}
		if !c.Region.Contains(tk.Loc) {
			t.Fatalf("task outside region: %v", tk.Loc)
		}
	}
}

func TestSyntheticDepsClosedAndBackwards(t *testing.T) {
	c := DefaultSynthetic().Scale(0.03)
	c.DepSize = R(0, 10)
	in, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := in.DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTransitivelyClosed() {
		t.Error("dependency sets not transitively closed")
	}
	anyDeps := false
	for i := range in.Tasks {
		for _, d := range in.Tasks[i].Deps {
			anyDeps = true
			if d >= in.Tasks[i].ID {
				t.Fatalf("task t%d depends on non-earlier t%d", in.Tasks[i].ID, d)
			}
		}
	}
	if !anyDeps {
		t.Error("no dependencies generated at all")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	c := DefaultSynthetic().Scale(0.01)
	a, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workers {
		if a.Workers[i].Loc != b.Workers[i].Loc || a.Workers[i].Velocity != b.Workers[i].Velocity {
			t.Fatal("same seed, different workers")
		}
	}
	for i := range a.Tasks {
		if a.Tasks[i].Loc != b.Tasks[i].Loc || len(a.Tasks[i].Deps) != len(b.Tasks[i].Deps) {
			t.Fatal("same seed, different tasks")
		}
	}
	c2 := c
	c2.Seed = 999
	d, err := Synthetic(c2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers[0].Loc == a.Workers[0].Loc {
		t.Error("different seeds produced identical first worker")
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := DefaultSynthetic()
	bad.SkillUniverse = 0
	if _, err := Synthetic(bad); err == nil {
		t.Error("zero skill universe accepted")
	}
	bad = DefaultSynthetic()
	bad.WorkerSkills = R(0, 3)
	if _, err := Synthetic(bad); err == nil {
		t.Error("zero-skill workers accepted")
	}
	bad = DefaultSynthetic()
	bad.Workers = -1
	if _, err := Synthetic(bad); err == nil {
		t.Error("negative workers accepted")
	}
	bad = DefaultSynthetic()
	bad.DepSize = R(-1, 3)
	if _, err := Synthetic(bad); err == nil {
		t.Error("negative dep size accepted")
	}
}

func TestSmallScaleConfig(t *testing.T) {
	c := SmallScale()
	if c.Workers != 20 || c.Tasks != 40 || c.SkillUniverse != 10 {
		t.Errorf("SmallScale = %+v", c)
	}
	in, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Workers {
		if n := in.Workers[i].Skills.Len(); n < 1 || n > 3 {
			t.Fatalf("small-scale worker skills %d outside [1,3]", n)
		}
	}
	// The paper's procedure adds a candidate *and its closure* until the
	// drawn target (≤ 8) is reached, so sets may overshoot slightly — but a
	// set much larger than target+closure-step indicates a generator bug.
	for i := range in.Tasks {
		if n := len(in.Tasks[i].Deps); n > 2*8 {
			t.Fatalf("small-scale dep size %d far above the [0,8] target", n)
		}
	}
}

func TestMeetupSubstitute(t *testing.T) {
	c := DefaultMeetup().Scale(0.1) // 352 workers, 128 tasks, 12 groups
	in, err := Meetup(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != 352 || len(in.Tasks) != 128 {
		t.Fatalf("sizes %d/%d", len(in.Workers), len(in.Tasks))
	}
	g, err := in.DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTransitivelyClosed() {
		t.Error("meetup deps not closed")
	}
	for i := range in.Workers {
		if !c.Region.Contains(in.Workers[i].Loc) {
			t.Fatal("worker outside Hong Kong box")
		}
		if in.Workers[i].Skills.IsEmpty() {
			t.Fatal("worker with no tags")
		}
	}
	for i := range in.Tasks {
		if !c.Region.Contains(in.Tasks[i].Loc) {
			t.Fatal("task outside Hong Kong box")
		}
	}
}

func TestMeetupDeterministic(t *testing.T) {
	c := DefaultMeetup().Scale(0.05)
	a, _ := Meetup(c)
	b, _ := Meetup(c)
	for i := range a.Tasks {
		if a.Tasks[i].Loc != b.Tasks[i].Loc {
			t.Fatal("same seed, different meetup tasks")
		}
	}
}

func TestMeetupValidation(t *testing.T) {
	bad := DefaultMeetup()
	bad.Groups = 0
	if _, err := Meetup(bad); err == nil {
		t.Error("zero groups accepted")
	}
	bad = DefaultMeetup()
	bad.TagsPerGroup = R(0, 2)
	if _, err := Meetup(bad); err == nil {
		t.Error("empty group tag sets accepted")
	}
}

func TestGrowDepsRespectsTargetAndClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Build a chain of tasks with closed deps: task i depends on all earlier.
	var tasks []model.Task
	var cands []model.TaskID
	for i := 0; i < 10; i++ {
		deps := make([]model.TaskID, i)
		for j := range deps {
			deps[j] = model.TaskID(j)
		}
		tasks = append(tasks, model.Task{ID: model.TaskID(i), Deps: deps})
		cands = append(cands, model.TaskID(i))
	}
	deps := growDeps(rng, tasks, cands, R(3, 3))
	if len(deps) < 3 {
		t.Errorf("target not reached: %v", deps)
	}
	// Closure: picking task k pulls in 0..k−1, so the result must be a
	// prefix set {0..max}.
	maxID := deps[len(deps)-1]
	if int(maxID) != len(deps)-1 {
		t.Errorf("deps not closed: %v", deps)
	}
	if got := growDeps(rng, tasks, nil, R(5, 5)); got != nil {
		t.Errorf("no candidates should yield nil, got %v", got)
	}
	if got := growDeps(rng, tasks, cands, R(0, 0)); got != nil {
		t.Errorf("zero target should yield nil, got %v", got)
	}
}

func TestTaskStartTimesFollowCreationOrder(t *testing.T) {
	syn, err := Synthetic(DefaultSynthetic().Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	meet, err := Meetup(DefaultMeetup().Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string]*model.Instance{"synthetic": syn, "meetup": meet} {
		for i := 1; i < len(in.Tasks); i++ {
			if in.Tasks[i].Start < in.Tasks[i-1].Start {
				t.Fatalf("%s: task %d starts before task %d — creation order broken", name, i, i-1)
			}
		}
		// Consequence: every dependency appears no later than its dependant.
		for i := range in.Tasks {
			for _, d := range in.Tasks[i].Deps {
				if in.Tasks[d].Start > in.Tasks[i].Start {
					t.Fatalf("%s: dependency t%d appears after dependant t%d", name, d, i)
				}
			}
		}
	}
}

func TestSyntheticHotspots(t *testing.T) {
	c := DefaultSynthetic().Scale(0.04)
	c.Hotspots = 3
	c.HotspotSpread = 0.02
	in, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range in.Workers {
		if !c.Region.Contains(in.Workers[i].Loc) {
			t.Fatal("hotspot worker escaped the region")
		}
	}
	// Clustering check: mean nearest-neighbour distance among tasks should
	// be far below the uniform expectation for tight hotspots.
	uni := DefaultSynthetic().Scale(0.04)
	uniIn, err := Synthetic(uni)
	if err != nil {
		t.Fatal(err)
	}
	if c, u := meanNNDist(in), meanNNDist(uniIn); c >= u {
		t.Errorf("clustered NN distance %v not below uniform %v", c, u)
	}
}

// meanNNDist returns the mean nearest-neighbour distance among task
// locations (brute force; test-sized inputs only).
func meanNNDist(in *model.Instance) float64 {
	var sum float64
	for i := range in.Tasks {
		best := -1.0
		for j := range in.Tasks {
			if i == j {
				continue
			}
			if d := in.Tasks[i].Loc.DistanceTo(in.Tasks[j].Loc); best < 0 || d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(in.Tasks))
}

func TestTaskWeightsIndependentOfStructure(t *testing.T) {
	base := DefaultSynthetic().Scale(0.05)
	base.Seed = 9
	plain, err := Synthetic(base)
	if err != nil {
		t.Fatal(err)
	}
	weighted := base
	weighted.TaskWeight = R(1, 5)
	w, err := Synthetic(weighted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Tasks {
		a, b := &plain.Tasks[i], &w.Tasks[i]
		if a.Loc != b.Loc || a.Start != b.Start || len(a.Deps) != len(b.Deps) || a.Requires != b.Requires {
			t.Fatalf("task %d structure changed when weights enabled", i)
		}
		if b.Weight < 1 || b.Weight > 5 {
			t.Fatalf("weight %v outside [1,5]", b.Weight)
		}
		if a.Weight != 0 {
			t.Fatalf("unweighted task got weight %v", a.Weight)
		}
	}
}

func TestZipfSkills(t *testing.T) {
	c := DefaultSynthetic().Scale(0.05)
	c.ZipfSkills = 1.5
	in, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Skill 0 must dominate task requirements under Zipf but not uniform.
	countZero := 0
	for i := range in.Tasks {
		if in.Tasks[i].Requires == 0 {
			countZero++
		}
	}
	if countZero < len(in.Tasks)/10 {
		t.Errorf("zipf head skill required by only %d/%d tasks", countZero, len(in.Tasks))
	}
	bad := DefaultSynthetic()
	bad.ZipfSkills = 0.5
	if _, err := Synthetic(bad); err == nil {
		t.Error("sub-1 Zipf exponent accepted")
	}
}
