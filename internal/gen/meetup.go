package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// MeetupConfig parameterises the Meetup-substitute workload. The paper
// builds its real dataset from a 2011–2012 Meetup crawl restricted to Hong
// Kong (3,525 workers, 1,282 tasks); that crawl is not redistributable, so
// this generator reproduces the *construction procedure* of Section V-A over
// a synthetic event-based social network: groups carry tag sets, events
// (task groups) belong to groups and inherit their tags, users carry tags
// from the groups they orbit. Tasks derive from events — one task per
// required tag occurrence, dependencies drawn from earlier tasks of the same
// task group and transitively closed — and workers derive from users.
//
// Temporal and motion parameters come from Table IV; its bold defaults are
// DefaultMeetup()'s values.
type MeetupConfig struct {
	Seed int64

	Workers int // paper's Hong Kong extract: 3,525
	Tasks   int // paper's Hong Kong extract: 1,282

	// Groups is the number of interest groups (task groups spring from
	// them); the Hong Kong extract is small, default 120.
	Groups int
	// TagUniverse is the number of distinct tags (= skills), default 400.
	TagUniverse int
	// TagsPerGroup is the tag-set size range per group, default [3, 8].
	TagsPerGroup Range
	// GroupsPerWorker is how many groups a user orbits, default [1, 3].
	GroupsPerWorker Range
	// GroupSpread is the spatial std-dev (in degrees) of a group's events
	// around its centre, default 0.02 (~2 km).
	GroupSpread float64
	// GroupTimeSpread is the window (in time units) over which one task
	// group's tasks appear after the group's first posting, default 10 —
	// a requester posts a project's subtasks together, which is what makes
	// dependencies bind within batches (the paper's house-repair story).
	GroupTimeSpread float64
	// DepSize is the per-task dependency-set size range within its task
	// group, default [0, 8] (the paper draws random subsets of the earlier
	// tasks of the group; groups average ~12 tasks).
	DepSize Range

	// Table IV temporal/motion ranges (bold defaults).
	StartTime Range // default [0, 200]
	WaitTime  Range // default [3, 5]
	Velocity  Range // default [1, 1.5] × 0.01
	MaxDist   Range // default [3, 3.5] × 0.01

	// Region defaults to the paper's Hong Kong bounding box.
	Region geo.BBox
}

// DefaultMeetup returns the Table IV bold defaults at the paper's Hong Kong
// extract size.
func DefaultMeetup() MeetupConfig {
	return MeetupConfig{
		Seed:            1,
		Workers:         3525,
		Tasks:           1282,
		Groups:          100,
		TagUniverse:     400,
		TagsPerGroup:    R(3, 8),
		GroupsPerWorker: R(1, 3),
		GroupSpread:     0.02,
		GroupTimeSpread: 10,
		DepSize:         R(0, 8),
		StartTime:       R(0, 200),
		WaitTime:        R(3, 5),
		Velocity:        R(1, 1.5).Scale(0.01),
		MaxDist:         R(3, 3.5).Scale(0.01),
		Region:          geo.HongKong,
	}
}

// Scale shrinks the population by factor f (0 < f ≤ 1), scaling the group
// count and tag universe along with it so that workers-per-tag and
// tasks-per-group densities are preserved.
func (c MeetupConfig) Scale(f float64) MeetupConfig {
	if f > 0 && f < 1 {
		c.Workers = max1(int(float64(c.Workers) * f))
		c.Tasks = max1(int(float64(c.Tasks) * f))
		c.Groups = max1(int(float64(c.Groups) * f))
		c.TagUniverse = max1(int(float64(c.TagUniverse) * f))
	}
	return c
}

// Validate reports configuration errors before generation.
func (c MeetupConfig) Validate() error {
	switch {
	case c.Workers < 0 || c.Tasks < 0:
		return fmt.Errorf("gen: negative population (%d workers, %d tasks)", c.Workers, c.Tasks)
	case c.Groups < 1:
		return fmt.Errorf("gen: need at least one group")
	case c.TagUniverse < 1:
		return fmt.Errorf("gen: tag universe %d < 1", c.TagUniverse)
	case c.TagsPerGroup.Lo < 1:
		return fmt.Errorf("gen: tags per group %v must start at ≥ 1", c.TagsPerGroup)
	case c.GroupsPerWorker.Lo < 1:
		return fmt.Errorf("gen: groups per worker %v must start at ≥ 1", c.GroupsPerWorker)
	case c.DepSize.Lo < 0:
		return fmt.Errorf("gen: dependency size range %v negative", c.DepSize)
	}
	return nil
}

// meetupGroup is one synthetic interest group.
type meetupGroup struct {
	center geo.Point
	tags   []model.Skill
}

// Meetup generates the real-data-substitute instance.
func Meetup(c MeetupConfig) (*model.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	in := &model.Instance{SkillUniverse: c.TagUniverse}

	// Groups: a centre inside the region and a tag set.
	groups := make([]meetupGroup, c.Groups)
	for gi := range groups {
		nTags := c.TagsPerGroup.SampleInt(rng)
		if nTags > c.TagUniverse {
			nTags = c.TagUniverse
		}
		var set model.SkillSet
		for set.Len() < nTags {
			set.Add(model.Skill(rng.Intn(c.TagUniverse)))
		}
		groups[gi] = meetupGroup{
			center: randPoint(rng, c.Region),
			tags:   set.Skills(),
		}
	}

	// Workers: the user's tags are the union of the tags of the groups the
	// user orbits; location near the first such group.
	for i := 0; i < c.Workers; i++ {
		nGroups := c.GroupsPerWorker.SampleInt(rng)
		var skills model.SkillSet
		home := -1
		for k := 0; k < nGroups; k++ {
			gi := rng.Intn(len(groups))
			if home < 0 {
				home = gi
			}
			for _, tag := range groups[gi].tags {
				skills.Add(tag)
			}
		}
		in.Workers = append(in.Workers, model.Worker{
			ID:       model.WorkerID(i),
			Loc:      jitter(rng, groups[home].center, c.GroupSpread*2, c.Region),
			Start:    c.StartTime.Sample(rng),
			Wait:     c.WaitTime.Sample(rng),
			Velocity: c.Velocity.Sample(rng),
			MaxDist:  c.MaxDist.Sample(rng),
			Skills:   skills,
		})
	}

	// Tasks: each task belongs to a group (one group = one paper "task
	// group"/event); a group's tasks are posted together — the group draws a
	// base time from StartTime and its tasks appear within GroupTimeSpread
	// of it, which is what lets dependencies bind within batches. Task IDs
	// follow creation (= appearance) order, as in the synthetic generator,
	// so intra-group dependencies always appear before dependants.
	groupStart := make([]float64, len(groups))
	for gi := range groupStart {
		groupStart[gi] = c.StartTime.Sample(rng)
	}
	type slot struct {
		group int
		start float64
	}
	slots := make([]slot, c.Tasks)
	for i := range slots {
		gi := rng.Intn(len(groups))
		slots[i] = slot{group: gi, start: groupStart[gi] + rng.Float64()*c.GroupTimeSpread}
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].start < slots[b].start })
	byGroup := make([][]model.TaskID, len(groups))
	for i, sl := range slots {
		g := &groups[sl.group]
		t := model.Task{
			ID:       model.TaskID(i),
			Loc:      jitter(rng, g.center, c.GroupSpread, c.Region),
			Start:    sl.start,
			Wait:     c.WaitTime.Sample(rng),
			Requires: g.tags[rng.Intn(len(g.tags))],
		}
		t.Deps = growDeps(rng, in.Tasks, byGroup[sl.group], c.DepSize)
		in.Tasks = append(in.Tasks, t)
		byGroup[sl.group] = append(byGroup[sl.group], t.ID)
	}

	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated instance invalid: %w", err)
	}
	return in, nil
}

// jitter draws a point normally distributed around centre, clamped to the
// region.
func jitter(rng *rand.Rand, center geo.Point, sigma float64, box geo.BBox) geo.Point {
	p := geo.Pt(center.X+rng.NormFloat64()*sigma, center.Y+rng.NormFloat64()*sigma)
	if p.X < box.Min.X {
		p.X = box.Min.X
	}
	if p.X > box.Max.X {
		p.X = box.Max.X
	}
	if p.Y < box.Min.Y {
		p.Y = box.Min.Y
	}
	if p.Y > box.Max.Y {
		p.Y = box.Max.Y
	}
	return p
}
