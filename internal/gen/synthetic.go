package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// SyntheticConfig holds the Table V parameters. The zero value is unusable;
// start from DefaultSynthetic() (the table's bold defaults) and override.
type SyntheticConfig struct {
	Seed int64

	Workers       int // n, paper default 5K
	Tasks         int // m, paper default 5K
	SkillUniverse int // r, paper default 1500

	// DepSize is the per-task dependency-set size range, default [0, 70].
	DepSize Range
	// WorkerSkills is the per-worker skill-set size range, default [1, 15].
	WorkerSkills Range
	// StartTime applies to workers and tasks alike, default [0, 75].
	StartTime Range
	// WaitTime applies to workers and tasks alike, default [10, 15].
	WaitTime Range
	// Velocity is the worker speed range, default [0.03, 0.04]
	// (Table V's [3, 4] × 0.01).
	Velocity Range
	// MaxDist is the worker moving-budget range, default [0.3, 0.4]
	// (Table V's [3, 4] × 0.1).
	MaxDist Range

	// Region is the location space, default the paper's [0, 0.5]².
	Region geo.BBox

	// ZipfSkills switches skill popularity from uniform (the paper's
	// setting) to a Zipf distribution with this exponent s > 1: a few
	// skills dominate both worker abilities and task requirements, as real
	// tag data does. Zero keeps the uniform model.
	ZipfSkills float64

	// TaskWeight draws each task's objective weight uniformly from this
	// range; the zero value (or any range within [0,1]×{1}) leaves weights
	// at the paper's unit default. Used by the weighted-objective extension.
	TaskWeight Range

	// Hotspots switches the location model from the paper's uniform
	// distribution to a Gaussian-mixture "city" model with this many
	// hotspot centres (0 = uniform, the paper's setting). Real deployments
	// cluster around districts; the ablation-spatial experiment measures
	// how much that clustering changes the picture.
	Hotspots int
	// HotspotSpread is the per-axis standard deviation around a hotspot as
	// a fraction of the region diagonal; zero means 0.05.
	HotspotSpread float64
}

// DefaultSynthetic returns Table V's bold default configuration.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Seed:          1,
		Workers:       5000,
		Tasks:         5000,
		SkillUniverse: 1500,
		DepSize:       R(0, 70),
		WorkerSkills:  R(1, 15),
		StartTime:     R(0, 75),
		WaitTime:      R(10, 15),
		Velocity:      R(3, 4).Scale(0.01),
		MaxDist:       R(3, 4).Scale(0.1),
		Region:        geo.UnitHalf,
	}
}

// SmallScale returns the Table VI configuration: 20 workers, 40 tasks,
// skill universe 10, worker skills [1, 3], dependency size [0, 8].
//
// The temporal window is compacted relative to Table V's bold defaults
// (start [0, 20] instead of [0, 75]; wait [20, 30] instead of [10, 15]):
// Table VI evaluates one *static* batch, and under the wide window almost no
// worker-task pair is temporally feasible, while the paper reports an
// optimum of 17 assignments out of 20 workers — a density only a compact
// window reproduces.
func SmallScale() SyntheticConfig {
	c := DefaultSynthetic()
	c.Workers = 20
	c.Tasks = 40
	c.SkillUniverse = 10
	c.WorkerSkills = R(1, 3)
	c.DepSize = R(0, 8)
	c.StartTime = R(0, 20)
	c.WaitTime = R(20, 30)
	return c
}

// Scale shrinks the instance by factor f (0 < f ≤ 1) while preserving the
// ratios that shape the allocation problem: the worker and task counts, the
// skill universe (keeping workers-per-skill constant) and the
// dependency-size upper bound (keeping the dependency fraction of the task
// pool constant) all scale together. The benchmark harness uses it to run
// the paper's sweeps at laptop scale without degenerating the workload.
func (c SyntheticConfig) Scale(f float64) SyntheticConfig {
	if f > 0 && f < 1 {
		c.Workers = max1(int(float64(c.Workers) * f))
		c.Tasks = max1(int(float64(c.Tasks) * f))
		c.SkillUniverse = max1(int(float64(c.SkillUniverse) * f))
		c.DepSize.Hi = float64(int(c.DepSize.Hi * f))
		if c.DepSize.Hi < c.DepSize.Lo {
			c.DepSize.Hi = c.DepSize.Lo
		}
	}
	return c
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Validate reports configuration errors before generation.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Workers < 0 || c.Tasks < 0:
		return fmt.Errorf("gen: negative population (%d workers, %d tasks)", c.Workers, c.Tasks)
	case c.SkillUniverse < 1:
		return fmt.Errorf("gen: skill universe %d < 1", c.SkillUniverse)
	case c.WorkerSkills.Lo < 1:
		return fmt.Errorf("gen: worker skill range %v must start at ≥ 1", c.WorkerSkills)
	case c.DepSize.Lo < 0:
		return fmt.Errorf("gen: dependency size range %v negative", c.DepSize)
	case c.Velocity.Lo < 0 || c.MaxDist.Lo < 0 || c.WaitTime.Lo < 0 || c.StartTime.Lo < 0:
		return fmt.Errorf("gen: negative temporal/spatial range")
	case c.ZipfSkills != 0 && c.ZipfSkills <= 1:
		return fmt.Errorf("gen: Zipf exponent %v must be > 1 (or 0 for uniform)", c.ZipfSkills)
	case c.ZipfSkills > 1 && c.SkillUniverse < 2:
		return fmt.Errorf("gen: Zipf skills need a universe of at least 2")
	}
	return nil
}

// Synthetic generates an instance per Section V-A's synthetic procedure:
// uniform locations in the region, uniform parameter draws from every range,
// and dependency sets grown over earlier tasks with transitive closure.
func Synthetic(c SyntheticConfig) (*model.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	skillPick := func() model.Skill { return model.Skill(rng.Intn(c.SkillUniverse)) }
	if c.ZipfSkills > 1 {
		z := rand.NewZipf(rng, c.ZipfSkills, 1, uint64(c.SkillUniverse-1))
		skillPick = func() model.Skill { return model.Skill(z.Uint64()) }
	}
	// Weights come from an independent stream so that enabling the weighted
	// extension leaves the instance structurally identical — a weighted
	// sweep then isolates the objective change from generator noise.
	weightRng := rand.New(rand.NewSource(c.Seed ^ 0x5eed4a11))
	in := &model.Instance{SkillUniverse: c.SkillUniverse}
	sample := c.locationSampler(rng)

	for i := 0; i < c.Workers; i++ {
		nSkills := c.WorkerSkills.SampleInt(rng)
		if nSkills < 1 {
			nSkills = 1
		}
		if nSkills > c.SkillUniverse {
			nSkills = c.SkillUniverse
		}
		var skills model.SkillSet
		for skills.Len() < nSkills {
			skills.Add(skillPick())
		}
		in.Workers = append(in.Workers, model.Worker{
			ID:       model.WorkerID(i),
			Loc:      sample(),
			Start:    c.StartTime.Sample(rng),
			Wait:     c.WaitTime.Sample(rng),
			Velocity: c.Velocity.Sample(rng),
			MaxDist:  c.MaxDist.Sample(rng),
			Skills:   skills,
		})
	}

	// Task IDs follow creation order, and a task is created when it appears
	// on the platform: draw the start times up front and assign them in
	// ascending order, so dependencies (which point at earlier IDs) always
	// appear before their dependants.
	starts := sortedSamples(rng, c.StartTime, c.Tasks)
	candidates := make([]model.TaskID, 0, c.Tasks)
	for i := 0; i < c.Tasks; i++ {
		t := model.Task{
			ID:       model.TaskID(i),
			Loc:      sample(),
			Start:    starts[i],
			Wait:     c.WaitTime.Sample(rng),
			Requires: skillPick(),
		}
		if c.TaskWeight.Hi > 1 || (c.TaskWeight.Lo > 0 && c.TaskWeight.Lo != 1) {
			t.Weight = c.TaskWeight.Sample(weightRng)
		}
		t.Deps = growDeps(rng, in.Tasks, candidates, c.DepSize)
		in.Tasks = append(in.Tasks, t)
		candidates = append(candidates, t.ID)
	}

	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated instance invalid: %w", err)
	}
	return in, nil
}

// locationSampler returns the point generator for the configured spatial
// model: uniform over the region (the paper's synthetic setting) or a
// Gaussian mixture around Hotspots uniformly placed centres, clamped to the
// region.
func (c SyntheticConfig) locationSampler(rng *rand.Rand) func() geo.Point {
	if c.Hotspots <= 0 {
		return func() geo.Point { return randPoint(rng, c.Region) }
	}
	spread := c.HotspotSpread
	if spread <= 0 {
		spread = 0.05
	}
	sigma := spread * c.Region.Diagonal()
	centers := make([]geo.Point, c.Hotspots)
	for i := range centers {
		centers[i] = randPoint(rng, c.Region)
	}
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	return func() geo.Point {
		cen := centers[rng.Intn(len(centers))]
		return geo.Pt(
			clamp(cen.X+rng.NormFloat64()*sigma, c.Region.Min.X, c.Region.Max.X),
			clamp(cen.Y+rng.NormFloat64()*sigma, c.Region.Min.Y, c.Region.Max.Y),
		)
	}
}

// sortedSamples draws n values from r and returns them ascending.
func sortedSamples(rng *rand.Rand, r Range, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Sample(rng)
	}
	sort.Float64s(out)
	return out
}

func randPoint(rng *rand.Rand, box geo.BBox) geo.Point {
	return geo.Pt(
		box.Min.X+rng.Float64()*box.Width(),
		box.Min.Y+rng.Float64()*box.Height(),
	)
}
