package viz

import (
	"bytes"
	"strings"
	"testing"

	"dasc/internal/core"
	"dasc/internal/model"
)

func TestWriteDotExample1(t *testing.T) {
	in := model.Example1()
	var buf bytes.Buffer
	if err := WriteDot(&buf, in, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph dasc {",
		"t1 -> t0;", // t2 depends on t1 (0-indexed)
		"t2 -> t0;", // closed set keeps the redundant edge
		"t2 -> t1;",
		"t4 -> t3;",
		`t0 [label="t0\nψ0"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDotReduced(t *testing.T) {
	in := model.Example1()
	var buf bytes.Buffer
	if err := WriteDot(&buf, in, DotOptions{Reduce: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "t2 -> t0;") {
		t.Error("transitive reduction kept the redundant edge t2→t0")
	}
	if !strings.Contains(out, "t2 -> t1;") || !strings.Contains(out, "t1 -> t0;") {
		t.Error("reduction dropped required edges")
	}
}

func TestWriteDotWithAssignment(t *testing.T) {
	in := model.Example1()
	b := core.NewStaticBatch(in)
	a := core.NewGreedy().Assign(b)
	var buf bytes.Buffer
	if err := WriteDot(&buf, in, DotOptions{Assignment: a}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fillcolor=palegreen") {
		t.Error("assigned tasks not highlighted")
	}
}

func TestWriteDotCyclic(t *testing.T) {
	in := model.Example1()
	in.Tasks[0].Deps = []model.TaskID{2}
	var buf bytes.Buffer
	if err := WriteDot(&buf, in, DotOptions{Reduce: true}); err == nil {
		t.Error("cyclic instance accepted")
	}
}

func TestWriteSVGExample1(t *testing.T) {
	in := model.Example1()
	b := core.NewStaticBatch(in)
	a := core.NewGreedy().Assign(b)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, in, SVGOptions{Assignment: a, DrawDeps: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a standalone SVG")
	}
	if got := strings.Count(out, "<circle"); got != 5 {
		t.Errorf("task circles = %d, want 5", got)
	}
	// 1 background rect + 3 worker squares.
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Errorf("rects = %d, want 4", got)
	}
	if got := strings.Count(out, `stroke="crimson"`); got != a.Size() {
		t.Errorf("assignment links = %d, want %d", got, a.Size())
	}
	if !strings.Contains(out, "mediumseagreen") {
		t.Error("assigned tasks not coloured")
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("dependency arrows missing")
	}
}

func TestWriteSVGDegenerate(t *testing.T) {
	// Single colocated worker and task: zero-area bounds must not divide by
	// zero.
	in := &model.Instance{
		Workers: []model.Worker{{ID: 0, Start: 0, Wait: 1, Velocity: 1, MaxDist: 1, Skills: model.NewSkillSet(0)}},
		Tasks:   []model.Task{{ID: 0, Start: 0, Wait: 1, Requires: 0}},
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, in, SVGOptions{Width: 100}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no SVG emitted")
	}
}
