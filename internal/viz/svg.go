package viz

import (
	"fmt"
	"io"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// SVGOptions configures spatial rendering.
type SVGOptions struct {
	// Width of the output in pixels; height follows the instance's aspect
	// ratio. Zero means 800.
	Width int
	// Assignment, when non-nil, draws worker→task links.
	Assignment *model.Assignment
	// DrawDeps draws dependency arrows between task positions.
	DrawDeps bool
}

// WriteSVG renders the instance's spatial layout as a standalone SVG:
// workers as blue squares, tasks as orange circles (green when assigned),
// with optional assignment links and dependency arrows.
func WriteSVG(w io.Writer, in *model.Instance, opt SVGOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 800
	}
	box := boundsOf(in)
	if box.Width() <= 0 {
		box.Max.X = box.Min.X + 1
	}
	if box.Height() <= 0 {
		box.Max.Y = box.Min.Y + 1
	}
	box = box.Expand(0.05 * box.Diagonal())
	height := int(float64(width) * box.Height() / box.Width())
	sx := func(p geo.Point) float64 { return (p.X - box.Min.X) / box.Width() * float64(width) }
	// SVG's y axis grows downward; flip so north is up.
	sy := func(p geo.Point) float64 { return (1 - (p.Y-box.Min.Y)/box.Height()) * float64(height) }
	r := float64(width) / 160

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	assignedTo := map[model.TaskID]model.WorkerID{}
	if opt.Assignment != nil {
		for _, p := range opt.Assignment.Pairs {
			assignedTo[p.Task] = p.Worker
		}
	}

	if opt.DrawDeps {
		for i := range in.Tasks {
			t := &in.Tasks[i]
			for _, d := range t.Deps {
				dep := in.Task(d)
				fmt.Fprintf(w,
					`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc" stroke-dasharray="4 3"/>`+"\n",
					sx(t.Loc), sy(t.Loc), sx(dep.Loc), sy(dep.Loc))
			}
		}
	}
	for tid, wid := range assignedTo {
		t, wk := in.Task(tid), in.Worker(wid)
		if t == nil || wk == nil {
			continue
		}
		fmt.Fprintf(w,
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="crimson" stroke-width="1.5"/>`+"\n",
			sx(wk.Loc), sy(wk.Loc), sx(t.Loc), sy(t.Loc))
	}
	for i := range in.Tasks {
		t := &in.Tasks[i]
		fill := "orange"
		if _, ok := assignedTo[t.ID]; ok {
			fill = "mediumseagreen"
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"><title>t%d ψ%d deps=%v</title></circle>`+"\n",
			sx(t.Loc), sy(t.Loc), r, fill, t.ID, t.Requires, t.Deps)
	}
	for i := range in.Workers {
		wk := &in.Workers[i]
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="steelblue"><title>w%d %v</title></rect>`+"\n",
			sx(wk.Loc)-r*0.8, sy(wk.Loc)-r*0.8, r*1.6, r*1.6, wk.ID, wk.Skills)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// boundsOf returns the bounding box of all locations (zero box when empty).
func boundsOf(in *model.Instance) geo.BBox {
	var box geo.BBox
	first := true
	add := func(p geo.Point) {
		if first {
			box = geo.BBox{Min: p, Max: p}
			first = false
			return
		}
		if p.X < box.Min.X {
			box.Min.X = p.X
		}
		if p.Y < box.Min.Y {
			box.Min.Y = p.Y
		}
		if p.X > box.Max.X {
			box.Max.X = p.X
		}
		if p.Y > box.Max.Y {
			box.Max.Y = p.Y
		}
	}
	for i := range in.Workers {
		add(in.Workers[i].Loc)
	}
	for i := range in.Tasks {
		add(in.Tasks[i].Loc)
	}
	return box
}
