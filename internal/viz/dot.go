// Package viz renders DA-SC instances and assignments for inspection:
// Graphviz DOT for task dependency structure and standalone SVG for the
// spatial layout. Both are plain-text emitters with no external
// dependencies; the dasc-gen and dasc-run tools expose them behind flags.
package viz

import (
	"fmt"
	"io"
	"sort"

	"dasc/internal/model"
)

// DotOptions configures dependency-graph rendering.
type DotOptions struct {
	// Reduce renders the transitive reduction instead of the (closed)
	// dependency sets — far fewer edges, same reachability.
	Reduce bool
	// Assignment, when non-nil, colours assigned tasks.
	Assignment *model.Assignment
}

// WriteDot emits the instance's task dependency graph as Graphviz DOT.
// Edges point from a task to what it depends on.
func WriteDot(w io.Writer, in *model.Instance, opt DotOptions) error {
	g, err := in.DepGraph()
	if err != nil {
		return err
	}
	if opt.Reduce {
		g, err = g.TransitiveReduction()
		if err != nil {
			return err
		}
	}
	assigned := map[model.TaskID]model.WorkerID{}
	if opt.Assignment != nil {
		for _, p := range opt.Assignment.Pairs {
			assigned[p.Task] = p.Worker
		}
	}
	if _, err := fmt.Fprintln(w, "digraph dasc {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=BT;")
	fmt.Fprintln(w, "  node [shape=circle fontsize=10];")
	for i := range in.Tasks {
		t := &in.Tasks[i]
		label := fmt.Sprintf("t%d\\nψ%d", t.ID, t.Requires)
		if wid, ok := assigned[t.ID]; ok {
			fmt.Fprintf(w, "  t%d [label=\"%s\\nw%d\" style=filled fillcolor=palegreen];\n", t.ID, label, wid)
		} else {
			fmt.Fprintf(w, "  t%d [label=\"%s\"];\n", t.ID, label)
		}
	}
	for u := 0; u < g.Len(); u++ {
		deps := append([]int32(nil), g.Deps(u)...)
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
		for _, v := range deps {
			fmt.Fprintf(w, "  t%d -> t%d;\n", u, v)
		}
	}
	_, err = fmt.Fprintln(w, "}")
	return err
}
