package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(4)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var tm *Timer
	tm.Observe(1)
	tm.ObserveDuration(time.Second)
	if tm.Stats() != (TimerStats{}) {
		t.Error("nil timer has stats")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Stats().Count != 0 {
		t.Error("nil histogram has stats")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Timer("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry returned live metrics")
	}
	r.Reset()
	RecordBatch(r, BatchTrace{Assigned: 1})
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Timers) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

func TestRegistryGetOrCreateAndConcurrency(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Timer("t") != r.Timer("t") {
		t.Error("Timer not idempotent")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Timer("t").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Timer("t").Stats().Count; got != 8000 {
		t.Errorf("timer count = %d, want 8000", got)
	}
}

func TestRegistrySnapshotResetAndExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("dasc_batches_total").Add(7)
	r.Gauge("dasc_batch_active_workers").Set(3)
	r.Timer("dasc_phase_alloc_seconds").Observe(0.25)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE dasc_batches_total counter",
		"dasc_batches_total 7",
		"# TYPE dasc_batch_active_workers gauge",
		"dasc_batch_active_workers 3",
		"# TYPE dasc_phase_alloc_seconds summary",
		"dasc_phase_alloc_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q:\n%s", want, text)
		}
	}

	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if snap.Counters["dasc_batches_total"] != 7 {
		t.Errorf("JSON counters = %v", snap.Counters)
	}
	if snap.Timers["dasc_phase_alloc_seconds"].Count != 1 {
		t.Errorf("JSON timers = %v", snap.Timers)
	}

	r.Reset()
	s := r.Snapshot()
	if s.Counters["dasc_batches_total"] != 0 {
		t.Error("Reset kept counter value")
	}
	if _, ok := s.Counters["dasc_batches_total"]; !ok {
		t.Error("Reset dropped the registered name")
	}
	if s.Timers["dasc_phase_alloc_seconds"].Count != 0 {
		t.Error("Reset kept timer observations")
	}
}

func TestBatchRecAccumulatesIntoTrace(t *testing.T) {
	r := NewBatchRec(4, 20)
	r.SetPopulation(10, 30)
	r.AddExamined(100)
	r.AddAdmitted(40)
	r.AddMemoHits(25)
	r.AddMemoMisses(5)
	r.AddGridOps(3)
	r.CacheWorkerRevalidated()
	r.CacheWorkerRevalidated()
	r.AddCacheWorkersRebuilt(8)
	r.AddCacheTasksArrived(2)
	r.AddCacheTasksDeparted(1)
	r.CacheFullRebuild()
	r.SetOutcome(12, 3, 1)
	r.ObservePhases(2*time.Millisecond, 4*time.Millisecond, time.Millisecond)

	tr := r.Finish()
	want := BatchTrace{
		Batch: 4, Time: 20, Workers: 10, Tasks: 30,
		IndexBuildMS: 2, AllocMS: 4, DispatchMS: 1,
		FullRebuild: true, WorkersRevalidated: 2, WorkersRebuilt: 8,
		TasksArrived: 2, TasksDeparted: 1, GridOps: 3,
		MemoHits: 25, MemoMisses: 5,
		CandidatesExamined: 100, CandidatesAdmitted: 40,
		Assigned: 12, Deferred: 3, Rogue: 1,
	}
	if tr != want {
		t.Errorf("trace = %+v\nwant    %+v", tr, want)
	}
	if got := tr.CacheHitRatio(); got != 25.0/30.0 {
		t.Errorf("CacheHitRatio = %v", got)
	}
	if (BatchTrace{}).CacheHitRatio() != 0 {
		t.Error("empty trace hit ratio not 0")
	}

	var nilRec *BatchRec
	nilRec.AddExamined(1)
	nilRec.SetOutcome(1, 1, 1)
	nilRec.ObservePhases(time.Second, time.Second, time.Second)
	if nilRec.Finish() != (BatchTrace{}) {
		t.Error("nil recorder produced a non-zero trace")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("Cap/Len = %d/%d", r.Cap(), r.Len())
	}
	for i := 0; i < 5; i++ {
		r.Add(BatchTrace{Batch: i})
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	got := r.Last(10) // over-asking clamps
	if len(got) != 3 || got[0].Batch != 2 || got[2].Batch != 4 {
		t.Errorf("Last(10) = %+v", got)
	}
	got = r.Last(2)
	if len(got) != 2 || got[0].Batch != 3 || got[1].Batch != 4 {
		t.Errorf("Last(2) = %+v", got)
	}
	if out := r.Last(0); out == nil || len(out) != 0 {
		t.Errorf("Last(0) = %v", out)
	}
	var nilRing *TraceRing
	nilRing.Add(BatchTrace{})
	if nilRing.Len() != 0 || nilRing.Cap() != 0 || len(nilRing.Last(5)) != 0 {
		t.Error("nil ring misbehaved")
	}
	if NewTraceRing(0).Cap() != DefaultTraceDepth {
		t.Error("default capacity not applied")
	}
}

func TestRecordBatchFoldsStandardNames(t *testing.T) {
	reg := NewRegistry()
	tr := BatchTrace{
		Workers: 5, Tasks: 9, Assigned: 3, Deferred: 1, Rogue: 2,
		WorkersRevalidated: 4, WorkersRebuilt: 1, FullRebuild: true,
		TasksArrived: 2, TasksDeparted: 1, GridOps: 3,
		MemoHits: 10, MemoMisses: 2,
		CandidatesExamined: 40, CandidatesAdmitted: 12,
		IndexBuildMS: 1.5, AllocMS: 2.5, DispatchMS: 0.5,
	}
	RecordBatch(reg, tr)
	RecordBatch(reg, tr)
	s := reg.Snapshot()
	if s.Counters[MBatchesTotal] != 2 {
		t.Errorf("%s = %d", MBatchesTotal, s.Counters[MBatchesTotal])
	}
	if s.Counters[MAssignedTotal] != 6 || s.Counters[MRogueTotal] != 4 {
		t.Errorf("allocation counters = %v", s.Counters)
	}
	if s.Counters[MCacheRevalidatedTotal] != 8 || s.Counters[MCacheFullRebuildsTotal] != 2 {
		t.Errorf("cache counters = %v", s.Counters)
	}
	if s.Counters[MMemoHitsTotal] != 20 || s.Counters[MCandExaminedTotal] != 80 {
		t.Errorf("memo/pruning counters = %v", s.Counters)
	}
	if s.Gauges[MBatchWorkersGauge] != 5 || s.Gauges[MBatchTasksGauge] != 9 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.Histograms[TPhaseAlloc].Count != 2 || s.Histograms[TPhaseAlloc].Sum != 0.005 {
		t.Errorf("alloc histogram = %+v", s.Histograms[TPhaseAlloc])
	}
}
