package obs_test

import (
	"math/rand"
	"testing"

	"dasc/internal/core"
	"dasc/internal/geo"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// gameTraceInstance builds a seeded random instance with dependency chains —
// enough structure for the best-response engine to run several rounds.
func gameTraceInstance(seed int64, nWorkers, nTasks int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	const nSkills = 4
	in := &model.Instance{SkillUniverse: nSkills}
	for i := 0; i < nWorkers; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID: model.WorkerID(i), Loc: geo.Pt(rng.Float64(), rng.Float64()),
			Start: 0, Wait: 100,
			Velocity: 0.05 + rng.Float64()*0.05,
			MaxDist:  0.3 + rng.Float64()*0.4,
			Skills:   model.NewSkillSet(model.Skill(rng.Intn(nSkills))),
		})
	}
	for i := 0; i < nTasks; i++ {
		t := model.Task{
			ID: model.TaskID(i), Loc: geo.Pt(rng.Float64(), rng.Float64()),
			Start: 0, Wait: 20 + rng.Float64()*30,
			Requires: model.Skill(rng.Intn(nSkills)),
		}
		if i > 0 && rng.Float64() < 0.4 {
			t.Deps = append(t.Deps, model.TaskID(rng.Intn(i)))
		}
		in.Tasks = append(in.Tasks, t)
	}
	return in
}

// TestGameTraceInvariant drives both best-response engines through a
// recorder and asserts the sweep-accounting invariant on the resulting
// BatchTrace: evaluated + skipped == active · rounds — every active worker
// is either evaluated or skipped exactly once per round — and the naive
// sweep never skips. The companion of core's sum(admitted)==FeasiblePairs
// recorder check, at the trace layer the platforms export.
func TestGameTraceInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := gameTraceInstance(seed, 25, 30)
		for _, disable := range []bool{false, true} {
			g := core.NewGame(core.GameOptions{GreedyInit: true, Seed: seed, DisableWorklist: disable})
			b := core.NewStaticBatch(in)
			rec := obs.NewBatchRec(0, 0)
			b.SetRecorder(rec)
			g.Assign(b)
			tr := rec.Finish()
			if tr.GameRounds == 0 || tr.GameActive == 0 {
				t.Fatalf("seed %d disable=%v: game did not run: %+v", seed, disable, tr)
			}
			if tr.GameEvaluated+tr.GameSkipped != int64(tr.GameActive)*int64(tr.GameRounds) {
				t.Fatalf("seed %d disable=%v: evaluated %d + skipped %d != active %d · rounds %d",
					seed, disable, tr.GameEvaluated, tr.GameSkipped, tr.GameActive, tr.GameRounds)
			}
			if disable && tr.GameSkipped != 0 {
				t.Fatalf("seed %d: naive sweep recorded %d skips", seed, tr.GameSkipped)
			}
			if !disable && tr.GameSkipped == 0 {
				t.Fatalf("seed %d: worklist engine skipped nothing on a multi-round run (%+v)", seed, tr)
			}
		}
	}
}

// TestGameTraceMetricsRecorded folds a game-bearing trace into a registry and
// checks the dasc_game_* counters land.
func TestGameTraceMetricsRecorded(t *testing.T) {
	in := gameTraceInstance(6, 20, 25)
	g := core.NewGame(core.GameOptions{GreedyInit: true, Seed: 6})
	b := core.NewStaticBatch(in)
	rec := obs.NewBatchRec(0, 0)
	b.SetRecorder(rec)
	g.Assign(b)
	tr := rec.Finish()

	r := obs.NewRegistry()
	obs.RecordBatch(r, tr)
	if got := r.Counter(obs.MGameRoundsTotal).Value(); got != int64(tr.GameRounds) {
		t.Errorf("%s = %d, want %d", obs.MGameRoundsTotal, got, tr.GameRounds)
	}
	if got := r.Counter(obs.MGameEvaluatedTotal).Value(); got != tr.GameEvaluated {
		t.Errorf("%s = %d, want %d", obs.MGameEvaluatedTotal, got, tr.GameEvaluated)
	}
	if got := r.Counter(obs.MGameSkippedTotal).Value(); got != tr.GameSkipped {
		t.Errorf("%s = %d, want %d", obs.MGameSkippedTotal, got, tr.GameSkipped)
	}
	if got := r.Counter(obs.MGameMovedTotal).Value(); got != tr.GameMoved {
		t.Errorf("%s = %d, want %d", obs.MGameMovedTotal, got, tr.GameMoved)
	}
}
