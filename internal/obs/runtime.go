package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeCollector samples process-level runtime stats into a Registry. It is
// wired in as a scrape hook, so the gauges are refreshed lazily at snapshot
// time rather than by a background poller — a server that nobody scrapes pays
// nothing, and every scrape sees stats no older than itself.
type runtimeCollector struct {
	mu    sync.Mutex
	start time.Time
	// lastGC feeds the dasc_runtime_gc_cycles_total counter: MemStats.NumGC is
	// cumulative-since-process-start, Counter.Add wants deltas.
	lastGC uint32
}

// RegisterRuntimeMetrics installs a scrape hook on the registry exposing the
// dasc_runtime_* family: goroutine count, heap alloc/sys bytes, GC cycle and
// pause totals, and process uptime. No-op on a nil registry. Call once per
// registry; a second call would double-count GC cycles.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	c := &runtimeCollector{start: time.Now()}
	r.AddScrapeHook(func() { c.collect(r) })
}

func (c *runtimeCollector) collect(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	c.mu.Lock()
	delta := int64(ms.NumGC - c.lastGC)
	c.lastGC = ms.NumGC
	uptime := time.Since(c.start).Seconds()
	c.mu.Unlock()

	r.Gauge(MRuntimeGoroutines).Set(float64(runtime.NumGoroutine()))
	r.Gauge(MRuntimeHeapAllocBytes).Set(float64(ms.HeapAlloc))
	r.Gauge(MRuntimeHeapSysBytes).Set(float64(ms.HeapSys))
	if delta > 0 {
		r.Counter(MRuntimeGCCyclesTotal).Add(delta)
	} else {
		// Touch the counter so the series exists before the first GC cycle.
		r.Counter(MRuntimeGCCyclesTotal).Add(0)
	}
	r.Gauge(MRuntimeGCPauseSeconds).Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge(MRuntimeUptimeSeconds).Set(uptime)
}
