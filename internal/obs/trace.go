package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// BatchTrace is the per-batch instrumentation record: what one batch process
// cost, phase by phase, and what the candidate engine and the allocator did
// inside it. The platforms keep the recent traces in a TraceRing (served by
// GET /v1/trace on the server) and fold each one into a Registry
// (RecordBatch) for the aggregate view.
type BatchTrace struct {
	Batch   int     `json:"batch"`
	Time    float64 `json:"time"`
	Workers int     `json:"workers"`
	Tasks   int     `json:"tasks"`

	// Phase wall-clock timings, milliseconds.
	IndexBuildMS float64 `json:"index_build_ms"` // candidate-engine build or incremental revalidate
	AllocMS      float64 `json:"alloc_ms"`       // allocator + dependency fixpoint
	DispatchMS   float64 `json:"dispatch_ms"`    // worker-state updates for the dispatched pairs

	// EngineCache outcomes.
	FullRebuild        bool  `json:"full_rebuild"`        // batch built from scratch (first batch, metric change, …)
	WorkersRevalidated int   `json:"workers_revalidated"` // unmoved workers revalidated by time arithmetic
	WorkersRebuilt     int   `json:"workers_rebuilt"`     // moved/new workers rebuilt through the pruned scan
	TasksArrived       int   `json:"tasks_arrived"`
	TasksDeparted      int   `json:"tasks_departed"`
	GridOps            int64 `json:"grid_ops"` // maintained-grid inserts + removes

	// Travel-time memo outcomes: hits are lookups served from a memoized
	// travel time (cross-batch revalidation and BatchIndex.TravelCost),
	// misses are fresh distance evaluations.
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`

	// Pruning effectiveness: candidate pairs surviving the skill/grid
	// pruning and probed with the exact feasibility predicate, vs. pairs
	// admitted into the index.
	CandidatesExamined int64 `json:"candidates_examined"`
	CandidatesAdmitted int64 `json:"candidates_admitted"`

	// Allocation economy of the engine build: bytes carved out of slab
	// arenas into the index vs. bytes of freshly allocated arena blocks
	// (carved ≫ alloc means the arenas are amortising well), and the
	// cache's struct recycling (workers served from the free list this
	// batch, free-list size after absorb).
	ArenaCarvedBytes int64 `json:"arena_carved_bytes"`
	ArenaAllocBytes  int64 `json:"arena_alloc_bytes"`
	PooledWorkers    int   `json:"pooled_workers"`
	PoolOccupancy    int   `json:"pool_occupancy"`

	// Allocation results.
	Assigned int `json:"assigned"` // valid pairs
	Deferred int `json:"deferred"` // pairs dropped by the dependency fixpoint
	Rogue    int `json:"rogue"`    // pairs naming a worker outside the batch

	// DASC_Game best-response engine outcomes (zero when the allocator is not
	// game-based). Invariant: GameEvaluated + GameSkipped ==
	// GameActive · GameRounds — every active worker is either evaluated or
	// skipped exactly once per round; the naive sweep always has
	// GameSkipped == 0.
	GameRounds    int   `json:"game_rounds"`    // best-response rounds executed
	GameActive    int   `json:"game_active"`    // workers with a non-empty strategy set
	GameEvaluated int64 `json:"game_evaluated"` // best responses computed
	GameSkipped   int64 `json:"game_skipped"`   // clean workers skipped by the worklist
	GameMoved     int64 `json:"game_moved"`     // strategy switches

	// RequestID is the X-Request-ID of the HTTP request that triggered this
	// batch (POST /v1/tick); empty for ticker- or simulator-driven batches.
	// The tick→trace correlation hop: grep /v1/trace for the ID a client saw.
	RequestID string `json:"request_id,omitempty"`
}

// CacheHitRatio returns memo hits over total memo lookups, 0 when there were
// none.
func (t BatchTrace) CacheHitRatio() float64 {
	total := t.MemoHits + t.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(t.MemoHits) / float64(total)
}

// BatchRec accumulates one batch's BatchTrace. The hot-path counters are
// atomics because the index build fans out across goroutines; the phase and
// outcome setters belong to the single platform goroutine driving the batch.
// Every method is nil-safe: a nil recorder is the disabled state and costs
// one nil check per call site.
type BatchRec struct {
	trace BatchTrace

	examined    atomic.Int64
	admitted    atomic.Int64
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
	gridOps     atomic.Int64
	revalidated atomic.Int64
	rebuilt     atomic.Int64
	arrived     atomic.Int64
	departed    atomic.Int64
	arenaCarved atomic.Int64
	arenaAlloc  atomic.Int64
	fullRebuild atomic.Bool
}

// NewBatchRec starts a recorder for batch number batch at logical time t.
func NewBatchRec(batch int, t float64) *BatchRec {
	return &BatchRec{trace: BatchTrace{Batch: batch, Time: t}}
}

// AddExamined counts candidate pairs probed with the exact feasibility
// predicate.
func (r *BatchRec) AddExamined(n int64) {
	if r == nil {
		return
	}
	r.examined.Add(n)
}

// AddAdmitted counts candidate pairs admitted into the index.
func (r *BatchRec) AddAdmitted(n int64) {
	if r == nil {
		return
	}
	r.admitted.Add(n)
}

// AddMemoHits counts travel-time lookups served from a memo.
func (r *BatchRec) AddMemoHits(n int64) {
	if r == nil {
		return
	}
	r.memoHits.Add(n)
}

// AddMemoMisses counts fresh travel-time/distance evaluations.
func (r *BatchRec) AddMemoMisses(n int64) {
	if r == nil {
		return
	}
	r.memoMisses.Add(n)
}

// AddGridOps counts maintained-grid inserts and removes.
func (r *BatchRec) AddGridOps(n int64) {
	if r == nil {
		return
	}
	r.gridOps.Add(n)
}

// CacheWorkerRevalidated counts one unmoved worker revalidated by time
// arithmetic.
func (r *BatchRec) CacheWorkerRevalidated() {
	if r == nil {
		return
	}
	r.revalidated.Add(1)
}

// AddCacheWorkersRevalidated counts unmoved workers revalidated by time
// arithmetic — the batched form the parallel incremental build uses (one
// add per goroutine instead of one per worker).
func (r *BatchRec) AddCacheWorkersRevalidated(n int64) {
	if r == nil {
		return
	}
	r.revalidated.Add(n)
}

// AddArenaBytes records slab-arena economy for the batch's index build:
// carved is bytes handed out to index slices, alloc is bytes of freshly
// allocated blocks.
func (r *BatchRec) AddArenaBytes(carved, alloc int64) {
	if r == nil {
		return
	}
	r.arenaCarved.Add(carved)
	r.arenaAlloc.Add(alloc)
}

// SetCachePool records the cache's struct recycling for the batch: pooled
// is how many cached-worker structs were served from the free list,
// occupancy the free-list size after absorb.
func (r *BatchRec) SetCachePool(pooled, occupancy int) {
	if r == nil {
		return
	}
	r.trace.PooledWorkers, r.trace.PoolOccupancy = pooled, occupancy
}

// AddCacheWorkersRebuilt counts workers rebuilt through the pruned scan.
func (r *BatchRec) AddCacheWorkersRebuilt(n int64) {
	if r == nil {
		return
	}
	r.rebuilt.Add(n)
}

// AddCacheTasksArrived counts tasks that entered the batch since the last
// one.
func (r *BatchRec) AddCacheTasksArrived(n int64) {
	if r == nil {
		return
	}
	r.arrived.Add(n)
}

// AddCacheTasksDeparted counts tasks that left the batch since the last one.
func (r *BatchRec) AddCacheTasksDeparted(n int64) {
	if r == nil {
		return
	}
	r.departed.Add(n)
}

// CacheFullRebuild marks the batch as built entirely from scratch.
func (r *BatchRec) CacheFullRebuild() {
	if r == nil {
		return
	}
	r.fullRebuild.Store(true)
}

// SetRequestID records the request ID of the HTTP request driving the batch.
func (r *BatchRec) SetRequestID(id string) {
	if r == nil {
		return
	}
	r.trace.RequestID = id
}

// SetPopulation records the batch's active workers and pending tasks.
func (r *BatchRec) SetPopulation(workers, tasks int) {
	if r == nil {
		return
	}
	r.trace.Workers, r.trace.Tasks = workers, tasks
}

// SetOutcome records the allocation results.
func (r *BatchRec) SetOutcome(assigned, deferred, rogue int) {
	if r == nil {
		return
	}
	r.trace.Assigned, r.trace.Deferred, r.trace.Rogue = assigned, deferred, rogue
}

// SetGameStats records the DASC_Game best-response engine's outcomes for
// the batch: rounds run, workers with a non-empty strategy set, and the
// evaluated/skipped/moved counters of the (worklist or naive) sweep.
func (r *BatchRec) SetGameStats(rounds, active int, evaluated, skipped, moved int64) {
	if r == nil {
		return
	}
	r.trace.GameRounds, r.trace.GameActive = rounds, active
	r.trace.GameEvaluated, r.trace.GameSkipped, r.trace.GameMoved = evaluated, skipped, moved
}

// ObservePhases records the batch's phase timings.
func (r *BatchRec) ObservePhases(indexBuild, alloc, dispatch time.Duration) {
	if r == nil {
		return
	}
	r.trace.IndexBuildMS = float64(indexBuild) / float64(time.Millisecond)
	r.trace.AllocMS = float64(alloc) / float64(time.Millisecond)
	r.trace.DispatchMS = float64(dispatch) / float64(time.Millisecond)
}

// Finish folds the accumulated counters into the trace and returns it. The
// zero BatchTrace on a nil recorder.
func (r *BatchRec) Finish() BatchTrace {
	if r == nil {
		return BatchTrace{}
	}
	t := r.trace
	t.CandidatesExamined = r.examined.Load()
	t.CandidatesAdmitted = r.admitted.Load()
	t.MemoHits = r.memoHits.Load()
	t.MemoMisses = r.memoMisses.Load()
	t.GridOps = r.gridOps.Load()
	t.WorkersRevalidated = int(r.revalidated.Load())
	t.WorkersRebuilt = int(r.rebuilt.Load())
	t.TasksArrived = int(r.arrived.Load())
	t.TasksDeparted = int(r.departed.Load())
	t.ArenaCarvedBytes = r.arenaCarved.Load()
	t.ArenaAllocBytes = r.arenaAlloc.Load()
	t.FullRebuild = r.fullRebuild.Load()
	return t
}

// TraceRing is a fixed-capacity ring buffer of the most recent BatchTraces,
// safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []BatchTrace
	next int
	n    int
}

// DefaultTraceDepth is the ring capacity the platforms use unless
// configured otherwise.
const DefaultTraceDepth = 256

// NewTraceRing creates a ring holding the last capacity traces; a
// non-positive capacity means DefaultTraceDepth.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &TraceRing{buf: make([]BatchTrace, capacity)}
}

// Add appends a trace, evicting the oldest when full. No-op on a nil ring.
func (r *TraceRing) Add(t BatchTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns how many traces are buffered; zero on a nil ring.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity; zero on a nil ring.
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Last returns up to n of the most recent traces, oldest first. Asking for
// more than is buffered returns everything; the result is always non-nil so
// it JSON-encodes as [] rather than null.
func (r *TraceRing) Last(n int) []BatchTrace {
	if r == nil || n <= 0 {
		return []BatchTrace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n {
		n = r.n
	}
	out := make([]BatchTrace, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
