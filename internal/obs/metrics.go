package obs

// The dasc_* metric name inventory. Both platforms report through
// RecordBatch, so the same names mean the same things on the simulator and
// the server (and in DESIGN.md §3.6, which documents them).
const (
	// Batch loop.
	MBatchesTotal      = "dasc_batches_total"
	MBatchWorkersGauge = "dasc_batch_active_workers"
	MBatchTasksGauge   = "dasc_batch_pending_tasks"

	// Allocation results.
	MAssignedTotal = "dasc_assigned_pairs_total"
	MDeferredTotal = "dasc_deferred_pairs_total"
	MRogueTotal    = "dasc_rogue_pairs_total"

	// EngineCache outcomes.
	MCacheRevalidatedTotal  = "dasc_cache_workers_revalidated_total"
	MCacheRebuiltTotal      = "dasc_cache_workers_rebuilt_total"
	MCacheFullRebuildsTotal = "dasc_cache_full_rebuilds_total"
	MCacheArrivedTotal      = "dasc_cache_tasks_arrived_total"
	MCacheDepartedTotal     = "dasc_cache_tasks_departed_total"
	MCacheGridOpsTotal      = "dasc_cache_grid_ops_total"

	// Allocation economy: slab-arena bytes feeding the index builds and
	// the cache's recycled-struct pool.
	MArenaCarvedTotal   = "dasc_arena_carved_bytes_total"
	MArenaAllocTotal    = "dasc_arena_alloc_bytes_total"
	MCachePooledTotal   = "dasc_cache_pooled_workers_total"
	MCachePoolOccupancy = "dasc_cache_pool_occupancy"

	// Travel-time memo.
	MMemoHitsTotal   = "dasc_memo_hits_total"
	MMemoMissesTotal = "dasc_memo_misses_total"

	// Journal durability (server): every append is flushed; fsyncs follow
	// the configured server.FsyncMode.
	MJournalAppendsTotal = "dasc_journal_appends_total"
	MJournalBytesTotal   = "dasc_journal_bytes_total"
	MJournalFsyncsTotal  = "dasc_journal_fsyncs_total"

	// Ingest pipeline (server): the group-commit admission queue and its
	// committer drains. Enqueued counts accepted stagings, rejected counts
	// backpressured (429) submissions, committed/failed split drain results.
	MIngestEnqueuedTotal  = "dasc_ingest_enqueued_total"
	MIngestRejectedTotal  = "dasc_ingest_rejected_total"
	MIngestDrainsTotal    = "dasc_ingest_drains_total"
	MIngestCommittedTotal = "dasc_ingest_committed_total"
	MIngestFailedTotal    = "dasc_ingest_failed_total"
	MIngestQueueDepth     = "dasc_ingest_queue_depth"
	TIngestBatchEntries   = "dasc_ingest_batch_entries"
	TIngestCommitSeconds  = "dasc_ingest_commit_seconds"
	TIngestJournalSeconds = "dasc_ingest_journal_seconds"

	// Snapshots (server): atomic state snapshots that rotate the journal.
	MSnapshotsTotal        = "dasc_snapshots_total"
	MSnapshotFailuresTotal = "dasc_snapshot_failures_total"
	MSnapshotBytesGauge    = "dasc_snapshot_bytes"
	TSnapshotSeconds       = "dasc_snapshot_seconds"

	// Crash recovery (server): what startup replay applied and whether a
	// torn final journal line was truncated.
	MRecoveryEntriesTotal   = "dasc_recovery_entries_replayed_total"
	MRecoveryTicksTotal     = "dasc_recovery_ticks_replayed_total"
	MRecoveryTornLinesTotal = "dasc_recovery_torn_lines_total"
	MRecoveryTornBytesTotal = "dasc_recovery_torn_bytes_truncated_total"

	// Pruning effectiveness.
	MCandExaminedTotal = "dasc_candidates_examined_total"
	MCandAdmittedTotal = "dasc_candidates_admitted_total"

	// DASC_Game best-response engine: rounds run and the worklist sweep's
	// evaluated/skipped/moved split (skipped stays 0 under the naive sweep,
	// so skipped/(evaluated+skipped) is the engine's observed skip rate).
	MGameRoundsTotal    = "dasc_game_rounds_total"
	MGameEvaluatedTotal = "dasc_game_evaluated_total"
	MGameSkippedTotal   = "dasc_game_skipped_total"
	MGameMovedTotal     = "dasc_game_moved_total"

	// Phase latency histograms (seconds, log-scale buckets). These were
	// uniform-bucket Timers through PR 7; sub-10ms phases collapsed into one
	// bucket and reported p50 == p99, so latency paths now use the
	// exponential-bucket Histogram (histogram.go).
	TPhaseIndex    = "dasc_phase_index_seconds"
	TPhaseAlloc    = "dasc_phase_alloc_seconds"
	TPhaseDispatch = "dasc_phase_dispatch_seconds"

	// HTTP middleware (server): every API route is wrapped with per-route
	// telemetry (middleware.go). Requests are counted by status class
	// (labels: route, code="2xx".."5xx"/"other"), request/response bodies by
	// bytes (label: route), and acknowledgement latency lands in a log-scale
	// histogram (label: route). Registry names carry the label block via
	// obs.Labeled.
	MHTTPRequestsTotal      = "dasc_http_requests_total"
	MHTTPRequestBytesTotal  = "dasc_http_request_bytes_total"
	MHTTPResponseBytesTotal = "dasc_http_response_bytes_total"
	THTTPRequestSeconds     = "dasc_http_request_seconds"

	// Runtime collector (runtime.go): process-level gauges sampled at scrape
	// time by a registry scrape hook — goroutines, heap, GC and uptime.
	// dasc_runtime_gc_cycles_total is a true counter (delta-fed from
	// runtime.MemStats.NumGC); gc_pause_seconds is cumulative but exposed as
	// a gauge because Counter is integral.
	MRuntimeGoroutines     = "dasc_runtime_goroutines"
	MRuntimeHeapAllocBytes = "dasc_runtime_heap_alloc_bytes"
	MRuntimeHeapSysBytes   = "dasc_runtime_heap_sys_bytes"
	MRuntimeGCCyclesTotal  = "dasc_runtime_gc_cycles_total"
	MRuntimeGCPauseSeconds = "dasc_runtime_gc_pause_seconds"
	MRuntimeUptimeSeconds  = "dasc_runtime_uptime_seconds"
)

// RecordBatch folds one batch trace into the registry under the standard
// dasc_* names. No-op on a nil registry.
func RecordBatch(r *Registry, t BatchTrace) {
	if r == nil {
		return
	}
	r.Counter(MBatchesTotal).Inc()
	r.Gauge(MBatchWorkersGauge).Set(float64(t.Workers))
	r.Gauge(MBatchTasksGauge).Set(float64(t.Tasks))

	r.Counter(MAssignedTotal).Add(int64(t.Assigned))
	r.Counter(MDeferredTotal).Add(int64(t.Deferred))
	r.Counter(MRogueTotal).Add(int64(t.Rogue))

	r.Counter(MCacheRevalidatedTotal).Add(int64(t.WorkersRevalidated))
	r.Counter(MCacheRebuiltTotal).Add(int64(t.WorkersRebuilt))
	if t.FullRebuild {
		r.Counter(MCacheFullRebuildsTotal).Inc()
	}
	r.Counter(MCacheArrivedTotal).Add(int64(t.TasksArrived))
	r.Counter(MCacheDepartedTotal).Add(int64(t.TasksDeparted))
	r.Counter(MCacheGridOpsTotal).Add(t.GridOps)

	r.Counter(MArenaCarvedTotal).Add(t.ArenaCarvedBytes)
	r.Counter(MArenaAllocTotal).Add(t.ArenaAllocBytes)
	r.Counter(MCachePooledTotal).Add(int64(t.PooledWorkers))
	r.Gauge(MCachePoolOccupancy).Set(float64(t.PoolOccupancy))

	r.Counter(MMemoHitsTotal).Add(t.MemoHits)
	r.Counter(MMemoMissesTotal).Add(t.MemoMisses)

	r.Counter(MCandExaminedTotal).Add(t.CandidatesExamined)
	r.Counter(MCandAdmittedTotal).Add(t.CandidatesAdmitted)

	r.Counter(MGameRoundsTotal).Add(int64(t.GameRounds))
	r.Counter(MGameEvaluatedTotal).Add(t.GameEvaluated)
	r.Counter(MGameSkippedTotal).Add(t.GameSkipped)
	r.Counter(MGameMovedTotal).Add(t.GameMoved)

	r.Histogram(TPhaseIndex).Observe(t.IndexBuildMS / 1e3)
	r.Histogram(TPhaseAlloc).Observe(t.AllocMS / 1e3)
	r.Histogram(TPhaseDispatch).Observe(t.DispatchMS / 1e3)
}
