package obs

// The dasc_* metric name inventory. Both platforms report through
// RecordBatch, so the same names mean the same things on the simulator and
// the server (and in DESIGN.md §3.6, which documents them).
const (
	// Batch loop.
	MBatchesTotal      = "dasc_batches_total"
	MBatchWorkersGauge = "dasc_batch_active_workers"
	MBatchTasksGauge   = "dasc_batch_pending_tasks"

	// Allocation results.
	MAssignedTotal = "dasc_assigned_pairs_total"
	MDeferredTotal = "dasc_deferred_pairs_total"
	MRogueTotal    = "dasc_rogue_pairs_total"

	// EngineCache outcomes.
	MCacheRevalidatedTotal  = "dasc_cache_workers_revalidated_total"
	MCacheRebuiltTotal      = "dasc_cache_workers_rebuilt_total"
	MCacheFullRebuildsTotal = "dasc_cache_full_rebuilds_total"
	MCacheArrivedTotal      = "dasc_cache_tasks_arrived_total"
	MCacheDepartedTotal     = "dasc_cache_tasks_departed_total"
	MCacheGridOpsTotal      = "dasc_cache_grid_ops_total"

	// Allocation economy: slab-arena bytes feeding the index builds and
	// the cache's recycled-struct pool.
	MArenaCarvedTotal   = "dasc_arena_carved_bytes_total"
	MArenaAllocTotal    = "dasc_arena_alloc_bytes_total"
	MCachePooledTotal   = "dasc_cache_pooled_workers_total"
	MCachePoolOccupancy = "dasc_cache_pool_occupancy"

	// Travel-time memo.
	MMemoHitsTotal   = "dasc_memo_hits_total"
	MMemoMissesTotal = "dasc_memo_misses_total"

	// Journal durability (server): every append is flushed; fsyncs follow
	// the configured server.FsyncMode.
	MJournalAppendsTotal = "dasc_journal_appends_total"
	MJournalBytesTotal   = "dasc_journal_bytes_total"
	MJournalFsyncsTotal  = "dasc_journal_fsyncs_total"

	// Ingest pipeline (server): the group-commit admission queue and its
	// committer drains. Enqueued counts accepted stagings, rejected counts
	// backpressured (429) submissions, committed/failed split drain results.
	MIngestEnqueuedTotal  = "dasc_ingest_enqueued_total"
	MIngestRejectedTotal  = "dasc_ingest_rejected_total"
	MIngestDrainsTotal    = "dasc_ingest_drains_total"
	MIngestCommittedTotal = "dasc_ingest_committed_total"
	MIngestFailedTotal    = "dasc_ingest_failed_total"
	MIngestQueueDepth     = "dasc_ingest_queue_depth"
	TIngestBatchEntries   = "dasc_ingest_batch_entries"
	TIngestCommitSeconds  = "dasc_ingest_commit_seconds"
	TIngestJournalSeconds = "dasc_ingest_journal_seconds"

	// Snapshots (server): atomic state snapshots that rotate the journal.
	MSnapshotsTotal        = "dasc_snapshots_total"
	MSnapshotFailuresTotal = "dasc_snapshot_failures_total"
	MSnapshotBytesGauge    = "dasc_snapshot_bytes"
	TSnapshotSeconds       = "dasc_snapshot_seconds"

	// Crash recovery (server): what startup replay applied and whether a
	// torn final journal line was truncated.
	MRecoveryEntriesTotal   = "dasc_recovery_entries_replayed_total"
	MRecoveryTicksTotal     = "dasc_recovery_ticks_replayed_total"
	MRecoveryTornLinesTotal = "dasc_recovery_torn_lines_total"
	MRecoveryTornBytesTotal = "dasc_recovery_torn_bytes_truncated_total"

	// Pruning effectiveness.
	MCandExaminedTotal = "dasc_candidates_examined_total"
	MCandAdmittedTotal = "dasc_candidates_admitted_total"

	// Phase timers (seconds).
	TPhaseIndex    = "dasc_phase_index_seconds"
	TPhaseAlloc    = "dasc_phase_alloc_seconds"
	TPhaseDispatch = "dasc_phase_dispatch_seconds"
)

// Phase timer range: batch phases run microseconds to tens of milliseconds,
// so the default [0,10]s histogram (10ms buckets) would put every
// observation in the first bucket and report useless quantiles. 2000
// buckets over [0,2]s give 1ms resolution with headroom for a pathological
// allocator; slower phases clamp into the top bucket but keep an exact sum.
const (
	phaseTimerHi      = 2.0
	phaseTimerBuckets = 2000
)

// RecordBatch folds one batch trace into the registry under the standard
// dasc_* names. No-op on a nil registry.
func RecordBatch(r *Registry, t BatchTrace) {
	if r == nil {
		return
	}
	r.Counter(MBatchesTotal).Inc()
	r.Gauge(MBatchWorkersGauge).Set(float64(t.Workers))
	r.Gauge(MBatchTasksGauge).Set(float64(t.Tasks))

	r.Counter(MAssignedTotal).Add(int64(t.Assigned))
	r.Counter(MDeferredTotal).Add(int64(t.Deferred))
	r.Counter(MRogueTotal).Add(int64(t.Rogue))

	r.Counter(MCacheRevalidatedTotal).Add(int64(t.WorkersRevalidated))
	r.Counter(MCacheRebuiltTotal).Add(int64(t.WorkersRebuilt))
	if t.FullRebuild {
		r.Counter(MCacheFullRebuildsTotal).Inc()
	}
	r.Counter(MCacheArrivedTotal).Add(int64(t.TasksArrived))
	r.Counter(MCacheDepartedTotal).Add(int64(t.TasksDeparted))
	r.Counter(MCacheGridOpsTotal).Add(t.GridOps)

	r.Counter(MArenaCarvedTotal).Add(t.ArenaCarvedBytes)
	r.Counter(MArenaAllocTotal).Add(t.ArenaAllocBytes)
	r.Counter(MCachePooledTotal).Add(int64(t.PooledWorkers))
	r.Gauge(MCachePoolOccupancy).Set(float64(t.PoolOccupancy))

	r.Counter(MMemoHitsTotal).Add(t.MemoHits)
	r.Counter(MMemoMissesTotal).Add(t.MemoMisses)

	r.Counter(MCandExaminedTotal).Add(t.CandidatesExamined)
	r.Counter(MCandAdmittedTotal).Add(t.CandidatesAdmitted)

	r.TimerRange(TPhaseIndex, 0, phaseTimerHi, phaseTimerBuckets).Observe(t.IndexBuildMS / 1e3)
	r.TimerRange(TPhaseAlloc, 0, phaseTimerHi, phaseTimerBuckets).Observe(t.AllocMS / 1e3)
	r.TimerRange(TPhaseDispatch, 0, phaseTimerHi, phaseTimerBuckets).Observe(t.DispatchMS / 1e3)
}
