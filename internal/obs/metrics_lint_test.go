package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// moduleSource yields every non-test .go file in the module, parsed.
func moduleSource(t *testing.T) map[string]*ast.File {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	files := map[string]*ast.File{}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		rel, _ := filepath.Rel(root, path)
		files[rel] = f
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// metricsInventory parses metrics.go and returns const name → metric name for
// every string constant declared there.
func metricsInventory(t *testing.T, files map[string]*ast.File) map[string]string {
	t.Helper()
	f, ok := files[filepath.Join("internal", "obs", "metrics.go")]
	if !ok {
		t.Fatal("internal/obs/metrics.go not found in module source")
	}
	inv := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					v, err := strconv.Unquote(lit.Value)
					if err != nil {
						t.Fatalf("const %s: %v", name.Name, err)
					}
					inv[name.Name] = v
				}
			}
		}
	}
	if len(inv) == 0 {
		t.Fatal("no string constants found in metrics.go")
	}
	return inv
}

// TestMetricsInventoryConstsAreUsed: every metric name declared in metrics.go
// must be referenced from non-test code somewhere in the module — a const
// nobody folds into is a stale inventory entry (or a metric that silently
// stopped being recorded).
func TestMetricsInventoryConstsAreUsed(t *testing.T) {
	files := moduleSource(t)
	inv := metricsInventory(t, files)
	used := map[string]bool{}
	mark := func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if _, declared := inv[id.Name]; declared {
				used[id.Name] = true
			}
		}
		return true
	}
	for path, f := range files {
		if path == filepath.Join("internal", "obs", "metrics.go") {
			// Function bodies in metrics.go (RecordBatch etc.) count as
			// usage; the const declarations themselves do not.
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					ast.Inspect(fd, mark)
				}
			}
			continue
		}
		ast.Inspect(f, mark)
	}
	for name := range inv {
		if !used[name] {
			t.Errorf("metrics.go const %s (%q) is referenced by no non-test code", name, inv[name])
		}
	}
}

// TestNoStrayMetricNameLiterals: non-test code outside metrics.go must not
// spell a dasc_* metric name as a string literal — call sites go through the
// inventory consts, so renames stay one-file changes and the exposition can't
// drift from the documented name set.
func TestNoStrayMetricNameLiterals(t *testing.T) {
	files := moduleSource(t)
	inv := metricsInventory(t, files)
	known := map[string]bool{}
	for _, v := range inv {
		known[v] = true
	}
	for path, f := range files {
		if path == filepath.Join("internal", "obs", "metrics.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			v, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(v, "dasc_") {
				return true
			}
			if !known[v] {
				t.Errorf("%s: literal %q is not in the metrics.go inventory — add the const and reference it", path, v)
			} else {
				t.Errorf("%s: metric name %q spelled as a literal — use the metrics.go const", path, v)
			}
			return true
		})
	}
}
