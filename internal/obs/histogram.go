package obs

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bound histogram with exponential (log-scale) default
// buckets, built for latency distributions. Unlike Timer (a mutex around a
// uniform stats.Histogram, fine for coarse per-batch phases) every bucket is
// an atomic counter, so Observe is lock-free and cheap enough for per-request
// paths — the HTTP middleware observes one per request. The same nil-safety
// contract as the other metric kinds applies: every method works on a nil
// receiver and does nothing.
//
// Bounds are upper bucket edges in ascending order (Prometheus `le`
// semantics: bucket i counts observations ≤ bounds[i]); one implicit +Inf
// overflow bucket follows the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// DefaultLatencyBounds are the default bucket edges: ~1.6× steps from 100µs
// to 10s (five buckets per decade). Log-scale spacing keeps relative error
// bounded everywhere in the range, so a 1ms p50 and a 9ms p99 land in
// different buckets — the uniform 10ms Timer buckets collapse both into
// bucket zero and report p50 == p99 (see TestHistogramDistinguishesSubTenMS).
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 0, 26)
	for _, decade := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 1} {
		for _, m := range []float64{1, 1.6, 2.5, 4, 6.3} {
			// Round to the nearest representable short decimal so the `le`
			// labels render clean (0.16, not 0.16000000000000003).
			b, _ := strconv.ParseFloat(strconv.FormatFloat(decade*m, 'g', 2, 64), 64)
			bounds = append(bounds, b)
		}
	}
	return append(bounds, 10)
}

// newHistogram builds a histogram over the given ascending bounds. Panics on
// empty, non-finite, or non-ascending bounds — caller bugs, like
// stats.NewHistogram.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := append([]float64(nil), bounds...)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: non-finite histogram bucket bound")
		}
		if i > 0 && b <= own[i-1] {
			panic("obs: histogram bucket bounds must ascend")
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(own)+1)}
}

// Observe records one value (seconds, for latency histograms). Lock-free;
// no-op on a nil histogram. Non-finite values are dropped for the same reason
// Timer drops them: NaN has no bucket and ±Inf would poison the running sum.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	// SearchFloat64s returns the first i with bounds[i] >= v — exactly the
	// `le` bucket; v beyond every bound lands in the +Inf overflow bucket.
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records one duration. No-op on a nil histogram.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// BucketCount is one cumulative bucket of a histogram snapshot. LE is the
// upper bound formatted as a Prometheus `le` label value ("+Inf" for the
// overflow bucket) — a string so snapshots stay JSON-encodable.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"` // cumulative: observations ≤ LE
}

// HistogramStats is a histogram snapshot. Quantiles interpolate linearly
// within the containing bucket (the Prometheus histogram_quantile rule);
// Count and Sum are exact.
type HistogramStats struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// formatLE renders a bucket bound the way Prometheus text exposition expects.
func formatLE(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Stats snapshots the histogram; the zero HistogramStats on a nil or empty
// histogram. Concurrent Observes may land between bucket loads — Count is
// derived from the loaded buckets, so the snapshot is always internally
// consistent (the +Inf cumulative count equals Count).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistogramStats{}
	}
	s := HistogramStats{
		Count:   total,
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]BucketCount, len(counts)),
	}
	s.Mean = s.Sum / float64(total)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: formatLE(le), Count: cum}
	}
	s.P50 = quantileFromBuckets(h.bounds, counts, total, 0.50)
	s.P95 = quantileFromBuckets(h.bounds, counts, total, 0.95)
	s.P99 = quantileFromBuckets(h.bounds, counts, total, 0.99)
	return s
}

// quantileFromBuckets interpolates the q-quantile linearly within the bucket
// containing the target rank; the overflow bucket reports the last finite
// bound (quantiles clamp, matching histogram_quantile on a +Inf bucket hit).
func quantileFromBuckets(bounds []float64, counts []int64, total int64, q float64) float64 {
	target := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (bounds[i]-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}
