package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAcceptsRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("dasc_a_total").Add(3)
	r.Gauge("dasc_g").Set(1.5)
	r.Timer("dasc_t_seconds").Observe(0.2)
	r.Histogram("dasc_h_seconds").Observe(0.003)
	r.Histogram("dasc_empty_seconds") // registered, never observed
	r.Counter(Labeled("dasc_http_requests_total", "route", "/v1/workers", "code", "2xx")).Inc()
	// Two series of one histogram family: bucket invariants must be checked
	// per label set, not across the family (route b has fewer observations
	// than route a, so a family-wide cumulative check would false-alarm).
	for i := 0; i < 5; i++ {
		r.Histogram(Labeled("dasc_lat_seconds", "route", "a")).Observe(0.001)
	}
	r.Histogram(Labeled("dasc_lat_seconds", "route", "b")).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ValidateExposition(sb.String())
	if err != nil {
		t.Fatalf("registry output rejected: %v\n%s", err, sb.String())
	}
	if exp.Types["dasc_a_total"] != "counter" || exp.Types["dasc_h_seconds"] != "histogram" ||
		exp.Types["dasc_t_seconds"] != "summary" || exp.Types["dasc_g"] != "gauge" {
		t.Errorf("types = %v", exp.Types)
	}
	var found bool
	for _, s := range exp.Samples {
		if s.Name == "dasc_http_requests_total" && s.Labels["route"] == "/v1/workers" && s.Labels["code"] == "2xx" {
			found = true
			if s.Value != 1 {
				t.Errorf("labeled counter = %g", s.Value)
			}
		}
	}
	if !found {
		t.Errorf("labeled sample not parsed:\n%s", sb.String())
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":    "dasc_x_total 1\n# TYPE dasc_x_total counter\n",
		"duplicate TYPE":        "# TYPE dasc_x counter\ndasc_x 1\n# TYPE dasc_x counter\n",
		"unknown type":          "# TYPE dasc_x histo\ndasc_x 1\n",
		"bad metric name":       "# TYPE 9dasc counter\n9dasc 1\n",
		"bad value":             "# TYPE dasc_x counter\ndasc_x one\n",
		"timestamped sample":    "# TYPE dasc_x counter\ndasc_x 1 1700000000\n",
		"unterminated labels":   "# TYPE dasc_x counter\ndasc_x{a=\"b\" 1\n",
		"unquoted label value":  "# TYPE dasc_x counter\ndasc_x{a=b} 1\n",
		"bucket without le":     "# TYPE dasc_h histogram\ndasc_h_bucket 1\ndasc_h_sum 1\ndasc_h_count 1\n",
		"non-cumulative bucket": "# TYPE dasc_h histogram\ndasc_h_bucket{le=\"1\"} 5\ndasc_h_bucket{le=\"+Inf\"} 3\ndasc_h_sum 1\ndasc_h_count 3\n",
		"inf bucket != count":   "# TYPE dasc_h histogram\ndasc_h_bucket{le=\"+Inf\"} 3\ndasc_h_sum 1\ndasc_h_count 4\n",
		"stray summary sample":  "# TYPE dasc_s summary\ndasc_s_bogus 1\n",
	}
	for name, text := range cases {
		if _, err := ValidateExposition(text); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
}

func TestValidateExpositionEscapedLabels(t *testing.T) {
	text := "# TYPE dasc_x counter\n" +
		"dasc_x{p=\"a\\\\b\\\"c\\nd\"} 2\n"
	exp, err := ValidateExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := exp.Samples[0].Labels["p"]; got != "a\\b\"c\nd" {
		t.Errorf("unescaped label = %q", got)
	}
}

// TestLabeledEscapesValues closes the loop: a label value with every special
// character survives WriteText → ValidateExposition intact.
func TestLabeledEscapesValues(t *testing.T) {
	r := NewRegistry()
	raw := `pa\th"q` + "\n2"
	r.Counter(Labeled("dasc_x_total", "route", raw)).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ValidateExposition(sb.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if got := exp.Samples[0].Labels["route"]; got != raw {
		t.Errorf("round-tripped label = %q, want %q", got, raw)
	}
}
