package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is a minimal parser for the Prometheus text exposition format
// (version 0.0.4) — just enough of the grammar to round-trip what WriteText
// emits and fail loudly on malformed output. The conformance test feeds the
// full /v1/metrics body through ValidateExposition, so any exposition
// regression (missing TYPE line, bad label escaping, non-cumulative buckets,
// a histogram whose +Inf bucket disagrees with _count) breaks a test instead
// of breaking the user's scraper.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromExposition is the parsed form of a text exposition: the declared TYPE
// per family and every sample in order.
type PromExposition struct {
	Types   map[string]string
	Samples []PromSample
}

// ValidateExposition parses a Prometheus 0.0.4 text exposition and checks the
// structural invariants scrapers rely on: valid metric and label names, one
// TYPE line per family declared before its samples, summary samples limited to
// the family name (with optional quantile label) plus _sum/_count, histogram
// samples limited to _bucket (with a mandatory le label) plus _sum/_count,
// cumulative non-decreasing buckets, and a +Inf bucket equal to _count.
func ValidateExposition(text string) (*PromExposition, error) {
	exp := &PromExposition{Types: map[string]string{}}
	// Per-series bucket bookkeeping for the cumulative / +Inf checks: one
	// histogram family fans out into one series per label set (e.g. per
	// route), each with its own cumulative bucket sequence and _count.
	type histState struct {
		lastCum  float64
		infCount float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	hists := map[string]*histState{}

	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE line", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := exp.Types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE line for %q", lineNo, name)
				}
				exp.Types[name] = typ
			}
			continue // HELP and other comments pass through
		}

		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)

		family, suffix := sampleFamily(s.Name, exp.Types)
		if family == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, s.Name)
		}
		switch exp.Types[family] {
		case "summary":
			switch suffix {
			case "", "_sum", "_count":
			default:
				return nil, fmt.Errorf("line %d: sample %q not valid for summary %q", lineNo, s.Name, family)
			}
			if suffix != "" && s.Labels["quantile"] != "" {
				return nil, fmt.Errorf("line %d: quantile label on %q", lineNo, s.Name)
			}
		case "histogram":
			key := family + histSeriesKey(s.Labels)
			h := hists[key]
			if h == nil {
				h = &histState{}
				hists[key] = h
			}
			switch suffix {
			case "_bucket":
				le, ok := s.Labels["le"]
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket %q missing le label", lineNo, s.Name)
				}
				if s.Value < h.lastCum {
					return nil, fmt.Errorf("line %d: histogram %q buckets not cumulative (le=%q: %g < %g)",
						lineNo, family, le, s.Value, h.lastCum)
				}
				h.lastCum = s.Value
				if le == "+Inf" {
					h.hasInf, h.infCount = true, s.Value
				}
			case "_sum":
			case "_count":
				h.hasCount, h.count = true, s.Value
			default:
				return nil, fmt.Errorf("line %d: sample %q not valid for histogram %q", lineNo, s.Name, family)
			}
		default: // counter, gauge, untyped: the sample name must be the family
			if suffix != "" {
				return nil, fmt.Errorf("line %d: sample %q not valid for %s %q",
					lineNo, s.Name, exp.Types[family], family)
			}
		}
	}

	for series, h := range hists {
		if !h.hasInf {
			return nil, fmt.Errorf("histogram series %q has no +Inf bucket", series)
		}
		if h.hasCount && h.infCount != h.count {
			return nil, fmt.Errorf("histogram series %q: +Inf bucket %g != _count %g", series, h.infCount, h.count)
		}
	}
	return exp, nil
}

// histSeriesKey serializes a sample's labels minus `le` into a deterministic
// key, so bucket invariants are checked per series, not across a family's
// unrelated label sets.
func histSeriesKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	if len(parts) == 0 {
		// A bucket whose only label is `le` and an unlabeled _sum/_count
		// belong to the same bare series.
		return ""
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// sampleFamily resolves a sample name to its declared family: the name itself,
// or the name minus a _sum/_count/_bucket suffix. Returns the family and the
// suffix ("" when the sample name is the family).
func sampleFamily(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := types[base]; declared {
				return base, suf
			}
		}
	}
	return "", ""
}

// parseSampleLine parses `name[{labels}] value` (timestamps are not emitted by
// WriteText and are rejected here).
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("expected single value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {…} block: comma-separated
// name="value" pairs with \\, \" and \n escapes in values.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(body) {
		start := i
		for i < len(body) && isNameChar(body[i], i == start) && body[i] != ':' {
			i++
		}
		name := body[start:i]
		if name == "" {
			return nil, fmt.Errorf("empty label name in %q", body)
		}
		if i >= len(body) || body[i] != '=' {
			return nil, fmt.Errorf("expected '=' after label %q", name)
		}
		i++
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("expected quoted value for label %q", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("unterminated value for label %q", name)
			}
			c := body[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(body) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				switch body[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", body[i], name)
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels in %q", body)
			}
			i++
		}
	}
	return labels, nil
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) && name[i] != ':' {
			return false
		}
	}
	return true
}

// isNameChar reports whether c is valid in a metric/label name at the given
// position (digits are not allowed first). ':' is handled by callers — valid
// in metric names, not in label names.
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
