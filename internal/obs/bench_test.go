package obs

import "testing"

// BenchmarkObsOverhead pins the zero-cost-when-disabled contract: the
// disabled path (nil recorder/counter) must be indistinguishable from the
// baseline loop — a single predictable nil check, well under a nanosecond —
// while the enabled path pays one atomic add.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink++
		}
		_ = sink
	})
	b.Run("disabled-recorder", func(b *testing.B) {
		var rec *BatchRec
		for i := 0; i < b.N; i++ {
			rec.AddExamined(1)
		}
	})
	b.Run("disabled-counter", func(b *testing.B) {
		var c *Counter
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("enabled-recorder", func(b *testing.B) {
		rec := NewBatchRec(0, 0)
		for i := 0; i < b.N; i++ {
			rec.AddExamined(1)
		}
	})
	b.Run("enabled-counter", func(b *testing.B) {
		c := NewRegistry().Counter("bench")
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("disabled-histogram", func(b *testing.B) {
		var h *Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(0.003)
		}
	})
	b.Run("enabled-histogram", func(b *testing.B) {
		h := NewRegistry().Histogram("bench_seconds")
		for i := 0; i < b.N; i++ {
			h.Observe(0.003)
		}
	})
}
