package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramDistinguishesSubTenMS is the regression test for the
// degenerate-quantile bug: the old uniform Timer buckets (10ms wide over
// [0, 10s]) collapsed every sub-10ms request into bucket zero, so a service
// answering in 1ms and one answering in 9ms reported identical quantiles.
// The log-scale histogram keeps them an order of magnitude apart.
func TestHistogramDistinguishesSubTenMS(t *testing.T) {
	fast := newHistogram(DefaultLatencyBounds())
	slow := newHistogram(DefaultLatencyBounds())
	for i := 0; i < 1000; i++ {
		fast.Observe(0.001) // 1ms
		slow.Observe(0.009) // 9ms
	}
	fp, sp := fast.Stats().P50, slow.Stats().P50
	if fp >= sp {
		t.Fatalf("p50(1ms)=%g >= p50(9ms)=%g — buckets cannot tell them apart", fp, sp)
	}
	// Interpolated quantiles land inside the observation's bucket, so they
	// are within one bucket width (≤1.6×) of the truth, not 10× off.
	if fp > 0.0016 {
		t.Errorf("p50 of all-1ms observations = %g, want ≤ 0.0016", fp)
	}
	if sp < 0.0063 || sp > 0.016 {
		t.Errorf("p50 of all-9ms observations = %g, want in [0.0063, 0.016]", sp)
	}

	// The old Timer behaviour, for contrast: both loads land in bucket 0.
	reg := NewRegistry()
	tm1, tm9 := reg.Timer("t1"), reg.Timer("t9")
	for i := 0; i < 1000; i++ {
		tm1.Observe(0.001)
		tm9.Observe(0.009)
	}
	if p1, p9 := tm1.Stats().P50, tm9.Stats().P50; p1 != p9 {
		t.Logf("uniform Timer now distinguishes them too (p50 %g vs %g)", p1, p9)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5 (NaN/Inf dropped)", s.Count)
	}
	want := []BucketCount{{"1", 2}, {"2", 3}, {"4", 4}, {"+Inf", 5}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Sum != 0.5+1+1.5+3+100 {
		t.Errorf("Sum = %g", s.Sum)
	}
	if s.Buckets[len(s.Buckets)-1].Count != s.Count {
		t.Error("+Inf bucket != Count")
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 10 observations ≤1, 10 in (1,2]: p50 sits exactly on the first bound,
	// p75 halfway through the second bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Stats()
	if s.P50 != 1 {
		t.Errorf("P50 = %g, want 1", s.P50)
	}
	// All mass beyond the last bound clamps to it.
	over := newHistogram([]float64{1})
	over.Observe(50)
	if got := over.Stats().P99; got != 1 {
		t.Errorf("overflow quantile = %g, want clamp to 1", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefaultLatencyBounds())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Stats()
	if s.Count != 8000 {
		t.Errorf("Count = %d, want 8000", s.Count)
	}
	if math.Abs(s.Sum-8.0) > 1e-9 {
		t.Errorf("Sum = %g, want 8 (CAS accumulation lost updates)", s.Sum)
	}
}

func TestHistogramDefaultBoundsRenderClean(t *testing.T) {
	for _, b := range DefaultLatencyBounds() {
		le := formatLE(b)
		if len(le) > 7 || strings.Contains(le, "00000") {
			t.Errorf("bound %v renders as %q — float artifact in le label", b, le)
		}
	}
	if n := len(DefaultLatencyBounds()); n != 26 {
		t.Errorf("default bounds = %d edges, want 26", n)
	}
}

func TestHistogramObserveDurationAndReset(t *testing.T) {
	h := newHistogram(DefaultLatencyBounds())
	h.ObserveDuration(3 * time.Millisecond)
	if s := h.Stats(); s.Count != 1 || s.Sum != 0.003 {
		t.Errorf("stats = %+v", s)
	}
	h.reset()
	if s := h.Stats(); s.Count != 0 || s.Sum != 0 {
		t.Errorf("reset left %+v", s)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
		"nan":        {math.NaN()},
		"inf":        {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

func TestRegistryHistogramBounds(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBounds("h", []float64{1, 2})
	if r.Histogram("h") != h {
		t.Error("Histogram lookup after HistogramBounds returned a different instance")
	}
	if got := r.HistogramBounds("h", []float64{5}); got != h {
		t.Error("re-registering kept different bounds instance")
	}
	// Default bounds when nil.
	d := r.Histogram("lat")
	d.Observe(0.5)
	if len(d.Stats().Buckets) != len(DefaultLatencyBounds())+1 {
		t.Error("default-bounds histogram has wrong bucket count")
	}
}
