// Package obs is the platform's instrumentation core: atomic counters,
// gauges, duration timers (backed by stats.Histogram), and a named registry
// with snapshot/reset and text + JSON exposition.
//
// Two contracts shape the API:
//
//   - Nil-safe: every metric method works on a nil receiver and does
//     nothing, and every Registry accessor on a nil registry returns a nil
//     metric. Code under instrumentation holds plain pointers and calls them
//     unconditionally; "observability off" is just "the pointer is nil", so
//     the disabled hot path pays a single nil check per call site
//     (BenchmarkObsOverhead pins this below a nanosecond).
//   - Dependency-light: the package depends only on the standard library and
//     internal/stats, so every layer (core, sim, server, the binaries) can
//     import it without cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dasc/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value; zero on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer aggregates durations (in seconds) into a stats.Histogram plus an
// exact count and sum. Unlike Counter and Gauge it takes a mutex per
// observation, so it belongs on per-batch/per-request paths, not per-pair
// ones.
type Timer struct {
	mu      sync.Mutex
	lo, hi  float64
	buckets int
	h       *stats.Histogram
}

// timerDefaults bounds the default phase histograms: [0, 10] seconds at
// 10ms resolution covers everything from sub-millisecond batch phases to a
// pathological stall (longer observations clamp into the top bucket; count
// and sum stay exact).
const (
	timerDefaultLo      = 0
	timerDefaultHi      = 10
	timerDefaultBuckets = 1000
)

// Observe records one duration in seconds. No-op on a nil timer.
func (t *Timer) Observe(seconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.h.Add(seconds)
	t.mu.Unlock()
}

// ObserveDuration records one duration. No-op on a nil timer.
func (t *Timer) ObserveDuration(d time.Duration) { t.Observe(d.Seconds()) }

// TimerStats is a timer snapshot. Quantiles interpolate within histogram
// buckets; Count and Sum are exact.
type TimerStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stats snapshots the timer; the zero TimerStats on a nil or empty timer
// (never NaN, so snapshots stay JSON-encodable).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.h.Total() == 0 {
		return TimerStats{}
	}
	return TimerStats{
		Count: int64(t.h.Total()),
		Sum:   t.h.Sum(),
		Mean:  t.h.Mean(),
		P50:   t.h.Quantile(0.50),
		P95:   t.h.Quantile(0.95),
		P99:   t.h.Quantile(0.99),
	}
}

func (t *Timer) reset() {
	t.mu.Lock()
	t.h = stats.NewHistogram(t.lo, t.hi, t.buckets)
	t.mu.Unlock()
}

// Registry is a named metric store. Accessors get-or-create, so callers
// never pre-register; names are stable keys (see the dasc_* inventory in
// metrics.go). All methods are safe for concurrent use and nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use with the default
// [0s, 10s] range. A nil registry returns a nil (no-op) timer.
func (r *Registry) Timer(name string) *Timer {
	return r.TimerRange(name, timerDefaultLo, timerDefaultHi, timerDefaultBuckets)
}

// TimerRange is Timer with an explicit histogram range; the range of an
// already-created timer is not changed.
func (r *Registry) TimerRange(name string, lo, hi float64, buckets int) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{lo: lo, hi: hi, buckets: buckets, h: stats.NewHistogram(lo, hi, buckets)}
		r.timers[name] = t
	}
	return t
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters map[string]int64      `json:"counters"`
	Gauges   map[string]float64    `json:"gauges"`
	Timers   map[string]TimerStats `json:"timers"`
}

// Snapshot copies out every metric. The empty Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range timers {
		s.Timers[k] = v.Stats()
	}
	return s
}

// Reset zeroes every metric, keeping the registered names (so exposition
// stays stable across a reset). No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, t := range r.timers {
		t.reset()
	}
}

// WriteText writes the registry in Prometheus text exposition style:
// counters and gauges as single samples, timers as summaries (count, sum and
// quantile samples). Output is sorted by name, so it is diff- and
// test-friendly.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Timers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.Timers[name]
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			name, name, ts.P50, name, ts.P95, name, ts.P99, name, ts.Sum, name, ts.Count)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}
