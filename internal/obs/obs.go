// Package obs is the platform's instrumentation core: atomic counters,
// gauges, duration timers (backed by stats.Histogram), and a named registry
// with snapshot/reset and text + JSON exposition.
//
// Two contracts shape the API:
//
//   - Nil-safe: every metric method works on a nil receiver and does
//     nothing, and every Registry accessor on a nil registry returns a nil
//     metric. Code under instrumentation holds plain pointers and calls them
//     unconditionally; "observability off" is just "the pointer is nil", so
//     the disabled hot path pays a single nil check per call site
//     (BenchmarkObsOverhead pins this below a nanosecond).
//   - Dependency-light: the package depends only on the standard library and
//     internal/stats, so every layer (core, sim, server, the binaries) can
//     import it without cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dasc/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value; zero on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer aggregates durations (in seconds) into a stats.Histogram plus an
// exact count and sum. Unlike Counter and Gauge it takes a mutex per
// observation, and its buckets are UNIFORM over the configured range — fine
// for coarse size distributions (ingest drain sizes), useless for latency:
// uniform 10ms buckets collapse every sub-10ms observation into bucket zero
// and report p50 == p99. Latency paths use the log-scale Histogram instead
// (histogram.go); Timer stays for coarse linear distributions.
type Timer struct {
	mu      sync.Mutex
	lo, hi  float64
	buckets int
	h       *stats.Histogram
}

// timerDefaults bounds the default phase histograms: [0, 10] seconds at
// 10ms resolution covers everything from sub-millisecond batch phases to a
// pathological stall (longer observations clamp into the top bucket; count
// and sum stay exact).
const (
	timerDefaultLo      = 0
	timerDefaultHi      = 10
	timerDefaultBuckets = 1000
)

// Observe records one duration in seconds. No-op on a nil timer.
func (t *Timer) Observe(seconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.h.Add(seconds)
	t.mu.Unlock()
}

// ObserveDuration records one duration. No-op on a nil timer.
func (t *Timer) ObserveDuration(d time.Duration) { t.Observe(d.Seconds()) }

// TimerStats is a timer snapshot. Quantiles interpolate within histogram
// buckets; Count and Sum are exact.
type TimerStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stats snapshots the timer; the zero TimerStats on a nil or empty timer
// (never NaN, so snapshots stay JSON-encodable).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.h.Total() == 0 {
		return TimerStats{}
	}
	return TimerStats{
		Count: int64(t.h.Total()),
		Sum:   t.h.Sum(),
		Mean:  t.h.Mean(),
		P50:   t.h.Quantile(0.50),
		P95:   t.h.Quantile(0.95),
		P99:   t.h.Quantile(0.99),
	}
}

func (t *Timer) reset() {
	t.mu.Lock()
	t.h = stats.NewHistogram(t.lo, t.hi, t.buckets)
	t.mu.Unlock()
}

// Registry is a named metric store. Accessors get-or-create, so callers
// never pre-register; names are stable keys (see the dasc_* inventory in
// metrics.go). All methods are safe for concurrent use and nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
	// hooks run at the start of every Snapshot (and so every exposition),
	// outside the registry lock — scrape-time collectors (runtime.go) sample
	// the world only when someone is actually looking.
	hooks []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Labeled builds a registry name carrying Prometheus labels:
// Labeled("dasc_http_requests_total", "route", "POST /v1/workers") →
// `dasc_http_requests_total{route="POST /v1/workers"}`. The text exposition
// splits such names back into family + labels, so one TYPE line covers every
// label combination of a family. kv pairs must come in key, value order.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteByte('=')
		sb.WriteString(quoteLabelValue(kv[i+1]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// quoteLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote and newline are escaped inside double quotes.
func quoteLabelValue(v string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// splitName separates a registry name into its metric family and the label
// block (without braces); labels is empty for plain names.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels merges a name's label block with one extra label (used for the
// `le` and `quantile` labels of histogram/summary exposition).
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use with the default
// [0s, 10s] range. A nil registry returns a nil (no-op) timer.
func (r *Registry) Timer(name string) *Timer {
	return r.TimerRange(name, timerDefaultLo, timerDefaultHi, timerDefaultBuckets)
}

// TimerRange is Timer with an explicit histogram range; the range of an
// already-created timer is not changed.
func (r *Registry) TimerRange(name string, lo, hi float64, buckets int) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{lo: lo, hi: hi, buckets: buckets, h: stats.NewHistogram(lo, hi, buckets)}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named log-scale histogram, creating it on first use
// with the DefaultLatencyBounds (100µs–10s exponential buckets). A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBounds(name, nil)
}

// HistogramBounds is Histogram with explicit ascending bucket bounds (nil
// means DefaultLatencyBounds); the bounds of an already-created histogram are
// not changed.
func (r *Registry) HistogramBounds(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBounds()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// AddScrapeHook registers f to run at the start of every Snapshot (and so of
// every text/JSON exposition), outside the registry lock — f may freely set
// gauges and counters on the registry. No-op on a nil registry.
func (r *Registry) AddScrapeHook(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Timers     map[string]TimerStats     `json:"timers"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot copies out every metric, after running the registered scrape
// hooks. The empty Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Timers:     map[string]TimerStats{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range timers {
		s.Timers[k] = v.Stats()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Stats()
	}
	return s
}

// Reset zeroes every metric, keeping the registered names (so exposition
// stays stable across a reset). No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, t := range r.timers {
		t.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// promFamily accumulates one metric family's text exposition: the TYPE line
// plus every sample, across all label combinations sharing the family name.
type promFamily struct {
	typ   string
	lines []string
}

// addSample appends one formatted sample line to name's family, creating the
// family (with its TYPE) on first use.
func addSample(fams map[string]*promFamily, order *[]string, family, typ, line string) {
	f, ok := fams[family]
	if !ok {
		f = &promFamily{typ: typ}
		fams[family] = f
		*order = append(*order, family)
	}
	f.lines = append(f.lines, line)
}

// sampleName renders family{labels,extra} — or the bare family when both
// label blocks are empty.
func sampleName(family, labels, extra string) string {
	l := joinLabels(labels, extra)
	if l == "" {
		return family
	}
	return family + "{" + l + "}"
}

// WriteText writes the registry in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, timers as typed
// summary blocks with quantile labels, histograms as typed histogram blocks
// with cumulative le-labeled buckets plus _sum and _count. Registry names may
// carry label blocks (see Labeled); all label combinations of a family share
// one `# TYPE` line, as the format requires. Families are sorted by name and
// samples within a family by registry name, so output is diff- and
// test-friendly (obs.ValidateExposition round-trips it).
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	fams := make(map[string]*promFamily)
	var order []string

	for _, name := range sortedKeys(s.Counters) {
		family, labels := splitName(name)
		addSample(fams, &order, family, "counter",
			fmt.Sprintf("%s %d", sampleName(family, labels, ""), s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		family, labels := splitName(name)
		addSample(fams, &order, family, "gauge",
			fmt.Sprintf("%s %g", sampleName(family, labels, ""), s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Timers) {
		family, labels := splitName(name)
		ts := s.Timers[name]
		for _, q := range []struct {
			label string
			v     float64
		}{{`quantile="0.5"`, ts.P50}, {`quantile="0.95"`, ts.P95}, {`quantile="0.99"`, ts.P99}} {
			addSample(fams, &order, family, "summary",
				fmt.Sprintf("%s %g", sampleName(family, labels, q.label), q.v))
		}
		addSample(fams, &order, family, "summary",
			fmt.Sprintf("%s %g", sampleName(family+"_sum", labels, ""), ts.Sum))
		addSample(fams, &order, family, "summary",
			fmt.Sprintf("%s %d", sampleName(family+"_count", labels, ""), ts.Count))
	}
	for _, name := range sortedKeys(s.Histograms) {
		family, labels := splitName(name)
		hs := s.Histograms[name]
		if hs.Buckets == nil {
			// Empty histogram: expose a single all-zero +Inf bucket so the
			// family stays present (and parseable) before the first sample.
			hs.Buckets = []BucketCount{{LE: "+Inf"}}
		}
		for _, b := range hs.Buckets {
			addSample(fams, &order, family, "histogram",
				fmt.Sprintf("%s %d", sampleName(family+"_bucket", labels, `le=`+quoteLabelValue(b.LE)), b.Count))
		}
		addSample(fams, &order, family, "histogram",
			fmt.Sprintf("%s %g", sampleName(family+"_sum", labels, ""), hs.Sum))
		addSample(fams, &order, family, "histogram",
			fmt.Sprintf("%s %d", sampleName(family+"_count", labels, ""), hs.Count))
	}

	sort.Strings(order)
	for _, family := range order {
		f := fams[family]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}
