package obs

import "sync"

// DrainTrace is the per-drain instrumentation record of the server's
// group-commit ingest pipeline: one committer drain of the admission queue —
// how many staged registrations it pulled, how many it committed as one
// journal record (a single fsync under -fsync=always), and what the commit
// cost. The server keeps the recent drains in a DrainRing (served by
// GET /v1/ingest) and folds each one into a Registry (RecordDrain) for the
// aggregate dasc_ingest_* view.
type DrainTrace struct {
	// Seq numbers drains since process start.
	Seq int `json:"seq"`
	// Requests is how many staged registrations the drain pulled off the
	// admission queue; Committed is how many of them were journaled and
	// published (Requests - Committed failed validation, or the whole drain
	// failed its journal append).
	Requests  int `json:"requests"`
	Committed int `json:"committed"`
	// Workers and Tasks split the committed entries by kind.
	Workers int `json:"workers"`
	Tasks   int `json:"tasks"`
	// Failed counts requests answered with an error (validation or journal).
	Failed int `json:"failed"`
	// QueueDepth is the admission-queue backlog remaining after the drain.
	QueueDepth int `json:"queue_depth"`
	// CommitMS is the full drain commit wall-clock (stage + journal +
	// publish); JournalMS is the journal append + fsync alone.
	CommitMS  float64 `json:"commit_ms"`
	JournalMS float64 `json:"journal_ms"`
	// RequestIDs are the X-Request-IDs of the registrations this drain
	// committed (requests without an ID are skipped), in commit order and
	// capped at DrainTraceIDCap entries — when truncated, the slice keeps the
	// first DrainTraceIDCap-1 plus the last, and RequestIDCount carries the
	// true total. This is the request→drain correlation hop: a client that
	// tagged its registration can find the exact group commit that made it
	// durable via GET /v1/ingest.
	RequestIDs     []string `json:"request_ids,omitempty"`
	RequestIDCount int      `json:"request_id_count,omitempty"`
}

// DrainTraceIDCap bounds how many request IDs one DrainTrace retains; drains
// can batch thousands of registrations and the trace ring would otherwise
// pin every ID string of recent history.
const DrainTraceIDCap = 64

// CapRequestIDs truncates ids to DrainTraceIDCap, keeping the first
// DrainTraceIDCap-1 and the last so both ends of the drain stay visible.
func CapRequestIDs(ids []string) []string {
	if len(ids) <= DrainTraceIDCap {
		return ids
	}
	capped := make([]string, DrainTraceIDCap)
	copy(capped, ids[:DrainTraceIDCap-1])
	capped[DrainTraceIDCap-1] = ids[len(ids)-1]
	return capped
}

// Drain-size distribution range: drains batch up to a few thousand entries,
// uniformly bucketed (a size distribution, not a latency — the linear Timer
// is the right kind). Commit/journal latencies use the log-scale Histogram.
const (
	ingestBatchHi      = 4096
	ingestBatchBuckets = 512
)

// RecordDrain folds one ingest drain trace into the registry under the
// standard dasc_ingest_* names. No-op on a nil registry.
func RecordDrain(r *Registry, t DrainTrace) {
	if r == nil {
		return
	}
	r.Counter(MIngestDrainsTotal).Inc()
	r.Counter(MIngestCommittedTotal).Add(int64(t.Committed))
	r.Counter(MIngestFailedTotal).Add(int64(t.Failed))
	r.Gauge(MIngestQueueDepth).Set(float64(t.QueueDepth))
	r.TimerRange(TIngestBatchEntries, 0, ingestBatchHi, ingestBatchBuckets).Observe(float64(t.Requests))
	r.Histogram(TIngestCommitSeconds).Observe(t.CommitMS / 1e3)
	r.Histogram(TIngestJournalSeconds).Observe(t.JournalMS / 1e3)
}

// DrainRing is a fixed-capacity ring buffer of the most recent ingest
// DrainTraces, safe for concurrent use. Same contract as TraceRing: nil-safe,
// Last returns oldest-first and never nil.
type DrainRing struct {
	mu   sync.Mutex
	buf  []DrainTrace
	next int
	n    int
}

// NewDrainRing creates a ring holding the last capacity drains; a
// non-positive capacity means DefaultTraceDepth.
func NewDrainRing(capacity int) *DrainRing {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &DrainRing{buf: make([]DrainTrace, capacity)}
}

// Add appends a drain trace, evicting the oldest when full. No-op on a nil
// ring.
func (r *DrainRing) Add(t DrainTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns how many drains are buffered; zero on a nil ring.
func (r *DrainRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Last returns up to n of the most recent drains, oldest first; always
// non-nil so it JSON-encodes as [] rather than null.
func (r *DrainRing) Last(n int) []DrainTrace {
	if r == nil || n <= 0 {
		return []DrainTrace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n {
		n = r.n
	}
	out := make([]DrainTrace, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
