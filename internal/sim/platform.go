// Package sim implements the dependency-aware spatial-crowdsourcing
// platform: workers and tasks appear over time, and every BatchInterval time
// units the platform runs an allocator over the currently active workers and
// pending tasks (the paper's batch process, Section II-D). Assigned workers
// travel to their tasks, conduct them once the dependencies have finished,
// and become available again; tasks whose deadline passes unassigned expire.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dasc/internal/core"
	"dasc/internal/geo"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// Config parameterises a simulation run.
type Config struct {
	// Allocator decides each batch's assignment. Required.
	Allocator core.Allocator
	// BatchInterval is the time between batch processes; the paper suggests
	// e.g. 5 seconds. Zero means 5.
	BatchInterval float64
	// ServiceTime is how long conducting a task takes once the worker is on
	// site and the dependencies are finished. The paper constrains only the
	// service *start*, so the default is 0 (instantaneous).
	ServiceTime float64
	// ReuseWorkers lets a worker take another task after finishing one, as
	// long as the current time is within its availability window
	// (Definition 1: after finishing, the worker "becomes available
	// again"). Default true; set DisableReuse to turn it off.
	DisableReuse bool
	// MaxBatches caps the batch loop as a safety net; zero derives it from
	// the time horizon.
	MaxBatches int
	// CollectDelays records each completed task's start delay (service
	// start − task appearance) in Result.Delays for percentile analysis.
	CollectDelays bool
	// DisableEngineCache rebuilds every batch's candidate engine from
	// scratch instead of carrying it across batches incrementally
	// (core.EngineCache). The two builds agree exactly; the flag exists for
	// A/B benchmarks and debugging.
	DisableEngineCache bool
	// VerifyEngineCache cross-checks the incrementally maintained candidate
	// engine against a from-scratch build every batch and aborts the run on
	// divergence. Differential-testing hook; expensive, leave off in
	// production.
	VerifyEngineCache bool
	// DisableGameWorklist runs DASC_Game allocators with the naive full
	// best-response sweep instead of the incremental worklist engine — the
	// game-side analogue of DisableEngineCache. Ignored for non-game
	// allocators.
	DisableGameWorklist bool
	// VerifyGameWorklist cross-checks the worklist engine against the naive
	// sweep on every batch (identical assignments, rounds, update ratios) and
	// aborts the run on divergence. Ignored for non-game allocators.
	VerifyGameWorklist bool
	// OnBatch, when non-nil, observes every batch result. It fires after the
	// batch's dispatches, so the result carries a complete BatchTrace
	// (phase timings included). Setting it enables per-batch
	// instrumentation; with it nil the batch loop runs with a nil recorder
	// and pays nothing.
	OnBatch func(BatchResult)
}

// BatchResult is what one batch process produced.
type BatchResult struct {
	Index      int     // batch number, from 0
	Time       float64 // batch timestamp
	Workers    int     // active workers presented to the allocator
	Tasks      int     // pending tasks presented to the allocator
	Assignment *model.Assignment
	// Trace is the batch's instrumentation record: phase timings, candidate
	// engine and cache outcomes, allocation results.
	Trace obs.BatchTrace
}

// Result aggregates a whole run.
type Result struct {
	Batches       int
	AssignedPairs int // Σ_b (valid pairs of M_b) — the paper's total score
	// AssignedWeight is the weighted objective Σ w_t over valid pairs; it
	// equals AssignedPairs under the paper's unit weights.
	AssignedWeight float64
	WastedPairs    int     // dependency-violating pairs executed by oblivious allocators
	CompletedTasks int     // tasks actually conducted (= AssignedPairs)
	ExpiredTasks   int     // tasks whose deadline passed unassigned
	TotalTravel    float64 // distance covered by all workers
	// WorkerBusyTime sums, over executed dispatches, the span from
	// assignment to task completion (travel + dependency wait + service) —
	// divide by worker count and horizon for a utilisation figure.
	WorkerBusyTime float64
	// MeanStartDelay is the mean of (service start − task appearance) over
	// completed tasks; NaN when nothing completed.
	MeanStartDelay float64
	// Delays holds every completed task's start delay when
	// Config.CollectDelays is set; nil otherwise.
	Delays []float64
	// RoguePairs counts assignment pairs dropped because they named a worker
	// not active in the batch (only a misbehaving custom Allocator produces
	// them). They score nothing and are never dispatched.
	RoguePairs int
	// WorkerAssignments[w] counts tasks worker w conducted.
	WorkerAssignments map[model.WorkerID]int
}

// Platform simulates one instance under one configuration.
type Platform struct {
	cfg Config
	in  *model.Instance
}

// New creates a platform for the instance. The instance must validate.
func New(in *model.Instance, cfg Config) (*Platform, error) {
	if cfg.Allocator == nil {
		return nil, errors.New("sim: Config.Allocator is required")
	}
	if cfg.BatchInterval <= 0 {
		cfg.BatchInterval = 5
	}
	if cfg.ServiceTime < 0 {
		return nil, fmt.Errorf("sim: negative service time %v", cfg.ServiceTime)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if cfg.DisableGameWorklist {
		if g, ok := cfg.Allocator.(*core.Game); ok {
			cfg.Allocator = g.WithWorklistDisabled(true)
		}
	}
	return &Platform{cfg: cfg, in: in}, nil
}

// Run executes the simulation to completion and returns aggregate metrics.
func (p *Platform) Run() (*Result, error) {
	in, cfg := p.in, p.cfg
	dist := in.Distance()

	type wstate struct {
		locX, locY float64
		busyUntil  float64
		distUsed   float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{locX: in.Workers[i].Loc.X, locY: in.Workers[i].Loc.Y}
	}

	assigned := make(map[model.TaskID]bool)    // ever validly assigned (dependency obligation met)
	botched := make(map[model.TaskID]bool)     // consumed by an invalid assignment
	finishAt := make(map[model.TaskID]float64) // completion time per assigned task
	res := &Result{WorkerAssignments: map[model.WorkerID]int{}}

	// Time horizon: nothing can happen after every worker window and every
	// task deadline has passed.
	horizon := 0.0
	start := math.Inf(1)
	for i := range in.Workers {
		horizon = math.Max(horizon, in.Workers[i].Expiry())
		start = math.Min(start, in.Workers[i].Start)
	}
	for i := range in.Tasks {
		horizon = math.Max(horizon, in.Tasks[i].Deadline())
		start = math.Min(start, in.Tasks[i].Start)
	}
	if math.IsInf(start, 1) { // empty instance
		return res, nil
	}
	maxBatches := cfg.MaxBatches
	if maxBatches <= 0 {
		maxBatches = int((horizon-start)/cfg.BatchInterval) + 2
	}

	var delaySum float64
	var delayCount int

	// The candidate engine is carried across batches: unmoved workers'
	// strategy sets are revalidated by time arithmetic instead of rebuilt.
	cache := core.NewEngineCache()

	for batch := 0; batch < maxBatches; batch++ {
		now := start + float64(batch)*cfg.BatchInterval

		// Active workers: appeared, within window, not busy.
		var bws []core.BatchWorker
		var wIdx []int
		for i := range in.Workers {
			w := &in.Workers[i]
			if w.Start > now || now > w.Expiry() || ws[i].busyUntil > now {
				continue
			}
			if cfg.DisableReuse && res.WorkerAssignments[w.ID] > 0 {
				continue
			}
			bws = append(bws, core.BatchWorker{
				W:          w,
				Loc:        geo.Pt(ws[i].locX, ws[i].locY),
				ReadyAt:    now,
				DistBudget: w.MaxDist - ws[i].distUsed,
			})
			wIdx = append(wIdx, i)
		}
		// Pending tasks: appeared, deadline not passed, never assigned.
		var tasks []*model.Task
		for i := range in.Tasks {
			t := &in.Tasks[i]
			if assigned[t.ID] || botched[t.ID] || t.Start > now || t.Deadline() < now {
				continue
			}
			tasks = append(tasks, t)
		}

		if len(bws) > 0 && len(tasks) > 0 {
			satisfied := make(map[model.TaskID]bool, len(assigned))
			for id := range assigned {
				satisfied[id] = true
			}
			b := core.NewBatch(in, bws, tasks, satisfied)
			// Instrumentation is driven by the observer: no OnBatch sink
			// means a nil recorder, and the engine's recording sites reduce
			// to nil checks.
			var rec *obs.BatchRec
			var indexD, allocD, dispatchD time.Duration
			var phaseStart time.Time
			if cfg.OnBatch != nil {
				rec = obs.NewBatchRec(batch, now)
				b.SetRecorder(rec)
				phaseStart = time.Now()
			}
			if !cfg.DisableEngineCache {
				cache.Attach(b)
				if cfg.VerifyEngineCache {
					if err := b.VerifyIndex(); err != nil {
						return nil, fmt.Errorf("sim: batch %d: engine cache diverged: %w", batch, err)
					}
				}
			} else if rec != nil {
				// Force the lazy build inside the timed window so the index
				// phase is attributed correctly (the build is idempotent).
				b.Index()
			}
			if rec != nil {
				indexD = time.Since(phaseStart)
				phaseStart = time.Now()
			}
			if cfg.VerifyGameWorklist {
				if g, ok := cfg.Allocator.(*core.Game); ok {
					if err := g.VerifyWorklist(b); err != nil {
						return nil, fmt.Errorf("sim: batch %d: game worklist diverged: %w", batch, err)
					}
				}
			}
			m := cfg.Allocator.Assign(b)
			rogue := core.DropUnknownWorkers(b, m)
			res.RoguePairs += rogue
			// Allocators may return raw assignments (the paper's Closest and
			// Random baselines ignore dependencies); only the valid subset
			// scores and satisfies dependency obligations. Invalid pairs
			// still execute — the worker travels and the task is consumed —
			// they are simply wasted, exactly the penalty the paper charges
			// the oblivious baselines.
			valid := core.DependencyFixpoint(b, m)
			if rec != nil {
				allocD = time.Since(phaseStart)
			}
			res.AssignedPairs += valid.Size()
			res.AssignedWeight += valid.WeightSum(in)
			res.WastedPairs += m.Size() - valid.Size()

			// Mark valid pairs as assigned (the dependency obligation is met
			// at assignment time, Definition 3 constraint 4) and botched
			// tasks as consumed without satisfying anything.
			for _, pair := range valid.Pairs {
				assigned[pair.Task] = true
			}
			for _, pair := range m.Pairs {
				botched[pair.Task] = true // valid ones are overridden below
			}
			for _, pair := range valid.Pairs {
				delete(botched, pair.Task)
			}
			order := dependencyOrder(in, m)
			validTask := valid.TaskSet()
			if rec != nil {
				phaseStart = time.Now()
			}
			for _, pair := range order {
				// DropUnknownWorkers already removed pairs naming workers
				// outside the batch; the guard stays as a backstop so a miss
				// can never dispatch through batch index 0.
				bi := b.WorkerIndex(pair.Worker)
				if bi < 0 {
					res.RoguePairs++
					rogue++
					continue
				}
				i := wIdx[bi]
				w := &in.Workers[i]
				t := in.Task(pair.Task)
				from := geo.Pt(ws[i].locX, ws[i].locY)
				d := dist(from, t.Loc)
				travel := w.TravelTime(from, t.Loc, dist)
				arrive := math.Max(now, t.Start) + travel
				serviceStart := arrive
				for _, dep := range t.Deps {
					if fa, ok := finishAt[dep]; ok && fa > serviceStart {
						serviceStart = fa
					}
				}
				finish := serviceStart + cfg.ServiceTime
				ws[i].locX, ws[i].locY = t.Loc.X, t.Loc.Y
				ws[i].distUsed += d
				ws[i].busyUntil = finish
				res.TotalTravel += d
				res.WorkerBusyTime += finish - now
				res.WorkerAssignments[w.ID]++
				if validTask[pair.Task] {
					finishAt[t.ID] = finish
					res.CompletedTasks++
					delaySum += serviceStart - t.Start
					delayCount++
					if cfg.CollectDelays {
						res.Delays = append(res.Delays, serviceStart-t.Start)
					}
				}
			}
			if rec != nil {
				dispatchD = time.Since(phaseStart)
				rec.SetPopulation(len(bws), len(tasks))
				rec.SetOutcome(valid.Size(), m.Size()-valid.Size(), rogue)
				rec.ObservePhases(indexD, allocD, dispatchD)
				cfg.OnBatch(BatchResult{
					Index: batch, Time: now,
					Workers: len(bws), Tasks: len(tasks),
					Assignment: valid,
					Trace:      rec.Finish(),
				})
			}
		}
		res.Batches++
		//lint:epsfloat-ok loop bound on the synthesized batch grid; both sides are recomputed identically every run, and a tolerance would change the batch count
		if now >= horizon {
			break
		}
	}

	for i := range in.Tasks {
		id := in.Tasks[i].ID
		if !assigned[id] && !botched[id] {
			res.ExpiredTasks++
		}
	}
	if delayCount > 0 {
		res.MeanStartDelay = delaySum / float64(delayCount)
	} else {
		res.MeanStartDelay = math.NaN()
	}
	return res, nil
}

// dependencyOrder returns the assignment's pairs ordered so that every task
// appears after its in-assignment dependencies, enabling single-pass finish
// time computation. The assignment's dependency consistency guarantees the
// order exists.
func dependencyOrder(in *model.Instance, m *model.Assignment) []model.Pair {
	byTask := make(map[model.TaskID]model.Pair, len(m.Pairs))
	for _, p := range m.Pairs {
		byTask[p.Task] = p
	}
	visited := make(map[model.TaskID]bool, len(m.Pairs))
	out := make([]model.Pair, 0, len(m.Pairs))
	var visit func(id model.TaskID)
	visit = func(id model.TaskID) {
		if visited[id] {
			return
		}
		visited[id] = true
		for _, dep := range in.Task(id).Deps {
			if _, ok := byTask[dep]; ok {
				visit(dep)
			}
		}
		out = append(out, byTask[id])
	}
	for _, p := range m.Pairs {
		visit(p.Task)
	}
	return out
}
