package sim

import (
	"strings"
	"testing"

	"dasc/internal/core"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// TestCSVColumnsAgree pins the header and every data row to the same column
// count — the two used to be maintained by hand in two functions and could
// silently drift.
func TestCSVColumnsAgree(t *testing.T) {
	var hdr strings.Builder
	if err := WriteCSVHeader(&hdr); err != nil {
		t.Fatal(err)
	}
	headerCols := strings.Split(strings.TrimSpace(hdr.String()), ",")
	if len(headerCols) != len(csvColumns) {
		t.Fatalf("header has %d columns, table has %d", len(headerCols), len(csvColumns))
	}
	for i, c := range csvColumns {
		if headerCols[i] != c.name {
			t.Errorf("header[%d] = %q, table says %q", i, headerCols[i], c.name)
		}
	}

	var row strings.Builder
	CSVTrace(&row, nil)(BatchResult{Assignment: model.NewAssignment()})
	rowCols := strings.Split(strings.TrimSpace(row.String()), ",")
	if len(rowCols) != len(headerCols) {
		t.Fatalf("row has %d columns, header has %d", len(rowCols), len(headerCols))
	}

	// A populated trace too, in case a column formats conditionally.
	row.Reset()
	CSVTrace(&row, nil)(BatchResult{
		Index: 3, Time: 15, Workers: 4, Tasks: 7,
		Assignment: model.NewAssignment(),
		Trace: obs.BatchTrace{
			MemoHits: 5, MemoMisses: 3, WorkersRevalidated: 2,
			CandidatesExamined: 11, CandidatesAdmitted: 6,
			IndexBuildMS: 0.5, AllocMS: 1.25, DispatchMS: 0.1,
			Deferred: 1, Rogue: 2,
		},
	})
	rowCols = strings.Split(strings.TrimSpace(row.String()), ",")
	if len(rowCols) != len(headerCols) {
		t.Fatalf("populated row has %d columns, header has %d", len(rowCols), len(headerCols))
	}
}

// TestRunFillsBatchTrace: a run with an OnBatch sink produces traces whose
// engine counters and population fields are live.
func TestRunFillsBatchTrace(t *testing.T) {
	in := model.Example1()
	ring := obs.NewTraceRing(16)
	reg := obs.NewRegistry()
	var results []BatchResult
	p, err := New(in, Config{
		Allocator: core.NewGreedy(),
		OnBatch: TeeBatch(
			TraceSink(ring),
			MetricsSink(reg),
			func(br BatchResult) { results = append(results, br) },
			nil, // nil sinks are skipped
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no batches observed")
	}
	first := results[0].Trace
	if first.Workers != results[0].Workers || first.Tasks != results[0].Tasks {
		t.Errorf("trace population %d/%d != result %d/%d",
			first.Workers, first.Tasks, results[0].Workers, results[0].Tasks)
	}
	if first.Assigned != results[0].Assignment.Size() {
		t.Errorf("trace assigned = %d, assignment = %d", first.Assigned, results[0].Assignment.Size())
	}
	if first.CandidatesAdmitted == 0 {
		t.Error("first batch admitted no candidates (engine counters not wired)")
	}
	if !first.FullRebuild {
		t.Error("first batch not marked as full rebuild")
	}
	if ring.Len() != len(results) {
		t.Errorf("ring holds %d traces, observed %d batches", ring.Len(), len(results))
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MBatchesTotal] != int64(len(results)) {
		t.Errorf("%s = %d, want %d", obs.MBatchesTotal, snap.Counters[obs.MBatchesTotal], len(results))
	}
	if snap.Counters[obs.MAssignedTotal] != int64(res.AssignedPairs) {
		t.Errorf("%s = %d, want %d", obs.MAssignedTotal, snap.Counters[obs.MAssignedTotal], res.AssignedPairs)
	}
	if snap.Histograms[obs.TPhaseAlloc].Count != int64(len(results)) {
		t.Errorf("alloc histogram count = %d, want %d", snap.Histograms[obs.TPhaseAlloc].Count, len(results))
	}
}

// TestRunTraceMatchesCacheRegime: in steady state (later batches, engine
// cache on) revalidation dominates and memo hits accumulate; with the cache
// disabled every batch is a full rebuild.
func TestRunTraceMatchesCacheRegime(t *testing.T) {
	in := model.Example1()
	var cached, uncached []obs.BatchTrace
	run := func(disable bool, sink *[]obs.BatchTrace) {
		p, err := New(in, Config{
			Allocator:          core.NewGreedy(),
			DisableEngineCache: disable,
			OnBatch:            func(br BatchResult) { *sink = append(*sink, br.Trace) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run(false, &cached)
	run(true, &uncached)
	for _, tr := range uncached {
		if tr.WorkersRevalidated != 0 || tr.FullRebuild {
			t.Errorf("cache-disabled batch %d shows cache activity: %+v", tr.Batch, tr)
		}
	}
	revalidated := 0
	for _, tr := range cached {
		revalidated += tr.WorkersRevalidated
	}
	if revalidated == 0 {
		t.Error("cache-enabled run never revalidated a worker")
	}
}
