package sim

import (
	"reflect"
	"testing"

	"dasc/internal/core"
	"dasc/internal/gen"
	"dasc/internal/geo"
	"dasc/internal/model"
)

// simMetrics are the travel metrics the cross-batch engine must handle in a
// real run: the Euclidean-boundable trio (grid-maintained path) and
// Haversine (no spatial pruning).
var simMetrics = []struct {
	name string
	dist geo.DistanceFunc
}{
	{"Euclidean", geo.Euclidean},
	{"Manhattan", geo.Manhattan},
	{"Chebyshev", geo.Chebyshev},
	{"Haversine", geo.Haversine},
}

// TestSimEngineCacheDifferential runs full simulations with the
// incrementally carried candidate engine cross-checked against a
// from-scratch build at every batch (Config.VerifyEngineCache): any
// divergence aborts the run with an error.
func TestSimEngineCacheDifferential(t *testing.T) {
	c := gen.DefaultSynthetic().Scale(0.01) // 50×50, arrivals spread over time
	c.Seed = 11
	base, err := gen.Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range simMetrics {
		t.Run(m.name, func(t *testing.T) {
			in := *base
			in.Dist = m.dist
			p, err := New(&in, Config{Allocator: core.NewGreedy(), VerifyEngineCache: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Batches < 2 {
				t.Fatalf("only %d batches — the cross-batch path was not exercised", res.Batches)
			}
		})
	}
}

// TestSimEngineCacheSameResultsAsScratch: a run with the carried engine must
// produce bit-identical results to one that rebuilds from scratch every
// batch — equal engines mean equal allocator inputs mean equal assignments.
func TestSimEngineCacheSameResultsAsScratch(t *testing.T) {
	c := gen.DefaultSynthetic().Scale(0.01)
	c.Seed = 12
	in, err := gen.Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range core.AllNames() {
		alloc1, _ := core.NewByName(name, 3)
		alloc2, _ := core.NewByName(name, 3)
		p1, err := New(in, Config{Allocator: alloc1})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := New(in, Config{Allocator: alloc2, DisableEngineCache: true})
		if err != nil {
			t.Fatal(err)
		}
		cached, err := p1.Run()
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := p2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached, scratch) {
			t.Fatalf("%s: cached run diverged from scratch run:\ncached:  %+v\nscratch: %+v", name, cached, scratch)
		}
	}
}

// rogueAllocator returns pairs naming a worker that is not in the batch —
// the misbehaving-custom-Allocator case the platforms must survive. Before
// the guard, the worker-ID lookup resolved the unknown ID to batch index 0
// and silently moved worker 0.
type rogueAllocator struct{}

func (rogueAllocator) Name() string { return "Rogue" }

func (rogueAllocator) Assign(b *core.Batch) *model.Assignment {
	a := model.NewAssignment()
	for _, task := range b.Tasks {
		a.Add(model.WorkerID(9999), task.ID)
		break
	}
	return a
}

func TestSimRogueAllocatorPairsSkipped(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 10, Velocity: 1, MaxDist: 10,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 0), Start: 0, Wait: 10, Requires: 0},
		},
	}
	p, err := New(in, Config{Allocator: rogueAllocator{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RoguePairs == 0 {
		t.Error("rogue pairs were not counted")
	}
	if res.AssignedPairs != 0 || res.CompletedTasks != 0 {
		t.Errorf("rogue pairs scored: assigned=%d completed=%d", res.AssignedPairs, res.CompletedTasks)
	}
	// Worker 0 must never have been dispatched on the rogue pair.
	if res.TotalTravel != 0 {
		t.Errorf("worker 0 travelled %v on a rogue pair", res.TotalTravel)
	}
	if got := res.WorkerAssignments[0]; got != 0 {
		t.Errorf("worker 0 conducted %d tasks via rogue pairs", got)
	}
	if res.ExpiredTasks != 1 {
		t.Errorf("task not returned to the pool: expired=%d, want 1", res.ExpiredTasks)
	}
}
