package sim

import (
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// TestOnlineLateArrivingWorker: a worker whose Start falls after the last
// task arrival never appeared on the old task-only timeline, so a task with a
// generous deadline was silently dropped even though the worker could serve
// it. Worker arrivals must be timeline events.
func TestOnlineLateArrivingWorker(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 10, Wait: 100, Velocity: 10, MaxDist: 100,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			// Arrives at 0, open until 50; serviceable only once the worker
			// appears at 10.
			{ID: 0, Loc: geo.Pt(1, 0), Start: 0, Wait: 50, Requires: 0},
		},
	}
	res, err := RunOnline(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTasks != 1 {
		t.Fatalf("CompletedTasks = %d, want 1 (late worker never examined): %+v",
			res.CompletedTasks, res)
	}
}

// TestOnlineDrainsWakeupsToFixpoint: a single worker serving the chain
// t0→t1→t2 finishes t1 during the post-timeline drain; t2 only becomes
// assignable at t1's finish time, a wakeup that is itself created while
// draining. The old single-pass drain over a pre-sorted slice missed it and
// dropped the tail of the chain.
func TestOnlineDrainsWakeupsToFixpoint(t *testing.T) {
	w := model.Worker{
		ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100,
		Skills: model.NewSkillSet(0),
	}
	in := &model.Instance{
		Workers: []model.Worker{w},
		Tasks: []model.Task{
			// Colocated chain: travel is zero, service time serialises it.
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
			{ID: 2, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{1}},
		},
	}
	res, err := RunOnline(in, Config{ServiceTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	// t0 at 0, t1 at the finish-1 wakeup, t2 at the finish-2 wakeup pushed
	// during the drain itself.
	if res.CompletedTasks != 3 {
		t.Fatalf("CompletedTasks = %d, want 3 (chain tail dropped in drain): %+v",
			res.CompletedTasks, res)
	}
	if res.WorkerAssignments[0] != 3 {
		t.Errorf("worker 0 served %d tasks, want 3", res.WorkerAssignments[0])
	}
}

// TestOnlineDeepChainSingleWorker stresses the fixpoint with a longer chain:
// every link past the first is assigned at a wakeup created by the previous
// link's assignment.
func TestOnlineDeepChainSingleWorker(t *testing.T) {
	const n = 10
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 1000, Velocity: 10, MaxDist: 1000,
			Skills: model.NewSkillSet(0),
		}},
	}
	for i := 0; i < n; i++ {
		tk := model.Task{ID: model.TaskID(i), Loc: geo.Pt(0, 0), Start: 0, Wait: 1000, Requires: 0}
		if i > 0 {
			tk.Deps = []model.TaskID{model.TaskID(i - 1)}
		}
		in.Tasks = append(in.Tasks, tk)
	}
	res, err := RunOnline(in, Config{ServiceTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTasks != n {
		t.Fatalf("CompletedTasks = %d, want %d", res.CompletedTasks, n)
	}
}
