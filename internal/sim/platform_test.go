package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dasc/internal/core"
	"dasc/internal/gen"
	"dasc/internal/geo"
	"dasc/internal/model"
)

func TestSimExample1SingleBatch(t *testing.T) {
	in := model.Example1()
	p, err := New(in, Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Everyone appears at time 0 with huge windows; the first batch can
	// assign 3 workers, later batches mop up the remaining chain tasks as
	// workers free up (worker reuse).
	if res.AssignedPairs < 3 {
		t.Errorf("AssignedPairs = %d, want ≥ 3", res.AssignedPairs)
	}
	if res.CompletedTasks != res.AssignedPairs {
		t.Errorf("completed %d != assigned %d", res.CompletedTasks, res.AssignedPairs)
	}
	if res.AssignedPairs+res.ExpiredTasks != len(in.Tasks) {
		t.Errorf("assigned+expired = %d, want %d", res.AssignedPairs+res.ExpiredTasks, len(in.Tasks))
	}
	if res.TotalTravel <= 0 {
		t.Error("no travel recorded")
	}
}

func TestSimWorkerReuseAcrossBatches(t *testing.T) {
	// One worker, two dependent tasks. The worker must do t0 in batch one
	// and t1 in a later batch.
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 0), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(2, 0), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	p, err := New(in, Config{Allocator: core.NewGreedy(), BatchInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	var batches []BatchResult
	p.cfg.OnBatch = func(br BatchResult) { batches = append(batches, br) }
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 2 {
		t.Fatalf("AssignedPairs = %d, want 2 (reuse across batches)", res.AssignedPairs)
	}
	if got := res.WorkerAssignments[0]; got != 2 {
		t.Errorf("worker 0 conducted %d tasks, want 2", got)
	}
	// The two assignments must land in different batches: the single worker
	// can hold only one task per batch (exclusive constraint).
	nonEmpty := 0
	for _, br := range batches {
		if br.Assignment.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Errorf("assignments spread over %d batches, want 2", nonEmpty)
	}
}

func TestSimDisableReuse(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 0), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(2, 0), Start: 0, Wait: 100, Requires: 0},
		},
	}
	p, err := New(in, Config{Allocator: core.NewGreedy(), BatchInterval: 1, DisableReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 1 {
		t.Errorf("AssignedPairs = %d, want 1 without reuse", res.AssignedPairs)
	}
}

func TestSimCrossBatchDependency(t *testing.T) {
	// t1 depends on t0, but t1 only appears after t0's batch. The platform
	// must treat t0 as satisfied when t1 shows up.
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Loc: geo.Pt(0, 1), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 0), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(2, 0), Start: 20, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	p, err := New(in, Config{Allocator: core.NewGreedy(), BatchInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 2 {
		t.Errorf("AssignedPairs = %d, want 2 (cross-batch dependency)", res.AssignedPairs)
	}
}

func TestSimServiceTimeDelaysDependants(t *testing.T) {
	// Two workers, chain t0→t1, long service: t1's service start must wait
	// for t0's finish even though both are assigned in the same batch.
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0.1, 0), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(0.2, 0), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	p, err := New(in, Config{Allocator: core.NewGreedy(), ServiceTime: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 2 {
		t.Fatalf("AssignedPairs = %d", res.AssignedPairs)
	}
	// t1's start delay includes waiting ≈7 for t0's service; the mean over
	// both tasks must therefore exceed 3.
	if !(res.MeanStartDelay > 3) {
		t.Errorf("MeanStartDelay = %v, want > 3", res.MeanStartDelay)
	}
}

func TestSimExpiredTasks(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 10, Velocity: 1, MaxDist: 1,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			// Unreachable: distance 5 > MaxDist 1.
			{ID: 0, Loc: geo.Pt(5, 0), Start: 0, Wait: 10, Requires: 0},
		},
	}
	p, err := New(in, Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 0 || res.ExpiredTasks != 1 {
		t.Errorf("res = %+v", res)
	}
	if !math.IsNaN(res.MeanStartDelay) {
		t.Errorf("MeanStartDelay = %v, want NaN", res.MeanStartDelay)
	}
}

func TestSimEmptyInstance(t *testing.T) {
	p, err := New(&model.Instance{}, Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 0 || res.AssignedPairs != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestSimConfigValidation(t *testing.T) {
	if _, err := New(&model.Instance{}, Config{}); err == nil {
		t.Error("missing allocator accepted")
	}
	if _, err := New(&model.Instance{}, Config{Allocator: core.NewGreedy(), ServiceTime: -1}); err == nil {
		t.Error("negative service time accepted")
	}
	bad := model.Example1()
	bad.Tasks[0].Deps = []model.TaskID{2} // cycle
	if _, err := New(bad, Config{Allocator: core.NewGreedy()}); err == nil {
		t.Error("cyclic instance accepted")
	}
}

func TestSimAllAllocatorsOnGeneratedWorkload(t *testing.T) {
	c := gen.DefaultSynthetic().Scale(0.01) // 50×50
	c.Seed = 7
	in, err := gen.Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]int{}
	for _, name := range core.AllNames() {
		alloc, err := core.NewByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(in, Config{Allocator: alloc})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		total := res.AssignedPairs + res.WastedPairs + res.ExpiredTasks
		if total != len(in.Tasks) {
			t.Errorf("%s: assigned+wasted+expired=%d, want %d", name, total, len(in.Tasks))
		}
		scores[name] = res.AssignedPairs
	}
	// The dependency-aware approaches must beat the oblivious baselines on a
	// dependency-heavy workload.
	if scores[core.NameGreedy] < scores[core.NameRandom] {
		t.Errorf("greedy %d < random %d", scores[core.NameGreedy], scores[core.NameRandom])
	}
}

func TestSimWasteSemanticsClosest(t *testing.T) {
	// Example 1 in one batch: Closest produces (w1,t2),(w2,t4),(w3,t3) —
	// t2 and t3 have unassigned dependencies, so two dispatches are wasted
	// and the tasks are consumed without satisfying anything.
	in := model.Example1()
	p, err := New(in, Config{Allocator: core.NewClosest(), BatchInterval: 2000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 1 {
		t.Errorf("AssignedPairs = %d, want 1 (paper Figure 1(b))", res.AssignedPairs)
	}
	if res.WastedPairs != 2 {
		t.Errorf("WastedPairs = %d, want 2", res.WastedPairs)
	}
	// Botched tasks are consumed: expired counts only never-touched tasks.
	if res.AssignedPairs+res.WastedPairs+res.ExpiredTasks != len(in.Tasks) {
		t.Errorf("accounting broken: %+v", res)
	}
	// Wasted dispatches still travel.
	if res.TotalTravel <= 0 {
		t.Error("wasted dispatches should still travel")
	}
	if res.CompletedTasks != 1 {
		t.Errorf("CompletedTasks = %d, want 1", res.CompletedTasks)
	}
}

func TestDependencyOrder(t *testing.T) {
	in := model.Example1()
	m := model.NewAssignment()
	m.Add(2, 2) // t3 depends on t1, t2
	m.Add(0, 1) // t2 depends on t1
	m.Add(1, 0) // t1
	order := dependencyOrder(in, m)
	pos := map[model.TaskID]int{}
	for i, p := range order {
		pos[p.Task] = i
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("dependencyOrder violated: %v", order)
	}
	// Pairs whose dependencies are outside the assignment keep their place.
	m2 := model.NewAssignment()
	m2.Add(0, 2) // deps t0, t1 not assigned
	if got := dependencyOrder(in, m2); len(got) != 1 || got[0].Task != 2 {
		t.Errorf("partial order = %v", got)
	}
}

func TestSimBatchIntervalSensitivity(t *testing.T) {
	// Coarser batching must not assign more than finer batching on a
	// worker-reuse workload (fewer chances to reuse workers).
	c := gen.DefaultSynthetic().Scale(0.02)
	c.Seed = 11
	in, err := gen.Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	score := func(interval float64) int {
		p, err := New(in, Config{Allocator: core.NewGreedy(), BatchInterval: interval})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.AssignedPairs
	}
	fine, coarse := score(1), score(30)
	if coarse > fine {
		t.Errorf("coarse batching (%d) beat fine batching (%d)", coarse, fine)
	}
}

func TestCSVTrace(t *testing.T) {
	in := model.Example1()
	var buf strings.Builder
	if err := WriteCSVHeader(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := New(in, Config{
		Allocator: core.NewGreedy(),
		OnBatch:   CSVTrace(&buf, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "batch,time,active_workers,pending_tasks,assigned,") {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("no batch rows traced")
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first row = %q", lines[1])
	}
	// Error sink receives write failures.
	var got error
	sink := CSVTrace(failWriter{}, func(err error) { got = err })
	sink(BatchResult{Assignment: model.NewAssignment()})
	if got == nil {
		t.Error("write error not reported")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errTest }

var errTest = fmt.Errorf("synthetic write failure")

func TestOnlineExample1(t *testing.T) {
	in := model.Example1()
	res, err := RunOnline(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// All five tasks are eventually doable online: roots first, dependants
	// unblock as workers free.
	if res.AssignedPairs < 3 {
		t.Errorf("online assigned %d, want ≥ 3", res.AssignedPairs)
	}
	if res.AssignedPairs+res.ExpiredTasks != len(in.Tasks) {
		t.Errorf("accounting: %+v", res)
	}
}

func TestOnlineRespectsDependencies(t *testing.T) {
	// t1 depends on t0 but arrives first; online must defer it until t0 is
	// assigned, not drop it.
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Loc: geo.Pt(0, 1), Start: 0, Wait: 100, Velocity: 10, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(1, 0), Start: 5, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(2, 0), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	res, err := RunOnline(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedPairs != 2 {
		t.Errorf("online = %+v, want both tasks", res)
	}
}

func TestOnlineVsBatchComparable(t *testing.T) {
	// On a generated workload both regimes must produce sane accounting;
	// neither may assign a task twice (checked by accounting identity).
	c := gen.DefaultSynthetic().Scale(0.02)
	c.Seed = 13
	in, err := gen.Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	online, err := RunOnline(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(in, Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if online.AssignedPairs+online.ExpiredTasks != len(in.Tasks) {
		t.Errorf("online accounting: %+v", online)
	}
	if batch.AssignedPairs+batch.WastedPairs+batch.ExpiredTasks != len(in.Tasks) {
		t.Errorf("batch accounting: %+v", batch)
	}
	t.Logf("batch=%d online=%d (batching coordinates associative sets)",
		batch.AssignedPairs, online.AssignedPairs)
}

func TestOnlineEmptyInstance(t *testing.T) {
	res, err := RunOnline(&model.Instance{}, Config{})
	if err != nil || res.AssignedPairs != 0 {
		t.Errorf("res=%+v err=%v", res, err)
	}
}

func TestWorkerBusyTimeAccounted(t *testing.T) {
	in := model.Example1()
	p, err := New(in, Config{Allocator: core.NewGreedy(), ServiceTime: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each of the ≥3 dispatches keeps its worker busy for at least the
	// 3-unit service time.
	if res.WorkerBusyTime < float64(res.CompletedTasks)*3 {
		t.Errorf("WorkerBusyTime = %v for %d tasks at service 3",
			res.WorkerBusyTime, res.CompletedTasks)
	}
}

func TestCollectDelays(t *testing.T) {
	in := model.Example1()
	p, err := New(in, Config{Allocator: core.NewGreedy(), CollectDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != res.CompletedTasks {
		t.Fatalf("Delays = %d entries for %d completions", len(res.Delays), res.CompletedTasks)
	}
	// Mean of the collected sample must match the reported mean.
	var sum float64
	for _, d := range res.Delays {
		sum += d
	}
	if got := sum / float64(len(res.Delays)); math.Abs(got-res.MeanStartDelay) > 1e-9 {
		t.Errorf("collected mean %v != reported %v", got, res.MeanStartDelay)
	}
	// Off by default.
	p2, _ := New(in, Config{Allocator: core.NewGreedy()})
	res2, _ := p2.Run()
	if res2.Delays != nil {
		t.Error("Delays collected without the flag")
	}
}
