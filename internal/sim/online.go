package sim

import (
	"math"
	"sort"

	"dasc/internal/core"
	"dasc/internal/geo"
	"dasc/internal/model"
)

// RunOnline executes the instance in the *online* regime the paper's related
// work contrasts with batching (Tong et al. [24]): instead of accumulating
// arrivals into batches, the platform reacts to every task arrival
// immediately, assigning the task to the best currently-available feasible
// worker (minimum travel time) if its dependencies are met; tasks whose
// dependencies are still pending wait and are re-examined whenever a
// dependency is assigned or a worker frees up.
//
// Comparing Run (batch) against RunOnline on the same instance measures how
// much the paper's batch window buys: batching can coordinate an associative
// task set, while the online rule commits myopically.
func RunOnline(in *model.Instance, cfg Config) (*Result, error) {
	if cfg.Allocator == nil {
		// The online rule is fixed (greedy-by-travel-time); the field is
		// unused but kept required so both entry points validate alike.
		cfg.Allocator = core.NewGreedy()
	}
	p, err := New(in, cfg)
	if err != nil {
		return nil, err
	}
	return p.runOnline()
}

// event is one point of the online timeline: a task appearing or a worker
// appearing.
type event struct {
	at   float64
	task model.TaskID // -1 for worker-arrival events
}

// wakeupQueue is a min-heap of re-examination times with duplicate
// suppression: worker-finish times are pushed as assignments are made and
// popped in time order, including wakeups created while draining earlier
// ones — the fixpoint that keeps late completion chains alive.
type wakeupQueue struct {
	heap []float64
	seen map[float64]bool
}

func newWakeupQueue() *wakeupQueue {
	return &wakeupQueue{seen: make(map[float64]bool)}
}

func (q *wakeupQueue) push(at float64) {
	if q.seen[at] {
		return
	}
	q.seen[at] = true
	q.heap = append(q.heap, at)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.heap[p] <= q.heap[i] {
			break
		}
		q.heap[p], q.heap[i] = q.heap[i], q.heap[p]
		i = p
	}
}

func (q *wakeupQueue) len() int { return len(q.heap) }

func (q *wakeupQueue) min() float64 { return q.heap[0] }

func (q *wakeupQueue) pop() float64 {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && q.heap[l] < q.heap[best] {
			best = l
		}
		if r < last && q.heap[r] < q.heap[best] {
			best = r
		}
		if best == i {
			break
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
	return top
}

func (p *Platform) runOnline() (*Result, error) {
	in, cfg := p.in, p.cfg
	dist := in.Distance()
	res := &Result{WorkerAssignments: map[model.WorkerID]int{}}
	if len(in.Tasks) == 0 {
		return res, nil
	}

	type wstate struct {
		loc       geo.Point
		busyUntil float64
		distUsed  float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{loc: in.Workers[i].Loc}
	}
	assigned := make(map[model.TaskID]bool)
	finishAt := make(map[model.TaskID]float64)

	// ci's skill buckets prune the per-arrival worker scan: only workers
	// holding rs_t are examined for a task.
	ci := model.NewCandidateIndex(in)

	// Timeline: task arrivals AND worker arrivals. A worker whose Start
	// falls after the last task arrival must still trigger a sweep, or the
	// tasks it could serve are silently dropped.
	var timeline []event
	for i := range in.Tasks {
		timeline = append(timeline, event{at: in.Tasks[i].Start, task: in.Tasks[i].ID})
	}
	for i := range in.Workers {
		timeline = append(timeline, event{at: in.Workers[i].Start, task: -1})
	}
	sort.SliceStable(timeline, func(a, b int) bool { return timeline[a].at < timeline[b].at })

	// Wakeups re-examine pending tasks when a busy worker frees. New
	// assignments push their finish time as they are made, so completions
	// chained through the post-timeline drain keep generating wakeups.
	wake := newWakeupQueue()

	var delaySum float64
	var delayCount int

	// tryAssign attempts the online rule for task id at time now.
	tryAssign := func(id model.TaskID, now float64) bool {
		t := in.Task(id)
		if assigned[t.ID] || t.Deadline() < now {
			return false
		}
		for _, d := range t.Deps {
			if !assigned[d] {
				return false
			}
		}
		best := -1
		bestTravel := math.Inf(1)
		for _, wid := range ci.WorkersWithSkill(t.Requires) {
			i := int(wid)
			w := &in.Workers[i]
			if w.Start > now || now > w.Expiry() || ws[i].busyUntil > now {
				continue
			}
			if !model.FeasibleFrom(w, ws[i].loc, now, w.MaxDist-ws[i].distUsed, t, dist) {
				continue
			}
			if tr := w.TravelTime(ws[i].loc, t.Loc, dist); tr < bestTravel {
				bestTravel = tr
				best = i
			}
		}
		if best < 0 {
			return false
		}
		w := &in.Workers[best]
		d := dist(ws[best].loc, t.Loc)
		arrive := math.Max(now, t.Start) + bestTravel
		serviceStart := arrive
		for _, dep := range t.Deps {
			if fa, ok := finishAt[dep]; ok && fa > serviceStart {
				serviceStart = fa
			}
		}
		finish := serviceStart + cfg.ServiceTime
		assigned[t.ID] = true
		finishAt[t.ID] = finish
		ws[best].loc = t.Loc
		ws[best].distUsed += d
		ws[best].busyUntil = finish
		if finish > now {
			wake.push(finish)
		}
		res.WorkerBusyTime += finish - now
		res.AssignedPairs++
		res.AssignedWeight += t.EffWeight()
		res.CompletedTasks++
		res.TotalTravel += d
		res.WorkerAssignments[w.ID]++
		delaySum += serviceStart - t.Start
		delayCount++
		if cfg.CollectDelays {
			res.Delays = append(res.Delays, serviceStart-t.Start)
		}
		return true
	}

	// pendingSweep retries every open pending task until nothing more fits —
	// an assignment may have unblocked dependants, or a worker may have
	// freed/arrived at this instant.
	pendingSweep := func(now float64) {
		for changed := true; changed; {
			changed = false
			for i := range in.Tasks {
				t := &in.Tasks[i]
				if assigned[t.ID] || t.Start > now || t.Deadline() < now {
					continue
				}
				if tryAssign(t.ID, now) {
					changed = true
				}
			}
		}
	}

	for _, ev := range timeline {
		now := ev.at
		// Process earlier wakeups first, in time order; sweeps may push
		// fresh wakeups that still precede now.
		for wake.len() > 0 && wake.min() <= now {
			pendingSweep(wake.pop())
		}
		if ev.task >= 0 {
			tryAssign(ev.task, now)
		}
		pendingSweep(now)
		res.Batches++ // one "decision point" per arrival, for comparability
	}
	// Drain remaining wakeups to a fixpoint: assignments made here set
	// busyUntil times that push their own wakeups, so dependants completed
	// after the last arrival still get their chance.
	for wake.len() > 0 {
		pendingSweep(wake.pop())
	}

	for i := range in.Tasks {
		if !assigned[in.Tasks[i].ID] {
			res.ExpiredTasks++
		}
	}
	if delayCount > 0 {
		res.MeanStartDelay = delaySum / float64(delayCount)
	} else {
		res.MeanStartDelay = math.NaN()
	}
	return res, nil
}
