package sim

import (
	"math"
	"sort"

	"dasc/internal/core"
	"dasc/internal/geo"
	"dasc/internal/model"
)

// RunOnline executes the instance in the *online* regime the paper's related
// work contrasts with batching (Tong et al. [24]): instead of accumulating
// arrivals into batches, the platform reacts to every task arrival
// immediately, assigning the task to the best currently-available feasible
// worker (minimum travel time) if its dependencies are met; tasks whose
// dependencies are still pending wait and are re-examined whenever a
// dependency is assigned or a worker frees up.
//
// Comparing Run (batch) against RunOnline on the same instance measures how
// much the paper's batch window buys: batching can coordinate an associative
// task set, while the online rule commits myopically.
func RunOnline(in *model.Instance, cfg Config) (*Result, error) {
	if cfg.Allocator == nil {
		// The online rule is fixed (greedy-by-travel-time); the field is
		// unused but kept required so both entry points validate alike.
		cfg.Allocator = core.NewGreedy()
	}
	p, err := New(in, cfg)
	if err != nil {
		return nil, err
	}
	return p.runOnline()
}

// event is one point of the online timeline: a task appearing or a worker
// appearing/freeing.
type event struct {
	at   float64
	task model.TaskID // -1 for pure worker events
}

func (p *Platform) runOnline() (*Result, error) {
	in, cfg := p.in, p.cfg
	dist := in.Distance()
	res := &Result{WorkerAssignments: map[model.WorkerID]int{}}
	if len(in.Tasks) == 0 {
		return res, nil
	}

	type wstate struct {
		loc       geo.Point
		busyUntil float64
		distUsed  float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{loc: in.Workers[i].Loc}
	}
	assigned := make(map[model.TaskID]bool)
	finishAt := make(map[model.TaskID]float64)

	// Timeline: task arrivals, plus re-examination points when workers free.
	var timeline []event
	for i := range in.Tasks {
		timeline = append(timeline, event{at: in.Tasks[i].Start, task: in.Tasks[i].ID})
	}
	sort.Slice(timeline, func(a, b int) bool { return timeline[a].at < timeline[b].at })

	var delaySum float64
	var delayCount int

	// tryAssign attempts the online rule for task id at time now.
	tryAssign := func(id model.TaskID, now float64) bool {
		t := in.Task(id)
		if assigned[t.ID] || t.Deadline() < now {
			return false
		}
		for _, d := range t.Deps {
			if !assigned[d] {
				return false
			}
		}
		best := -1
		bestTravel := math.Inf(1)
		for i := range in.Workers {
			w := &in.Workers[i]
			if w.Start > now || now > w.Expiry() || ws[i].busyUntil > now {
				continue
			}
			if !model.FeasibleFrom(w, ws[i].loc, now, w.MaxDist-ws[i].distUsed, t, dist) {
				continue
			}
			if tr := w.TravelTime(ws[i].loc, t.Loc, dist); tr < bestTravel {
				bestTravel = tr
				best = i
			}
		}
		if best < 0 {
			return false
		}
		w := &in.Workers[best]
		d := dist(ws[best].loc, t.Loc)
		arrive := math.Max(now, t.Start) + bestTravel
		serviceStart := arrive
		for _, dep := range t.Deps {
			if fa, ok := finishAt[dep]; ok && fa > serviceStart {
				serviceStart = fa
			}
		}
		finish := serviceStart + cfg.ServiceTime
		assigned[t.ID] = true
		finishAt[t.ID] = finish
		ws[best].loc = t.Loc
		ws[best].distUsed += d
		ws[best].busyUntil = finish
		res.WorkerBusyTime += finish - now
		res.AssignedPairs++
		res.AssignedWeight += t.EffWeight()
		res.CompletedTasks++
		res.TotalTravel += d
		res.WorkerAssignments[w.ID]++
		delaySum += serviceStart - t.Start
		delayCount++
		if cfg.CollectDelays {
			res.Delays = append(res.Delays, serviceStart-t.Start)
		}
		return true
	}

	// Process the timeline; after every assignment, sweep the still-pending
	// tasks whose windows are open (a dependency may have unblocked them, or
	// the just-freed location may not matter until the worker frees — worker
	// frees are swept at each event time too).
	pendingSweep := func(now float64) {
		for changed := true; changed; {
			changed = false
			for i := range in.Tasks {
				t := &in.Tasks[i]
				if assigned[t.ID] || t.Start > now || t.Deadline() < now {
					continue
				}
				if tryAssign(t.ID, now) {
					changed = true
				}
			}
		}
	}
	// Also wake up when workers free, so waiting tasks get another chance.
	var wakeups []float64
	for _, ev := range timeline {
		now := ev.at
		// Flush earlier wakeups first.
		sort.Float64s(wakeups)
		for len(wakeups) > 0 && wakeups[0] <= now {
			pendingSweep(wakeups[0])
			wakeups = wakeups[1:]
		}
		tryAssign(ev.task, now)
		pendingSweep(now)
		// Schedule a wakeup at each busy worker's finish time.
		for i := range ws {
			if ws[i].busyUntil > now {
				wakeups = append(wakeups, ws[i].busyUntil)
			}
		}
		res.Batches++ // one "decision point" per arrival, for comparability
	}
	// Drain remaining wakeups.
	sort.Float64s(wakeups)
	for _, at := range wakeups {
		pendingSweep(at)
	}

	for i := range in.Tasks {
		if !assigned[in.Tasks[i].ID] {
			res.ExpiredTasks++
		}
	}
	if delayCount > 0 {
		res.MeanStartDelay = delaySum / float64(delayCount)
	} else {
		res.MeanStartDelay = math.NaN()
	}
	return res, nil
}
