package sim

import (
	"fmt"
	"io"
)

// CSVTrace returns an OnBatch callback that streams one CSV row per batch to
// w — the long-form log an operator feeds into a spreadsheet or notebook.
// Call WriteCSVHeader first. Write errors are reported through errSink
// (which may be nil to ignore them), since the batch loop cannot abort on a
// logging failure.
func CSVTrace(w io.Writer, errSink func(error)) func(BatchResult) {
	return func(br BatchResult) {
		_, err := fmt.Fprintf(w, "%d,%.4f,%d,%d,%d\n",
			br.Index, br.Time, br.Workers, br.Tasks, br.Assignment.Size())
		if err != nil && errSink != nil {
			errSink(err)
		}
	}
}

// WriteCSVHeader writes the header row matching CSVTrace's columns.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "batch,time,active_workers,pending_tasks,assigned")
	return err
}
