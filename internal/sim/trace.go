package sim

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dasc/internal/obs"
)

// csvColumns defines the per-batch CSV trace once: every column pairs its
// header name with its row extractor, so WriteCSVHeader and CSVTrace can
// never disagree on column count or order (TestCSVColumnsAgree pins it).
var csvColumns = []struct {
	name string
	val  func(BatchResult) string
}{
	{"batch", func(br BatchResult) string { return strconv.Itoa(br.Index) }},
	{"time", func(br BatchResult) string { return fmt.Sprintf("%.4f", br.Time) }},
	{"active_workers", func(br BatchResult) string { return strconv.Itoa(br.Workers) }},
	{"pending_tasks", func(br BatchResult) string { return strconv.Itoa(br.Tasks) }},
	{"assigned", func(br BatchResult) string { return strconv.Itoa(br.Assignment.Size()) }},
	{"deferred", func(br BatchResult) string { return strconv.Itoa(br.Trace.Deferred) }},
	{"rogue", func(br BatchResult) string { return strconv.Itoa(br.Trace.Rogue) }},
	{"index_build_ms", func(br BatchResult) string { return fmt.Sprintf("%.3f", br.Trace.IndexBuildMS) }},
	{"alloc_ms", func(br BatchResult) string { return fmt.Sprintf("%.3f", br.Trace.AllocMS) }},
	{"dispatch_ms", func(br BatchResult) string { return fmt.Sprintf("%.3f", br.Trace.DispatchMS) }},
	{"workers_revalidated", func(br BatchResult) string { return strconv.Itoa(br.Trace.WorkersRevalidated) }},
	{"workers_rebuilt", func(br BatchResult) string { return strconv.Itoa(br.Trace.WorkersRebuilt) }},
	{"memo_hits", func(br BatchResult) string { return strconv.FormatInt(br.Trace.MemoHits, 10) }},
	{"memo_misses", func(br BatchResult) string { return strconv.FormatInt(br.Trace.MemoMisses, 10) }},
	{"cache_hit_ratio", func(br BatchResult) string { return fmt.Sprintf("%.4f", br.Trace.CacheHitRatio()) }},
	{"candidates_examined", func(br BatchResult) string { return strconv.FormatInt(br.Trace.CandidatesExamined, 10) }},
	{"candidates_admitted", func(br BatchResult) string { return strconv.FormatInt(br.Trace.CandidatesAdmitted, 10) }},
	{"game_rounds", func(br BatchResult) string { return strconv.Itoa(br.Trace.GameRounds) }},
	{"game_active", func(br BatchResult) string { return strconv.Itoa(br.Trace.GameActive) }},
	{"game_evaluated", func(br BatchResult) string { return strconv.FormatInt(br.Trace.GameEvaluated, 10) }},
	{"game_skipped", func(br BatchResult) string { return strconv.FormatInt(br.Trace.GameSkipped, 10) }},
	{"game_moved", func(br BatchResult) string { return strconv.FormatInt(br.Trace.GameMoved, 10) }},
}

// CSVTrace returns an OnBatch callback that streams one CSV row per batch to
// w — the long-form log an operator feeds into a spreadsheet or notebook.
// Call WriteCSVHeader first. Write errors are reported through errSink
// (which may be nil to ignore them), since the batch loop cannot abort on a
// logging failure.
func CSVTrace(w io.Writer, errSink func(error)) func(BatchResult) {
	return func(br BatchResult) {
		fields := make([]string, len(csvColumns))
		for i, c := range csvColumns {
			fields[i] = c.val(br)
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil && errSink != nil {
			errSink(err)
		}
	}
}

// WriteCSVHeader writes the header row matching CSVTrace's columns.
func WriteCSVHeader(w io.Writer) error {
	names := make([]string, len(csvColumns))
	for i, c := range csvColumns {
		names[i] = c.name
	}
	_, err := fmt.Fprintln(w, strings.Join(names, ","))
	return err
}

// TraceSink returns an OnBatch callback that appends every batch's trace to
// ring — the simulator-side twin of the server's /v1/trace buffer. Compose
// it with other sinks by calling both from one closure.
func TraceSink(ring *obs.TraceRing) func(BatchResult) {
	return func(br BatchResult) { ring.Add(br.Trace) }
}

// MetricsSink returns an OnBatch callback that folds every batch's trace
// into reg under the standard dasc_* names (obs.RecordBatch), giving a
// simulation run the same aggregate metrics surface as the server.
func MetricsSink(reg *obs.Registry) func(BatchResult) {
	return func(br BatchResult) { obs.RecordBatch(reg, br.Trace) }
}

// TeeBatch fans one OnBatch event out to multiple sinks, skipping nil
// entries. With no live sinks it returns nil, so assigning the result to
// Config.OnBatch leaves per-batch instrumentation off rather than paying
// for traces nobody reads.
func TeeBatch(sinks ...func(BatchResult)) func(BatchResult) {
	var live []func(BatchResult)
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return func(br BatchResult) {
		for _, s := range live {
			s(br)
		}
	}
}
