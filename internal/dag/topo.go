package dag

// TopoSort returns a topological order in which every task appears after all
// of its dependencies (dependencies-first). It returns ErrCycle when the
// graph is cyclic. Kahn's algorithm with an index-ordered frontier makes the
// output deterministic.
func (g *Graph) TopoSort() ([]int, error) {
	n := g.Len()
	indeg := g.InDegrees()
	// Min-heap on vertex index keeps the order stable across runs.
	frontier := &intHeap{}
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			frontier.push(u)
		}
	}
	order := make([]int, 0, n)
	for frontier.len() > 0 {
		v := frontier.pop()
		order = append(order, v)
		for _, u := range g.dependents[v] {
			indeg[u]--
			if indeg[u] == 0 {
				frontier.push(int(u))
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no dependency cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// FindCycle returns one dependency cycle as a vertex sequence
// v0 → v1 → … → v0 (each vertex depends on the next), or nil when the graph
// is acyclic.
func (g *Graph) FindCycle() []int {
	const (
		white = 0 // unvisited
		grey  = 1 // on stack
		black = 2 // done
	)
	n := g.Len()
	color := make([]uint8, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, v32 := range g.deps[u] {
			v := int(v32)
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				// Found a back edge u → v; unwind u..v via parents.
				cycle = append(cycle, v)
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse so the cycle follows dependency direction.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// Levels partitions an acyclic graph into dependency levels: level 0 holds
// tasks with no dependencies, level k holds tasks whose longest dependency
// chain has length k. Tasks within one level are mutually independent along
// dependency chains. Returns ErrCycle on cyclic graphs.
func (g *Graph) Levels() ([][]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make([]int, g.Len())
	maxLevel := 0
	for _, u := range order {
		for _, v := range g.deps[u] {
			if lv := level[v] + 1; lv > level[u] {
				level[u] = lv
			}
		}
		if level[u] > maxLevel {
			maxLevel = level[u]
		}
	}
	out := make([][]int, maxLevel+1)
	for _, u := range order {
		out[level[u]] = append(out[level[u]], u)
	}
	return out, nil
}

// CriticalPathLen returns the length (edge count) of the longest dependency
// chain, or ErrCycle.
func (g *Graph) CriticalPathLen() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	return len(levels) - 1, nil
}

// intHeap is a tiny min-heap of ints used by TopoSort.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
