package dag

// SCCs returns the strongly connected components of the dependency graph
// (Tarjan's algorithm, iterative), each component sorted ascending and the
// component list sorted by smallest member. Every component with more than
// one vertex — or a self-loop — is a dependency cycle; Validate rejects
// those, but SCCs lets tooling show a requester *all* offending groups at
// once instead of FindCycle's single witness.
func (g *Graph) SCCs() [][]int {
	n := g.Len()
	const undef = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = undef
	}
	var (
		counter int
		stack   []int
		out     [][]int
	)

	type frame struct {
		v    int
		edge int
	}
	for start := 0; start < n; start++ {
		if index[start] != undef {
			continue
		}
		work := []frame{{v: start}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.edge < len(g.deps[v]) {
				w := int(g.deps[v][f.edge])
				f.edge++
				if index[w] == undef {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop a component if v is a root.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				out = append(out, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	// Sort components by smallest member for deterministic output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CyclicComponents returns only the components that constitute dependency
// cycles: size > 1, or a single vertex with a self-loop.
func (g *Graph) CyclicComponents() [][]int {
	var out [][]int
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			out = append(out, comp)
			continue
		}
		v := comp[0]
		if g.HasDep(v, v) {
			out = append(out, comp)
		}
	}
	return out
}
