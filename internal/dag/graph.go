// Package dag implements the directed acyclic dependency graph over task IDs
// that underpins DA-SC: a task points at the tasks it depends on. It provides
// cycle detection, topological ordering, transitive closure (the paper's
// "associative task set" is a task plus its transitively closed dependency
// set), ancestor/descendant queries and level decomposition.
//
// Vertices are dense non-negative integers; the graph grows automatically as
// edges mention new vertices.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned when an operation requires acyclicity but the graph
// contains a dependency cycle.
var ErrCycle = errors.New("dag: dependency cycle detected")

// Graph is a mutable directed graph. An edge u → v means "u depends on v"
// (v must be assigned/finished before u can be conducted).
type Graph struct {
	deps       [][]int32 // deps[u] = tasks u depends on
	dependents [][]int32 // dependents[v] = tasks that depend on v
	edgeCount  int
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		deps:       make([][]int32, n),
		dependents: make([][]int32, n),
	}
}

// Len returns the number of vertices (the highest mentioned vertex + 1).
func (g *Graph) Len() int { return len(g.deps) }

// EdgeCount returns the number of dependency edges.
func (g *Graph) EdgeCount() int { return g.edgeCount }

func (g *Graph) grow(v int) {
	for v >= len(g.deps) {
		g.deps = append(g.deps, nil)
		g.dependents = append(g.dependents, nil)
	}
}

// AddVertex ensures vertex v exists.
func (g *Graph) AddVertex(v int) {
	if v < 0 {
		panic(fmt.Sprintf("dag: negative vertex %d", v))
	}
	g.grow(v)
}

// AddDep records that task u depends on task v. Self-dependencies are
// rejected; duplicate edges are ignored.
func (g *Graph) AddDep(u, v int) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("dag: negative vertex in edge %d→%d", u, v)
	}
	if u == v {
		return fmt.Errorf("dag: self-dependency on %d: %w", u, ErrCycle)
	}
	g.grow(u)
	g.grow(v)
	for _, w := range g.deps[u] {
		if int(w) == v {
			return nil
		}
	}
	g.deps[u] = append(g.deps[u], int32(v))
	g.dependents[v] = append(g.dependents[v], int32(u))
	g.edgeCount++
	return nil
}

// Deps returns the direct dependencies of u. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Deps(u int) []int32 {
	if u < 0 || u >= len(g.deps) {
		return nil
	}
	return g.deps[u]
}

// Dependents returns the tasks directly depending on v. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Dependents(v int) []int32 {
	if v < 0 || v >= len(g.dependents) {
		return nil
	}
	return g.dependents[v]
}

// HasDep reports whether u directly depends on v.
func (g *Graph) HasDep(u, v int) bool {
	for _, w := range g.Deps(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// InDegrees returns, for every vertex, how many tasks it depends on.
func (g *Graph) InDegrees() []int {
	out := make([]int, len(g.deps))
	for u := range g.deps {
		out[u] = len(g.deps[u])
	}
	return out
}

// Roots returns all vertices with no dependencies, in ascending order.
func (g *Graph) Roots() []int {
	var roots []int
	for u := range g.deps {
		if len(g.deps[u]) == 0 {
			roots = append(roots, u)
		}
	}
	return roots
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Len())
	c.edgeCount = g.edgeCount
	for u := range g.deps {
		c.deps[u] = append([]int32(nil), g.deps[u]...)
		c.dependents[u] = append([]int32(nil), g.dependents[u]...)
	}
	return c
}

// sortedInts converts and sorts an int32 slice for stable output.
func sortedInts(in []int32) []int {
	out := make([]int, len(in))
	for i, v := range in {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}
