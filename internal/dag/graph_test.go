package dag

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func mustAdd(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddDep(u, v); err != nil {
		t.Fatalf("AddDep(%d,%d): %v", u, v, err)
	}
}

// paperGraph builds the dependency graph of Example 1:
// t2→t1, t3→{t1,t2}, t5→t4 (0-indexed: 1→0, 2→{0,1}, 4→3).
func paperGraph(t *testing.T) *Graph {
	g := New(5)
	mustAdd(t, g, 1, 0)
	mustAdd(t, g, 2, 0)
	mustAdd(t, g, 2, 1)
	mustAdd(t, g, 4, 3)
	return g
}

func TestAddDepBasics(t *testing.T) {
	g := New(0)
	mustAdd(t, g, 3, 1)
	if g.Len() != 4 {
		t.Errorf("Len = %d, want 4 (auto-grow)", g.Len())
	}
	if !g.HasDep(3, 1) || g.HasDep(1, 3) {
		t.Error("HasDep direction wrong")
	}
	mustAdd(t, g, 3, 1) // duplicate ignored
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d after duplicate add", g.EdgeCount())
	}
	if err := g.AddDep(2, 2); !errors.Is(err, ErrCycle) {
		t.Errorf("self-dep err = %v", err)
	}
	if err := g.AddDep(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
}

func TestDepsAndDependents(t *testing.T) {
	g := paperGraph(t)
	if got := sortedInts(g.Deps(2)); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Deps(2) = %v", got)
	}
	if got := sortedInts(g.Dependents(0)); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Dependents(0) = %v", got)
	}
	if g.Deps(99) != nil || g.Deps(-1) != nil {
		t.Error("out-of-range Deps should be nil")
	}
}

func TestRoots(t *testing.T) {
	g := paperGraph(t)
	if got := g.Roots(); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("Roots = %v", got)
	}
}

func TestTopoSortRespectsDeps(t *testing.T) {
	g := paperGraph(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Deps(u) {
			if pos[int(v)] >= pos[u] {
				t.Errorf("dep %d of %d appears at %d >= %d", v, u, pos[int(v)], pos[u])
			}
		}
	}
	if len(order) != 5 {
		t.Errorf("order length %d", len(order))
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := paperGraph(t)
	a, _ := g.TopoSort()
	b, _ := g.TopoSort()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic order: %v vs %v", a, b)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	if !g.IsAcyclic() {
		t.Fatal("chain should be acyclic")
	}
	if c := g.FindCycle(); c != nil {
		t.Fatalf("FindCycle on acyclic = %v", c)
	}
	mustAdd(t, g, 2, 0) // close the cycle
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("TopoSort err = %v", err)
	}
	cyc := g.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("FindCycle = %v", cyc)
	}
	// Verify each vertex depends on the next (wrapping).
	for i, u := range cyc {
		v := cyc[(i+1)%len(cyc)]
		if !g.HasDep(u, v) {
			t.Errorf("cycle edge %d→%d missing", u, v)
		}
	}
}

func TestLevels(t *testing.T) {
	g := paperGraph(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 3}, {1, 4}, {2}}
	if !reflect.DeepEqual(levels, want) {
		t.Errorf("Levels = %v, want %v", levels, want)
	}
	if cp, _ := g.CriticalPathLen(); cp != 2 {
		t.Errorf("CriticalPathLen = %d", cp)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := paperGraph(t)
	if got := g.Ancestors(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Ancestors(2) = %v", got)
	}
	if got := g.Ancestors(0); len(got) != 0 {
		t.Errorf("Ancestors(0) = %v", got)
	}
	if got := g.Descendants(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Descendants(0) = %v", got)
	}
	if got := g.Descendants(3); !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("Descendants(3) = %v", got)
	}
}

func TestTransitiveClosure(t *testing.T) {
	// Chain 3→2→1→0 closed should give 3 deps for vertex 3.
	g := New(4)
	mustAdd(t, g, 1, 0)
	mustAdd(t, g, 2, 1)
	mustAdd(t, g, 3, 2)
	if g.IsTransitivelyClosed() {
		t.Fatal("chain should not be closed")
	}
	c, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedInts(c.Deps(3)); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("closure Deps(3) = %v", got)
	}
	if !c.IsTransitivelyClosed() {
		t.Error("closure not closed")
	}
	// Closure is idempotent.
	c2, err := c.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	if c2.EdgeCount() != c.EdgeCount() {
		t.Errorf("closure not idempotent: %d vs %d edges", c2.EdgeCount(), c.EdgeCount())
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 2, 1)
	mustAdd(t, g, 1, 0)
	mustAdd(t, g, 2, 0) // redundant: 2→1→0
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.HasDep(2, 0) {
		t.Error("redundant edge kept")
	}
	if !r.HasDep(2, 1) || !r.HasDep(1, 0) {
		t.Error("required edges dropped")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperGraph(t)
	c := g.Clone()
	mustAdd(t, c, 4, 0)
	if g.HasDep(4, 0) {
		t.Error("mutation of clone leaked into original")
	}
	if c.EdgeCount() != g.EdgeCount()+1 {
		t.Errorf("clone EdgeCount = %d", c.EdgeCount())
	}
}

// randomDAG builds a random acyclic graph by only adding edges from higher to
// lower indexes, mirroring the paper's "only depend on earlier tasks" rule.
func randomDAG(rng *rand.Rand, n, edges int) *Graph {
	g := New(n)
	for i := 0; i < edges; i++ {
		u := 1 + rng.Intn(n-1)
		v := rng.Intn(u)
		_ = g.AddDep(u, v)
	}
	return g
}

func TestRandomDAGProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(40), rng.Intn(120))
		if !g.IsAcyclic() {
			t.Fatal("earlier-only DAG reported cyclic")
		}
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.Len())
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < g.Len(); u++ {
			for _, v := range g.Deps(u) {
				if pos[v] >= pos[u] {
					t.Fatal("topo order violates dependency")
				}
			}
		}
		// Closure ancestors must match original ancestors.
		c, err := g.TransitiveClosure()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.Len(); u++ {
			if !reflect.DeepEqual(sortedInts(c.Deps(u)), g.Ancestors(u)) {
				t.Fatalf("closure deps of %d != ancestors", u)
			}
		}
		// Reduction preserves reachability.
		r, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.Len(); u++ {
			if !reflect.DeepEqual(r.Ancestors(u), g.Ancestors(u)) {
				t.Fatalf("reduction changed ancestors of %d", u)
			}
		}
	}
}

func TestLevelsOnCycle(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 0)
	if _, err := g.Levels(); !errors.Is(err, ErrCycle) {
		t.Errorf("Levels on cycle err = %v", err)
	}
	if _, err := g.TransitiveClosure(); !errors.Is(err, ErrCycle) {
		t.Errorf("TransitiveClosure on cycle err = %v", err)
	}
	if _, err := g.TransitiveReduction(); !errors.Is(err, ErrCycle) {
		t.Errorf("TransitiveReduction on cycle err = %v", err)
	}
}

func TestSCCsAcyclic(t *testing.T) {
	g := paperGraph(t)
	comps := g.SCCs()
	if len(comps) != 5 {
		t.Fatalf("SCCs = %v, want 5 singletons", comps)
	}
	for i, c := range comps {
		if len(c) != 1 || c[0] != i {
			t.Fatalf("component %d = %v", i, c)
		}
	}
	if got := g.CyclicComponents(); got != nil {
		t.Errorf("CyclicComponents on DAG = %v", got)
	}
}

func TestSCCsTwoCycles(t *testing.T) {
	g := New(7)
	// Cycle A: 0→1→2→0. Cycle B: 4↔5. Singles: 3, 6 (6 feeds into A).
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 0)
	mustAdd(t, g, 4, 5)
	mustAdd(t, g, 5, 4)
	mustAdd(t, g, 6, 0)
	cyc := g.CyclicComponents()
	if len(cyc) != 2 {
		t.Fatalf("CyclicComponents = %v, want 2", cyc)
	}
	if !reflect.DeepEqual(cyc[0], []int{0, 1, 2}) || !reflect.DeepEqual(cyc[1], []int{4, 5}) {
		t.Errorf("components = %v", cyc)
	}
	// Total SCCs: {0,1,2}, {3}, {4,5}, {6}.
	if got := len(g.SCCs()); got != 4 {
		t.Errorf("SCC count = %d, want 4", got)
	}
}

func TestSCCsMatchAcyclicityOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddDep(u, v)
			}
		}
		hasCycle := len(g.CyclicComponents()) > 0
		if hasCycle == g.IsAcyclic() {
			t.Fatalf("trial %d: SCC cycle detection (%v) disagrees with topo sort (%v)",
				trial, hasCycle, g.IsAcyclic())
		}
		// Components partition the vertex set.
		seen := make([]bool, n)
		total := 0
		for _, c := range g.SCCs() {
			for _, v := range c {
				if seen[v] {
					t.Fatal("vertex in two components")
				}
				seen[v] = true
				total++
			}
		}
		if total != n {
			t.Fatalf("components cover %d of %d vertices", total, n)
		}
	}
}
