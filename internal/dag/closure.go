package dag

// Ancestors returns the transitive dependency set of u (everything that must
// precede u), in ascending vertex order. u itself is excluded.
func (g *Graph) Ancestors(u int) []int {
	return g.reach(u, g.deps)
}

// Descendants returns every task that transitively depends on u, in ascending
// vertex order. u itself is excluded.
func (g *Graph) Descendants(u int) []int {
	return g.reach(u, g.dependents)
}

// reach performs an iterative DFS over the chosen adjacency and returns the
// reached set sorted ascending.
func (g *Graph) reach(start int, adj [][]int32) []int {
	if start < 0 || start >= len(adj) {
		return nil
	}
	seen := make(map[int]bool)
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v32 := range adj[u] {
			v := int(v32)
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	delete(seen, start)
	out := make([]int, 0, len(seen))
	//lint:deterministic-ok iteration order is laundered by the sortInts below before out is returned
	for v := range seen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

// TransitiveClosure returns a new graph in which every vertex depends
// directly on its entire ancestor set. The paper's data generators maintain
// this invariant ("when we add t_j into t_i's dependency set, we also add
// t_j's dependency set D_j"); this method establishes it for arbitrary
// acyclic input. Returns ErrCycle on cyclic graphs.
func (g *Graph) TransitiveClosure() (*Graph, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := g.Len()
	closure := make([]map[int]bool, n)
	out := New(n)
	for _, u := range order {
		set := make(map[int]bool)
		for _, v32 := range g.deps[u] {
			v := int(v32)
			set[v] = true
			for w := range closure[v] {
				set[w] = true
			}
		}
		closure[u] = set
		deps := make([]int, 0, len(set))
		//lint:deterministic-ok iteration order is laundered by the sortInts below before deps feeds AddDep
		for v := range set {
			deps = append(deps, v)
		}
		sortInts(deps)
		for _, v := range deps {
			if err := out.AddDep(u, v); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// IsTransitivelyClosed reports whether every vertex's direct dependency set
// already equals its ancestor set.
func (g *Graph) IsTransitivelyClosed() bool {
	for u := 0; u < g.Len(); u++ {
		anc := g.Ancestors(u)
		if len(anc) != len(g.deps[u]) {
			return false
		}
		direct := make(map[int]bool, len(g.deps[u]))
		for _, v := range g.deps[u] {
			direct[int(v)] = true
		}
		for _, v := range anc {
			if !direct[v] {
				return false
			}
		}
	}
	return true
}

// TransitiveReduction returns the minimal graph with the same reachability:
// an edge u → v is kept only when v is not reachable from u through another
// dependency. Useful for rendering dependency charts. Returns ErrCycle on
// cyclic graphs.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	out := New(g.Len())
	for u := 0; u < g.Len(); u++ {
		// v is redundant if some other dependency w of u can reach v.
		direct := g.deps[u]
		for _, v32 := range direct {
			v := int(v32)
			redundant := false
			for _, w32 := range direct {
				w := int(w32)
				if w == v {
					continue
				}
				if g.reaches(w, v) {
					redundant = true
					break
				}
			}
			if !redundant {
				if err := out.AddDep(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// reaches reports whether target is reachable from start along dependencies.
func (g *Graph) reaches(start, target int) bool {
	if start == target {
		return true
	}
	seen := make(map[int]bool)
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v32 := range g.deps[u] {
			v := int(v32)
			if v == target {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

func sortInts(a []int) {
	// Insertion sort is fine for the small dependency sets (≤ ~100) DA-SC
	// produces; fall back to it to avoid importing sort in the hot path.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
