package core

import (
	"math"

	"dasc/internal/model"
)

// Closest is the paper's first baseline: every worker greedily takes the
// nearest feasible still-unassigned task, ignoring dependencies. Its
// assignment is returned RAW — pairs violating the dependency constraint are
// included. The platform (and the scoring helpers) count only the valid
// subset, exactly as the paper evaluates the baselines: invalid assignments
// waste the worker and the task and score zero.
type Closest struct{}

// NewClosest returns the Closest baseline allocator.
func NewClosest() *Closest { return &Closest{} }

// Name implements Allocator.
func (c *Closest) Name() string { return NameClosest }

// Assign implements Allocator.
func (c *Closest) Assign(b *Batch) *model.Assignment {
	out := model.NewAssignment()
	taken := make([]bool, len(b.Tasks))
	idx := b.Index()
	for wi := range b.Workers {
		best := -1
		bestD := math.Inf(1)
		// The index's strategy set is exactly the feasible tasks in
		// ascending order, so the scan's iteration order (and tie-breaks)
		// are preserved.
		for _, ti := range idx.StrategySet(wi) {
			if taken[ti] {
				continue
			}
			if d := b.dist(b.Workers[wi].Loc, b.Tasks[ti].Loc); d < bestD {
				bestD = d
				best = int(ti)
			}
		}
		if best >= 0 {
			taken[best] = true
			out.Add(b.Workers[wi].W.ID, b.Tasks[best].ID)
		}
	}
	out.Sort()
	return out
}

// Random is the paper's second baseline: every worker takes a uniformly
// random feasible still-unassigned task, ignoring dependencies. Like
// Closest, it returns its raw (possibly dependency-violating) assignment.
type Random struct {
	seed int64
}

// NewRandom returns the Random baseline allocator with the given seed.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name implements Allocator.
func (r *Random) Name() string { return NameRandom }

// Assign implements Allocator.
func (r *Random) Assign(b *Batch) *model.Assignment {
	rng := newRNG(r.seed)
	out := model.NewAssignment()
	taken := make([]bool, len(b.Tasks))
	idx := b.Index()
	var avail []int
	for wi := range b.Workers {
		avail = avail[:0]
		for _, ti := range idx.StrategySet(wi) {
			if !taken[ti] {
				avail = append(avail, int(ti))
			}
		}
		if len(avail) == 0 {
			continue
		}
		ti := avail[rng.Intn(len(avail))]
		taken[ti] = true
		out.Add(b.Workers[wi].W.ID, b.Tasks[ti].ID)
	}
	out.Sort()
	return out
}
