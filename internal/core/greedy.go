package core

import (
	"sort"

	"dasc/internal/matching"
	"dasc/internal/model"
)

// MatcherKind selects how DASC_Greedy staffs an associative task set once
// the Hopcroft–Karp feasibility check passes.
type MatcherKind int

const (
	// MatchHungarian picks the minimum-total-travel-time complete staffing
	// with the Hungarian algorithm — the paper's Algorithm 1 line 5.
	MatchHungarian MatcherKind = iota
	// MatchFeasible keeps the arbitrary complete matching Hopcroft–Karp
	// found. Cheaper; ablated in the benchmarks.
	MatchFeasible
	// MatchAuction staffs with Bertsekas' auction algorithm instead of
	// Hungarian — ε-optimal travel cost, same score; an independently
	// implemented cross-check and ablation point.
	MatchAuction
)

// GreedyOptions configures DASC_Greedy.
type GreedyOptions struct {
	Matcher MatcherKind
	// MaxCandidatesPerTask trims the Hungarian cost matrix to the K
	// cheapest candidate workers per task (plus the feasibility matching's
	// own workers, so completeness is never lost). Zero means 8.
	MaxCandidatesPerTask int
}

// Greedy implements DASC_Greedy (Algorithm 1): build the associative task
// sets, then repeatedly commit the heaviest set that can be completely
// staffed by distinct available workers, updating the remaining sets and the
// worker pool. With the paper's unit task weights "heaviest" is "largest";
// with the weighted extension the selection key is the summed task weight.
// Per-batch approximation ratio 1 − 1/e (Theorem III.2).
type Greedy struct {
	opt GreedyOptions
}

// NewGreedy returns a DASC_Greedy allocator with default options.
func NewGreedy() *Greedy { return NewGreedyOpt(GreedyOptions{}) }

// NewGreedyOpt returns a DASC_Greedy allocator with explicit options.
func NewGreedyOpt(opt GreedyOptions) *Greedy {
	if opt.MaxCandidatesPerTask <= 0 {
		opt.MaxCandidatesPerTask = 8
	}
	return &Greedy{opt: opt}
}

// Name implements Allocator.
func (g *Greedy) Name() string { return NameGreedy }

// Assign implements Allocator.
func (g *Greedy) Assign(b *Batch) *model.Assignment {
	out := model.NewAssignment()
	for wi, ti := range g.assignIndices(b) {
		if ti >= 0 {
			out.Add(b.Workers[wi].W.ID, b.Tasks[ti].ID)
		}
	}
	return finishAssignment(b, out)
}

// assignIndices runs the greedy loop and returns the raw (pre-fixpoint)
// assignment as index pairs: worker index → claimed task index, -1 when the
// worker stays idle. Greedy commits at most one task per worker, so the pair
// form is lossless; DASC_Game's G-G initialisation consumes it directly
// without the Assignment/ID round-trip.
func (g *Greedy) assignIndices(b *Batch) []int32 {
	taskOf := make([]int32, len(b.Workers))
	for i := range taskOf {
		taskOf[i] = -1
	}
	sets := atSets(b)
	if len(sets) == 0 {
		return taskOf
	}

	assignedTask := make([]bool, len(b.Tasks))
	workerFree := make([]bool, len(b.Workers))
	for i := range workerFree {
		workerFree[i] = true
	}
	// setsByTask[ti] lists the sets containing pending task ti, so committing
	// a task can shrink exactly the affected sets.
	setsByTask := make([][]*atSet, len(b.Tasks))
	for _, s := range sets {
		for _, ti := range s.members {
			setsByTask[ti] = append(setsByTask[ti], s)
		}
	}
	// Candidate workers per task are stable for the whole batch; only their
	// availability changes. Precompute once.
	candidates := make([][]int, len(b.Tasks))
	for ti, t := range b.Tasks {
		candidates[ti] = b.CandidateWorkers(t)
	}

	h := &setHeap{}
	for _, s := range sets {
		h.push(setEntry{weight: s.weight, set: s})
	}

	for {
		e, ok := h.pop()
		if !ok {
			break
		}
		s := e.set
		cur := s.recount(b, assignedTask)
		if cur == 0 {
			continue // fully assigned through other sets
		}
		if s.weight != e.weight {
			// Stale entry: the set shrank since it was pushed. Re-queue at
			// its true weight so the largest-first order stays correct.
			h.push(setEntry{weight: s.weight, set: s})
			continue
		}
		members := s.aliveMembers(assignedTask)
		staff, ok := g.staff(b, members, candidates, workerFree)
		if !ok {
			// Blocked with the current worker pool. Workers only get
			// scarcer, so the set can only become assignable again by
			// shrinking — at which point the tasks committed elsewhere
			// re-queue it below.
			continue
		}
		// Commit ⟨tw, tc⟩: record pairs, retire workers and tasks, shrink
		// every set sharing a member and re-queue it.
		requeue := make(map[*atSet]bool)
		for i, ti := range members {
			wi := staff[i]
			taskOf[wi] = int32(ti)
			workerFree[wi] = false
			assignedTask[ti] = true
			for _, other := range setsByTask[ti] {
				if other != s {
					requeue[other] = true
				}
			}
		}
		for other := range requeue {
			if n := other.recount(b, assignedTask); n > 0 {
				h.push(setEntry{weight: other.weight, set: other})
			}
		}
	}
	return taskOf
}

// staff finds distinct free workers for every task index in members.
// It returns the chosen worker index per member, aligned with members, or
// ok=false when no complete staffing exists.
func (g *Greedy) staff(b *Batch, members []int, candidates [][]int, workerFree []bool) ([]int, bool) {
	// Feasibility first: Hopcroft–Karp over the full free-candidate graph.
	// Column space is the union of free candidates, densely renumbered.
	colOf := make(map[int]int)
	var cols []int
	bg := matching.NewBipartite(len(members), 0)
	for row, ti := range members {
		for _, wi := range candidates[ti] {
			if !workerFree[wi] {
				continue
			}
			ci, ok := colOf[wi]
			if !ok {
				ci = len(cols)
				colOf[wi] = ci
				cols = append(cols, wi)
			}
			bg.Adj[row] = append(bg.Adj[row], ci)
		}
	}
	bg.N = len(cols)
	matchL, size := bg.MaxMatchingHK()
	if size != len(members) {
		return nil, false
	}
	if g.opt.Matcher == MatchFeasible {
		staff := make([]int, len(members))
		for row := range members {
			staff[row] = cols[matchL[row]]
		}
		return staff, true
	}

	// Cost-optimal staffing: Hungarian over a trimmed column set — the K
	// cheapest free candidates per task plus the HK matching's own workers,
	// which keeps a complete matching representable. Travel times come from
	// the batch index's memo, not fresh dist() calls.
	idx := b.Index()
	keep := make(map[int]bool)
	for row := range members {
		keep[cols[matchL[row]]] = true
	}
	type cand struct {
		wi   int
		cost float64
	}
	for _, ti := range members {
		var cs []cand
		for _, wi := range candidates[ti] {
			if workerFree[wi] {
				cs = append(cs, cand{wi, idx.TravelCost(wi, ti)})
			}
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].cost != cs[j].cost {
				return cs[i].cost < cs[j].cost
			}
			return cs[i].wi < cs[j].wi
		})
		for i := 0; i < len(cs) && i < g.opt.MaxCandidatesPerTask; i++ {
			keep[cs[i].wi] = true
		}
	}
	trimmed := make([]int, 0, len(keep))
	//lint:deterministic-ok iteration order is laundered by the sort.Ints below before trimmed is used
	for wi := range keep {
		trimmed = append(trimmed, wi)
	}
	sort.Ints(trimmed)
	colIdx := make(map[int]int, len(trimmed))
	for i, wi := range trimmed {
		colIdx[wi] = i
	}
	cost := make([][]float64, len(members))
	for row, ti := range members {
		cost[row] = make([]float64, len(trimmed))
		for i := range cost[row] {
			cost[row][i] = matching.Forbidden
		}
		for _, wi := range candidates[ti] {
			if !workerFree[wi] {
				continue
			}
			// Candidates trimmed out of the kept column set have no colIdx
			// entry; a bare lookup would resolve to column 0 and overwrite
			// its cost with an unrelated (possibly infeasible) worker's.
			ci, kept := colIdx[wi]
			if !kept {
				continue
			}
			cost[row][ci] = idx.TravelCost(wi, ti)
		}
	}
	var (
		assign []int
		err    error
	)
	if g.opt.Matcher == MatchAuction {
		assign, _, err = matching.Auction(cost, 0)
	} else {
		assign, _, err = matching.Hungarian(cost)
	}
	if err != nil {
		// Should be unreachable (HK proved feasibility and its workers are
		// all kept), but fall back to the feasible matching defensively.
		staff := make([]int, len(members))
		for row := range members {
			staff[row] = cols[matchL[row]]
		}
		return staff, true
	}
	staff := make([]int, len(members))
	for row := range members {
		staff[row] = trimmed[assign[row]]
	}
	return staff, true
}
