package core

import (
	"math"
	"reflect"
	"sort"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// EngineCache carries the candidate engine across batches. A platform tick
// loop (sim.Platform.Run, server.Platform.Tick) creates one cache per run
// and calls Attach on every batch; the cache then builds each batch's
// BatchIndex incrementally from the previous one instead of from scratch.
//
// The regime this exploits is exactly the steady state of a dynamic
// platform: between consecutive batches only the workers that were assigned
// move, only a few tasks enter (new arrivals) or leave (assigned, botched or
// expired), and the clock advances. Per batch the cache therefore does:
//
//   - Unmoved workers (same location, same distance budget, readiness only
//     advanced): the cached strategy set is REVALIDATED, not rebuilt. Of
//     FeasibleFrom's four components, skill, window overlap and distance
//     budget do not depend on the clock, and the deadline check
//     depart + travel ≤ deadline is monotone in the readiness time — so a
//     cached pair can only flip feasible → infeasible, never back, and the
//     flip is decided by model.DeadlineFeasible over the memoized travel
//     time. Zero distance evaluations for these workers.
//   - Moved or new workers: rebuilt through the same skill-bucket /
//     spatial-grid path as the from-scratch build.
//   - Departed tasks: dropped from the maintained spatial grid
//     (geo.GridIndex.Remove) and filtered out of every cached set during
//     revalidation.
//   - Newly arrived tasks: probed only against workers holding their
//     required skill (for unmoved workers; moved workers see them through
//     their rebuild).
//
// The incremental build is exactly equal to newBatchIndex — same sets, same
// memoized costs, same candidate lists — which Batch.VerifyIndex checks
// differentially, the same pattern as ScanStrategySets for the single-batch
// engine.
//
// Contract: a cache belongs to one platform. The travel metric must not
// change between batches (guarded best-effort by function-pointer identity:
// a change forces a full rebuild), worker and task parameters must be
// immutable per ID while cached (the platforms' registries are append-only),
// and IDs must be unique within a batch. A cache is not safe for concurrent
// Attach calls; the platforms attach under their own single-threaded loop or
// mutex.
type EngineCache struct {
	valid   bool
	distPtr uintptr

	// workers holds the last batch's per-worker state and strategy sets,
	// keyed by worker ID. Workers absent from the current batch are dropped:
	// in the platforms a worker only disappears by being assigned (and so
	// moving) or by leaving its window, but dropping keeps the cache sound
	// for any caller.
	workers map[model.WorkerID]*cachedWorker
	// pending is the set of task IDs that were pending in the last batch.
	pending map[model.TaskID]bool

	// grid spatially indexes the pending task locations across batches,
	// keyed by int(TaskID); maintained by Insert/Remove as tasks arrive and
	// depart. nil when the metric admits no Euclidean lower bound.
	grid     *geo.GridIndex
	gridable bool
	boxScale float64
	boxArea  float64

	stats EngineCacheStats
}

// cachedWorker is one worker's state snapshot and strategy set from the last
// batch. The static parameters are recorded so a mutated registration
// invalidates the entry (falls back to a rebuild) instead of poisoning it.
type cachedWorker struct {
	loc        geo.Point
	readyAt    float64
	distBudget float64

	start, wait, velocity, maxDist float64

	// tasks and costs mirror the worker's strategy set by task ID (batch
	// indexes do not survive across batches) with the aligned travel-time
	// memo.
	tasks []model.TaskID
	costs []float64
}

// EngineCacheStats counts what the cache did, for observability and tests.
type EngineCacheStats struct {
	Batches        int // Attach calls
	FullRebuilds   int // batches built entirely from scratch
	WorkersReused  int // strategy sets revalidated by time arithmetic
	WorkersRebuilt int // strategy sets rebuilt through the pruned scan
	TasksArrived   int // tasks probed as new arrivals
	TasksDeparted  int // tasks dropped from the cache and grid
}

// NewEngineCache returns an empty cache; the first Attach does a full build.
func NewEngineCache() *EngineCache {
	return &EngineCache{}
}

// Stats returns the cache's counters so far.
func (c *EngineCache) Stats() EngineCacheStats { return c.stats }

// Attach installs the cache-built candidate engine as b's index (what
// b.Index() and every allocator will consume) and absorbs the batch so the
// next Attach can go incremental. If the batch's index was already built
// (someone called b.Index() first), that index is absorbed instead.
func (c *EngineCache) Attach(b *Batch) *BatchIndex {
	built := false
	b.idxOnce.Do(func() {
		b.idx = c.build(b)
		built = true
	})
	if !built {
		// Someone built the index from scratch already; adopt it as the
		// incremental baseline (grid and metric identity included).
		c.adopt(b, b.idx)
	}
	return b.idx
}

// distFuncPtr identifies a metric by its code pointer, the same best-effort
// identity geo.EuclideanBoundScale uses for its recognition switch.
func distFuncPtr(f geo.DistanceFunc) uintptr {
	if f == nil {
		return 0
	}
	return reflect.ValueOf(f).Pointer()
}

func (c *EngineCache) build(b *Batch) *BatchIndex {
	c.stats.Batches++
	dp := distFuncPtr(b.dist)
	if !c.valid || dp != c.distPtr ||
		// A grid-able metric with no grid (first populated batch after an
		// empty one) cannot be maintained incrementally; rebuild to get one.
		(c.gridable && c.grid == nil && len(b.Tasks) > 0) {
		return c.reset(b)
	}
	return c.incremental(b)
}

// reset performs a from-scratch build and adopts the result.
func (c *EngineCache) reset(b *Batch) *BatchIndex {
	c.stats.FullRebuilds++
	c.stats.WorkersRebuilt += len(b.Workers)
	b.rec.CacheFullRebuild()
	b.rec.AddCacheWorkersRebuilt(int64(len(b.Workers)))
	idx := newBatchIndex(b)
	c.adopt(b, idx)
	return idx
}

// adopt makes a from-scratch index (built by reset or by a caller before
// Attach) the cache's incremental baseline: it records the metric identity,
// (re)creates the maintained grid over the batch's pending tasks, and
// absorbs the worker states and strategy sets.
func (c *EngineCache) adopt(b *Batch, idx *BatchIndex) {
	c.distPtr = distFuncPtr(b.dist)
	c.grid = nil
	c.boxScale, c.boxArea = 0, 0
	scale, ok := geo.EuclideanBoundScale(b.In.Dist)
	c.gridable = ok
	if ok && len(b.Tasks) > 0 {
		box := pendingBBox(b)
		c.grid = geo.NewGridIndex(box, len(b.Tasks)+1)
		for _, t := range b.Tasks {
			c.grid.Insert(int(t.ID), t.Loc)
		}
		b.rec.AddGridOps(int64(len(b.Tasks)))
		c.boxScale = scale
		c.boxArea = box.Width() * box.Height()
		if c.boxArea <= 0 {
			c.boxArea = 1e-18
		}
	}
	c.absorb(b, idx)
}

// incremental builds the batch's index from the cached previous batch.
func (c *EngineCache) incremental(b *Batch) *BatchIndex {
	idx := &BatchIndex{
		b:          b,
		strategies: make([][]int32, len(b.Workers)),
		costs:      make([][]float64, len(b.Workers)),
		candidates: make([][]int32, len(b.Tasks)),
	}

	// Task diff. Departed tasks leave the grid; arrivals enter it and form
	// the probe set for unmoved workers.
	departed := 0
	gridOps := 0
	for id := range c.pending {
		if _, ok := b.pending[id]; !ok {
			departed++
			if c.grid != nil {
				c.grid.Remove(int(id))
				gridOps++
			}
		}
	}
	var arrived []int32
	for id, ti := range b.pending {
		if !c.pending[id] {
			arrived = append(arrived, int32(ti))
			if c.grid != nil {
				c.grid.Insert(int(id), b.Tasks[ti].Loc)
				gridOps++
			}
		}
	}
	sort.Slice(arrived, func(i, j int) bool { return arrived[i] < arrived[j] })
	c.stats.TasksDeparted += departed
	c.stats.TasksArrived += len(arrived)
	b.rec.AddCacheTasksDeparted(int64(departed))
	b.rec.AddCacheTasksArrived(int64(len(arrived)))
	b.rec.AddGridOps(int64(gridOps))

	// Skill buckets: over the arrivals for the revalidation probes, over the
	// whole batch for worker rebuilds.
	newBySkill := make(map[model.Skill][]int32)
	for _, ti := range arrived {
		t := b.Tasks[ti]
		newBySkill[t.Requires] = append(newBySkill[t.Requires], ti)
	}
	bySkill := make(map[model.Skill][]int32)
	for ti, t := range b.Tasks {
		bySkill[t.Requires] = append(bySkill[t.Requires], int32(ti))
	}
	gridDensity := 0.0
	if c.grid != nil {
		gridDensity = float64(c.grid.Len()) / c.boxArea
	}

	var scratch []int
	for wi := range b.Workers {
		bw := &b.Workers[wi]
		cw := c.workers[bw.W.ID]
		if cw != nil &&
			cw.loc == bw.Loc &&
			cw.distBudget == bw.DistBudget &&
			bw.ReadyAt >= cw.readyAt &&
			cw.start == bw.W.Start && cw.wait == bw.W.Wait &&
			cw.velocity == bw.W.Velocity && cw.maxDist == bw.W.MaxDist {
			c.revalidate(b, wi, cw, newBySkill, idx)
			c.stats.WorkersReused++
			b.rec.CacheWorkerRevalidated()
		} else {
			scratch = c.rebuildWorker(b, wi, bySkill, gridDensity, scratch, idx)
			c.stats.WorkersRebuilt++
			b.rec.AddCacheWorkersRebuilt(1)
		}
	}

	idx.invertStrategies()
	c.absorb(b, idx)
	return idx
}

// revalidate re-derives an unmoved worker's strategy set: cached entries are
// filtered by pure time arithmetic over the memoized travel times (departed
// tasks drop out via the pending lookup, deadline-expired ones via
// model.DeadlineFeasible), and newly arrived tasks are probed through the
// full predicate — the only distance evaluations on this path.
func (c *EngineCache) revalidate(b *Batch, wi int, cw *cachedWorker, newBySkill map[model.Skill][]int32, idx *BatchIndex) {
	bw := &b.Workers[wi]
	var set []int32
	var costs []float64
	reused := 0
	for k, id := range cw.tasks {
		ti, ok := b.pending[id]
		if !ok {
			continue // task departed
		}
		reused++
		if model.DeadlineFeasible(b.Tasks[ti], bw.ReadyAt, cw.costs[k]) {
			set = append(set, int32(ti))
			costs = append(costs, cw.costs[k])
		}
	}
	examined := 0
	for _, sk := range bw.W.Skills.Skills() {
		for _, ti := range newBySkill[sk] {
			examined++
			t := b.Tasks[ti]
			if model.FeasibleFrom(bw.W, bw.Loc, bw.ReadyAt, bw.DistBudget, t, b.dist) {
				set = append(set, ti)
				costs = append(costs, bw.W.TravelTime(bw.Loc, t.Loc, b.dist))
			}
		}
	}
	// Cached entries follow the previous batch's index order and arrivals
	// interleave arbitrarily; restore ascending task-index order.
	sort.Sort(strategyByIndex{set, costs})
	// Every retained cached entry is a cross-batch memo hit (its travel time
	// was served from the memo instead of recomputed); only arrival probes
	// run the exact predicate.
	b.rec.AddMemoHits(int64(reused))
	b.rec.AddExamined(int64(examined))
	b.rec.AddAdmitted(int64(len(set)))
	idx.strategies[wi] = set
	idx.costs[wi] = costs
}

// rebuildWorker recomputes a moved (or new) worker's strategy set through
// the same pruned scan as the from-scratch build, with the maintained grid
// standing in for the per-batch one. Grid hits come back as task IDs and are
// mapped to batch indexes through the pending map.
func (c *EngineCache) rebuildWorker(b *Batch, wi int, bySkill map[model.Skill][]int32, gridDensity float64, scratch []int, idx *BatchIndex) []int {
	bw := &b.Workers[wi]
	var set []int32
	var costs []float64
	examined := 0
	appendFeasible := func(ti int32) {
		examined++
		t := b.Tasks[ti]
		if model.FeasibleFrom(bw.W, bw.Loc, bw.ReadyAt, bw.DistBudget, t, b.dist) {
			set = append(set, ti)
			costs = append(costs, bw.W.TravelTime(bw.Loc, t.Loc, b.dist))
		}
	}
	skillPool := 0
	for _, sk := range bw.W.Skills.Skills() {
		skillPool += len(bySkill[sk])
	}
	useGrid := false
	if c.grid != nil {
		r := c.boxScale * (bw.DistBudget + model.DistEps)
		discPool := math.Pi * r * r * gridDensity
		if discPool > float64(len(b.Tasks)) {
			discPool = float64(len(b.Tasks))
		}
		useGrid = discPool < float64(skillPool)
	}
	if useGrid {
		scratch = c.grid.Within(bw.Loc, c.boxScale*(bw.DistBudget+model.DistEps), scratch[:0])
		for _, id := range scratch {
			ti, ok := b.pending[model.TaskID(id)]
			if !ok {
				continue
			}
			if bw.W.Skills.Has(b.Tasks[ti].Requires) {
				appendFeasible(int32(ti))
			}
		}
	} else {
		for _, sk := range bw.W.Skills.Skills() {
			for _, ti := range bySkill[sk] {
				appendFeasible(ti)
			}
		}
	}
	sort.Sort(strategyByIndex{set, costs})
	b.rec.AddExamined(int64(examined))
	b.rec.AddAdmitted(int64(len(set)))
	idx.strategies[wi] = set
	idx.costs[wi] = costs
	return scratch
}

// absorb snapshots the batch's worker states and strategy sets (re-keyed by
// ID, since batch-local indexes do not survive) as the baseline for the next
// incremental build. The cost slices are shared with the immutable index.
func (c *EngineCache) absorb(b *Batch, idx *BatchIndex) {
	c.workers = make(map[model.WorkerID]*cachedWorker, len(b.Workers))
	for wi := range b.Workers {
		bw := &b.Workers[wi]
		set := idx.strategies[wi]
		tasks := make([]model.TaskID, len(set))
		for k, ti := range set {
			tasks[k] = b.Tasks[ti].ID
		}
		c.workers[bw.W.ID] = &cachedWorker{
			loc:        bw.Loc,
			readyAt:    bw.ReadyAt,
			distBudget: bw.DistBudget,
			start:      bw.W.Start,
			wait:       bw.W.Wait,
			velocity:   bw.W.Velocity,
			maxDist:    bw.W.MaxDist,
			tasks:      tasks,
			costs:      idx.costs[wi],
		}
	}
	c.pending = make(map[model.TaskID]bool, len(b.Tasks))
	for _, t := range b.Tasks {
		c.pending[t.ID] = true
	}
	c.valid = true
}
