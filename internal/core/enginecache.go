package core

import (
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// EngineCache carries the candidate engine across batches. A platform tick
// loop (sim.Platform.Run, server.Platform.Tick) creates one cache per run
// and calls Attach on every batch; the cache then builds each batch's
// BatchIndex incrementally from the previous one instead of from scratch.
//
// The regime this exploits is exactly the steady state of a dynamic
// platform: between consecutive batches only the workers that were assigned
// move, only a few tasks enter (new arrivals) or leave (assigned, botched or
// expired), and the clock advances. Per batch the cache therefore does:
//
//   - Unmoved workers (same location, same distance budget, readiness only
//     advanced): the cached strategy set is REVALIDATED, not rebuilt. Of
//     FeasibleFrom's four components, skill, window overlap and distance
//     budget do not depend on the clock, and the deadline check
//     depart + travel ≤ deadline is monotone in the readiness time — so a
//     cached pair can only flip feasible → infeasible, never back, and the
//     flip is decided by model.DeadlineFeasible over the memoized travel
//     time. Zero distance evaluations for these workers.
//   - Moved or new workers: rebuilt through the same skill-bucket /
//     spatial-grid path as the from-scratch build.
//   - Departed tasks: dropped from the maintained spatial grid
//     (geo.GridIndex.Remove) and filtered out of every cached set during
//     revalidation.
//   - Newly arrived tasks: probed only against workers holding their
//     required skill (for unmoved workers; moved workers see them through
//     their rebuild).
//
// The per-worker revalidate/rebuild loop fans out over the same
// deterministic chunked goroutine pool as the from-scratch build: each
// goroutine owns disjoint index slots and its own scratch buffers and slab
// arenas, so the result is bit-identical to the serial walk (and to
// newBatchIndex, which Batch.VerifyIndex checks differentially).
//
// Memory ownership is explicit and one-way: the BatchIndex returned for a
// batch owns its arena-backed strategy/cost/candidate slices and is
// immutable once returned; the cache keeps its own copies (cachedWorker
// structs from a recycled free list, task/cost rows in cache-owned
// buffers reused batch over batch). The cache never holds a reference into
// an index it handed out, so recycling cache state can never mutate a
// previously returned index (TestEngineCacheNeverMutatesReturnedIndex).
//
// Contract: a cache belongs to one platform. The travel metric must not
// change between batches (guarded best-effort by function-pointer identity:
// a change forces a full rebuild), worker and task parameters must be
// immutable per ID while cached (the platforms' registries are append-only),
// and IDs must be unique within a batch. A cache is not safe for concurrent
// Attach calls; the platforms attach under their own single-threaded loop or
// mutex.
type EngineCache struct {
	valid   bool
	distPtr uintptr
	// distID memoizes the reflect-derived code pointer of the metric, so
	// the identity check costs a pointer compare per Attach instead of a
	// reflection walk.
	distID geo.FuncID

	// workers holds the last batch's per-worker state and strategy sets,
	// keyed by worker ID. The map is reused across batches: present
	// workers are updated in place, departed ones are deleted and their
	// structs recycled through the free list. In the platforms a worker
	// only disappears by being assigned (and so moving) or by leaving its
	// window, but dropping keeps the cache sound for any caller.
	workers map[model.WorkerID]*cachedWorker
	// pending is the set of task IDs pending in the last batch, maintained
	// in place by the per-batch task diff (and rebuilt only on adopt).
	pending map[model.TaskID]bool

	// free recycles cachedWorker structs of departed workers, buffers
	// included; structs/ids/floats are the slabs new cache-side
	// allocations are carved from.
	free    []*cachedWorker
	structs slab[cachedWorker]
	ids     slab[model.TaskID]
	floats  slab[float64]
	// gen marks which absorb pass last touched a cachedWorker; entries
	// left behind by the current pass have departed and are swept into
	// the free list. Every surviving entry is restamped every batch, so
	// wrap-around cannot produce a stale match.
	gen uint32

	// arrived is the reusable arrival-probe buffer of the task diff.
	arrived []int32

	// grid spatially indexes the pending task locations across batches,
	// keyed by int(TaskID); maintained by Insert/Remove as tasks arrive and
	// depart. nil when the metric admits no Euclidean lower bound.
	grid     *geo.GridIndex
	gridable bool
	boxScale float64
	boxArea  float64

	stats EngineCacheStats
}

// cachedWorker is one worker's state snapshot and strategy set from the last
// batch. The static parameters are recorded so a mutated registration
// invalidates the entry (falls back to a rebuild) instead of poisoning it.
type cachedWorker struct {
	loc        geo.Point
	readyAt    float64
	distBudget float64

	start, wait, velocity, maxDist float64

	gen uint32

	// tasks and costs mirror the worker's strategy set by task ID (batch
	// indexes do not survive across batches) with the aligned travel-time
	// memo. Both slices are owned by the cache — they are copies, never
	// views into a returned BatchIndex — and are reused batch over batch.
	tasks []model.TaskID
	costs []float64
}

// EngineCacheStats counts what the cache did, for observability and tests.
type EngineCacheStats struct {
	Batches        int // Attach calls
	FullRebuilds   int // batches built entirely from scratch
	WorkersReused  int // strategy sets revalidated by time arithmetic
	WorkersRebuilt int // strategy sets rebuilt through the pruned scan
	WorkersPooled  int // cachedWorker structs recycled from the free list
	TasksArrived   int // tasks probed as new arrivals
	TasksDeparted  int // tasks dropped from the cache and grid
}

// NewEngineCache returns an empty cache; the first Attach does a full build.
func NewEngineCache() *EngineCache {
	return &EngineCache{}
}

// Stats returns the cache's counters so far.
func (c *EngineCache) Stats() EngineCacheStats { return c.stats }

// PoolOccupancy returns how many recycled cachedWorker structs the free
// list currently holds.
func (c *EngineCache) PoolOccupancy() int { return len(c.free) }

// Attach installs the cache-built candidate engine as b's index (what
// b.Index() and every allocator will consume) and absorbs the batch so the
// next Attach can go incremental. If the batch's index was already built
// (someone called b.Index() first), that index is absorbed instead.
func (c *EngineCache) Attach(b *Batch) *BatchIndex {
	return c.attachN(b, runtime.NumCPU())
}

// attachN is Attach with an explicit fan-out bound, so tests can force the
// concurrent incremental path on any machine.
func (c *EngineCache) attachN(b *Batch, procs int) *BatchIndex {
	built := false
	b.idxOnce.Do(func() {
		b.idx = c.buildN(b, procs)
		built = true
	})
	if !built {
		// Someone built the index from scratch already; adopt it as the
		// incremental baseline (grid and metric identity included).
		c.adopt(b, b.idx)
	}
	return b.idx
}

func (c *EngineCache) buildN(b *Batch, procs int) *BatchIndex {
	c.stats.Batches++
	dp := c.distID.Of(b.dist)
	if !c.valid || dp != c.distPtr ||
		// A grid-able metric with no grid (first populated batch after an
		// empty one) cannot be maintained incrementally; rebuild to get one.
		(c.gridable && c.grid == nil && len(b.Tasks) > 0) {
		return c.reset(b)
	}
	return c.incrementalN(b, procs)
}

// reset performs a from-scratch build and adopts the result.
func (c *EngineCache) reset(b *Batch) *BatchIndex {
	c.stats.FullRebuilds++
	c.stats.WorkersRebuilt += len(b.Workers)
	b.rec.CacheFullRebuild()
	b.rec.AddCacheWorkersRebuilt(int64(len(b.Workers)))
	idx := newBatchIndex(b)
	c.adopt(b, idx)
	return idx
}

// adopt makes a from-scratch index (built by reset or by a caller before
// Attach) the cache's incremental baseline: it records the metric identity,
// (re)creates the maintained grid over the batch's pending tasks, and
// absorbs the worker states and strategy sets.
func (c *EngineCache) adopt(b *Batch, idx *BatchIndex) {
	c.distPtr = c.distID.Of(b.dist)
	c.grid = nil
	c.boxScale, c.boxArea = 0, 0
	scale, ok := geo.EuclideanBoundScale(b.In.Dist)
	c.gridable = ok
	if ok && len(b.Tasks) > 0 {
		box := pendingBBox(b)
		c.grid = geo.NewGridIndex(box, len(b.Tasks)+1)
		for _, t := range b.Tasks {
			c.grid.Insert(int(t.ID), t.Loc)
		}
		b.rec.AddGridOps(int64(len(b.Tasks)))
		c.boxScale = scale
		c.boxArea = box.Width() * box.Height()
		if c.boxArea <= 0 {
			c.boxArea = 1e-18
		}
	}
	c.absorbWorkers(b, idx)
	c.refreshPending(b)
}

// cacheScratch is one incremental-build goroutine's private state: the
// shared build scratch (buffers + slabs) plus outcome counters flushed
// once per goroutine instead of once per worker.
type cacheScratch struct {
	bs      buildScratch
	reused  int64
	rebuilt int64
}

// incrementalN builds the batch's index from the cached previous batch,
// fanning the per-worker revalidate/rebuild loop out over up to procs
// goroutines (the same deterministic chunked pool as newBatchIndexN).
func (c *EngineCache) incrementalN(b *Batch, procs int) *BatchIndex {
	idx := &BatchIndex{
		b:          b,
		strategies: make([][]int32, len(b.Workers)),
		costs:      make([][]float64, len(b.Workers)),
		candidates: make([][]int32, len(b.Tasks)),
	}

	// Task diff, applied to the cache state in place: departed tasks leave
	// c.pending and the grid, arrivals enter both and form the probe set
	// for unmoved workers. After the diff c.pending equals the current
	// batch's pending set, so absorb needs no re-keying.
	departed := 0
	gridOps := 0
	for id := range c.pending {
		if _, ok := b.pending[id]; !ok {
			departed++
			delete(c.pending, id)
			if c.grid != nil {
				c.grid.Remove(int(id))
				gridOps++
			}
		}
	}
	arrived := c.arrived[:0]
	//lint:deterministic-ok iteration order is laundered by the slices.Sort below before anything reads arrived
	for id, ti := range b.pending {
		if !c.pending[id] {
			arrived = append(arrived, int32(ti))
			c.pending[id] = true
			if c.grid != nil {
				c.grid.Insert(int(id), b.Tasks[ti].Loc)
				gridOps++
			}
		}
	}
	slices.Sort(arrived)
	c.arrived = arrived
	c.stats.TasksDeparted += departed
	c.stats.TasksArrived += len(arrived)
	b.rec.AddCacheTasksDeparted(int64(departed))
	b.rec.AddCacheTasksArrived(int64(len(arrived)))
	b.rec.AddGridOps(int64(gridOps))

	// Skill buckets: over the arrivals for the revalidation probes, over the
	// whole batch for worker rebuilds.
	newBySkill := make(map[model.Skill][]int32)
	for _, ti := range arrived {
		t := b.Tasks[ti]
		newBySkill[t.Requires] = append(newBySkill[t.Requires], ti)
	}
	bySkill := make(map[model.Skill][]int32)
	for ti, t := range b.Tasks {
		bySkill[t.Requires] = append(bySkill[t.Requires], int32(ti))
	}
	gridDensity := 0.0
	if c.grid != nil {
		gridDensity = float64(c.grid.Len()) / c.boxArea
	}

	// The per-worker loop. Shared cache state (c.workers, c.pending, the
	// grid, the skill buckets) is read-only until every goroutine is done;
	// each goroutine writes only its own disjoint idx slots and scratch.
	work := func(wi int, sc *cacheScratch) {
		bw := &b.Workers[wi]
		cw := c.workers[bw.W.ID]
		if cw != nil &&
			cw.loc == bw.Loc &&
			cw.distBudget == bw.DistBudget && //lint:epsfloat-ok bit-identity invalidation compare; a tolerance would treat distinct cached states as equal
			bw.ReadyAt >= cw.readyAt && //lint:epsfloat-ok monotone-readiness guard is deliberately exact; DeadlineFeasible applies the epsilon downstream
			cw.start == bw.W.Start && cw.wait == bw.W.Wait && //lint:epsfloat-ok bit-identity invalidation compare; a tolerance would treat distinct cached states as equal
			cw.velocity == bw.W.Velocity && cw.maxDist == bw.W.MaxDist { //lint:epsfloat-ok bit-identity invalidation compare; a tolerance would treat distinct cached states as equal
			c.revalidate(b, wi, cw, newBySkill, idx, &sc.bs)
			sc.reused++
		} else {
			c.rebuildWorker(b, wi, bySkill, gridDensity, idx, &sc.bs)
			sc.rebuilt++
		}
	}

	nw := len(b.Workers)
	if procs > (nw+buildChunk-1)/buildChunk {
		procs = (nw + buildChunk - 1) / buildChunk
	}
	if nw < minParallelWorkers || procs <= 1 {
		var sc cacheScratch
		for wi := 0; wi < nw; wi++ {
			work(wi, &sc)
		}
		c.flush(b, &sc)
	} else {
		scs := make([]cacheScratch, procs)
		var next atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(sc *cacheScratch) {
				defer wg.Done()
				for {
					lo := int(next.Add(buildChunk)) - buildChunk
					if lo >= nw {
						return
					}
					hi := lo + buildChunk
					if hi > nw {
						hi = nw
					}
					for wi := lo; wi < hi; wi++ {
						work(wi, sc)
					}
				}
			}(&scs[p])
		}
		wg.Wait()
		for p := range scs {
			c.flush(b, &scs[p])
		}
	}

	idx.invertStrategies()
	c.absorbWorkers(b, idx)
	return idx
}

// flush folds one goroutine's outcome counters into the cache stats and the
// batch recorder, and publishes its arena economy.
func (c *EngineCache) flush(b *Batch, sc *cacheScratch) {
	c.stats.WorkersReused += int(sc.reused)
	c.stats.WorkersRebuilt += int(sc.rebuilt)
	b.rec.AddCacheWorkersRevalidated(sc.reused)
	b.rec.AddCacheWorkersRebuilt(sc.rebuilt)
	sc.bs.flushArena(b)
}

// revalidate re-derives an unmoved worker's strategy set: cached entries are
// filtered by pure time arithmetic over the memoized travel times (departed
// tasks drop out via the pending lookup, deadline-expired ones via
// model.DeadlineFeasible), and newly arrived tasks are probed through the
// full predicate — the only distance evaluations on this path.
func (c *EngineCache) revalidate(b *Batch, wi int, cw *cachedWorker, newBySkill map[model.Skill][]int32, idx *BatchIndex, sc *buildScratch) {
	bw := &b.Workers[wi]
	sc.set = sc.set[:0]
	sc.costs = sc.costs[:0]
	reused := 0
	for k, id := range cw.tasks {
		ti, ok := b.pending[id]
		if !ok {
			continue // task departed
		}
		reused++
		if model.DeadlineFeasible(b.Tasks[ti], bw.ReadyAt, cw.costs[k]) {
			sc.set = append(sc.set, int32(ti))
			sc.costs = append(sc.costs, cw.costs[k])
		}
	}
	examined := 0
	for _, sk := range bw.W.Skills.Skills() {
		for _, ti := range newBySkill[sk] {
			examined++
			t := b.Tasks[ti]
			if model.FeasibleFrom(bw.W, bw.Loc, bw.ReadyAt, bw.DistBudget, t, b.dist) {
				sc.set = append(sc.set, ti)
				sc.costs = append(sc.costs, bw.W.TravelTime(bw.Loc, t.Loc, b.dist))
			}
		}
	}
	// Cached entries follow the previous batch's index order and arrivals
	// interleave arbitrarily; restore ascending task-index order.
	sc.sortStrategy()
	// Every retained cached entry is a cross-batch memo hit (its travel time
	// was served from the memo instead of recomputed); only arrival probes
	// run the exact predicate.
	b.rec.AddMemoHits(int64(reused))
	b.rec.AddExamined(int64(examined))
	b.rec.AddAdmitted(int64(len(sc.set)))
	idx.strategies[wi] = sc.ints.carve(sc.set)
	idx.costs[wi] = sc.floats.carve(sc.costs)
}

// rebuildWorker recomputes a moved (or new) worker's strategy set through
// the same pruned scan as the from-scratch build, with the maintained grid
// standing in for the per-batch one. Grid hits come back as task IDs and are
// mapped to batch indexes through the pending map.
func (c *EngineCache) rebuildWorker(b *Batch, wi int, bySkill map[model.Skill][]int32, gridDensity float64, idx *BatchIndex, sc *buildScratch) {
	bw := &b.Workers[wi]
	sc.set = sc.set[:0]
	sc.costs = sc.costs[:0]
	examined := 0
	appendFeasible := func(ti int32) {
		examined++
		t := b.Tasks[ti]
		if model.FeasibleFrom(bw.W, bw.Loc, bw.ReadyAt, bw.DistBudget, t, b.dist) {
			sc.set = append(sc.set, ti)
			sc.costs = append(sc.costs, bw.W.TravelTime(bw.Loc, t.Loc, b.dist))
		}
	}
	skillPool := 0
	for _, sk := range bw.W.Skills.Skills() {
		skillPool += len(bySkill[sk])
	}
	useGrid := false
	if c.grid != nil {
		r := c.boxScale * (bw.DistBudget + model.DistEps)
		discPool := math.Pi * r * r * gridDensity
		if discPool > float64(len(b.Tasks)) {
			discPool = float64(len(b.Tasks))
		}
		useGrid = discPool < float64(skillPool)
	}
	if useGrid {
		sc.grid = c.grid.Within(bw.Loc, c.boxScale*(bw.DistBudget+model.DistEps), sc.grid[:0])
		for _, id := range sc.grid {
			ti, ok := b.pending[model.TaskID(id)]
			if !ok {
				continue
			}
			if bw.W.Skills.Has(b.Tasks[ti].Requires) {
				appendFeasible(int32(ti))
			}
		}
	} else {
		for _, sk := range bw.W.Skills.Skills() {
			for _, ti := range bySkill[sk] {
				appendFeasible(ti)
			}
		}
	}
	sc.sortStrategy()
	b.rec.AddExamined(int64(examined))
	b.rec.AddAdmitted(int64(len(sc.set)))
	idx.strategies[wi] = sc.ints.carve(sc.set)
	idx.costs[wi] = sc.floats.carve(sc.costs)
}

// absorbWorkers snapshots the batch's worker states and strategy sets as the
// baseline for the next incremental build. The map, the cachedWorker
// structs, and their task/cost buffers are all reused across batches:
// present workers are updated in place, new ones come from the free list
// (or a struct slab), and departed ones are swept into the free list. The
// copies are cache-owned — nothing here aliases the index, so later reuse
// cannot mutate an index a previous batch returned.
func (c *EngineCache) absorbWorkers(b *Batch, idx *BatchIndex) {
	if c.workers == nil {
		c.workers = make(map[model.WorkerID]*cachedWorker, len(b.Workers))
	}
	c.gen++
	pooled := 0
	for wi := range b.Workers {
		bw := &b.Workers[wi]
		cw := c.workers[bw.W.ID]
		if cw == nil {
			if n := len(c.free); n > 0 {
				cw = c.free[n-1]
				c.free[n-1] = nil
				c.free = c.free[:n-1]
				pooled++
			} else {
				cw = &c.structs.carveLen(1)[0]
			}
			c.workers[bw.W.ID] = cw
		}
		cw.loc = bw.Loc
		cw.readyAt = bw.ReadyAt
		cw.distBudget = bw.DistBudget
		cw.start, cw.wait = bw.W.Start, bw.W.Wait
		cw.velocity, cw.maxDist = bw.W.Velocity, bw.W.MaxDist
		cw.gen = c.gen

		set := idx.strategies[wi]
		if cap(cw.tasks) >= len(set) {
			cw.tasks = cw.tasks[:len(set)]
		} else {
			cw.tasks = c.ids.carveLen(len(set))
		}
		for k, ti := range set {
			cw.tasks[k] = b.Tasks[ti].ID
		}
		costs := idx.costs[wi]
		if cap(cw.costs) >= len(costs) {
			cw.costs = cw.costs[:len(costs)]
		} else {
			cw.costs = c.floats.carveLen(len(costs))
		}
		copy(cw.costs, costs)
	}
	// Sweep departed workers (entries the loop above did not restamp) into
	// the free list, buffers attached for reuse.
	//lint:deterministic-ok recycled structs are interchangeable containers; every field and buffer is overwritten before reuse, so free-list order never reaches an index
	for id, cw := range c.workers {
		if cw.gen != c.gen {
			delete(c.workers, id)
			c.free = append(c.free, cw)
		}
	}
	c.stats.WorkersPooled += pooled
	b.rec.SetCachePool(pooled, len(c.free))
	c.valid = true
}

// refreshPending rebuilds the pending-task set from scratch (adopt path;
// the incremental path maintains it by diff). The map is reused.
func (c *EngineCache) refreshPending(b *Batch) {
	if c.pending == nil {
		c.pending = make(map[model.TaskID]bool, len(b.Tasks))
	} else {
		clear(c.pending)
	}
	for _, t := range b.Tasks {
		c.pending[t.ID] = true
	}
}
