package core

import (
	"math/rand"
	"testing"

	"dasc/internal/model"
)

func TestExactDPExample1(t *testing.T) {
	b := NewStaticBatch(model.Example1())
	dp := NewExactDP()
	a, ok := dp.AssignExact(b)
	if !ok {
		t.Fatal("tiny instance over the limit")
	}
	validateBatchAssignment(t, b, a)
	if a.Size() != 3 {
		t.Fatalf("ExactDP score = %d, want 3", a.Size())
	}
	if dp.Name() != "ExactDP" {
		t.Errorf("Name = %q", dp.Name())
	}
}

// TestExactDPMatchesDFS: two independent exact solvers must agree on the
// optimum for random instances.
func TestExactDPMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 2+rng.Intn(6), 2+rng.Intn(9), 3, true)
		b := NewStaticBatch(in)
		dfs := NewDFS(DFSOptions{})
		optDFS := dfs.Assign(b).Size()
		if !dfs.Exact() {
			t.Fatalf("trial %d: DFS truncated", trial)
		}
		dp := NewExactDP()
		a, ok := dp.AssignExact(b)
		if !ok {
			t.Fatalf("trial %d: DP over limit", trial)
		}
		validateBatchAssignment(t, b, a)
		if a.Size() != optDFS {
			t.Fatalf("trial %d: DP %d != DFS %d", trial, a.Size(), optDFS)
		}
	}
}

func TestExactDPWithSatisfiedAndDeadDeps(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	// Only t1 pending; t0 satisfied earlier → assignable.
	b := NewBatch(in,
		[]BatchWorker{{W: &in.Workers[0], Loc: in.Workers[0].Loc, ReadyAt: 0, DistBudget: 100}},
		[]*model.Task{&in.Tasks[1]},
		map[model.TaskID]bool{0: true})
	a, ok := NewExactDP().AssignExact(b)
	if !ok || a.Size() != 1 {
		t.Fatalf("satisfied dep: %v ok=%v", a, ok)
	}
	// Only t1 pending; t0 absent and unsatisfied → dead.
	b2 := NewBatch(in, b.Workers, b.Tasks, nil)
	a2, ok := NewExactDP().AssignExact(b2)
	if !ok || a2.Size() != 0 {
		t.Fatalf("dead dep assigned: %v", a2)
	}
}

func TestExactDPOverLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	in := randomInstance(rng, 3, 6, 2, false)
	b := NewStaticBatch(in)
	dp := &ExactDP{MaxTasks: 4}
	if _, ok := dp.AssignExact(b); ok {
		t.Error("limit not enforced")
	}
	if a := dp.Assign(b); a.Size() != 0 {
		t.Error("over-limit Assign should be empty")
	}
}

func TestExactDPEmptyBatch(t *testing.T) {
	b := NewStaticBatch(&model.Instance{})
	a, ok := NewExactDP().AssignExact(b)
	if !ok || a.Size() != 0 {
		t.Errorf("empty batch: %v ok=%v", a, ok)
	}
}
