package core

import (
	"math/rand"
	"testing"

	"dasc/internal/model"
)

func TestDFSExample1Optimal(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	d := NewDFS(DFSOptions{})
	a := d.Assign(b)
	validateBatchAssignment(t, b, a)
	if !d.Exact() {
		t.Error("Exact() = false on tiny instance")
	}
	if a.Size() != 3 {
		t.Fatalf("DFS score = %d, want 3", a.Size())
	}
}

// bruteOptimal exhaustively enumerates every worker→task/idle profile and
// returns the best dependency-consistent score — an independent oracle for
// the DFS pruning logic.
func bruteOptimal(b *Batch) int {
	strategies := b.StrategySets()
	n := len(b.Workers)
	claimed := make([]bool, len(b.Tasks))
	choice := make([]int, n)
	best := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			kept := map[model.TaskID]bool{}
			for _, ti := range choice {
				if ti >= 0 {
					kept[b.Tasks[ti].ID] = true
				}
			}
			for {
				removed := false
				for id := range kept {
					for _, d := range b.In.Task(id).Deps {
						if !kept[d] && !b.Satisfied[d] {
							delete(kept, id)
							removed = true
							break
						}
					}
				}
				if !removed {
					break
				}
			}
			if len(kept) > best {
				best = len(kept)
			}
			return
		}
		choice[i] = -1
		rec(i + 1)
		for _, ti := range strategies[i] {
			if claimed[ti] {
				continue
			}
			claimed[ti] = true
			choice[i] = ti
			rec(i + 1)
			claimed[ti] = false
			choice[i] = -1
		}
	}
	rec(0)
	return best
}

func TestDFSMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(5), 3, true)
		b := NewStaticBatch(in)
		want := bruteOptimal(b)
		d := NewDFS(DFSOptions{})
		a := d.Assign(b)
		validateBatchAssignment(t, b, a)
		if !d.Exact() {
			t.Fatalf("trial %d: truncated", trial)
		}
		if a.Size() != want {
			t.Fatalf("trial %d: DFS %d, brute %d", trial, a.Size(), want)
		}
	}
}

func TestApproximationAlgorithmsNeverBeatDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 2+rng.Intn(5), 2+rng.Intn(6), 3, true)
		b := NewStaticBatch(in)
		opt := NewDFS(DFSOptions{}).Assign(b).Size()
		for _, name := range AllNames() {
			alloc, _ := NewByName(name, int64(trial))
			// Baselines return raw assignments; score the valid subset.
			got := DependencyFixpoint(b, alloc.Assign(b)).Size()
			if got > opt {
				t.Fatalf("trial %d: %s scored %d > optimal %d", trial, name, got, opt)
			}
		}
	}
}

// TestGreedyApproximationRatio spot-checks Theorem III.2's (1−1/e) bound per
// batch on random instances.
func TestGreedyApproximationRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 3+rng.Intn(4), 3+rng.Intn(5), 3, true)
		b := NewStaticBatch(in)
		opt := NewDFS(DFSOptions{}).Assign(b).Size()
		got := NewGreedy().Assign(b).Size()
		if float64(got) < (1-1/2.718281828)*float64(opt)-1e-9 {
			t.Fatalf("trial %d: greedy %d below (1−1/e)·%d", trial, got, opt)
		}
	}
}

func TestDFSNodeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	in := randomInstance(rng, 12, 14, 2, true)
	b := NewStaticBatch(in)
	// A cap below the tree depth guarantees truncation: the search cannot
	// even reach one leaf.
	d := NewDFS(DFSOptions{MaxNodes: 3})
	a := d.Assign(b)
	validateBatchAssignment(t, b, a) // truncated result must still be valid
	if d.Exact() {
		t.Error("Exact() = true under a 3-node cap")
	}
}

func TestBaselinesAreDominatedOnExample1(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	closest := DependencyFixpoint(b, NewClosest().Assign(b))
	validateBatchAssignment(t, b, closest)
	random := DependencyFixpoint(b, NewRandom(3).Assign(b))
	validateBatchAssignment(t, b, random)
	greedy := NewGreedy().Assign(b)
	if closest.Size() > greedy.Size() || random.Size() > greedy.Size() {
		t.Errorf("baseline beats greedy: closest=%d random=%d greedy=%d",
			closest.Size(), random.Size(), greedy.Size())
	}
	// The paper's Figure 1(b) narrative: dependency-oblivious nearest
	// matching completes only 1 task on Example 1.
	if closest.Size() != 1 {
		t.Errorf("closest score = %d, want 1", closest.Size())
	}
}

func TestRandomBaselineDeterministicPerSeed(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	a1 := NewRandom(7).Assign(b)
	a2 := NewRandom(7).Assign(b)
	if a1.String() != a2.String() {
		t.Error("Random baseline not reproducible for fixed seed")
	}
}
