package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dasc/internal/geo"
	"dasc/internal/model"
)

func TestStaticBatchWrapsInstance(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	if len(b.Workers) != 3 || len(b.Tasks) != 5 {
		t.Fatalf("batch sizes %d/%d", len(b.Workers), len(b.Tasks))
	}
	for i, bw := range b.Workers {
		w := &in.Workers[i]
		if bw.Loc != w.Loc || bw.ReadyAt != w.Start || bw.DistBudget != w.MaxDist {
			t.Errorf("worker %d state not mirrored: %+v", i, bw)
		}
	}
	if b.TaskIndex(3) != 3 || b.TaskIndex(99) != -1 {
		t.Error("TaskIndex wrong")
	}
}

func TestBatchStrategySetsMatchCandidateIndex(t *testing.T) {
	// The batch's strategy sets must agree with the model-level candidate
	// index on a static batch.
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 10, 15, 4, true)
		b := NewStaticBatch(in)
		ci := model.NewCandidateIndex(in)
		sets := b.StrategySets()
		for wi := range b.Workers {
			var got []model.TaskID
			for _, ti := range sets[wi] {
				got = append(got, b.Tasks[ti].ID)
			}
			want := ci.TasksFor(&in.Workers[wi])
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("worker %d: batch %v vs index %v", wi, got, want)
			}
		}
	}
}

func TestBatchCandidateWorkersSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	in := randomInstance(rng, 12, 12, 3, false)
	b := NewStaticBatch(in)
	sets := b.StrategySets()
	for ti, task := range b.Tasks {
		for _, wi := range b.CandidateWorkers(task) {
			found := false
			for _, t2 := range sets[wi] {
				if t2 == ti {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetry: worker %d candidates task %d but not vice versa", wi, ti)
			}
		}
	}
}

func TestDepSatisfiable(t *testing.T) {
	in := model.Example1()
	// Batch containing only t2 (depends on t1) and t4.
	b := NewBatch(in,
		[]BatchWorker{{W: &in.Workers[0], Loc: in.Workers[0].Loc, ReadyAt: 0, DistBudget: 1000}},
		[]*model.Task{&in.Tasks[1], &in.Tasks[3]},
		nil)
	if b.DepSatisfiable(&in.Tasks[1]) {
		t.Error("t2's dependency t1 is absent and unsatisfied")
	}
	if !b.DepSatisfiable(&in.Tasks[3]) {
		t.Error("t4 has no deps")
	}
	b2 := NewBatch(in, b.Workers, b.Tasks, map[model.TaskID]bool{0: true})
	if !b2.DepSatisfiable(&in.Tasks[1]) {
		t.Error("satisfied dependency not honoured")
	}
}

func TestTravelCost(t *testing.T) {
	in := model.Example1() // w1 at (2,1) velocity 10; t1 at (4,1)
	b := NewStaticBatch(in)
	if got := b.TravelCost(0, &in.Tasks[0]); got != 0.2 {
		t.Errorf("TravelCost = %v, want 0.2", got)
	}
}

func TestAtSetsExample1(t *testing.T) {
	b := NewStaticBatch(model.Example1())
	sets := atSets(b)
	if len(sets) != 5 {
		t.Fatalf("got %d associative sets, want 5", len(sets))
	}
	sizes := map[int]int{} // anchor -> size
	for _, s := range sets {
		sizes[s.anchor] = s.alive
	}
	// Paper: {{t1}, {t1,t2}, {t1,t2,t3}, {t4}, {t4,t5}}.
	want := map[int]int{0: 1, 1: 2, 2: 3, 3: 1, 4: 2}
	if !reflect.DeepEqual(sizes, want) {
		t.Errorf("set sizes = %v, want %v", sizes, want)
	}
}

func TestAtSetsSkipUnsatisfiableAnchors(t *testing.T) {
	in := model.Example1()
	// Batch without t1: sets anchored at t2, t3 are unbuildable.
	b := NewBatch(in,
		nil,
		[]*model.Task{&in.Tasks[1], &in.Tasks[2], &in.Tasks[3]},
		nil)
	sets := atSets(b)
	if len(sets) != 1 || b.Tasks[sets[0].anchor].ID != 3 {
		t.Fatalf("sets = %+v, want only t4's", sets)
	}
}

func TestSetHeapOrdering(t *testing.T) {
	h := &setHeap{}
	mk := func(anchor, size int) setEntry {
		return setEntry{weight: float64(size), set: &atSet{anchor: anchor, alive: size}}
	}
	h.push(mk(3, 2))
	h.push(mk(1, 5))
	h.push(mk(2, 5))
	h.push(mk(0, 1))
	var order []int
	for h.len() > 0 {
		e, ok := h.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		order = append(order, e.set.anchor)
	}
	// Largest first; ties by anchor ascending.
	if !reflect.DeepEqual(order, []int{1, 2, 3, 0}) {
		t.Errorf("heap order = %v", order)
	}
	if _, ok := h.pop(); ok {
		t.Error("pop on empty heap succeeded")
	}
}

func TestSetHeapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		h := &setHeap{}
		for i, sz := range sizes {
			h.push(setEntry{weight: float64(sz), set: &atSet{anchor: i}})
		}
		prev := math.Inf(1)
		for h.len() > 0 {
			e, _ := h.pop()
			if e.weight > prev {
				return false
			}
			prev = e.weight
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDependencyFixpointIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 8, 12, 3, true)
		b := NewStaticBatch(in)
		// Random (possibly invalid) assignment.
		a := model.NewAssignment()
		perm := rng.Perm(len(b.Tasks))
		for wi := 0; wi < len(b.Workers) && wi < len(perm); wi++ {
			if rng.Float64() < 0.7 {
				a.Add(b.Workers[wi].W.ID, b.Tasks[perm[wi]].ID)
			}
		}
		f1 := DependencyFixpoint(b, a)
		f2 := DependencyFixpoint(b, f1)
		if f1.Size() != f2.Size() {
			t.Fatalf("fixpoint not idempotent: %d vs %d", f1.Size(), f2.Size())
		}
		// Every kept pair's dependencies are kept.
		kept := f1.TaskSet()
		for _, p := range f1.Pairs {
			for _, d := range in.Task(p.Task).Deps {
				if !kept[d] {
					t.Fatalf("fixpoint kept t%d with missing dep t%d", p.Task, d)
				}
			}
		}
	}
}

func TestShuffledIndexesIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	idx := shuffledIndexes(20, rng)
	seen := make([]bool, 20)
	for _, v := range idx {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", idx)
		}
		seen[v] = true
	}
}

func TestSortedTaskIDs(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{
			{ID: 0}, {ID: 1}, {ID: 2},
		},
	}
	b := NewStaticBatch(in)
	got := b.sortedTaskIDs([]int{2, 0, 1})
	if !reflect.DeepEqual(got, []model.TaskID{0, 1, 2}) {
		t.Errorf("sortedTaskIDs = %v", got)
	}
}

func TestBatchWithSimStateOverrides(t *testing.T) {
	// A relocated worker with a partial budget: feasibility must follow the
	// overridden state, not the declared one.
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 10,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{{ID: 0, Loc: geo.Pt(9, 0), Start: 0, Wait: 100, Requires: 0}},
	}
	// Static: distance 9 ≤ 10, feasible.
	if !NewStaticBatch(in).Feasible(0, &in.Tasks[0]) {
		t.Fatal("static case should be feasible")
	}
	// Mid-sim: worker already used 8 of its 10 budget from a new location.
	b := NewBatch(in, []BatchWorker{{
		W: &in.Workers[0], Loc: geo.Pt(5, 0), ReadyAt: 50, DistBudget: 2,
	}}, []*model.Task{&in.Tasks[0]}, nil)
	if b.Feasible(0, &in.Tasks[0]) {
		t.Error("exhausted budget ignored") // distance 4 > 2 budget
	}
}
