package core

// slab is a bump allocator that carves exact-length slices out of large
// blocks, so a build that used to pay one heap allocation per worker pays
// one per block instead (O(goroutines + pairs/slabBlock) for a whole
// batch). A slab is single-owner: every build goroutine carries its own,
// and the cache's absorb path runs one on the platform goroutine.
//
// Ownership of the carved memory follows the carved slices, not the slab:
// blocks stay reachable exactly as long as something holds a slice into
// them, so a slab can be dropped (or kept for the next batch, where it
// opens a fresh block) without invalidating what it handed out. Carved
// slices are capped with a three-index expression, so appending to one can
// never bleed into its neighbour.
type slab[T any] struct {
	buf []T
	// carved and allocd count elements handed out vs. freshly allocated in
	// blocks, for the arena-economy observability counters.
	carved int64
	allocd int64
}

// slabBlock is the minimum block size in elements. Large enough that a
// 10k-worker batch opens a handful of blocks, small enough that the tail
// waste of an almost-full block stays in the tens of kilobytes.
const slabBlock = 4096

// carveLen returns a slice of length n carved from the current block,
// opening a new one when the remainder is too small. The contents are
// unspecified (callers overwrite every element); n == 0 returns nil.
func (s *slab[T]) carveLen(n int) []T {
	if n == 0 {
		return nil
	}
	if cap(s.buf)-len(s.buf) < n {
		blk := slabBlock
		if n > blk {
			blk = n
		}
		s.buf = make([]T, 0, blk)
		s.allocd += int64(blk)
	}
	off := len(s.buf)
	s.buf = s.buf[:off+n]
	s.carved += int64(n)
	return s.buf[off : off+n : off+n]
}

// carve copies src into freshly carved memory and returns it.
func (s *slab[T]) carve(src []T) []T {
	dst := s.carveLen(len(src))
	copy(dst, src)
	return dst
}

// buildScratch is the per-goroutine working state of an index build: the
// strategy set and cost row under construction (reused worker to worker),
// the grid radius-query buffer, the co-sorting view, and the slabs the
// finished rows are carved into. The sorter lives here so sort.Sort
// receives a pointer that is already heap-resident instead of boxing a
// fresh interface value per worker.
type buildScratch struct {
	grid   []int
	set    []int32
	costs  []float64
	sorter strategyByIndex
	ints   slab[int32]
	floats slab[float64]
}

// flushArena publishes the scratch's arena economy to the batch recorder
// (bytes carved into the index vs. bytes of fresh block allocations) and
// zeroes the counters so a reused scratch doesn't double-report.
func (sc *buildScratch) flushArena(b *Batch) {
	carved := sc.ints.carved*4 + sc.floats.carved*8
	allocd := sc.ints.allocd*4 + sc.floats.allocd*8
	if carved != 0 || allocd != 0 {
		b.rec.AddArenaBytes(carved, allocd)
	}
	sc.ints.carved, sc.ints.allocd = 0, 0
	sc.floats.carved, sc.floats.allocd = 0, 0
}

// sortStrategy sorts the scratch's set/costs pair ascending by task index.
func (sc *buildScratch) sortStrategy() {
	sc.sorter.set, sc.sorter.costs = sc.set, sc.costs
	sortStrategyByIndex(&sc.sorter)
	sc.sorter.set, sc.sorter.costs = nil, nil
}
