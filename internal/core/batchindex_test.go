package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// metricsUnderTest pairs every distance function the engine must handle with
// a label: the Euclidean-boundable trio exercises the spatial-grid path, the
// rest the skill-bucket fallback.
func metricsUnderTest() []struct {
	name string
	dist geo.DistanceFunc
} {
	scaled := func(a, b geo.Point) float64 { return 3 * geo.Euclidean(a, b) }
	return []struct {
		name string
		dist geo.DistanceFunc
	}{
		{"nil(Euclidean)", nil},
		{"Euclidean", geo.Euclidean},
		{"Manhattan", geo.Manhattan},
		{"Chebyshev", geo.Chebyshev},
		{"Haversine", geo.Haversine},
		{"custom", scaled},
	}
}

// midSimBatch perturbs every worker into a mid-simulation state: moved
// location, later readiness, partially spent distance budget.
func midSimBatch(in *model.Instance, rng *rand.Rand) *Batch {
	var bws []BatchWorker
	for i := range in.Workers {
		w := &in.Workers[i]
		bws = append(bws, BatchWorker{
			W:          w,
			Loc:        geo.Pt(rng.Float64(), rng.Float64()),
			ReadyAt:    w.Start + rng.Float64()*5,
			DistBudget: w.MaxDist * rng.Float64(),
		})
	}
	var tasks []*model.Task
	for i := range in.Tasks {
		tasks = append(tasks, &in.Tasks[i])
	}
	return NewBatch(in, bws, tasks, nil)
}

// TestBatchIndexMatchesScan is the differential cross-check of the
// acceptance criteria: for seeded random instances, every distance metric,
// and both static and mid-simulation worker states, the indexed strategy
// sets and candidate lists must equal the brute-force scans exactly.
func TestBatchIndexMatchesScan(t *testing.T) {
	for _, m := range metricsUnderTest() {
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(404))
			for trial := 0; trial < 8; trial++ {
				in := randomInstance(rng, 10+rng.Intn(30), 10+rng.Intn(40), 5, true)
				in.Dist = m.dist
				for _, b := range []*Batch{NewStaticBatch(in), midSimBatch(in, rng)} {
					sets := b.StrategySets()
					want := b.ScanStrategySets()
					if !reflect.DeepEqual(sets, want) {
						t.Fatalf("trial %d: strategy sets diverge\nindex: %v\nscan:  %v", trial, sets, want)
					}
					for _, task := range b.Tasks {
						got := b.CandidateWorkers(task)
						wantC := b.ScanCandidateWorkers(task)
						if !reflect.DeepEqual(got, wantC) {
							t.Fatalf("trial %d task %d: candidates %v, scan %v", trial, task.ID, got, wantC)
						}
					}
				}
			}
		})
	}
}

// TestBatchIndexParallelDeterministic forces the concurrent build (large
// worker pool, several goroutines) and checks it against the serial build —
// the output must be bit-identical regardless of scheduling.
func TestBatchIndexParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	in := randomInstance(rng, 3*minParallelWorkers, 120, 6, true)
	for _, procs := range []int{2, 4, 8} {
		serial := newBatchIndexN(NewStaticBatch(in), 1)
		parallel := newBatchIndexN(NewStaticBatch(in), procs)
		if !reflect.DeepEqual(serial.strategies, parallel.strategies) {
			t.Fatalf("procs=%d: strategy sets differ from serial build", procs)
		}
		if !reflect.DeepEqual(serial.costs, parallel.costs) {
			t.Fatalf("procs=%d: travel-cost memos differ from serial build", procs)
		}
		if !reflect.DeepEqual(serial.candidates, parallel.candidates) {
			t.Fatalf("procs=%d: candidate lists differ from serial build", procs)
		}
	}
}

// TestBatchIndexTravelCostMemo checks the memoized travel times against
// direct computation for feasible pairs, and the fallback for infeasible
// ones.
func TestBatchIndexTravelCostMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	in := randomInstance(rng, 15, 20, 4, false)
	b := NewStaticBatch(in)
	idx := b.Index()
	for wi := range b.Workers {
		for ti := range b.Tasks {
			got := idx.TravelCost(wi, ti)
			want := b.TravelCost(wi, b.Tasks[ti])
			if got != want {
				t.Fatalf("TravelCost(%d,%d) = %v, direct %v", wi, ti, got, want)
			}
		}
	}
	if idx.FeasiblePairs() == 0 {
		t.Fatal("degenerate instance: no feasible pairs to memoize")
	}
}

// TestBatchIndexEmpty covers the no-worker / no-task corners.
func TestBatchIndexEmpty(t *testing.T) {
	in := model.Example1()
	bNoTasks := NewBatch(in, NewStaticBatch(in).Workers, nil, nil)
	if got := bNoTasks.StrategySets(); len(got) != len(in.Workers) {
		t.Fatalf("no-task strategy sets: %v", got)
	}
	bNoWorkers := NewBatch(in, nil, []*model.Task{&in.Tasks[0]}, nil)
	if got := bNoWorkers.CandidateWorkers(&in.Tasks[0]); got != nil {
		t.Fatalf("no-worker candidates: %v", got)
	}
}

// TestCandidateWorkersOffBatchFallback: a task not pending in the batch must
// still get a (scan-computed) answer, matching the pre-index behaviour.
func TestCandidateWorkersOffBatchFallback(t *testing.T) {
	in := model.Example1()
	b := NewBatch(in, NewStaticBatch(in).Workers, []*model.Task{&in.Tasks[0]}, nil)
	off := &in.Tasks[3] // pending set contains only t1
	if got, want := b.CandidateWorkers(off), b.ScanCandidateWorkers(off); !reflect.DeepEqual(got, want) {
		t.Fatalf("off-batch candidates %v, scan %v", got, want)
	}
}

// TestAtSetsDedupDuplicateDeps: a task listing the same dependency twice
// must produce an associative set with unique members and an uninflated
// weight, and Greedy's staffing must succeed with exactly one worker per
// distinct task.
func TestAtSetsDedupDuplicateDeps(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
			{ID: 1, Loc: geo.Pt(1, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0, 1), Start: 0, Wait: 100, Requires: 0},
			// Duplicate dependency: bypasses Validate (hand-built instance).
			{ID: 1, Loc: geo.Pt(1, 1), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0, 0}},
		},
	}
	b := NewStaticBatch(in)
	sets := atSets(b)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2", len(sets))
	}
	for _, s := range sets {
		if b.Tasks[s.anchor].ID != 1 {
			continue
		}
		if len(s.members) != 2 || s.alive != 2 || s.weight != 2 {
			t.Fatalf("anchor t1 set not deduped: members=%v alive=%d weight=%v",
				s.members, s.alive, s.weight)
		}
		// The deduped set must be staffable by the two workers.
		g := NewGreedy()
		candidates := make([][]int, len(b.Tasks))
		for ti, task := range b.Tasks {
			candidates[ti] = b.CandidateWorkers(task)
		}
		free := []bool{true, true}
		staff, ok := g.staff(b, s.members, candidates, free)
		if !ok || len(staff) != 2 || staff[0] == staff[1] {
			t.Fatalf("staffing deduped set failed: staff=%v ok=%v", staff, ok)
		}
	}
	// End to end: both tasks assigned in one static batch.
	a := NewGreedy().Assign(b)
	if a.Size() != 2 {
		t.Fatalf("greedy assigned %d pairs, want 2: %+v", a.Size(), a.Pairs)
	}
}

// TestGameStateDedupDuplicateDeps: the game's dependency wiring must also
// collapse duplicate entries — |D_t| and the dependant lists are set-valued.
func TestGameStateDedupDuplicateDeps(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0, 1), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(1, 1), Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0, 0}},
		},
	}
	gs := newGameState(NewStaticBatch(in), 10)
	if gs.depCount[1] != 1 {
		t.Errorf("depCount = %d, want 1", gs.depCount[1])
	}
	if len(gs.deps(1)) != 1 {
		t.Errorf("deps = %v, want one entry", gs.deps(1))
	}
	if len(gs.dependants(0)) != 1 {
		t.Errorf("dependants = %v, want one entry", gs.dependants(0))
	}
}
