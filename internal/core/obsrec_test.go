package core

import (
	"math/rand"
	"testing"

	"dasc/internal/model"
	"dasc/internal/obs"
)

// TestBatchRecorderCountsIndexBuild: the per-batch recorder sees the pruned
// build's probe and admission counts, and admitted pairs equal the index's
// feasible-pair count exactly.
func TestBatchRecorderCountsIndexBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	in := randomInstance(rng, 40, 60, 5, true)
	b := NewStaticBatch(in)
	rec := obs.NewBatchRec(0, 0)
	b.SetRecorder(rec)
	idx := b.Index()

	tr := rec.Finish()
	if tr.CandidatesAdmitted != int64(idx.FeasiblePairs()) {
		t.Errorf("admitted = %d, FeasiblePairs = %d", tr.CandidatesAdmitted, idx.FeasiblePairs())
	}
	if tr.CandidatesExamined < tr.CandidatesAdmitted {
		t.Errorf("examined (%d) < admitted (%d)", tr.CandidatesExamined, tr.CandidatesAdmitted)
	}
	// The pruning must examine fewer pairs than the full cross product.
	full := int64(len(b.Workers) * len(b.Tasks))
	if tr.CandidatesExamined > full {
		t.Errorf("examined (%d) > full scan (%d)", tr.CandidatesExamined, full)
	}

	// TravelCost served from the memo counts hits; a pair outside the index
	// counts a miss.
	if len(idx.StrategySet(0)) > 0 {
		before := rec.Finish().MemoHits
		idx.TravelCost(0, int(idx.StrategySet(0)[0]))
		if rec.Finish().MemoHits != before+1 {
			t.Error("memoized TravelCost did not count a hit")
		}
	}
}

// TestBatchRecorderNilIsNoop: every instrumented core path works with no
// recorder installed and a nil-recorder batch produces the same index.
func TestBatchRecorderNilIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	in := randomInstance(rng, 20, 30, 4, true)
	plain := NewStaticBatch(in)
	recd := NewStaticBatch(in)
	recd.SetRecorder(obs.NewBatchRec(0, 0))
	a, bb := plain.Index(), recd.Index()
	if a.FeasiblePairs() != bb.FeasiblePairs() {
		t.Errorf("recorder changed the index: %d vs %d pairs", a.FeasiblePairs(), bb.FeasiblePairs())
	}
	if plain.Recorder() != nil {
		t.Error("recorder set without SetRecorder")
	}
}

// TestEngineCacheRecordsPerBatchOutcomes drives the cache across batches and
// checks the per-batch trace mirrors the cache's cumulative stats.
func TestEngineCacheRecordsPerBatchOutcomes(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	in := randomInstance(rng, 30, 40, 5, true)
	cache := NewEngineCache()

	// Batch 0: full rebuild.
	b0 := NewStaticBatch(in)
	rec0 := obs.NewBatchRec(0, 0)
	b0.SetRecorder(rec0)
	cache.Attach(b0)
	tr0 := rec0.Finish()
	if !tr0.FullRebuild {
		t.Error("first attach not recorded as a full rebuild")
	}
	if tr0.WorkersRebuilt != len(b0.Workers) {
		t.Errorf("rebuilt = %d, want %d", tr0.WorkersRebuilt, len(b0.Workers))
	}
	if tr0.WorkersRevalidated != 0 {
		t.Errorf("revalidated = %d on a full rebuild", tr0.WorkersRevalidated)
	}

	// Batch 1: same worker states, clock advanced — everything revalidates,
	// cached travel times count as memo hits.
	var bws []BatchWorker
	for i := range in.Workers {
		bws = append(bws, BatchWorker{
			W: &in.Workers[i], Loc: in.Workers[i].Loc,
			ReadyAt: in.Workers[i].Start + 1, DistBudget: in.Workers[i].MaxDist,
		})
	}
	var tasks []*model.Task
	for i := range in.Tasks {
		tasks = append(tasks, &in.Tasks[i])
	}
	b1 := NewBatch(in, bws, tasks, nil)
	rec1 := obs.NewBatchRec(1, 1)
	b1.SetRecorder(rec1)
	cache.Attach(b1)
	if err := b1.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	tr1 := rec1.Finish()
	if tr1.FullRebuild {
		t.Error("steady-state batch recorded as full rebuild")
	}
	if tr1.WorkersRevalidated != len(bws) {
		t.Errorf("revalidated = %d, want %d", tr1.WorkersRevalidated, len(bws))
	}
	if tr1.MemoHits == 0 {
		t.Error("revalidation reused no memoized travel times")
	}
	// VerifyIndex's reference rebuild must not leak into the trace: the
	// revalidation path examines only arrivals, of which there are none.
	if tr1.CandidatesExamined != 0 {
		t.Errorf("examined = %d on a churn-free revalidation", tr1.CandidatesExamined)
	}
	if tr1.CandidatesAdmitted != int64(b1.Index().FeasiblePairs()) {
		t.Errorf("admitted = %d, FeasiblePairs = %d", tr1.CandidatesAdmitted, b1.Index().FeasiblePairs())
	}
	st := cache.Stats()
	if st.WorkersReused != tr1.WorkersRevalidated {
		t.Errorf("cumulative reused (%d) != batch-1 revalidated (%d)", st.WorkersReused, tr1.WorkersRevalidated)
	}
}
