package core

import (
	"math"
	"math/rand"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// weightedInstance: one worker, two mutually exclusive tasks (one worker,
// two tasks, both feasible). Task 1 has weight 5 — every weight-aware
// allocator must pick it over the closer task 0.
func weightedInstance() *model.Instance {
	return &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0}, // weight 1, at distance 0
			{ID: 1, Loc: geo.Pt(3, 0), Start: 0, Wait: 100, Requires: 0, Weight: 5},
		},
	}
}

func TestWeightedGreedyPicksHeavyTask(t *testing.T) {
	in := weightedInstance()
	b := NewStaticBatch(in)
	a := NewGreedy().Assign(b)
	if a.Size() != 1 || a.Pairs[0].Task != 1 {
		t.Fatalf("greedy = %v, want heavy t1", a)
	}
	if got := a.WeightSum(in); got != 5 {
		t.Errorf("WeightSum = %v", got)
	}
}

func TestWeightedDFSAndDPPickHeavyTask(t *testing.T) {
	in := weightedInstance()
	b := NewStaticBatch(in)
	if a := NewDFS(DFSOptions{}).Assign(b); a.WeightSum(in) != 5 {
		t.Errorf("DFS = %v", a)
	}
	a, ok := NewExactDP().AssignExact(b)
	if !ok || a.WeightSum(in) != 5 {
		t.Errorf("DP = %v ok=%v", a, ok)
	}
}

func TestWeightedGamePrefersHeavyTask(t *testing.T) {
	in := weightedInstance()
	b := NewStaticBatch(in)
	a := NewGame(GameOptions{Seed: 1}).Assign(b)
	if a.Size() != 1 || a.Pairs[0].Task != 1 {
		t.Fatalf("game = %v, want heavy t1", a)
	}
}

// TestWeightedChainVsHeavySingle: with two workers, a weight-3+3 chain and
// a weight-5 single, the optimum staffs t0 and the independent t2 (weight
// 8). Greedy commits the heaviest associative set {t0,t1} (weight 6) first
// and ends at 6 — inside the (1−1/e) bound, a textbook illustration of its
// suboptimality.
func TestWeightedChainVsHeavySingle(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0, Weight: 3},
			{ID: 1, Start: 0, Wait: 100, Requires: 0, Weight: 3, Deps: []model.TaskID{0}},
			{ID: 2, Start: 0, Wait: 100, Requires: 0, Weight: 5},
		},
	}
	b := NewStaticBatch(in)
	opt := NewDFS(DFSOptions{}).Assign(b)
	if got := opt.WeightSum(in); got != 8 {
		t.Fatalf("optimal weight = %v, want 8 (t0 + t2)", got)
	}
	gr := NewGreedy().Assign(b)
	if got := gr.WeightSum(in); got != 6 {
		t.Errorf("greedy weight = %v, want 6 — the heaviest-set-first choice (%v)", got, gr)
	}
	if got := gr.WeightSum(in); got < (1-1/math.E)*8-1e-9 {
		t.Errorf("greedy weight %v below the (1−1/e) bound", got)
	}
}

// TestWeightedExactSolversAgree: on random weighted instances the two
// independent exact solvers must report the same optimal weight.
func TestWeightedExactSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 2+rng.Intn(5), 2+rng.Intn(8), 3, true)
		for i := range in.Tasks {
			in.Tasks[i].Weight = float64(1 + rng.Intn(5))
		}
		b := NewStaticBatch(in)
		dfs := NewDFS(DFSOptions{})
		aDFS := dfs.Assign(b)
		if !dfs.Exact() {
			t.Fatalf("trial %d: DFS truncated", trial)
		}
		aDP, ok := NewExactDP().AssignExact(b)
		if !ok {
			t.Fatalf("trial %d: DP over limit", trial)
		}
		if math.Abs(aDFS.WeightSum(in)-aDP.WeightSum(in)) > 1e-9 {
			t.Fatalf("trial %d: DFS weight %v != DP weight %v",
				trial, aDFS.WeightSum(in), aDP.WeightSum(in))
		}
		validateBatchAssignment(t, b, aDFS)
		validateBatchAssignment(t, b, aDP)
	}
}

// TestUnitWeightsPreservePaperBehaviour: with all weights at the default,
// WeightSum == Size and allocation results are unchanged relative to an
// explicit weight of 1.
func TestUnitWeightsPreservePaperBehaviour(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	a := NewGreedy().Assign(b)
	if a.WeightSum(in) != float64(a.Size()) {
		t.Errorf("unit WeightSum %v != Size %d", a.WeightSum(in), a.Size())
	}
	in2 := model.Example1()
	for i := range in2.Tasks {
		in2.Tasks[i].Weight = 1
	}
	a2 := NewGreedy().Assign(NewStaticBatch(in2))
	if a.String() != a2.String() {
		t.Errorf("explicit unit weights changed the result: %v vs %v", a, a2)
	}
}

func TestEffWeight(t *testing.T) {
	if (&model.Task{}).EffWeight() != 1 {
		t.Error("zero weight should default to 1")
	}
	if (&model.Task{Weight: -3}).EffWeight() != 1 {
		t.Error("negative weight should default to 1")
	}
	if (&model.Task{Weight: 2.5}).EffWeight() != 2.5 {
		t.Error("positive weight ignored")
	}
}
