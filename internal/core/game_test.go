package core

import (
	"math"
	"math/rand"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

func TestGameExample1(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	for _, g := range []*Game{
		NewGame(GameOptions{Seed: 1}),
		NewGame(GameOptions{Seed: 1, Threshold: 0.05}),
		NewGame(GameOptions{Seed: 1, GreedyInit: true}),
	} {
		a, trace := g.AssignTraced(b)
		validateBatchAssignment(t, b, a)
		if a.Size() != 3 {
			t.Errorf("%s score = %d, want 3 (%v)", g.Name(), a.Size(), a)
		}
		if !trace.Converged {
			t.Errorf("%s did not converge in %d rounds", g.Name(), trace.Rounds)
		}
	}
}

func TestGameNames(t *testing.T) {
	if got := NewGame(GameOptions{}).Name(); got != NameGame {
		t.Errorf("Name = %q", got)
	}
	if got := NewGame(GameOptions{Threshold: 0.05}).Name(); got != NameGame5 {
		t.Errorf("Name = %q", got)
	}
	if got := NewGame(GameOptions{GreedyInit: true}).Name(); got != NameGG {
		t.Errorf("Name = %q", got)
	}
}

func TestGameDefaultsApplied(t *testing.T) {
	g := NewGame(GameOptions{Alpha: 0.5, Threshold: -1})
	if g.Options().Alpha != 10 || g.Options().Threshold != 0 {
		t.Errorf("defaults not applied: %+v", g.Options())
	}
}

// randomInstance builds a seeded random instance with optional dependencies.
func randomInstance(rng *rand.Rand, nWorkers, nTasks, nSkills int, withDeps bool) *model.Instance {
	in := &model.Instance{SkillUniverse: nSkills}
	for i := 0; i < nWorkers; i++ {
		skills := model.NewSkillSet(model.Skill(rng.Intn(nSkills)))
		if rng.Float64() < 0.5 {
			skills.Add(model.Skill(rng.Intn(nSkills)))
		}
		in.Workers = append(in.Workers, model.Worker{
			ID:  model.WorkerID(i),
			Loc: geo.Pt(rng.Float64(), rng.Float64()),
			// Everyone overlaps in time; spatial/skill constraints bite.
			Start: 0, Wait: 100,
			Velocity: 0.05 + rng.Float64()*0.05,
			MaxDist:  0.3 + rng.Float64()*0.4,
			Skills:   skills,
		})
	}
	for i := 0; i < nTasks; i++ {
		t := model.Task{
			ID:       model.TaskID(i),
			Loc:      geo.Pt(rng.Float64(), rng.Float64()),
			Start:    0,
			Wait:     20 + rng.Float64()*30,
			Requires: model.Skill(rng.Intn(nSkills)),
		}
		if withDeps && i > 0 && rng.Float64() < 0.4 {
			// Depend on a random earlier task plus its closure.
			d := model.TaskID(rng.Intn(i))
			seen := map[model.TaskID]bool{d: true}
			for _, dd := range in.Tasks[d].Deps {
				seen[dd] = true
			}
			for id := range seen {
				t.Deps = append(t.Deps, id)
			}
		}
		in.Tasks = append(in.Tasks, t)
	}
	return in
}

func TestGameAlwaysValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 3+rng.Intn(12), 3+rng.Intn(15), 4, true)
		b := NewStaticBatch(in)
		for _, name := range AllNames() {
			alloc, err := NewByName(name, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			// Baselines return raw assignments; their valid subset must
			// satisfy every constraint like the approaches' output does.
			a := DependencyFixpoint(b, alloc.Assign(b))
			validateBatchAssignment(t, b, a)
		}
	}
}

func TestGameConvergesWithinPaperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 20, 25, 5, true)
		b := NewStaticBatch(in)
		g := NewGame(GameOptions{Seed: int64(trial)})
		_, trace := g.AssignTraced(b)
		if !trace.Converged {
			t.Errorf("trial %d: no convergence in %d rounds", trial, trace.Rounds)
		}
	}
}

// TestExactPotentialIdentity verifies Theorem IV.1's identity
// U_w(s) − U_w(s') = Φ(s) − Φ(s') for unilateral deviations on
// dependency-free instances, where the congestion-game potential is exact.
func TestExactPotentialIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(rng, 2+rng.Intn(10), 2+rng.Intn(10), 3, false)
		b := NewStaticBatch(in)
		gs := newGameState(b, 10)
		strategies := b.StrategySets()
		// Random initial profile.
		for wi := range b.Workers {
			if s := strategies[wi]; len(s) > 0 {
				gs.move(wi, s[rng.Intn(len(s))])
			}
		}
		// Random unilateral deviations.
		for dev := 0; dev < 20; dev++ {
			wi := rng.Intn(len(b.Workers))
			set := strategies[wi]
			if len(set) == 0 {
				continue
			}
			cur := gs.strategy[wi]
			next := set[rng.Intn(len(set))]
			if next == cur {
				continue
			}
			uBefore := gs.utility(cur, cur)
			uAfter := gs.utility(next, cur)
			phiBefore := gs.potential()
			gs.move(wi, next)
			phiAfter := gs.potential()
			if math.Abs((uAfter-uBefore)-(phiAfter-phiBefore)) > 1e-9 {
				t.Fatalf("trial %d dev %d: ΔU=%v ΔΦ=%v",
					trial, dev, uAfter-uBefore, phiAfter-phiBefore)
			}
		}
	}
}

// TestPotentialNonDecreasingUnderBestResponse: along the executed
// best-response dynamic on dependency-free instances, Φ never decreases.
func TestPotentialNonDecreasingUnderBestResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 10, 12, 3, false)
		b := NewStaticBatch(in)
		gs := newGameState(b, 10)
		strategies := b.StrategySets()
		for wi := range b.Workers {
			if s := strategies[wi]; len(s) > 0 {
				gs.move(wi, s[rng.Intn(len(s))])
			}
		}
		prev := gs.potential()
		for round := 0; round < 30; round++ {
			changed := false
			for wi := range b.Workers {
				set := strategies[wi]
				if len(set) == 0 {
					continue
				}
				cur := gs.strategy[wi]
				bestTi, bestU := cur, gs.utility(cur, cur)
				for _, ti := range set {
					if u := gs.utility(ti, cur); u > bestU+utilityEps {
						bestU, bestTi = u, ti
					}
				}
				if bestTi != cur {
					gs.move(wi, bestTi)
					changed = true
					now := gs.potential()
					if now < prev-1e-9 {
						t.Fatalf("trial %d: potential decreased %v → %v", trial, prev, now)
					}
					prev = now
				}
			}
			if !changed {
				break
			}
		}
	}
}

// TestTotalUtilityMatchesScore: with single claimants and no dependencies,
// ΣU equals the number of claimed tasks (the paper's observation
// Sum(M) = Σ_w U_w).
func TestTotalUtilityMatchesScore(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(1)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 10, Requires: 0},
			{ID: 1, Start: 0, Wait: 10, Requires: 1},
		},
	}
	b := NewStaticBatch(in)
	gs := newGameState(b, 10)
	gs.move(0, 0)
	gs.move(1, 1)
	if got := gs.totalUtility(); math.Abs(got-2) > 1e-12 {
		t.Errorf("total utility = %v, want 2", got)
	}
}

// TestUtilitySharing: two claimants on one root task share its unit value.
func TestUtilitySharing(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{{ID: 0, Start: 0, Wait: 10, Requires: 0}},
	}
	b := NewStaticBatch(in)
	gs := newGameState(b, 10)
	gs.move(0, 0)
	gs.move(1, 0)
	if got := gs.utility(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("shared utility = %v, want 0.5", got)
	}
}

// TestUtilityDependencyBonus: Equation 3's second term rewards claiming a
// task that live dependants depend on.
func TestUtilityDependencyBonus(t *testing.T) {
	alpha := 10.0
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(1)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 10, Requires: 0},
			{ID: 1, Start: 0, Wait: 10, Requires: 1, Deps: []model.TaskID{0}},
		},
	}
	b := NewStaticBatch(in)
	gs := newGameState(b, alpha)
	gs.move(0, 0) // w0 claims the root t0
	gs.move(1, 1) // w1 claims the dependant t1
	// w0: Utility_Self 1/1 (root) + bonus ∏a/(α·|D_1|·nw_0) = 1/(10·1·1).
	if got, want := gs.utility(0, 0), 1+1/(alpha*1*1); math.Abs(got-want) > 1e-12 {
		t.Errorf("root utility = %v, want %v", got, want)
	}
	// w1: deps live → (α−1)/(α·1); no dependants.
	if got, want := gs.utility(1, 1), (alpha-1)/alpha; math.Abs(got-want) > 1e-12 {
		t.Errorf("dependant utility = %v, want %v", got, want)
	}
	// If w0 abandons t0, t1's self-utility collapses to 0.
	gs.move(0, -1)
	if got := gs.utility(1, 1); got != 0 {
		t.Errorf("utility with dead dependency = %v, want 0", got)
	}
}

func TestGameThresholdTerminatesEarlier(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	in := randomInstance(rng, 60, 80, 5, true)
	b := NewStaticBatch(in)
	_, strict := NewGame(GameOptions{Seed: 9}).AssignTraced(b)
	_, loose := NewGame(GameOptions{Seed: 9, Threshold: 0.10}).AssignTraced(b)
	if loose.Rounds > strict.Rounds {
		t.Errorf("threshold 10%% used more rounds (%d) than strict (%d)", loose.Rounds, strict.Rounds)
	}
}

func TestGameEmptyAndNoStrategies(t *testing.T) {
	// No feasible pairs at all: skill mismatch everywhere.
	in := &model.Instance{
		Workers: []model.Worker{{ID: 0, Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: model.NewSkillSet(5)}},
		Tasks:   []model.Task{{ID: 0, Start: 0, Wait: 10, Requires: 0}},
	}
	b := NewStaticBatch(in)
	a, trace := NewGame(GameOptions{Seed: 1}).AssignTraced(b)
	if a.Size() != 0 || trace.Rounds != 0 {
		t.Errorf("no-strategy game: %v, %+v", a, trace)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range append(AllNames(), NameDFS) {
		alloc, err := NewByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alloc.Name() != name {
			t.Errorf("NewByName(%q).Name() = %q", name, alloc.Name())
		}
	}
	if _, err := NewByName("bogus", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGameShuffleOrderDeterministicAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	in := randomInstance(rng, 15, 20, 4, true)
	b := NewStaticBatch(in)
	g := NewGame(GameOptions{Seed: 5, ShuffleOrder: true})
	a1, tr := g.AssignTraced(b)
	validateBatchAssignment(t, b, a1)
	if !tr.Converged {
		t.Errorf("shuffled game did not converge in %d rounds", tr.Rounds)
	}
	a2, _ := NewGame(GameOptions{Seed: 5, ShuffleOrder: true}).AssignTraced(b)
	if a1.String() != a2.String() {
		t.Error("shuffled game not deterministic per seed")
	}
}
