package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// BatchIndex is the batch-scoped candidate engine: it computes every
// worker's strategy set S_w and every task's candidate-worker list for one
// batch in a single pass, replacing the O(n_b·m_b) feasibility scans that
// every allocator round used to rebuild.
//
// Three ideas combine:
//
//   - Skill buckets: pending tasks are grouped by required skill, so a
//     worker only ever examines tasks whose skill it holds (the per-skill
//     inverted list of model.CandidateIndex, rebuilt over the batch's
//     pending subset).
//   - Spatial pruning: when the batch metric admits a Euclidean lower bound
//     (geo.EuclideanBoundScale), a geo.GridIndex over the pending task
//     locations answers "which tasks are within this worker's remaining
//     distance budget" as a radius query from the worker's *current*
//     location — the mid-simulation generalisation of the static index.
//     Whichever of the two prunings promises the smaller candidate pool is
//     used per worker; both finish with the exact model.FeasibleFrom
//     predicate, so the choice never changes the result.
//   - Travel-time memoization: the travel time of every feasible
//     (worker, task) pair is computed once, next to the feasibility check
//     that needed the distance anyway, and served to Greedy's Hungarian
//     cost rows and the baselines from the index.
//
// Construction fans out across a runtime.NumCPU()-bounded worker pool; each
// goroutine owns a disjoint range of per-worker result slots, so the output
// is deterministic and identical to the serial build.
type BatchIndex struct {
	b *Batch

	// strategies[wi] lists the pending-task indexes worker wi can feasibly
	// take, ascending; costs[wi] holds the aligned travel times.
	strategies [][]int32
	costs      [][]float64
	// candidates[ti] lists the batch worker indexes that can feasibly take
	// pending task ti, ascending.
	candidates [][]int32
}

// minParallelWorkers gates the goroutine fan-out: below this many batch
// workers the pool's setup cost exceeds the scan it parallelises.
const minParallelWorkers = 64

// buildChunk is how many workers a pool goroutine claims per atomic
// increment.
const buildChunk = 16

// newBatchIndex builds the engine for one batch with a
// runtime.NumCPU()-bounded worker pool. Cost: O(Σ_w pool_w) exact
// feasibility checks, where pool_w is the pruned candidate pool of worker w.
func newBatchIndex(b *Batch) *BatchIndex {
	return newBatchIndexN(b, runtime.NumCPU())
}

// newBatchIndexN is newBatchIndex with an explicit pool bound, so tests can
// force the concurrent path on any machine.
func newBatchIndexN(b *Batch, procs int) *BatchIndex {
	idx := &BatchIndex{
		b:          b,
		strategies: make([][]int32, len(b.Workers)),
		costs:      make([][]float64, len(b.Workers)),
		candidates: make([][]int32, len(b.Tasks)),
	}
	if len(b.Workers) == 0 || len(b.Tasks) == 0 {
		return idx
	}

	// Skill buckets over the pending tasks. Each task has exactly one
	// required skill, so the buckets partition the batch.
	bySkill := make(map[model.Skill][]int32)
	for ti, t := range b.Tasks {
		bySkill[t.Requires] = append(bySkill[t.Requires], int32(ti))
	}

	// Spatial grid over the pending task locations, when the metric allows
	// Euclidean pruning. boxScale converts a metric radius into a Euclidean
	// one; gridDensity estimates how many tasks an average unit-area disc
	// would return, for the per-worker pruning choice.
	var grid *geo.GridIndex
	var boxScale, gridDensity float64
	if scale, ok := geo.EuclideanBoundScale(b.In.Dist); ok {
		box := pendingBBox(b)
		grid = geo.NewGridIndex(box, len(b.Tasks)+1)
		for ti, t := range b.Tasks {
			grid.Insert(ti, t.Loc)
		}
		boxScale = scale
		area := box.Width() * box.Height()
		if area <= 0 {
			area = 1e-18
		}
		gridDensity = float64(len(b.Tasks)) / area
	}

	build := func(wi int, sc *buildScratch) {
		bw := &b.Workers[wi]
		sc.set = sc.set[:0]
		sc.costs = sc.costs[:0]
		examined := 0
		appendFeasible := func(ti int32) {
			examined++
			t := b.Tasks[ti]
			if model.FeasibleFrom(bw.W, bw.Loc, bw.ReadyAt, bw.DistBudget, t, b.dist) {
				sc.set = append(sc.set, ti)
				sc.costs = append(sc.costs, bw.W.TravelTime(bw.Loc, t.Loc, b.dist))
			}
		}
		// Size of the skill-bucket pool for this worker.
		skillPool := 0
		for _, sk := range bw.W.Skills.Skills() {
			skillPool += len(bySkill[sk])
		}
		// Expected size of the radius-query pool: disc area × task density,
		// capped at the batch size.
		useGrid := false
		if grid != nil {
			r := boxScale * (bw.DistBudget + model.DistEps)
			discPool := math.Pi * r * r * gridDensity
			if discPool > float64(len(b.Tasks)) {
				discPool = float64(len(b.Tasks))
			}
			useGrid = discPool < float64(skillPool)
		}
		if useGrid {
			sc.grid = grid.Within(bw.Loc, boxScale*(bw.DistBudget+model.DistEps), sc.grid[:0])
			sort.Ints(sc.grid)
			for _, ti := range sc.grid {
				if bw.W.Skills.Has(b.Tasks[ti].Requires) {
					appendFeasible(int32(ti))
				}
			}
		} else {
			for _, sk := range bw.W.Skills.Skills() {
				for _, ti := range bySkill[sk] {
					appendFeasible(ti)
				}
			}
			// Buckets of different skills interleave task indexes.
			sc.sortStrategy()
		}
		// Two nil-safe recorder calls per worker (not per pair): the counts
		// accumulate locally above, so the disabled path costs two nil
		// checks per worker.
		b.rec.AddExamined(int64(examined))
		b.rec.AddAdmitted(int64(len(sc.set)))
		idx.strategies[wi] = sc.ints.carve(sc.set)
		idx.costs[wi] = sc.floats.carve(sc.costs)
	}

	nw := len(b.Workers)
	if procs > (nw+buildChunk-1)/buildChunk {
		procs = (nw + buildChunk - 1) / buildChunk
	}
	if nw < minParallelWorkers || procs <= 1 {
		var sc buildScratch
		for wi := 0; wi < nw; wi++ {
			build(wi, &sc)
		}
		sc.flushArena(b)
	} else {
		scs := make([]buildScratch, procs)
		var next atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(sc *buildScratch) {
				defer wg.Done()
				for {
					lo := int(next.Add(buildChunk)) - buildChunk
					if lo >= nw {
						return
					}
					hi := lo + buildChunk
					if hi > nw {
						hi = nw
					}
					for wi := lo; wi < hi; wi++ {
						build(wi, sc)
					}
				}
			}(&scs[p])
		}
		wg.Wait()
		for p := range scs {
			scs[p].flushArena(b)
		}
	}

	idx.invertStrategies()
	return idx
}

// invertStrategies derives the per-task candidate lists from the strategy
// sets. Iterating workers ascending keeps every list ascending without a
// sort. Shared by the from-scratch build and the incremental EngineCache
// build so both produce structurally identical indexes. All lists are
// carved out of one backing array sized by the exact per-task counts, so
// the inversion costs two allocations, not one per task.
func (idx *BatchIndex) invertStrategies() {
	counts := make([]int32, len(idx.candidates))
	total := 0
	for wi := range idx.strategies {
		for _, ti := range idx.strategies[wi] {
			counts[ti]++
		}
		total += len(idx.strategies[wi])
	}
	backing := make([]int32, total)
	off := 0
	for ti, n := range counts {
		if n > 0 {
			idx.candidates[ti] = backing[off : off : off+int(n)]
			off += int(n)
		}
	}
	for wi := range idx.strategies {
		for _, ti := range idx.strategies[wi] {
			idx.candidates[ti] = append(idx.candidates[ti], int32(wi))
		}
	}
}

// pendingBBox returns a box covering the batch's pending task locations.
func pendingBBox(b *Batch) geo.BBox {
	box := geo.BBox{Min: b.Tasks[0].Loc, Max: b.Tasks[0].Loc}
	for _, t := range b.Tasks[1:] {
		p := t.Loc
		if p.X < box.Min.X {
			box.Min.X = p.X
		}
		if p.Y < box.Min.Y {
			box.Min.Y = p.Y
		}
		if p.X > box.Max.X {
			box.Max.X = p.X
		}
		if p.Y > box.Max.Y {
			box.Max.Y = p.Y
		}
	}
	return box
}

// strategyByIndex sorts a strategy set ascending by task index, keeping the
// cost slice aligned. The methods take a pointer receiver so a scratch-held
// instance converts to sort.Interface without boxing a fresh value per
// worker (sortStrategyByIndex is the single conversion site).
type strategyByIndex struct {
	set   []int32
	costs []float64
}

func (s *strategyByIndex) Len() int           { return len(s.set) }
func (s *strategyByIndex) Less(i, j int) bool { return s.set[i] < s.set[j] }
func (s *strategyByIndex) Swap(i, j int) {
	s.set[i], s.set[j] = s.set[j], s.set[i]
	s.costs[i], s.costs[j] = s.costs[j], s.costs[i]
}

func sortStrategyByIndex(s *strategyByIndex) { sort.Sort(s) }

// StrategySet returns worker wi's feasible pending-task indexes, ascending.
// The slice is shared with the index — callers must not mutate it.
func (idx *BatchIndex) StrategySet(wi int) []int32 { return idx.strategies[wi] }

// CandidateSet returns the batch worker indexes that can feasibly take
// pending task ti, ascending. The slice is shared — callers must not mutate
// it.
func (idx *BatchIndex) CandidateSet(ti int) []int32 { return idx.candidates[ti] }

// TravelCost returns the travel time for batch worker wi to reach pending
// task ti, served from the memo for feasible pairs and computed directly
// otherwise.
func (idx *BatchIndex) TravelCost(wi, ti int) float64 {
	set := idx.strategies[wi]
	lo, hi := 0, len(set)
	for lo < hi {
		mid := (lo + hi) / 2
		if set[mid] < int32(ti) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(set) && set[lo] == int32(ti) {
		idx.b.rec.AddMemoHits(1)
		return idx.costs[wi][lo]
	}
	idx.b.rec.AddMemoMisses(1)
	return idx.b.TravelCost(wi, idx.b.Tasks[ti])
}

// FeasiblePairs returns the number of feasible (worker, task) pairs the
// index holds — the size of the bipartite candidacy graph.
func (idx *BatchIndex) FeasiblePairs() int {
	n := 0
	for _, s := range idx.strategies {
		n += len(s)
	}
	return n
}

// VerifyIndex rebuilds the batch's candidate engine from scratch and returns
// a description of the first divergence from the installed index, or nil.
// It is the differential cross-check for incrementally maintained indexes
// (EngineCache), the same pattern ScanStrategySets provides for the pruned
// single-batch build: the incremental and from-scratch engines must agree
// exactly — sets, memoized costs, and candidate lists.
func (b *Batch) VerifyIndex() error {
	got := b.Index()
	// The reference rebuild is bookkeeping, not batch work: hide the
	// recorder so verification doesn't double-count the build.
	saved := b.rec
	b.rec = nil
	want := newBatchIndex(b)
	b.rec = saved
	for wi := range want.strategies {
		if !int32SlicesEqual(got.strategies[wi], want.strategies[wi]) {
			return fmt.Errorf("core: worker %d strategy set diverges: incremental %v, fresh %v",
				wi, got.strategies[wi], want.strategies[wi])
		}
		if !float64SlicesEqual(got.costs[wi], want.costs[wi]) {
			return fmt.Errorf("core: worker %d travel-cost memo diverges: incremental %v, fresh %v",
				wi, got.costs[wi], want.costs[wi])
		}
	}
	for ti := range want.candidates {
		if !int32SlicesEqual(got.candidates[ti], want.candidates[ti]) {
			return fmt.Errorf("core: task %d candidate list diverges: incremental %v, fresh %v",
				ti, got.candidates[ti], want.candidates[ti])
		}
	}
	return nil
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// float64SlicesEqual compares bit-for-bit (the incremental build memoizes
// the exact floats the fresh build computes; no tolerance is needed).
func float64SlicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
