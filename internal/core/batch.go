// Package core implements the paper's contribution: the batch-based DA-SC
// allocators. DASC_Greedy (Algorithm 1) commits the largest fully-staffable
// associative task set per round; DASC_Game (Algorithm 3) runs a
// best-response dynamic over an exact potential game with the utility of
// Equation 3; Closest and Random are the paper's dependency-oblivious
// baselines; DFS is the exact branch-and-bound used as ground truth on
// small instances (Table VI).
//
// All allocators consume a Batch — the workers and tasks active in one batch
// process b — and produce a model.Assignment that satisfies all four
// constraints of Definition 3.
package core

import (
	"math/rand"
	"sort"
	"sync"

	"dasc/internal/geo"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// BatchWorker is a worker's state at the start of a batch. In the static
// single-batch setting it mirrors the worker's declared parameters; the
// simulator overrides location, readiness and remaining distance budget as
// the worker travels and completes tasks.
type BatchWorker struct {
	W          *model.Worker
	Loc        geo.Point // current location
	ReadyAt    float64   // earliest time the worker can start moving
	DistBudget float64   // remaining maximum moving distance
}

// Batch is the input of one batch process: the active workers W_b, the
// pending tasks T_b, and the set of tasks whose dependency obligations are
// already met by earlier batches.
type Batch struct {
	In      *model.Instance
	Workers []BatchWorker
	Tasks   []*model.Task
	// Satisfied marks tasks assigned or completed in earlier batches; a
	// dependency on such a task is considered met.
	Satisfied map[model.TaskID]bool

	dist    geo.DistanceFunc
	pending map[model.TaskID]int   // task ID -> index into Tasks
	widx    map[model.WorkerID]int // worker ID -> index into Workers

	idxOnce sync.Once
	idx     *BatchIndex

	// wire is the game's dependency wiring (see utility.go), built once per
	// batch like the candidate index: it depends only on Tasks and Satisfied,
	// so every best-response run over this batch shares it read-only.
	wireOnce sync.Once
	wire     *gameWiring

	// rec observes the batch's candidate-engine work (obs.BatchRec is
	// nil-safe, so the instrumented paths call it unconditionally; nil is
	// the disabled state and costs one nil check per site).
	rec *obs.BatchRec
}

// NewStaticBatch wraps a whole instance as a single batch, the setting of
// the paper's per-batch analysis and of the small-scale experiment: every
// worker at its declared location with its full budget.
func NewStaticBatch(in *model.Instance) *Batch {
	b := &Batch{
		In:        in,
		Satisfied: make(map[model.TaskID]bool),
	}
	for i := range in.Workers {
		w := &in.Workers[i]
		b.Workers = append(b.Workers, BatchWorker{
			W: w, Loc: w.Loc, ReadyAt: w.Start, DistBudget: w.MaxDist,
		})
	}
	for i := range in.Tasks {
		b.Tasks = append(b.Tasks, &in.Tasks[i])
	}
	b.init()
	return b
}

// NewBatch assembles a batch from explicit worker states and task pointers.
// satisfied may be nil.
func NewBatch(in *model.Instance, workers []BatchWorker, tasks []*model.Task, satisfied map[model.TaskID]bool) *Batch {
	if satisfied == nil {
		satisfied = make(map[model.TaskID]bool)
	}
	b := &Batch{In: in, Workers: workers, Tasks: tasks, Satisfied: satisfied}
	b.init()
	return b
}

func (b *Batch) init() {
	b.dist = b.In.Distance()
	b.pending = make(map[model.TaskID]int, len(b.Tasks))
	for i, t := range b.Tasks {
		b.pending[t.ID] = i
	}
	b.widx = make(map[model.WorkerID]int, len(b.Workers))
	for i := range b.Workers {
		b.widx[b.Workers[i].W.ID] = i
	}
}

// Dist returns the batch's travel metric.
func (b *Batch) Dist() geo.DistanceFunc { return b.dist }

// SetRecorder installs the batch's instrumentation recorder; nil disables
// recording. Install it before the candidate engine is built (Index or
// EngineCache.Attach) or the build's counters are lost.
func (b *Batch) SetRecorder(r *obs.BatchRec) { b.rec = r }

// Recorder returns the batch's instrumentation recorder, possibly nil.
func (b *Batch) Recorder() *obs.BatchRec { return b.rec }

// TaskIndex returns the index of task id within b.Tasks, or -1 when the task
// is not pending in this batch.
func (b *Batch) TaskIndex(id model.TaskID) int {
	if i, ok := b.pending[id]; ok {
		return i
	}
	return -1
}

// WorkerIndex returns the index of worker id within b.Workers, or -1 when the
// worker is not active in this batch. Dispatch loops must use the -1 signal
// instead of a bare map lookup: a zero-value miss would silently resolve to
// batch worker 0.
func (b *Batch) WorkerIndex(id model.WorkerID) int {
	if i, ok := b.widx[id]; ok {
		return i
	}
	return -1
}

// DropUnknownWorkers removes from m every pair naming a worker that is not
// active in this batch and returns how many were dropped. Allocators are
// contractually bound to b.Workers, but a misbehaving custom implementation
// used to slip through: the platforms' worker-ID lookup resolved unknown IDs
// to batch index 0 and silently corrupted worker 0's state. The platforms
// call this right after Assign so scoring and dispatch see only real pairs.
func DropUnknownWorkers(b *Batch, m *model.Assignment) int {
	kept := m.Pairs[:0]
	for _, p := range m.Pairs {
		if b.WorkerIndex(p.Worker) >= 0 {
			kept = append(kept, p)
		}
	}
	dropped := len(m.Pairs) - len(kept)
	m.Pairs = kept
	return dropped
}

// Feasible reports whether batch worker wi can take task t under the skill,
// deadline and distance constraints, from its current state.
func (b *Batch) Feasible(wi int, t *model.Task) bool {
	bw := &b.Workers[wi]
	return model.FeasibleFrom(bw.W, bw.Loc, bw.ReadyAt, bw.DistBudget, t, b.dist)
}

// TravelCost returns the travel time for batch worker wi to reach t,
// the cost the greedy Hungarian matching minimises.
func (b *Batch) TravelCost(wi int, t *model.Task) float64 {
	bw := &b.Workers[wi]
	return bw.W.TravelTime(bw.Loc, t.Loc, b.dist)
}

// Index returns the batch's candidate engine, building it on first use. The
// build is parallel internally but the returned index is immutable, so every
// allocator stage reads it without synchronisation.
func (b *Batch) Index() *BatchIndex {
	b.idxOnce.Do(func() { b.idx = newBatchIndex(b) })
	return b.idx
}

// StrategySets computes S_w for every batch worker: the pending tasks the
// worker can feasibly take, as indexes into b.Tasks, ascending. Served from
// the candidate engine; ScanStrategySets is the brute-force cross-check.
func (b *Batch) StrategySets() [][]int {
	idx := b.Index()
	out := make([][]int, len(b.Workers))
	for wi := range b.Workers {
		set := idx.StrategySet(wi)
		if len(set) == 0 {
			continue
		}
		s := make([]int, len(set))
		for i, ti := range set {
			s[i] = int(ti)
		}
		out[wi] = s
	}
	return out
}

// ScanStrategySets computes the strategy sets by the original full
// worker×task feasibility scan. It is the differential cross-check (and
// benchmark baseline) for the indexed path; both must agree exactly.
func (b *Batch) ScanStrategySets() [][]int {
	out := make([][]int, len(b.Workers))
	for wi := range b.Workers {
		var set []int
		for ti, t := range b.Tasks {
			if b.Feasible(wi, t) {
				set = append(set, ti)
			}
		}
		out[wi] = set
	}
	return out
}

// CandidateWorkers returns, ascending, the batch worker indexes that can
// feasibly take task t. Pending tasks are served from the candidate engine;
// a task outside the batch falls back to the scan.
func (b *Batch) CandidateWorkers(t *model.Task) []int {
	ti := b.TaskIndex(t.ID)
	if ti < 0 || b.Tasks[ti] != t {
		return b.ScanCandidateWorkers(t)
	}
	set := b.Index().CandidateSet(ti)
	if len(set) == 0 {
		return nil
	}
	out := make([]int, len(set))
	for i, wi := range set {
		out[i] = int(wi)
	}
	return out
}

// ScanCandidateWorkers computes a task's candidate workers by the original
// full scan — the cross-check twin of ScanStrategySets.
func (b *Batch) ScanCandidateWorkers(t *model.Task) []int {
	var out []int
	for wi := range b.Workers {
		if b.Feasible(wi, t) {
			out = append(out, wi)
		}
	}
	return out
}

// DepSatisfiable reports whether every dependency of t is either already
// satisfied or pending in this batch (so it could be co-assigned).
func (b *Batch) DepSatisfiable(t *model.Task) bool {
	for _, d := range t.Deps {
		if b.Satisfied[d] {
			continue
		}
		if _, ok := b.pending[d]; !ok {
			return false
		}
	}
	return true
}

// shuffledIndexes returns 0..n-1 in a seeded random order.
func shuffledIndexes(n int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

// sortedTaskIDs returns the IDs of the given task indexes, ascending.
func (b *Batch) sortedTaskIDs(idxs []int) []model.TaskID {
	ids := make([]model.TaskID, len(idxs))
	for i, ti := range idxs {
		ids[i] = b.Tasks[ti].ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
