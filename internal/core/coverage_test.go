package core

import (
	"math/rand"
	"testing"

	"dasc/internal/model"
)

// TestGreedyCandidateTrimmingPreservesScore: shrinking the Hungarian column
// budget must never change the score (feasibility is guaranteed by the HK
// matching's own workers), only possibly the travel cost.
func TestGreedyCandidateTrimmingPreservesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 6+rng.Intn(10), 6+rng.Intn(10), 3, true)
		b := NewStaticBatch(in)
		wide := NewGreedyOpt(GreedyOptions{MaxCandidatesPerTask: 64}).Assign(b)
		tight := NewGreedyOpt(GreedyOptions{MaxCandidatesPerTask: 1}).Assign(b)
		validateBatchAssignment(t, b, tight)
		if wide.Size() != tight.Size() {
			t.Fatalf("trial %d: trimming changed score %d → %d", trial, wide.Size(), tight.Size())
		}
	}
}

// TestGreedyMinimisesTravelWithinCommit: on a two-worker, one-task instance
// the Hungarian staffing must pick the nearer worker.
func TestGreedyMinimisesTravelWithinCommit(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Loc: mustPt(10, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Loc: mustPt(1, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{{ID: 0, Start: 0, Wait: 100, Requires: 0}},
	}
	b := NewStaticBatch(in)
	a := NewGreedy().Assign(b)
	if a.Size() != 1 || a.Pairs[0].Worker != 1 {
		t.Errorf("greedy picked the far worker: %v", a)
	}
	// The feasibility-only matcher may pick either; it must still be valid.
	f := NewGreedyOpt(GreedyOptions{Matcher: MatchFeasible}).Assign(b)
	validateBatchAssignment(t, b, f)
}

func TestGameMaxRoundsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	in := randomInstance(rng, 30, 10, 2, false) // heavy contention
	b := NewStaticBatch(in)
	g := NewGame(GameOptions{Seed: 1, MaxRounds: 1})
	a, trace := g.AssignTraced(b)
	if trace.Rounds != 1 {
		t.Errorf("Rounds = %d, want capped 1", trace.Rounds)
	}
	validateBatchAssignment(t, b, a) // even a truncated run must be valid
	if len(trace.UpdateRatios) != 1 {
		t.Errorf("UpdateRatios = %v", trace.UpdateRatios)
	}
}

func TestGameTraceFields(t *testing.T) {
	b := NewStaticBatch(model.Example1())
	_, trace := NewGame(GameOptions{Seed: 2}).AssignTraced(b)
	if trace.FinalUtility <= 0 {
		t.Errorf("FinalUtility = %v", trace.FinalUtility)
	}
	if !trace.Converged || trace.Rounds == 0 {
		t.Errorf("trace = %+v", trace)
	}
	// Ratios end at (or below) the threshold.
	last := trace.UpdateRatios[len(trace.UpdateRatios)-1]
	if last > 0 {
		t.Errorf("strict game ended with ratio %v", last)
	}
}

func TestStableSortByDesc(t *testing.T) {
	idxs := []int{0, 1, 2, 3}
	key := map[int]float64{0: 1, 1: 3, 2: 3, 3: 2}
	stableSortByDesc(idxs, func(i int) float64 { return key[i] })
	want := []int{1, 2, 3, 0} // ties (1,2) keep index order
	for i := range want {
		if idxs[i] != want[i] {
			t.Fatalf("order = %v", idxs)
		}
	}
}

func TestComputeStatsOnCycle(t *testing.T) {
	in := model.Example1()
	in.Tasks[0].Deps = []model.TaskID{2}
	st := in.ComputeStats()
	if st.CriticalPathLength != 0 {
		t.Errorf("cyclic CriticalPathLength = %d, want 0", st.CriticalPathLength)
	}
	if st.Workers != 3 || st.Tasks != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// TestBaselineRawAssignmentsAreFeasiblePairs: even though the baselines skip
// the dependency constraint, every raw pair must individually satisfy skill,
// deadline and distance.
func TestBaselineRawAssignmentsAreFeasiblePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 8, 10, 3, true)
		b := NewStaticBatch(in)
		for _, alloc := range []Allocator{NewClosest(), NewRandom(int64(trial))} {
			raw := alloc.Assign(b)
			workerSeen := map[model.WorkerID]bool{}
			taskSeen := map[model.TaskID]bool{}
			for _, p := range raw.Pairs {
				if workerSeen[p.Worker] || taskSeen[p.Task] {
					t.Fatalf("%s violated exclusivity", alloc.Name())
				}
				workerSeen[p.Worker] = true
				taskSeen[p.Task] = true
				ti := b.TaskIndex(p.Task)
				wi := -1
				for i := range b.Workers {
					if b.Workers[i].W.ID == p.Worker {
						wi = i
						break
					}
				}
				if !b.Feasible(wi, b.Tasks[ti]) {
					t.Fatalf("%s produced infeasible pair (%d,%d)", alloc.Name(), p.Worker, p.Task)
				}
			}
		}
	}
}
