package core

import "dasc/internal/model"

// DFSOptions configures the exact search.
type DFSOptions struct {
	// MaxNodes caps the number of search-tree nodes expanded; zero means
	// 50 million, enough for the paper's small-scale setting. When the cap
	// is hit the best assignment found so far is returned and Exact()
	// reports false.
	MaxNodes int64
}

// DFS is the paper's exact baseline for small instances (Table VI): a
// depth-first branch-and-bound over per-worker task choices. Each level of
// the search tree is one worker; its children are the worker's feasible
// tasks plus idling. The score of a leaf is the weight of the heaviest
// dependency-consistent sub-assignment, so the search maximises the true
// DA-SC objective (task count under the paper's unit weights).
type DFS struct {
	opt   DFSOptions
	exact bool
}

// NewDFS returns an exact DFS allocator.
func NewDFS(opt DFSOptions) *DFS {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 50_000_000
	}
	return &DFS{opt: opt}
}

// Name implements Allocator.
func (d *DFS) Name() string { return NameDFS }

// Exact reports whether the last Assign call explored the full search space
// (true) or was truncated by MaxNodes (false).
func (d *DFS) Exact() bool { return d.exact }

// Assign implements Allocator.
func (d *DFS) Assign(b *Batch) *model.Assignment {
	strategies := b.StrategySets()
	// Search workers with the fewest options first: small branching near the
	// root makes the bound bite earlier.
	order := make([]int, 0, len(b.Workers))
	for wi := range b.Workers {
		if len(strategies[wi]) > 0 {
			order = append(order, wi)
		}
	}
	stableSortByDesc(order, func(wi int) float64 { return -float64(len(strategies[wi])) })

	maxW := 0.0
	for _, t := range b.Tasks {
		if w := t.EffWeight(); w > maxW {
			maxW = w
		}
	}
	s := &dfsSearch{
		b:          b,
		strategies: strategies,
		order:      order,
		claimed:    make([]bool, len(b.Tasks)),
		choice:     make([]int, len(order)),
		budget:     d.opt.MaxNodes,
		maxWeight:  maxW,
		bestScore:  -1,
	}
	for i := range s.choice {
		s.choice[i] = -1
	}
	s.bestChoice = append([]int(nil), s.choice...)
	s.rec(0, 0)
	d.exact = s.budget > 0

	out := model.NewAssignment()
	for i, wi := range order {
		if ti := s.bestChoice[i]; ti >= 0 {
			out.Add(b.Workers[wi].W.ID, b.Tasks[ti].ID)
		}
	}
	return finishAssignment(b, out)
}

type dfsSearch struct {
	b          *Batch
	strategies [][]int
	order      []int // worker indexes in search order
	claimed    []bool
	choice     []int // current task index per search level, -1 = idle
	bestChoice []int
	bestScore  float64
	maxWeight  float64 // heaviest task weight, for the upper bound
	budget     int64
}

// rec explores level i with `picked` summed weight claimed so far.
func (s *dfsSearch) rec(i int, picked float64) {
	if s.budget <= 0 {
		return
	}
	s.budget--
	// Upper bound: every remaining worker claims a heaviest task and all
	// claims turn out dependency-consistent.
	if picked+float64(len(s.order)-i)*s.maxWeight <= s.bestScore {
		return
	}
	if i == len(s.order) {
		if score := s.leafScore(); score > s.bestScore {
			s.bestScore = score
			s.bestChoice = append([]int(nil), s.choice...)
		}
		return
	}
	wi := s.order[i]
	for _, ti := range s.strategies[wi] {
		if s.claimed[ti] {
			continue
		}
		s.claimed[ti] = true
		s.choice[i] = ti
		s.rec(i+1, picked+s.b.Tasks[ti].EffWeight())
		s.claimed[ti] = false
		s.choice[i] = -1
	}
	// Idle branch.
	s.rec(i+1, picked)
}

// leafScore computes the weight of the heaviest dependency-consistent subset
// of the current claims via the fixpoint filter.
func (s *dfsSearch) leafScore() float64 {
	kept := make(map[model.TaskID]bool)
	for _, ti := range s.choice {
		if ti >= 0 {
			kept[s.b.Tasks[ti].ID] = true
		}
	}
	for {
		removed := false
		for id := range kept {
			t := s.b.In.Task(id)
			for _, dep := range t.Deps {
				if !kept[dep] && !s.b.Satisfied[dep] {
					delete(kept, id)
					removed = true
					break
				}
			}
		}
		if !removed {
			break
		}
	}
	var sum float64
	for id := range kept {
		sum += s.b.In.Task(id).EffWeight()
	}
	return sum
}
