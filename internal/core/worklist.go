package core

import "sync"

// gameWorklist is the incremental bookkeeping of the worklist best-response
// engine (DESIGN.md §3.11).
//
// utility(ti, cur) reads the claim state of readSet(ti) = {ti} ∪ deps(ti) ∪
// dependants(ti) ∪ deps(dependants(ti)) — but almost all of those reads are
// liveness booleans, not raw counts. Exhaustively:
//
//   - exact counts of ti and cur only (the 1/nw share and the deviation
//     perturbation);
//   - a_x = [claims[x] > 0] for x ∈ deps(ti) ∪ dependants(ti);
//   - ∏ a_f over deps(li) for li ∈ {ti} ∪ dependants(ti) — equivalently the
//     booleans [deficit(li) == 0] and [deficit(li) == 1], where deficit(li)
//     counts li's unclaimed in-batch dependencies (the ==1 form arises when
//     the deviation itself revives the dependency ti ∈ deps(li)).
//
// So instead of precomputing task→affected-task sets (quadratic on
// dependency-dense batches: deps(dependants(x)) alone reaches ~|deps|² tasks),
// the worklist maintains deficit(·) incrementally and propagates dirtiness at
// boolean granularity:
//
//   - any count change of claims[x] dirties CandidateSet(x) — the only
//     workers that evaluate x or hold it as their current claim;
//   - a liveness flip of x additionally dirties the candidates of deps(x)
//     (their dependant sums read a_x) and adjusts deficit(li) for every
//     li ∈ dependants(x); only when that deficit crosses the {0,1} read
//     window does the flip propagate further, to the candidates of li and of
//     deps(li).
//
// A clean worker's evaluation would read identical counts and identical
// booleans, recompute identical floats, and pick the identical argmax — so
// skipping it is bit-exact with the naive sweep, and skipping consumes no
// RNG draws.
//
// The same observation makes whole evaluations shareable across workers.
// Every cur-dependent correction in utility(ti, cur) is gated on the current
// task actually dying under the deviation (claims[cur] == 1; with
// claims[cur] ≥ 2 the −1 perturbation can neither kill cur nor change any
// deficit), so for the common worker whose current task has co-claimants,
// utility(ti, cur) is a pure function of ti under the frozen claim state.
// The worklist therefore keeps two per-task caches between moves:
//
//	curU[ti] = utility(ti, ti) — the baseline of every claimant of ti;
//	movU[ti] = utility(ti, ·)  — the deviation value for any worker whose
//	           current task survives its departure.
//
// Both are invalidated exactly where worker dirtiness is derived
// (dirtyReaders — a task whose eval inputs changed invalidates its cached
// evals), and a cache hit returns the bit-identical float the evaluation
// would recompute, so the argmax sequence is unchanged. Sole claimants
// (claims[cur] == 1) take the corrected slow path: utilityMove applies the
// deviation corrections through the maintained deficits plus a
// generation-stamped dependants(cur) membership test, evaluating Equation 3
// with the same float expressions, inclusion booleans and summation order as
// gameState.utility — bit-identical values without the per-dependant
// dependency re-scan.
type gameWorklist struct {
	// liveDeficit[ti] = number of ti's unsatisfied in-batch dependencies
	// currently unclaimed; deps all live ⟺ deficit == 0 (and !deadTask).
	liveDeficit []int32

	// liveDeps[ti] is the sublist of dependants(ti) that can contribute a
	// dependant term at all: claimed and not dead. Kept ascending by sorted
	// insertion on liveness flips, so iterating it visits the contributing
	// dependants in exactly the CSR order the naive scan uses — the skipped
	// entries add nothing, so the float summation is unchanged while the
	// scans shrink to the live fraction of each dependant list.
	liveDeps [][]int32

	// stamp/gen: generation-stamped membership scratch marking
	// dependants(cur) during a sole-claimant evaluation, giving O(1)
	// "cur ∈ deps(li)" tests for the deviation corrections. Bumping gen
	// clears in O(1).
	stamp []uint32
	gen   uint32

	// dirty marks workers whose best response must be re-evaluated; clean
	// workers are skipped (their last evaluation stands bit-exactly).
	dirty []bool

	// curU[ti] caches utility(ti, ti); movU[ti] caches the correction-free
	// deviation utility (nw = claims[ti]+1). Valid bits drop in dirtyReaders.
	curU      []float64
	curUValid []bool
	movU      []float64
	movUValid []bool
}

// gameWorklistPool recycles worklists across batches, like gameStatePool.
var gameWorklistPool = sync.Pool{New: func() any { return new(gameWorklist) }}

// newGameWorklist builds the worklist for the batch wired into gs, with the
// deficits computed from the current (post-initialisation) claims and every
// worker dirty with no cached utilities — the state of the first naive
// round. Pair with release().
func newGameWorklist(gs *gameState) *gameWorklist {
	wl := gameWorklistPool.Get().(*gameWorklist)
	wl.build(gs)
	return wl
}

// release returns the worklist (and its buffers) to the pool.
func (wl *gameWorklist) release() { gameWorklistPool.Put(wl) }

// build initialises the deficits from the current claims in one pass over
// the dependency CSR — Σ|deps| work, far below one naive round.
func (wl *gameWorklist) build(gs *gameState) {
	n, m := len(gs.claims), len(gs.strategy)
	wl.liveDeficit = grown(wl.liveDeficit, n)
	wl.liveDeps = grown(wl.liveDeps, n)
	for ti := 0; ti < n; ti++ {
		wl.liveDeps[ti] = wl.liveDeps[ti][:0]
	}
	for ti := 0; ti < n; ti++ {
		var def int32
		for _, di := range gs.deps(ti) {
			if gs.claims[di] == 0 {
				def++
			}
		}
		wl.liveDeficit[ti] = def
		// Scanning ti ascending keeps every liveDeps list sorted.
		if gs.claims[ti] > 0 && !gs.deadTask[ti] {
			for _, di := range gs.deps(ti) {
				wl.liveDeps[di] = append(wl.liveDeps[di], int32(ti))
			}
		}
	}
	wl.stamp = grown(wl.stamp, n)
	clear(wl.stamp)
	wl.gen = 0
	wl.dirty = grown(wl.dirty, m)
	for i := range wl.dirty {
		wl.dirty[i] = true
	}
	wl.curU = grown(wl.curU, n)
	wl.curUValid = grown(wl.curUValid, n)
	clear(wl.curUValid)
	wl.movU = grown(wl.movU, n)
	wl.movUValid = grown(wl.movUValid, n)
	clear(wl.movUValid)
}

// nextGen returns a fresh stamp generation, clearing the stamps on the
// (rare) uint32 wrap so a stale stamp can never alias a new generation.
func (wl *gameWorklist) nextGen() uint32 {
	wl.gen++
	if wl.gen == 0 {
		clear(wl.stamp)
		wl.gen = 1
	}
	return wl.gen
}

// markMove records that a worker moved its claim from task `from` to task
// `to` (either may be -1), with gs.claims already updated. Both counters
// changed; liveness flips propagate through the dependency wiring.
func (wl *gameWorklist) markMove(gs *gameState, idx *BatchIndex, from, to int) {
	if from >= 0 {
		wl.dirtyReaders(gs, idx, from)
		if gs.claims[from] == 0 { // 1 → 0: from went dead
			wl.onLivenessFlip(gs, idx, from, false)
		}
	}
	if to >= 0 {
		wl.dirtyReaders(gs, idx, to)
		if gs.claims[to] == 1 { // 0 → 1: to came alive
			wl.onLivenessFlip(gs, idx, to, true)
		}
	}
}

// dirtyReaders records that some input of task x's utility evaluation
// changed: its cached evals are stale, and so is the last best response of
// every worker that evaluates x — its candidates (claimants of x are among
// them, so the workers whose utility(cur, cur) baseline read x are covered).
func (wl *gameWorklist) dirtyReaders(gs *gameState, idx *BatchIndex, x int) {
	wl.curUValid[x] = false
	wl.movUValid[x] = false
	for _, w := range idx.CandidateSet(x) {
		wl.dirty[w] = true
	}
}

// onLivenessFlip propagates a 0↔1 transition of claims[x]: the candidates of
// deps(x) re-read a_x in their dependant sums, and every dependant's deficit
// shifts by one — propagating further only when it crosses the {0, 1} window
// evaluations actually read ([deficit==0] plain, [deficit==1] under the
// "deviation revives dependency x" correction).
func (wl *gameWorklist) onLivenessFlip(gs *gameState, idx *BatchIndex, x int, alive bool) {
	keepSorted := !gs.deadTask[x] // dead tasks never enter liveDeps
	for _, d := range gs.deps(x) {
		wl.dirtyReaders(gs, idx, int(d))
		if keepSorted {
			if alive {
				insertSorted(&wl.liveDeps[d], int32(x))
			} else {
				removeSorted(&wl.liveDeps[d], int32(x))
			}
		}
	}
	for _, l := range gs.dependants(x) {
		li := int(l)
		if alive {
			wl.liveDeficit[li]--
		}
		// The smaller of the old/new deficit: after a decrement, before an
		// increment. Within the read window → the boolean inputs of some
		// evaluation changed → its readers go dirty.
		if wl.liveDeficit[li] <= 1 && !gs.deadTask[li] {
			wl.dirtyReaders(gs, idx, li) // self-term of li
			for _, d := range gs.deps(li) {
				wl.dirtyReaders(gs, idx, int(d)) // dependant-term readers
			}
		}
		if !alive {
			wl.liveDeficit[li]++
		}
	}
}

// bestResponse evaluates worker wi's best response over its strategy set,
// bit-exact with the naive sweep's gs.utility argmax: same expressions, same
// inclusion booleans, same summation and comparison order — candidate values
// served from the shared movU cache when the worker's current task survives
// its departure. Returns the best task index and its utility (==
// utility(bestTi, bestTi) after the move is applied — the no-move baseline
// and the post-move perturbation identity coincide, so the caller can cache
// it either way).
func (wl *gameWorklist) bestResponse(gs *gameState, set []int32, wi int) (int, float64) {
	cur := gs.strategy[wi]
	bestTi := cur
	var bestU float64
	if cur >= 0 {
		if wl.curUValid[cur] {
			bestU = wl.curU[cur]
		} else {
			bestU = wl.utilityCurrent(gs, cur)
			wl.curU[cur] = bestU
			wl.curUValid[cur] = true
		}
	}
	if cur >= 0 && gs.claims[cur] == 1 {
		// Sole claimant: leaving kills cur, so every candidate value needs
		// the deviation corrections — evaluate, don't touch the pure cache.
		gen := wl.nextGen()
		for _, li := range gs.dependants(cur) {
			wl.stamp[li] = gen
		}
		for _, t := range set {
			ti := int(t)
			if ti == cur {
				continue
			}
			if u := wl.utilityMove(gs, ti, cur, gen); u > bestU+utilityEps {
				bestU = u
				bestTi = ti
			}
		}
		return bestTi, bestU
	}
	for _, t := range set {
		ti := int(t)
		if ti == cur {
			continue
		}
		var u float64
		if wl.movUValid[ti] {
			u = wl.movU[ti]
		} else {
			u = wl.utilityPure(gs, ti)
			wl.movU[ti] = u
			wl.movUValid[ti] = true
		}
		if u > bestU+utilityEps {
			bestU = u
			bestTi = ti
		}
	}
	return bestTi, bestU
}

// utilityCurrent is utility(ti, ti): Equation 3 under the unperturbed
// claims, with the O(1) deficit test replacing the dependency scan.
func (wl *gameWorklist) utilityCurrent(gs *gameState, ti int) float64 {
	if ti < 0 {
		return 0
	}
	nw := float64(gs.claims[ti])
	if nw <= 0 {
		return 0
	}
	var u float64
	if gs.depCount[ti] > 0 {
		if !gs.deadTask[ti] && wl.liveDeficit[ti] == 0 {
			u += gs.weight[ti] * (gs.alpha - 1) / (gs.alpha * nw)
		}
	} else {
		u += gs.weight[ti] / nw
	}
	for _, l := range wl.liveDeps[ti] {
		li := int(l)
		if wl.liveDeficit[li] != 0 {
			continue
		}
		u += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]) * nw)
	}
	return u
}

// utilityPure is utility(ti, cur) for a worker whose current task keeps at
// least one claimant after the deviation (claims[cur] ≥ 2, or cur == -1):
// the −1 perturbation of cur then changes no liveness boolean and no
// deficit, so the value does not depend on cur at all — it is the shared
// movU cache entry. The move itself still perturbs ti: claims[ti]+1, and a
// revived ti lowers each dependant's deficit by one (ti ∈ deps(li) by
// construction of the dependant loop).
func (wl *gameWorklist) utilityPure(gs *gameState, ti int) float64 {
	nw := float64(gs.claims[ti] + 1)
	tiFlips := gs.claims[ti] == 0 // the move itself revives ti
	var u float64
	if gs.depCount[ti] > 0 {
		if !gs.deadTask[ti] && wl.liveDeficit[ti] == 0 {
			u += gs.weight[ti] * (gs.alpha - 1) / (gs.alpha * nw)
		}
	} else {
		u += gs.weight[ti] / nw
	}
	for _, l := range wl.liveDeps[ti] {
		li := int(l)
		def := wl.liveDeficit[li]
		if tiFlips {
			def--
		}
		if def == 0 {
			u += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]) * nw)
		}
	}
	return u
}

// utilityMove is utility(ti, cur) for a sole claimant of cur (ti != cur):
// the worker hypothetically moves from cur to ti, so claims[ti] gains one
// (possibly reviving ti) and cur — losing its only claimant — goes dead.
// Both corrections land on the deficits as ±1 shifts; stamp[li] == gen ⟺
// cur ∈ deps(li).
func (wl *gameWorklist) utilityMove(gs *gameState, ti, cur int, gen uint32) float64 {
	nw := float64(gs.claims[ti] + 1)
	tiFlips := gs.claims[ti] == 0 // the move itself revives ti
	var u float64
	if gs.depCount[ti] > 0 {
		def := wl.liveDeficit[ti]
		if wl.stamp[ti] == gen {
			def++ // cur ∈ deps(ti) goes dead under the deviation
		}
		if !gs.deadTask[ti] && def == 0 {
			u += gs.weight[ti] * (gs.alpha - 1) / (gs.alpha * nw)
		}
	} else {
		u += gs.weight[ti] / nw
	}
	for _, l := range wl.liveDeps[ti] {
		li := int(l)
		if li == cur {
			continue // loses its only claimant under the deviation
		}
		def := wl.liveDeficit[li]
		if tiFlips {
			def-- // ti ∈ deps(li) by construction, revived by the move
		}
		if wl.stamp[li] == gen {
			def++ // cur ∈ deps(li), killed by the move
		}
		if def == 0 {
			u += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]) * nw)
		}
	}
	return u
}

// insertSorted adds v to the ascending list s, keeping it sorted. The lists
// are short (a task's currently-live dependants), so a binary search plus a
// tail shift beats any fancier structure.
func insertSorted(s *[]int32, v int32) {
	l := *s
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		if l[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l = append(l, 0)
	copy(l[lo+1:], l[lo:])
	l[lo] = v
	*s = l
}

// removeSorted deletes v from the ascending list s; v is always present
// (membership mirrors the claims-liveness transitions exactly).
func removeSorted(s *[]int32, v int32) {
	l := *s
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		if l[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(l[lo:], l[lo+1:])
	*s = l[:len(l)-1]
}

// totalUtility is gs.totalUtility through the worklist's caches: the same
// worker-order summation of utility(s_w, s_w), each addend the bit-identical
// cached float.
func (wl *gameWorklist) totalUtility(gs *gameState) float64 {
	var sum float64
	for wi := range gs.strategy {
		ti := gs.strategy[wi]
		if ti < 0 {
			continue
		}
		if !wl.curUValid[ti] {
			wl.curU[ti] = wl.utilityCurrent(gs, ti)
			wl.curUValid[ti] = true
		}
		sum += wl.curU[ti]
	}
	return sum
}
