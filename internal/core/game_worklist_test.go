package core

import (
	"math/rand"
	"runtime"
	"testing"
)

// gameWorklistMatrix is the full option matrix the differential tests sweep:
// both termination thresholds the paper uses, both initialisations, and both
// visit orders.
var gameWorklistMatrix = []GameOptions{
	{Threshold: 0},
	{Threshold: 0, GreedyInit: true},
	{Threshold: 0, ShuffleOrder: true},
	{Threshold: 0, GreedyInit: true, ShuffleOrder: true},
	{Threshold: 0.05},
	{Threshold: 0.05, GreedyInit: true},
	{Threshold: 0.05, ShuffleOrder: true},
	{Threshold: 0.05, GreedyInit: true, ShuffleOrder: true},
}

// TestGameWorklistBitExactMatrix sweeps seeds × the full option matrix and
// requires the worklist engine to be bit-exact with the naive sweep:
// identical assignment pairs, round counts, per-round update ratios, final
// utility, and move counts.
func TestGameWorklistBitExactMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 4+rng.Intn(20), 4+rng.Intn(24), 4, trial%2 == 0)
		seed := rng.Int63()
		for _, opt := range gameWorklistMatrix {
			opt.Seed = seed
			b := NewStaticBatch(in)
			fast := NewGame(opt)
			slow := fast.WithWorklistDisabled(true)
			if got := fast.Options().DisableWorklist; got {
				t.Fatal("worklist engine must be the default")
			}
			af, tf := fast.AssignTraced(b)
			as, ts := slow.AssignTraced(NewStaticBatch(in))
			if af.String() != as.String() {
				t.Fatalf("trial %d opt %+v: assignment diverged:\nworklist %v\nnaive    %v", trial, opt, af, as)
			}
			if tf.Rounds != ts.Rounds || tf.Converged != ts.Converged || tf.Active != ts.Active {
				t.Fatalf("trial %d opt %+v: trace diverged: worklist %+v, naive %+v", trial, opt, tf, ts)
			}
			if !float64SlicesEqual(tf.UpdateRatios, ts.UpdateRatios) {
				t.Fatalf("trial %d opt %+v: update ratios diverged: %v vs %v", trial, opt, tf.UpdateRatios, ts.UpdateRatios)
			}
			if tf.FinalUtility != ts.FinalUtility {
				t.Fatalf("trial %d opt %+v: final utility diverged: %v vs %v", trial, opt, tf.FinalUtility, ts.FinalUtility)
			}
			if tf.Moved != ts.Moved {
				t.Fatalf("trial %d opt %+v: move count diverged: %d vs %d", trial, opt, tf.Moved, ts.Moved)
			}
			// Per-round accounting: every active worker is evaluated or
			// skipped exactly once per round, and only the worklist skips.
			if tf.Evaluated+tf.Skipped != int64(tf.Active)*int64(tf.Rounds) {
				t.Fatalf("trial %d opt %+v: worklist counters: evaluated %d + skipped %d != active %d · rounds %d",
					trial, opt, tf.Evaluated, tf.Skipped, tf.Active, tf.Rounds)
			}
			if ts.Skipped != 0 {
				t.Fatalf("trial %d opt %+v: naive sweep skipped %d workers", trial, opt, ts.Skipped)
			}
			if ts.Evaluated != int64(ts.Active)*int64(ts.Rounds) {
				t.Fatalf("trial %d opt %+v: naive counters: evaluated %d != active %d · rounds %d",
					trial, opt, ts.Evaluated, ts.Active, ts.Rounds)
			}
		}
	}
}

// TestGameWorklistVerify exercises the differential escape hatch itself.
func TestGameWorklistVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 10+rng.Intn(15), 10+rng.Intn(15), 4, true)
		for _, opt := range gameWorklistMatrix {
			opt.Seed = rng.Int63()
			if err := NewGame(opt).VerifyWorklist(NewStaticBatch(in)); err != nil {
				t.Fatalf("trial %d opt %+v: %v", trial, opt, err)
			}
		}
	}
}

// TestGameWorklistDeterministicAcrossGOMAXPROCS pins that the engine's output
// is independent of scheduler width: the parallel pieces live in the batch
// index build, and the game sweep itself is strictly sequential.
func TestGameWorklistDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	in := randomInstance(rng, 40, 50, 5, true)
	opt := GameOptions{Threshold: 0, GreedyInit: true, ShuffleOrder: true, Seed: 7}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var want string
	var wantTrace GameTrace
	for i, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		a, tr := NewGame(opt).AssignTraced(NewStaticBatch(in))
		if i == 0 {
			want, wantTrace = a.String(), *tr
			continue
		}
		if a.String() != want {
			t.Fatalf("GOMAXPROCS=%d: assignment diverged:\n%v\nwant %v", procs, a, want)
		}
		if tr.Rounds != wantTrace.Rounds || tr.FinalUtility != wantTrace.FinalUtility ||
			tr.Evaluated != wantTrace.Evaluated || tr.Skipped != wantTrace.Skipped || tr.Moved != wantTrace.Moved {
			t.Fatalf("GOMAXPROCS=%d: trace diverged: %+v want %+v", procs, tr, wantTrace)
		}
	}
}

// TestGreedyAssignIndicesMatchesAssign pins the index-pair form of the greedy
// result against the public Assign: same pairs after the dependency fixpoint.
func TestGreedyAssignIndicesMatchesAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 5+rng.Intn(20), 5+rng.Intn(20), 4, trial%2 == 0)
		g := NewGreedy()
		b := NewStaticBatch(in)
		taskOf := g.assignIndices(b)
		dependencyFixpointIndexed(b, taskOf)
		viaIdx := make(map[[2]int64]bool)
		for wi, ti := range taskOf {
			if ti >= 0 {
				viaIdx[[2]int64{int64(b.Workers[wi].W.ID), int64(b.Tasks[ti].ID)}] = true
			}
		}
		a := g.Assign(NewStaticBatch(in))
		if len(a.Pairs) != len(viaIdx) {
			t.Fatalf("trial %d: %d pairs via indices, %d via Assign", trial, len(viaIdx), len(a.Pairs))
		}
		for _, p := range a.Pairs {
			if !viaIdx[[2]int64{int64(p.Worker), int64(p.Task)}] {
				t.Fatalf("trial %d: pair %v missing from index form", trial, p)
			}
		}
	}
}

// TestHarmonicMemoMatchesLoop pins the grow-on-demand memo against the
// open-coded sum, bit for bit, including after out-of-order queries.
func TestHarmonicMemoMatchesLoop(t *testing.T) {
	gs := &gameState{}
	for _, n := range []int{5, 0, 1, 17, 3, 64, 63, 200} {
		if got, want := gs.harmonic(n), harmonic(n); got != want {
			t.Fatalf("harmonic(%d): memo %v, loop %v", n, got, want)
		}
	}
	if gs.harmonic(-3) != 0 {
		t.Fatal("harmonic of negative n should be 0")
	}
}

// TestGameStatePoolReuse runs two different batches through the same pool
// cycle and checks the second run is unpolluted by the first's buffers.
func TestGameStatePoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(905))
	big := randomInstance(rng, 30, 40, 5, true)
	small := randomInstance(rng, 5, 6, 3, true)
	opt := GameOptions{Threshold: 0, GreedyInit: true, Seed: 11}

	// Fresh-state reference for the small instance.
	want, wantTrace := NewGame(opt).AssignTraced(NewStaticBatch(small))

	// Churn the pool with the big instance, then re-run the small one; the
	// recycled oversized buffers must produce the identical result.
	for i := 0; i < 3; i++ {
		NewGame(opt).Assign(NewStaticBatch(big))
	}
	got, gotTrace := NewGame(opt).AssignTraced(NewStaticBatch(small))
	if got.String() != want.String() {
		t.Fatalf("pooled rerun diverged:\n%v\nwant %v", got, want)
	}
	if gotTrace.FinalUtility != wantTrace.FinalUtility || gotTrace.Rounds != wantTrace.Rounds {
		t.Fatalf("pooled rerun trace diverged: %+v want %+v", gotTrace, wantTrace)
	}
}
