package core

import (
	"testing"

	"dasc/internal/model"
)

func validateBatchAssignment(t *testing.T, b *Batch, a *model.Assignment) {
	t.Helper()
	workerUsed := map[model.WorkerID]bool{}
	taskUsed := map[model.TaskID]bool{}
	assigned := a.TaskSet()
	for _, p := range a.Pairs {
		if workerUsed[p.Worker] {
			t.Fatalf("worker w%d assigned twice", p.Worker)
		}
		if taskUsed[p.Task] {
			t.Fatalf("task t%d assigned twice", p.Task)
		}
		workerUsed[p.Worker] = true
		taskUsed[p.Task] = true
		// Locate the batch worker and pending task.
		wi := -1
		for i := range b.Workers {
			if b.Workers[i].W.ID == p.Worker {
				wi = i
				break
			}
		}
		ti := b.TaskIndex(p.Task)
		if wi < 0 || ti < 0 {
			t.Fatalf("pair (%d,%d) references non-batch entities", p.Worker, p.Task)
		}
		if !b.Feasible(wi, b.Tasks[ti]) {
			t.Fatalf("infeasible pair (w%d,t%d)", p.Worker, p.Task)
		}
		for _, d := range b.In.Task(p.Task).Deps {
			if !assigned[d] && !b.Satisfied[d] {
				t.Fatalf("task t%d assigned with unmet dependency t%d", p.Task, d)
			}
		}
	}
}

func TestGreedyExample1(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	a := NewGreedy().Assign(b)
	validateBatchAssignment(t, b, a)
	// The paper's dependency-aware allocation finishes 3 tasks (Fig. 1(c)).
	if a.Size() != 3 {
		t.Fatalf("greedy score = %d, want 3 (%v)", a.Size(), a)
	}
	// t1 and t4 must be among the assigned tasks (roots of the two chains).
	ts := a.TaskSet()
	if !ts[0] || !ts[3] {
		t.Errorf("expected roots t1, t4 assigned: %v", a)
	}
}

func TestGreedyHonoursSkillScarcity(t *testing.T) {
	// Two workers: w0 has only ψ0, w1 has ψ0 and ψ1. Tasks: t0 needs ψ0,
	// t1 needs ψ1 and depends on t0. The only 2-task solution assigns
	// w0→t0, w1→t1; the associative set {t0,t1} forces exactly that.
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0, 1)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Start: 0, Wait: 100, Requires: 1, Deps: []model.TaskID{0}},
		},
	}
	b := NewStaticBatch(in)
	a := NewGreedy().Assign(b)
	validateBatchAssignment(t, b, a)
	if a.Size() != 2 {
		t.Fatalf("score = %d, want 2 (%v)", a.Size(), a)
	}
	if a.WorkerOf(0) != 0 || a.WorkerOf(1) != 1 {
		t.Errorf("matching wasted the flexible worker: %v", a)
	}
}

func TestGreedySkipsUnreachableDependency(t *testing.T) {
	// t1 depends on t0, but t0 is not in the batch and not satisfied:
	// t1 must not be assigned.
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	b := NewBatch(in, []BatchWorker{{
		W: &in.Workers[0], Loc: in.Workers[0].Loc, ReadyAt: 0, DistBudget: 100,
	}}, []*model.Task{&in.Tasks[1]}, nil)
	a := NewGreedy().Assign(b)
	if a.Size() != 0 {
		t.Fatalf("assigned task with absent dependency: %v", a)
	}
	// With the dependency satisfied in an earlier batch it becomes legal.
	b2 := NewBatch(in, b.Workers, b.Tasks, map[model.TaskID]bool{0: true})
	a2 := NewGreedy().Assign(b2)
	if a2.Size() != 1 {
		t.Fatalf("satisfied dependency not honoured: %v", a2)
	}
}

func TestGreedyPrefersLargerSet(t *testing.T) {
	// A chain of 3 tasks and one isolated task; 3 workers. Greedy must take
	// the size-3 associative set first, not strand workers on the single.
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 2, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
			{ID: 2, Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0, 1}},
			{ID: 3, Start: 0, Wait: 100, Requires: 0},
		},
	}
	b := NewStaticBatch(in)
	a := NewGreedy().Assign(b)
	validateBatchAssignment(t, b, a)
	if a.Size() != 3 {
		t.Fatalf("score = %d, want 3", a.Size())
	}
	ts := a.TaskSet()
	if !ts[0] || !ts[1] || !ts[2] {
		t.Errorf("greedy did not commit the chain: %v", a)
	}
}

func TestGreedyMatcherAblationAgreesOnScore(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	hung := NewGreedyOpt(GreedyOptions{Matcher: MatchHungarian}).Assign(b)
	feas := NewGreedyOpt(GreedyOptions{Matcher: MatchFeasible}).Assign(b)
	if hung.Size() != feas.Size() {
		t.Errorf("matcher kinds disagree: hungarian %d, feasible %d", hung.Size(), feas.Size())
	}
	validateBatchAssignment(t, b, feas)
}

func TestGreedyEmptyBatch(t *testing.T) {
	in := &model.Instance{}
	b := NewStaticBatch(in)
	if a := NewGreedy().Assign(b); a.Size() != 0 {
		t.Errorf("empty batch score = %d", a.Size())
	}
}

func TestGreedyDeterministic(t *testing.T) {
	in := model.Example1()
	a1 := NewGreedy().Assign(NewStaticBatch(in))
	a2 := NewGreedy().Assign(NewStaticBatch(in))
	if a1.String() != a2.String() {
		t.Errorf("nondeterministic greedy: %v vs %v", a1, a2)
	}
}

func TestGreedyAuctionMatcherAgrees(t *testing.T) {
	in := model.Example1()
	b := NewStaticBatch(in)
	auction := NewGreedyOpt(GreedyOptions{Matcher: MatchAuction}).Assign(b)
	validateBatchAssignment(t, b, auction)
	hungarian := NewGreedyOpt(GreedyOptions{Matcher: MatchHungarian}).Assign(b)
	if auction.Size() != hungarian.Size() {
		t.Errorf("auction matcher score %d != hungarian %d", auction.Size(), hungarian.Size())
	}
}
