package core

import (
	"math/rand"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// evolvingBatches drives an EngineCache through a synthetic multi-batch
// evolution mimicking a platform run — the clock advances, a fraction of the
// workers move (as if assigned) and spend budget, tasks retire and arrive —
// and checks the incrementally built engine against a from-scratch build at
// every batch. Returns the cache for stats assertions.
func evolvingBatches(t *testing.T, in *model.Instance, rng *rand.Rand, batches int) *EngineCache {
	t.Helper()
	cache := NewEngineCache()

	type wstate struct {
		loc    geo.Point
		budget float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{loc: in.Workers[i].Loc, budget: in.Workers[i].MaxDist}
	}
	// Start with roughly two thirds of the tasks pending; the rest arrive
	// over the run. Retired tasks never return (the platform regime).
	pending := make(map[int]bool)
	unseen := []int{}
	for ti := range in.Tasks {
		if ti%3 != 0 {
			pending[ti] = true
		} else {
			unseen = append(unseen, ti)
		}
	}

	now := 0.0
	for k := 0; k < batches; k++ {
		now += 3
		// ~20% of workers "were assigned": they jump to a random task
		// location and burn budget.
		for i := range ws {
			if rng.Float64() < 0.2 && len(in.Tasks) > 0 {
				dst := in.Tasks[rng.Intn(len(in.Tasks))].Loc
				ws[i].budget -= in.Distance()(ws[i].loc, dst)
				ws[i].loc = dst
			}
		}
		// Retire ~15% of pending tasks, admit up to two arrivals.
		for ti := range pending {
			if rng.Float64() < 0.15 {
				delete(pending, ti)
			}
		}
		for n := 0; n < 2 && len(unseen) > 0; n++ {
			ti := unseen[len(unseen)-1]
			unseen = unseen[:len(unseen)-1]
			pending[ti] = true
		}

		var bws []BatchWorker
		for i := range in.Workers {
			bws = append(bws, BatchWorker{
				W: &in.Workers[i], Loc: ws[i].loc, ReadyAt: now, DistBudget: ws[i].budget,
			})
		}
		var tasks []*model.Task
		for ti := range in.Tasks {
			if pending[ti] {
				tasks = append(tasks, &in.Tasks[ti])
			}
		}
		b := NewBatch(in, bws, tasks, nil)
		cache.Attach(b)
		if err := b.VerifyIndex(); err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
	}
	return cache
}

// TestEngineCacheMatchesFreshAcrossBatches is the tentpole's differential
// acceptance test: after k batches of simulated evolution the incremental
// engine equals a fresh newBatchIndex build at every batch, across the
// Euclidean-boundable metrics (grid path), Haversine and a custom closure
// (no-pruning path).
func TestEngineCacheMatchesFreshAcrossBatches(t *testing.T) {
	for _, m := range metricsUnderTest() {
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(500))
			for trial := 0; trial < 3; trial++ {
				in := randomInstance(rng, 30+rng.Intn(30), 40+rng.Intn(40), 5, true)
				in.Dist = m.dist
				cache := evolvingBatches(t, in, rng, 8)
				st := cache.Stats()
				if st.Batches != 8 {
					t.Fatalf("stats.Batches = %d, want 8", st.Batches)
				}
				// The evolution leaves ~80% of workers unmoved per batch;
				// the fast path must actually be taken.
				if st.WorkersReused == 0 {
					t.Fatalf("no worker ever took the revalidation fast path: %+v", st)
				}
				if st.TasksDeparted == 0 || st.TasksArrived == 0 {
					t.Fatalf("task churn not exercised: %+v", st)
				}
			}
		})
	}
}

// TestEngineCacheMetricChangeForcesRebuild: attaching batches with a
// different metric must not serve entries memoized under the old one.
func TestEngineCacheMetricChangeForcesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	in := randomInstance(rng, 20, 30, 4, false)
	cache := NewEngineCache()

	in.Dist = geo.Euclidean
	cache.Attach(NewStaticBatch(in))

	in.Dist = geo.Manhattan
	b := NewStaticBatch(in)
	cache.Attach(b)
	if err := b.VerifyIndex(); err != nil {
		t.Fatalf("after metric change: %v", err)
	}
	if got := cache.Stats().FullRebuilds; got != 2 {
		t.Fatalf("FullRebuilds = %d, want 2 (metric change must reset)", got)
	}
}

// TestEngineCacheWorkerChurn: workers that disappear from a batch are
// dropped; on return (at a new location) they are rebuilt, never served a
// stale set.
func TestEngineCacheWorkerChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	in := randomInstance(rng, 12, 25, 3, false)
	cache := NewEngineCache()

	all := NewStaticBatch(in)
	cache.Attach(all)

	// Batch 2: only the even workers, unmoved but later.
	var bws []BatchWorker
	for i := range in.Workers {
		if i%2 == 0 {
			w := &in.Workers[i]
			bws = append(bws, BatchWorker{W: w, Loc: w.Loc, ReadyAt: 4, DistBudget: w.MaxDist})
		}
	}
	var tasks []*model.Task
	for i := range in.Tasks {
		tasks = append(tasks, &in.Tasks[i])
	}
	b2 := NewBatch(in, bws, tasks, nil)
	cache.Attach(b2)
	if err := b2.VerifyIndex(); err != nil {
		t.Fatal(err)
	}

	// Batch 3: everyone again; the odd workers must be treated as new
	// (rebuilt), the evens revalidated.
	before := cache.Stats().WorkersRebuilt
	var bws3 []BatchWorker
	for i := range in.Workers {
		w := &in.Workers[i]
		bws3 = append(bws3, BatchWorker{W: w, Loc: w.Loc, ReadyAt: 8, DistBudget: w.MaxDist})
	}
	b3 := NewBatch(in, bws3, tasks, nil)
	cache.Attach(b3)
	if err := b3.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	rebuilt := cache.Stats().WorkersRebuilt - before
	if want := (len(in.Workers) + 1) / 2; rebuilt != want {
		t.Fatalf("batch 3 rebuilt %d workers, want %d (the returned odd ones)", rebuilt, want)
	}
}

// TestEngineCacheAbsorbsForeignIndex: if the batch's index was already built
// before Attach, the cache must absorb it and still be consistent on the
// next batch.
func TestEngineCacheAbsorbsForeignIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	in := randomInstance(rng, 15, 20, 3, false)
	cache := NewEngineCache()

	b1 := NewStaticBatch(in)
	b1.Index() // built before the cache sees it
	cache.Attach(b1)

	var bws []BatchWorker
	for i := range in.Workers {
		w := &in.Workers[i]
		bws = append(bws, BatchWorker{W: w, Loc: w.Loc, ReadyAt: 5, DistBudget: w.MaxDist})
	}
	var tasks []*model.Task
	for i := range in.Tasks {
		tasks = append(tasks, &in.Tasks[i])
	}
	b2 := NewBatch(in, bws, tasks, nil)
	cache.Attach(b2)
	if err := b2.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().WorkersReused == 0 {
		t.Fatal("absorbed index did not enable the revalidation fast path")
	}
}

// TestEngineCacheEmptyBatches: empty worker or task sets must neither crash
// nor poison later batches.
func TestEngineCacheEmptyBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	in := randomInstance(rng, 10, 15, 3, false)
	cache := NewEngineCache()

	var tasks []*model.Task
	for i := range in.Tasks {
		tasks = append(tasks, &in.Tasks[i])
	}
	empty := NewBatch(in, nil, nil, nil)
	cache.Attach(empty)

	noTasks := NewBatch(in, NewStaticBatch(in).Workers, nil, nil)
	cache.Attach(noTasks)

	full := NewBatch(in, NewStaticBatch(in).Workers, tasks, nil)
	cache.Attach(full)
	if err := full.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
}
