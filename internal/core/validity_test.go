package core

import (
	"math/rand"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// TestGreedyStaffTrimmedCandidateRegression is the regression for the
// Hungarian cost-matrix corruption: the fill did cost[row][colIdx[wi]] for
// every free candidate, but colIdx only held the kept (top-K + HK-matched)
// columns — a trimmed-out candidate's missing key resolved to column 0 and
// silently overwrote its cost. On this instance the old code staffed
// ⟨t0→w1, t1→w0⟩ — w0 lacks t1's skill (an infeasible pair that
// finishAssignment's dependency-only filter let through) at travel cost 4 —
// instead of the exhaustive optimum ⟨t0→w0, t1→w1⟩ at cost 2.
//
// Geometry (velocity 1, so travel time = distance): t0 at (0,0) requiring
// skill 0, t1 at (3,0) requiring skill 1 and depending on t0, so both form
// one associative set staffed together. Worker w0 (1,0) holds {0}, w1 (2,0)
// holds {0,1}, w2 (9,0) holds {0,1}. With MaxCandidatesPerTask=1, t0 has 3 >
// 1 free candidates; w2 is trimmed from the kept columns of both rows and
// its writes landed on column 0.
func TestGreedyStaffTrimmedCandidateRegression(t *testing.T) {
	in := &model.Instance{
		SkillUniverse: 2,
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(1, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 20, Skills: model.NewSkillSet(0)},
			{ID: 1, Loc: geo.Pt(2, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 20, Skills: model.NewSkillSet(0, 1)},
			{ID: 2, Loc: geo.Pt(9, 0), Start: 0, Wait: 100, Velocity: 1, MaxDist: 20, Skills: model.NewSkillSet(0, 1)},
		},
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Loc: geo.Pt(3, 0), Start: 0, Wait: 100, Requires: 1, Deps: []model.TaskID{0}},
		},
	}
	b := NewStaticBatch(in)
	a := NewGreedyOpt(GreedyOptions{MaxCandidatesPerTask: 1}).Assign(b)

	if err := a.Validate(in, model.ValidationOptions{}); err != nil {
		t.Fatalf("corrupted staffing produced an invalid assignment: %v", err)
	}
	if a.Size() != 2 {
		t.Fatalf("assigned %d pairs, want 2: %v", a.Size(), a)
	}
	got := 0.0
	for _, p := range a.Pairs {
		wi := b.WorkerIndex(p.Worker)
		got += b.TravelCost(wi, in.Task(p.Task))
	}
	// Exhaustive optimum over every complete feasible staffing of {t0, t1}
	// with distinct workers.
	best := -1.0
	c0 := b.CandidateWorkers(&in.Tasks[0])
	c1 := b.CandidateWorkers(&in.Tasks[1])
	for _, wa := range c0 {
		for _, wb := range c1 {
			if wa == wb {
				continue
			}
			total := b.TravelCost(wa, &in.Tasks[0]) + b.TravelCost(wb, &in.Tasks[1])
			if best < 0 || total < best {
				best = total
			}
		}
	}
	if best < 0 {
		t.Fatal("no complete staffing exists — broken test setup")
	}
	if got != best {
		t.Fatalf("staffing travel cost %v, exhaustive optimum %v (pairs %v)", got, best, a)
	}
}

// allocatorsUnderTest enumerates every allocator configuration the validity
// property must hold for: Greedy in all three matcher modes (plus an
// aggressively trimmed Hungarian, the regime of the staffing regression),
// the three game variants, and the two oblivious baselines. DFS is appended
// only when small is true — it is exact search, exponential in the worker
// count.
func allocatorsUnderTest(seed int64, small bool) []Allocator {
	allocs := []Allocator{
		NewGreedyOpt(GreedyOptions{Matcher: MatchHungarian}),
		NewGreedyOpt(GreedyOptions{Matcher: MatchFeasible}),
		NewGreedyOpt(GreedyOptions{Matcher: MatchAuction}),
		NewGreedyOpt(GreedyOptions{Matcher: MatchHungarian, MaxCandidatesPerTask: 1}),
		NewGame(GameOptions{Seed: seed}),
		NewGame(GameOptions{Seed: seed, Threshold: 0.05}),
		NewGame(GameOptions{Seed: seed, GreedyInit: true}),
		NewClosest(),
		NewRandom(seed),
	}
	if small {
		allocs = append(allocs, NewDFS(DFSOptions{MaxNodes: 200_000}))
	}
	return allocs
}

// TestAllAllocatorsProduceValidAssignments is the cross-allocator validity
// property: over randomized instances, every allocator's dependency-filtered
// output must pass Assignment.Validate — skill, deadline/distance, exclusive
// and dependency constraints. This is the generic harness for the
// zero-value-map bug class: the greedy staffing corruption produced pairs
// violating the skill constraint, which Validate catches on any instance
// where the trim bites.
func TestAllAllocatorsProduceValidAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for trial := 0; trial < 12; trial++ {
		small := trial%3 == 0
		var in *model.Instance
		if small {
			in = randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(5), 3, true)
		} else {
			in = randomInstance(rng, 8+rng.Intn(15), 8+rng.Intn(20), 4, true)
		}
		b := NewStaticBatch(in)
		for ai, alloc := range allocatorsUnderTest(int64(trial), small) {
			a := DependencyFixpoint(b, alloc.Assign(b))
			if err := a.Validate(in, model.ValidationOptions{}); err != nil {
				t.Fatalf("trial %d allocator %d (%s): %v", trial, ai, alloc.Name(), err)
			}
		}
	}
}

// TestAllAllocatorsValidOnMidSimBatches runs the same property over
// mid-simulation batches (moved workers, advanced clocks, spent budgets),
// where static Validate does not apply; the batch-aware checker asserts
// feasibility from the workers' current states.
func TestAllAllocatorsValidOnMidSimBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 8+rng.Intn(12), 10+rng.Intn(15), 4, true)
		b := midSimBatch(in, rng)
		for _, alloc := range allocatorsUnderTest(int64(trial), false) {
			a := DependencyFixpoint(b, alloc.Assign(b))
			validateBatchAssignment(t, b, a)
		}
	}
}
