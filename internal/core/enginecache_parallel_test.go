package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

// evoSpec is one precomputed batch of a synthetic platform evolution: the
// worker states and pending tasks to hand NewBatch.
type evoSpec struct {
	bws   []BatchWorker
	tasks []*model.Task
}

// evolutionSpecs precomputes a deterministic multi-batch evolution of in —
// the same regime evolvingBatches drives (clock advances, ~20% of workers
// move and spend budget, tasks retire and arrive) — without touching a
// cache, so one sequence can be replayed against several caches. All
// randomness is drawn in fixed index order, never map order, so one seed
// always yields byte-identical specs.
func evolutionSpecs(in *model.Instance, seed int64, batches int) []evoSpec {
	rng := rand.New(rand.NewSource(seed))
	type wstate struct {
		loc    geo.Point
		budget float64
	}
	ws := make([]wstate, len(in.Workers))
	for i := range in.Workers {
		ws[i] = wstate{loc: in.Workers[i].Loc, budget: in.Workers[i].MaxDist}
	}
	pending := make([]bool, len(in.Tasks))
	var unseen []int
	for ti := range in.Tasks {
		if ti%3 != 0 {
			pending[ti] = true
		} else {
			unseen = append(unseen, ti)
		}
	}
	specs := make([]evoSpec, 0, batches)
	now := 0.0
	for k := 0; k < batches; k++ {
		now += 3
		for i := range ws {
			if rng.Float64() < 0.2 && len(in.Tasks) > 0 {
				dst := in.Tasks[rng.Intn(len(in.Tasks))].Loc
				ws[i].budget -= in.Distance()(ws[i].loc, dst)
				ws[i].loc = dst
			}
		}
		// Retired tasks never return: arrivals only come from unseen.
		for ti := range pending {
			if pending[ti] && rng.Float64() < 0.15 {
				pending[ti] = false
			}
		}
		for n := 0; n < 2 && len(unseen) > 0; n++ {
			ti := unseen[len(unseen)-1]
			unseen = unseen[:len(unseen)-1]
			pending[ti] = true
		}
		bws := make([]BatchWorker, 0, len(in.Workers))
		for i := range in.Workers {
			bws = append(bws, BatchWorker{
				W: &in.Workers[i], Loc: ws[i].loc, ReadyAt: now, DistBudget: ws[i].budget,
			})
		}
		var tasks []*model.Task
		for ti := range in.Tasks {
			if pending[ti] {
				tasks = append(tasks, &in.Tasks[ti])
			}
		}
		specs = append(specs, evoSpec{bws: bws, tasks: tasks})
	}
	return specs
}

// TestEngineCacheIncrementalParallelDeterministic replays one evolution
// against a serial cache (procs=1) and against concurrently built caches at
// several pool sizes: every batch's index — and the cache's own outcome
// counters — must be bit-identical regardless of scheduling. The worker pool
// is sized past minParallelWorkers so the chunked fan-out actually engages,
// and the evolution leaves both revalidated and rebuilt workers in every
// run, so both branches of the parallel worker loop are covered.
func TestEngineCacheIncrementalParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(510))
	in := randomInstance(rng, 3*minParallelWorkers, 150, 6, true)
	specs := evolutionSpecs(in, 511, 6)

	run := func(procs int) ([]*BatchIndex, EngineCacheStats) {
		cache := NewEngineCache()
		idxs := make([]*BatchIndex, 0, len(specs))
		for _, sp := range specs {
			idxs = append(idxs, cache.attachN(NewBatch(in, sp.bws, sp.tasks, nil), procs))
		}
		return idxs, cache.Stats()
	}

	serial, sst := run(1)
	if sst.WorkersReused == 0 || sst.WorkersRebuilt == 0 {
		t.Fatalf("evolution must exercise both the revalidate and rebuild paths: %+v", sst)
	}
	for _, procs := range []int{2, 4, 8} {
		par, pst := run(procs)
		if pst != sst {
			t.Fatalf("procs=%d: cache stats diverge from serial\npar:    %+v\nserial: %+v", procs, pst, sst)
		}
		for k := range serial {
			if !reflect.DeepEqual(serial[k].strategies, par[k].strategies) {
				t.Fatalf("procs=%d batch %d: strategy sets differ from serial build", procs, k)
			}
			if !reflect.DeepEqual(serial[k].costs, par[k].costs) {
				t.Fatalf("procs=%d batch %d: travel-cost memos differ from serial build", procs, k)
			}
			if !reflect.DeepEqual(serial[k].candidates, par[k].candidates) {
				t.Fatalf("procs=%d batch %d: candidate lists differ from serial build", procs, k)
			}
		}
	}
}

// TestEngineCacheNeverMutatesReturnedIndex pins the cache's memory-ownership
// contract: a returned BatchIndex is immutable. The cache recycles structs,
// buffers and arenas batch over batch, so any aliasing between cache state
// and a handed-out index would show up here as a mutated early snapshot once
// later batches reuse the memory. Both the revalidate and rebuild paths must
// have run for the check to mean anything.
func TestEngineCacheNeverMutatesReturnedIndex(t *testing.T) {
	cpInt := func(src [][]int32) [][]int32 {
		out := make([][]int32, len(src))
		for i, s := range src {
			out[i] = append([]int32(nil), s...)
		}
		return out
	}
	cpFloat := func(src [][]float64) [][]float64 {
		out := make([][]float64, len(src))
		for i, s := range src {
			out[i] = append([]float64(nil), s...)
		}
		return out
	}
	type snap struct {
		strategies [][]int32
		costs      [][]float64
		candidates [][]int32
	}

	for _, procs := range []int{1, 4} {
		rng := rand.New(rand.NewSource(512))
		in := randomInstance(rng, 3*minParallelWorkers, 120, 5, true)
		specs := evolutionSpecs(in, 513, 8)
		cache := NewEngineCache()
		var idxs []*BatchIndex
		var snaps []snap
		for _, sp := range specs {
			idx := cache.attachN(NewBatch(in, sp.bws, sp.tasks, nil), procs)
			idxs = append(idxs, idx)
			snaps = append(snaps, snap{cpInt(idx.strategies), cpFloat(idx.costs), cpInt(idx.candidates)})
		}
		st := cache.Stats()
		if st.WorkersReused == 0 || st.WorkersRebuilt == 0 {
			t.Fatalf("procs=%d: evolution must exercise both paths: %+v", procs, st)
		}
		for k := range idxs {
			if !reflect.DeepEqual(snaps[k].strategies, idxs[k].strategies) {
				t.Fatalf("procs=%d: batch %d strategy sets mutated by later cache activity", procs, k)
			}
			if !reflect.DeepEqual(snaps[k].costs, idxs[k].costs) {
				t.Fatalf("procs=%d: batch %d travel-cost memos mutated by later cache activity", procs, k)
			}
			if !reflect.DeepEqual(snaps[k].candidates, idxs[k].candidates) {
				t.Fatalf("procs=%d: batch %d candidate lists mutated by later cache activity", procs, k)
			}
		}
	}
}

// TestEngineCacheRecyclesWorkerStructs walks the free list through a
// departure/return cycle: departed workers land on the free list, returning
// ones are served from it, and the stats/occupancy counters agree at every
// step.
func TestEngineCacheRecyclesWorkerStructs(t *testing.T) {
	rng := rand.New(rand.NewSource(514))
	in := randomInstance(rng, 16, 24, 3, false)
	cache := NewEngineCache()

	var tasks []*model.Task
	for i := range in.Tasks {
		tasks = append(tasks, &in.Tasks[i])
	}
	mk := func(now float64, keep func(i int) bool) *Batch {
		var bws []BatchWorker
		for i := range in.Workers {
			if keep(i) {
				w := &in.Workers[i]
				bws = append(bws, BatchWorker{W: w, Loc: w.Loc, ReadyAt: now, DistBudget: w.MaxDist})
			}
		}
		return NewBatch(in, bws, tasks, nil)
	}

	cache.Attach(mk(0, func(int) bool { return true }))
	if got := cache.PoolOccupancy(); got != 0 {
		t.Fatalf("pool occupancy after first batch = %d, want 0", got)
	}

	// The odd workers depart; their structs must be pooled.
	odds := len(in.Workers) / 2
	b2 := mk(4, func(i int) bool { return i%2 == 0 })
	cache.Attach(b2)
	if err := b2.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	if got := cache.PoolOccupancy(); got != odds {
		t.Fatalf("pool occupancy after departures = %d, want %d", got, odds)
	}
	if got := cache.Stats().WorkersPooled; got != 0 {
		t.Fatalf("WorkersPooled before any return = %d, want 0", got)
	}

	// Everyone returns; the odd workers must be rebuilt from recycled structs.
	b3 := mk(8, func(int) bool { return true })
	cache.Attach(b3)
	if err := b3.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().WorkersPooled; got != odds {
		t.Fatalf("WorkersPooled after returns = %d, want %d", got, odds)
	}
	if got := cache.PoolOccupancy(); got != 0 {
		t.Fatalf("pool occupancy after returns = %d, want 0", got)
	}
}
