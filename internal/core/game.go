package core

import (
	"fmt"
	"math/rand"

	"dasc/internal/model"
)

// GameOptions configures DASC_Game.
type GameOptions struct {
	// Alpha is the normalisation parameter α of Equation 3 splitting each
	// task's unit value into (α−1)/α Utility_Self and 1/α
	// Utility_Dependency. Values ≤ 1 fall back to the default 10.
	Alpha float64
	// Threshold is the termination threshold on the strategy-update ratio:
	// the round loop stops when the fraction of workers changing strategy
	// in a round drops to or below it. 0 is the strict Nash-equilibrium
	// condition (the paper's Game); 0.05 is the paper's Game-5%.
	Threshold float64
	// MaxRounds caps the best-response rounds as a safety net; zero means
	// 64 + 4·min(n_b, m_b), comfortably above the observed convergence.
	MaxRounds int
	// GreedyInit seeds the initial strategies from DASC_Greedy instead of
	// uniformly random choices — the paper's G-G heuristic.
	GreedyInit bool
	// ShuffleOrder visits workers in a fresh random order every
	// best-response round instead of Algorithm 3's fixed order. Random
	// sweeps can escape order-induced equilibria at the cost of slightly
	// slower convergence; still deterministic for a fixed Seed.
	ShuffleOrder bool
	// Seed drives the random initialisation and conflict resolution.
	Seed int64
	// DisableWorklist restores the naive full sweep: every round re-evaluates
	// every worker's whole strategy set. The default (false) runs the
	// incremental worklist engine, which skips workers whose neighbourhood
	// did not change since their last evaluation — bit-exact with the naive
	// sweep including the RNG stream (VerifyWorklist is the differential
	// cross-check). The flag exists for A/B benchmarks and debugging,
	// mirroring the platforms' DisableEngineCache.
	DisableWorklist bool
}

// Game implements DASC_Game (Algorithm 3): model the batch as a potential
// game, run best-response dynamics to (near) equilibrium, then resolve each
// multi-claimed task to a single worker and drop dependency-violating
// assignments.
type Game struct {
	opt GameOptions
}

// NewGame returns a DASC_Game allocator.
func NewGame(opt GameOptions) *Game {
	if opt.Alpha <= 1 {
		opt.Alpha = 10
	}
	if opt.Threshold < 0 {
		opt.Threshold = 0
	}
	return &Game{opt: opt}
}

// Name implements Allocator.
func (g *Game) Name() string {
	switch {
	case g.opt.GreedyInit:
		return NameGG
	case g.opt.Threshold > 0:
		return NameGame5
	default:
		return NameGame
	}
}

// Options returns the game's effective configuration.
func (g *Game) Options() GameOptions { return g.opt }

// WithWorklistDisabled returns a copy of the allocator with the incremental
// worklist engine disabled (true = naive full sweep) or enabled. The
// platforms use it to honour their DisableGameWorklist config flags without
// reconstructing the allocator.
func (g *Game) WithWorklistDisabled(disable bool) *Game {
	ng := *g
	ng.opt.DisableWorklist = disable
	return &ng
}

// GameTrace reports how a best-response run went; retrievable via AssignTraced.
type GameTrace struct {
	Rounds       int       // best-response rounds executed
	Converged    bool      // reached the termination condition before MaxRounds
	UpdateRatios []float64 // per-round fraction of workers that switched
	FinalUtility float64   // U(S) at termination
	Active       int       // workers with a non-empty strategy set
	Evaluated    int64     // best responses computed across all rounds
	Skipped      int64     // clean workers skipped by the worklist engine
	Moved        int64     // strategy switches across all rounds
}

// Assign implements Allocator.
func (g *Game) Assign(b *Batch) *model.Assignment {
	a, _ := g.AssignTraced(b)
	return a
}

// AssignTraced runs the game and additionally returns its convergence trace.
func (g *Game) AssignTraced(b *Batch) (*model.Assignment, *GameTrace) {
	rng := newRNG(g.opt.Seed)
	gs := newGameState(b, g.opt.Alpha)
	defer gs.release()
	idx := b.Index()
	trace := &GameTrace{}

	g.initStrategies(b, gs, idx, rng)

	maxRounds := g.opt.MaxRounds
	if maxRounds <= 0 {
		minNM := len(b.Workers)
		if len(b.Tasks) < minNM {
			minNM = len(b.Tasks)
		}
		maxRounds = 64 + 4*minNM
	}

	active := 0
	for wi := range b.Workers {
		if len(idx.StrategySet(wi)) > 0 {
			active++
		}
	}
	trace.Active = active
	if active == 0 {
		b.rec.SetGameStats(0, 0, 0, 0, 0)
		return model.NewAssignment(), trace
	}

	order := make([]int, len(b.Workers))
	for i := range order {
		order[i] = i
	}
	if g.opt.DisableWorklist {
		g.sweepNaive(gs, idx, rng, order, maxRounds, active, trace)
		trace.FinalUtility = gs.totalUtility()
	} else {
		wl := newGameWorklist(gs)
		g.sweepWorklist(gs, wl, idx, rng, order, maxRounds, active, trace)
		trace.FinalUtility = wl.totalUtility(gs)
		wl.release()
	}
	b.rec.SetGameStats(trace.Rounds, active, trace.Evaluated, trace.Skipped, trace.Moved)

	// Resolution: one worker per task (random among claimants), then the
	// dependency fixpoint removes assignments whose dependencies ended up
	// unassigned.
	return finishAssignment(b, g.resolve(b, gs, rng)), trace
}

// initStrategies seeds the initial profile: a random strategy per worker
// (Algorithm 3 line 2), or the DASC_Greedy assignment for G-G with
// greedy-unassigned workers falling back to a random strategy. The greedy
// seeding stays in the index domain end to end — worker→task index pairs
// filtered by the index-domain dependency fixpoint — instead of the old
// map[WorkerID]TaskID round-trip through IDs.
func (g *Game) initStrategies(b *Batch, gs *gameState, idx *BatchIndex, rng *rand.Rand) {
	if g.opt.GreedyInit {
		taskOf := NewGreedyOpt(GreedyOptions{}).assignIndices(b)
		dependencyFixpointIndexed(b, taskOf)
		for wi := range b.Workers {
			if ti := taskOf[wi]; ti >= 0 {
				gs.move(wi, int(ti))
			} else if s := idx.StrategySet(wi); len(s) > 0 {
				gs.move(wi, int(s[rng.Intn(len(s))]))
			}
		}
		return
	}
	for wi := range b.Workers {
		if s := idx.StrategySet(wi); len(s) > 0 {
			gs.move(wi, int(s[rng.Intn(len(s))]))
		}
	}
}

// sweepNaive is Algorithm 3's literal round loop: every round re-evaluates
// every worker's full strategy set. It is the reference the worklist engine
// must match bit-exactly, kept reachable via GameOptions.DisableWorklist.
func (g *Game) sweepNaive(gs *gameState, idx *BatchIndex, rng *rand.Rand, order []int, maxRounds, active int, trace *GameTrace) {
	for round := 0; round < maxRounds; round++ {
		changed := 0
		if g.opt.ShuffleOrder {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, wi := range order {
			set := idx.StrategySet(wi)
			if len(set) == 0 {
				continue
			}
			trace.Evaluated++
			cur := gs.strategy[wi]
			bestTi := cur
			bestU := gs.utility(cur, cur)
			for _, t := range set {
				ti := int(t)
				if ti == cur {
					continue
				}
				if u := gs.utility(ti, cur); u > bestU+utilityEps {
					bestU = u
					bestTi = ti
				}
			}
			if bestTi != cur {
				gs.move(wi, bestTi)
				changed++
				trace.Moved++
			}
		}
		trace.Rounds++
		ratio := float64(changed) / float64(active)
		trace.UpdateRatios = append(trace.UpdateRatios, ratio)
		if ratio <= g.opt.Threshold {
			trace.Converged = true
			return
		}
	}
}

// sweepWorklist is the incremental engine: the same rounds in the same
// (possibly shuffled) order, but clean workers — no count or liveness
// boolean their utility evaluation reads has changed since their last
// evaluation — are skipped, and dirty workers are evaluated through the
// worklist's O(1)-depsLive fast path with the utility(cur, cur) baseline
// served from cache when still valid. Skipping consumes no RNG draws and the
// shuffle still runs every round, so the move sequence, update ratios,
// termination round and final profile are bit-exact with sweepNaive
// (DESIGN.md §3.11; VerifyWorklist checks it).
func (g *Game) sweepWorklist(gs *gameState, wl *gameWorklist, idx *BatchIndex, rng *rand.Rand, order []int, maxRounds, active int, trace *GameTrace) {
	for round := 0; round < maxRounds; round++ {
		changed := 0
		if g.opt.ShuffleOrder {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, wi := range order {
			set := idx.StrategySet(wi)
			if len(set) == 0 {
				continue
			}
			if !wl.dirty[wi] {
				trace.Skipped++
				continue
			}
			wl.dirty[wi] = false
			trace.Evaluated++
			cur := gs.strategy[wi]
			bestTi, bestU := wl.bestResponse(gs, set, wi)
			if bestTi != cur {
				gs.move(wi, bestTi)
				wl.markMove(gs, idx, cur, bestTi)
				// bestU — computed as utility(bestTi, cur) pre-move — is
				// exactly utility(bestTi, bestTi) post-move: same claimant
				// count, same liveness perturbation. Seed the baseline cache
				// after markMove so the move's own invalidation doesn't
				// erase it.
				wl.curU[bestTi] = bestU
				wl.curUValid[bestTi] = true
				changed++
				trace.Moved++
			}
		}
		trace.Rounds++
		ratio := float64(changed) / float64(active)
		trace.UpdateRatios = append(trace.UpdateRatios, ratio)
		if ratio <= g.opt.Threshold {
			trace.Converged = true
			return
		}
	}
}

// VerifyWorklist runs the batch through both best-response engines — the
// incremental worklist sweep and the naive full sweep — under identically
// seeded RNGs and returns an error describing the first divergence, or nil.
// It is the game's differential cross-check, the same pattern VerifyIndex
// provides for the candidate engine: assignments, round counts, convergence,
// per-round update ratios and the final utility must all agree exactly.
func (g *Game) VerifyWorklist(b *Batch) error {
	// The reference runs are bookkeeping, not batch work: hide the recorder
	// so verification doesn't overwrite the batch's game stats.
	saved := b.rec
	b.rec = nil
	defer func() { b.rec = saved }()

	fast := *g
	fast.opt.DisableWorklist = false
	slow := *g
	slow.opt.DisableWorklist = true
	af, tf := fast.AssignTraced(b)
	as, ts := slow.AssignTraced(b)
	if af.String() != as.String() {
		return fmt.Errorf("core: game worklist assignment diverges: worklist %v, naive %v", af, as)
	}
	if tf.Rounds != ts.Rounds || tf.Converged != ts.Converged {
		return fmt.Errorf("core: game worklist rounds diverge: worklist %d (converged=%v), naive %d (converged=%v)",
			tf.Rounds, tf.Converged, ts.Rounds, ts.Converged)
	}
	if !float64SlicesEqual(tf.UpdateRatios, ts.UpdateRatios) {
		return fmt.Errorf("core: game worklist update ratios diverge: worklist %v, naive %v", tf.UpdateRatios, ts.UpdateRatios)
	}
	if tf.FinalUtility != ts.FinalUtility {
		return fmt.Errorf("core: game worklist final utility diverges: worklist %v, naive %v", tf.FinalUtility, ts.FinalUtility)
	}
	if tf.Moved != ts.Moved {
		return fmt.Errorf("core: game worklist move count diverges: worklist %d, naive %d", tf.Moved, ts.Moved)
	}
	return nil
}

// utilityEps guards the strict-improvement test against floating-point
// noise; without it equal-utility oscillation could stall convergence.
const utilityEps = 1e-12

// resolve picks one claimant per claimed task. Among a task's claimants the
// winner is chosen uniformly at random (the paper randomly selects one);
// losers stay idle for this batch. The claimant lists are laid out flat in
// the state's pooled counting-sort scratch — ascending worker order within
// each task and one RNG draw per claimed task, exactly like the [][]int
// layout it replaces, so the draw sequence (and thus every downstream
// winner) is unchanged.
func (g *Game) resolve(b *Batch, gs *gameState, rng *rand.Rand) *model.Assignment {
	n := len(b.Tasks)
	off := grown(gs.claimOff, n+1)
	off[0] = 0
	for ti := 0; ti < n; ti++ {
		off[ti+1] = off[ti] + int32(gs.claims[ti])
	}
	dat := grown(gs.claimDat, int(off[n]))
	cur := grown(gs.claimCur, n)
	copy(cur, off[:n])
	for wi, ti := range gs.strategy {
		if ti >= 0 {
			dat[cur[ti]] = int32(wi)
			cur[ti]++
		}
	}
	gs.claimOff, gs.claimDat, gs.claimCur = off, dat, cur

	out := model.NewAssignment()
	for ti := 0; ti < n; ti++ {
		ws := dat[off[ti]:off[ti+1]]
		if len(ws) == 0 {
			continue
		}
		wi := ws[rng.Intn(len(ws))]
		out.Add(b.Workers[wi].W.ID, b.Tasks[ti].ID)
	}
	return out
}

// dependencyFixpointIndexed is DependencyFixpoint in the index domain: it
// filters taskOf (worker index → claimed task index, -1 = unassigned) in
// place, dropping assignments whose task has a dependency that is neither
// satisfied by earlier batches nor kept in the assignment, until stable.
// Chaotic iteration of the same monotone removal operator converges to the
// same greatest fixpoint as the ID-domain version.
func dependencyFixpointIndexed(b *Batch, taskOf []int32) {
	kept := make([]bool, len(b.Tasks))
	for _, ti := range taskOf {
		if ti >= 0 {
			kept[ti] = true
		}
	}
	for {
		dropped := false
		for wi, ti := range taskOf {
			if ti < 0 {
				continue
			}
			ok := true
			for _, d := range b.Tasks[ti].Deps {
				if b.Satisfied[d] {
					continue
				}
				if di := b.TaskIndex(d); di < 0 || !kept[di] {
					ok = false
					break
				}
			}
			if !ok {
				kept[ti] = false
				taskOf[wi] = -1
				dropped = true
			}
		}
		if !dropped {
			return
		}
	}
}
