package core

import (
	"math/rand"

	"dasc/internal/model"
)

// GameOptions configures DASC_Game.
type GameOptions struct {
	// Alpha is the normalisation parameter α of Equation 3 splitting each
	// task's unit value into (α−1)/α Utility_Self and 1/α
	// Utility_Dependency. Values ≤ 1 fall back to the default 10.
	Alpha float64
	// Threshold is the termination threshold on the strategy-update ratio:
	// the round loop stops when the fraction of workers changing strategy
	// in a round drops to or below it. 0 is the strict Nash-equilibrium
	// condition (the paper's Game); 0.05 is the paper's Game-5%.
	Threshold float64
	// MaxRounds caps the best-response rounds as a safety net; zero means
	// 64 + 4·min(n_b, m_b), comfortably above the observed convergence.
	MaxRounds int
	// GreedyInit seeds the initial strategies from DASC_Greedy instead of
	// uniformly random choices — the paper's G-G heuristic.
	GreedyInit bool
	// ShuffleOrder visits workers in a fresh random order every
	// best-response round instead of Algorithm 3's fixed order. Random
	// sweeps can escape order-induced equilibria at the cost of slightly
	// slower convergence; still deterministic for a fixed Seed.
	ShuffleOrder bool
	// Seed drives the random initialisation and conflict resolution.
	Seed int64
}

// Game implements DASC_Game (Algorithm 3): model the batch as a potential
// game, run best-response dynamics to (near) equilibrium, then resolve each
// multi-claimed task to a single worker and drop dependency-violating
// assignments.
type Game struct {
	opt GameOptions
}

// NewGame returns a DASC_Game allocator.
func NewGame(opt GameOptions) *Game {
	if opt.Alpha <= 1 {
		opt.Alpha = 10
	}
	if opt.Threshold < 0 {
		opt.Threshold = 0
	}
	return &Game{opt: opt}
}

// Name implements Allocator.
func (g *Game) Name() string {
	switch {
	case g.opt.GreedyInit:
		return NameGG
	case g.opt.Threshold > 0:
		return NameGame5
	default:
		return NameGame
	}
}

// Options returns the game's effective configuration.
func (g *Game) Options() GameOptions { return g.opt }

// GameTrace reports how a best-response run went; retrievable via AssignTraced.
type GameTrace struct {
	Rounds       int       // best-response rounds executed
	Converged    bool      // reached the termination condition before MaxRounds
	UpdateRatios []float64 // per-round fraction of workers that switched
	FinalUtility float64   // U(S) at termination
}

// Assign implements Allocator.
func (g *Game) Assign(b *Batch) *model.Assignment {
	a, _ := g.AssignTraced(b)
	return a
}

// AssignTraced runs the game and additionally returns its convergence trace.
func (g *Game) AssignTraced(b *Batch) (*model.Assignment, *GameTrace) {
	rng := newRNG(g.opt.Seed)
	gs := newGameState(b, g.opt.Alpha)
	strategies := b.StrategySets()
	trace := &GameTrace{}

	// Initialisation: random strategy per worker (Algorithm 3 line 2), or
	// the DASC_Greedy assignment for G-G; greedy-unassigned workers fall
	// back to a random strategy.
	if g.opt.GreedyInit {
		greedy := NewGreedyOpt(GreedyOptions{}).Assign(b)
		taskOf := make(map[model.WorkerID]model.TaskID, greedy.Size())
		for _, p := range greedy.Pairs {
			taskOf[p.Worker] = p.Task
		}
		for wi := range b.Workers {
			if tid, ok := taskOf[b.Workers[wi].W.ID]; ok {
				gs.move(wi, b.TaskIndex(tid))
			} else if s := strategies[wi]; len(s) > 0 {
				gs.move(wi, s[rng.Intn(len(s))])
			}
		}
	} else {
		for wi := range b.Workers {
			if s := strategies[wi]; len(s) > 0 {
				gs.move(wi, s[rng.Intn(len(s))])
			}
		}
	}

	maxRounds := g.opt.MaxRounds
	if maxRounds <= 0 {
		minNM := len(b.Workers)
		if len(b.Tasks) < minNM {
			minNM = len(b.Tasks)
		}
		maxRounds = 64 + 4*minNM
	}

	active := 0
	for wi := range b.Workers {
		if len(strategies[wi]) > 0 {
			active++
		}
	}
	if active == 0 {
		return model.NewAssignment(), trace
	}

	order := make([]int, len(b.Workers))
	for i := range order {
		order[i] = i
	}
	for round := 0; round < maxRounds; round++ {
		changed := 0
		if g.opt.ShuffleOrder {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, wi := range order {
			set := strategies[wi]
			if len(set) == 0 {
				continue
			}
			cur := gs.strategy[wi]
			bestTi := cur
			bestU := gs.utility(cur, cur)
			for _, ti := range set {
				if ti == cur {
					continue
				}
				if u := gs.utility(ti, cur); u > bestU+utilityEps {
					bestU = u
					bestTi = ti
				}
			}
			if bestTi != cur {
				gs.move(wi, bestTi)
				changed++
			}
		}
		trace.Rounds++
		ratio := float64(changed) / float64(active)
		trace.UpdateRatios = append(trace.UpdateRatios, ratio)
		if ratio <= g.opt.Threshold {
			trace.Converged = true
			break
		}
	}
	trace.FinalUtility = gs.totalUtility()

	// Resolution: one worker per task (random among claimants), then the
	// dependency fixpoint removes assignments whose dependencies ended up
	// unassigned.
	return finishAssignment(b, g.resolve(b, gs, rng)), trace
}

// utilityEps guards the strict-improvement test against floating-point
// noise; without it equal-utility oscillation could stall convergence.
const utilityEps = 1e-12

// resolve picks one claimant per claimed task. Among a task's claimants the
// winner is chosen uniformly at random (the paper randomly selects one);
// losers stay idle for this batch.
func (g *Game) resolve(b *Batch, gs *gameState, rng *rand.Rand) *model.Assignment {
	claimants := make([][]int, len(b.Tasks))
	for wi, ti := range gs.strategy {
		if ti >= 0 {
			claimants[ti] = append(claimants[ti], wi)
		}
	}
	out := model.NewAssignment()
	for ti, ws := range claimants {
		if len(ws) == 0 {
			continue
		}
		wi := ws[rng.Intn(len(ws))]
		out.Add(b.Workers[wi].W.ID, b.Tasks[ti].ID)
	}
	return out
}
