package core

import (
	"sync"

	"dasc/internal/model"
)

// gameWiring is the batch-invariant dependency structure Equation 3 is
// evaluated over: the unsatisfied-dependency relation and its inverse as flat
// CSR slices, plus the per-task dependency counts, weights and liveness
// preconditions. It depends only on the batch's task list and satisfied set —
// never on strategies — so it is built once per batch (Batch.gameWiring) and
// shared read-only by every best-response run over that batch, including the
// paired runs of VerifyWorklist and repeated Assign calls in benchmarks.
type gameWiring struct {
	// deps(ti) = depDat[depOff[ti]:depOff[ti+1]] lists the pending-task
	// indexes of ti's unsatisfied dependencies; dependants(ti) is the inverse
	// relation. satisfiedDeps[ti] counts dependencies met by earlier batches.
	// A dependency outside the batch and not satisfied makes the task
	// permanently dead this batch (deadTask).
	depOff       []int32
	depDat       []int32
	dependantOff []int32
	dependantDat []int32

	depCount      []int32 // |D_t| (full dependency-set size, for the α·|D_t| share)
	deadTask      []bool
	satisfiedDeps []int32
	weight        []float64 // effective task weights (1 in the paper's setting)
}

// gameWiring returns the batch's dependency wiring, building it on first use.
// Like Index, the result is immutable and safe for concurrent readers.
func (b *Batch) gameWiring() *gameWiring {
	b.wireOnce.Do(func() { b.wire = buildGameWiring(b) })
	return b.wire
}

// buildGameWiring assembles the wiring: one pass over the tasks' dependency
// lists to produce the dep CSR, then a count/prefix/fill inversion into the
// dependant CSR.
func buildGameWiring(b *Batch) *gameWiring {
	n := len(b.Tasks)
	w := &gameWiring{
		depOff:        make([]int32, n+1),
		dependantOff:  make([]int32, n+1),
		depCount:      make([]int32, n),
		deadTask:      make([]bool, n),
		satisfiedDeps: make([]int32, n),
		weight:        make([]float64, n),
	}

	// Duplicate dependency entries (possible in instances that bypass
	// Validate) are collapsed so |D_t| and the dependant lists stay true to
	// the set semantics of Equation 3. The generation stamp is the task index
	// plus one, so the map never needs clearing between tasks.
	seen := make(map[model.TaskID]int)
	for ti, t := range b.Tasks {
		w.weight[ti] = t.EffWeight()
		gen := ti + 1
		for _, d := range t.Deps {
			if seen[d] == gen {
				continue
			}
			seen[d] = gen
			w.depCount[ti]++
			if b.Satisfied[d] {
				w.satisfiedDeps[ti]++
				continue
			}
			di := b.TaskIndex(d)
			if di < 0 {
				w.deadTask[ti] = true
				continue
			}
			w.depDat = append(w.depDat, int32(di))
		}
		w.depOff[ti+1] = int32(len(w.depDat))
	}

	// Invert into the dependant CSR: count, prefix-sum, fill. Scanning tasks
	// ascending keeps every dependant list ascending, exactly the append
	// order the old [][]int wiring produced.
	cnt := make([]int32, n)
	for _, di := range w.depDat {
		cnt[di]++
	}
	off := int32(0)
	for ti := 0; ti < n; ti++ {
		w.dependantOff[ti] = off
		off += cnt[ti]
	}
	w.dependantOff[n] = off
	w.dependantDat = make([]int32, off)
	copy(cnt, w.dependantOff[:n])
	for ti := 0; ti < n; ti++ {
		for _, di := range w.deps(ti) {
			w.dependantDat[cnt[di]] = int32(ti)
			cnt[di]++
		}
	}
	return w
}

// deps returns the pending-task indexes of ti's unsatisfied dependencies.
func (w *gameWiring) deps(ti int) []int32 {
	return w.depDat[w.depOff[ti]:w.depOff[ti+1]]
}

// dependants returns the pending-task indexes that depend on ti, ascending.
func (w *gameWiring) dependants(ti int) []int32 {
	return w.dependantDat[w.dependantOff[ti]:w.dependantOff[ti+1]]
}

// gameState holds the mutable state of one best-response run: each worker's
// current strategy and the per-task claimant counts, over the batch's shared
// read-only dependency wiring (embedded, so gs.deps, gs.weight, gs.deadTask
// etc. resolve through it).
//
// The wiring is flat CSR slices instead of the per-batch [][]int it used to
// be, and whole gameStates recycle through a sync.Pool (newGameState /
// release), so in steady state a batch's best-response run allocates nothing
// beyond the once-per-batch wiring: the strategy and claims slices resize in
// place and only grow when a larger batch arrives.
type gameState struct {
	b     *Batch
	alpha float64
	*gameWiring

	strategy []int // worker index -> pending task index, or -1 (idle)
	claims   []int // pending task index -> number of claimants nw_t

	// harm memoizes harmonic numbers (harm[n] = H(n)), grown on demand and
	// kept across pool recycles — potential() calls it once per claimed task.
	harm []float64

	// claimOff/claimDat/claimCur are resolve's counting-sort scratch: the
	// claimant lists of all tasks laid out CSR-style in one flat buffer
	// instead of a [][]int of per-task appends.
	claimOff []int32
	claimDat []int32
	claimCur []int32
}

// gameStatePool recycles gameStates across batches. Only AssignTraced
// releases states back; tests that hold one past newGameState simply let the
// GC take it.
var gameStatePool = sync.Pool{New: func() any { return new(gameState) }}

// grown returns a length-n slice reusing s's capacity when possible. The
// contents are unspecified; callers must initialise them.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// newGameState wires a pooled state to the batch's dependency structure.
// Pair it with release() on paths that own the state to completion.
func newGameState(b *Batch, alpha float64) *gameState {
	gs := gameStatePool.Get().(*gameState)
	gs.reset(b, alpha)
	return gs
}

// release returns the state (and its buffers) to the pool, dropping the
// references that would otherwise pin the batch in memory.
func (gs *gameState) release() {
	gs.b = nil
	gs.gameWiring = nil
	gameStatePool.Put(gs)
}

// reset points the state at a new batch, reusing the mutable buffers. The
// dependency wiring comes from the batch's once-built cache, so reset is
// O(n+m) — it no longer rebuilds the CSRs on every Assign.
func (gs *gameState) reset(b *Batch, alpha float64) {
	n, m := len(b.Tasks), len(b.Workers)
	gs.b, gs.alpha = b, alpha
	gs.gameWiring = b.gameWiring()
	gs.strategy = grown(gs.strategy, m)
	for i := range gs.strategy {
		gs.strategy[i] = -1
	}
	gs.claims = grown(gs.claims, n)
	clear(gs.claims)
}

// live reports a_t for pending task ti under the current claims: a task is
// live when at least one worker claims it. extraTi (if ≥ 0) is treated as
// claimed by one additional worker, and minusTi as claimed by one fewer —
// the pattern needed to evaluate a unilateral deviation without mutating.
func (gs *gameState) live(ti, extraTi, minusTi int) bool {
	c := gs.claims[ti]
	if ti == extraTi {
		c++
	}
	if ti == minusTi {
		c--
	}
	return c > 0
}

// depsLive reports ∏_{f∈D_t} a_f for pending task ti: every dependency
// satisfied earlier or currently claimed. Dead tasks are never live.
func (gs *gameState) depsLive(ti, extraTi, minusTi int) bool {
	if gs.deadTask[ti] {
		return false
	}
	for _, di := range gs.deps(ti) {
		if !gs.live(int(di), extraTi, minusTi) {
			return false
		}
	}
	return true
}

// utility evaluates U_w (Equation 3) for a worker hypothetically claiming
// task ti, given that the worker's current claim is curTi (-1 if idle).
// The evaluation perturbs the claim counts by moving the worker from curTi
// to ti without mutating the state.
func (gs *gameState) utility(ti, curTi int) float64 {
	if ti < 0 {
		return 0
	}
	extra, minus := ti, curTi
	if ti == curTi { // no move: counts unchanged
		extra, minus = -1, -1
	}
	nw := float64(gs.claims[ti])
	if ti != curTi {
		nw++
	}
	if nw <= 0 {
		return 0
	}
	var u float64
	// Utility_Self: w_t·(α−1)/α · ∏_{f∈D_t} a_f / nw_t for dependent tasks,
	// w_t/nw_t for root tasks (w_t = 1 in the paper's setting).
	if gs.depCount[ti] > 0 {
		if gs.depsLive(ti, extra, minus) {
			u += gs.weight[ti] * (gs.alpha - 1) / (gs.alpha * nw)
		}
	} else {
		u += gs.weight[ti] / nw
	}
	// Utility_Dependency: for every pending dependant l with t ∈ D_l,
	// w_l·∏_{f∈D_l∪{l}} a_f / (α·|D_l|·nw_t).
	for _, li := range gs.dependants(ti) {
		if !gs.live(int(li), extra, minus) {
			continue
		}
		if !gs.depsLive(int(li), extra, minus) {
			continue
		}
		u += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]) * nw)
	}
	return u
}

// move switches worker wi's strategy to ti (-1 = idle), updating counts.
func (gs *gameState) move(wi, ti int) {
	cur := gs.strategy[wi]
	if cur == ti {
		return
	}
	if cur >= 0 {
		gs.claims[cur]--
	}
	if ti >= 0 {
		gs.claims[ti]++
	}
	gs.strategy[wi] = ti
}

// totalUtility returns U(S) = Σ_w U_w(s_w, s̄_w) under the current strategy
// profile.
func (gs *gameState) totalUtility() float64 {
	var sum float64
	for wi := range gs.strategy {
		sum += gs.utility(gs.strategy[wi], gs.strategy[wi])
	}
	return sum
}

// potential returns the congestion-game potential Φ(S) = Σ_t V_t(S)·H(nw_t)
// where V_t is the task's full (unshared) utility value and H the harmonic
// number. For dependency-free instances the best-response dynamic increases
// Φ by exactly the deviating worker's utility gain (the exact-potential
// identity of Theorem IV.1); the property tests rely on this.
func (gs *gameState) potential() float64 {
	var phi float64
	for ti := range gs.claims {
		n := gs.claims[ti]
		if n == 0 {
			continue
		}
		var v float64
		if gs.depCount[ti] > 0 {
			if gs.depsLive(ti, -1, -1) {
				v += gs.weight[ti] * (gs.alpha - 1) / gs.alpha
			}
		} else {
			v += gs.weight[ti]
		}
		for _, li := range gs.dependants(ti) {
			if gs.live(int(li), -1, -1) && gs.depsLive(int(li), -1, -1) {
				v += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]))
			}
		}
		phi += v * gs.harmonic(n)
	}
	return phi
}

// harmonic returns H(n) from the state's grow-on-demand memo table. Entries
// are built incrementally in the same ascending order as the open-coded sum,
// so every memoized value is bit-exact with the package-level harmonic(n)
// (TestHarmonicMemoMatchesLoop pins this).
func (gs *gameState) harmonic(n int) float64 {
	if n < 0 {
		n = 0
	}
	if len(gs.harm) == 0 {
		gs.harm = append(gs.harm, 0)
	}
	for len(gs.harm) <= n {
		i := len(gs.harm)
		gs.harm = append(gs.harm, gs.harm[i-1]+1/float64(i))
	}
	return gs.harm[n]
}

// harmonic returns H(n) = 1 + 1/2 + … + 1/n.
func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
