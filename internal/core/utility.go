package core

import "dasc/internal/model"

// gameState holds the mutable state of one best-response run: each worker's
// current strategy and the per-task claimant counts, plus the dependency
// wiring needed to evaluate Equation 3 quickly.
type gameState struct {
	b     *Batch
	alpha float64

	strategy []int // worker index -> pending task index, or -1 (idle)
	claims   []int // pending task index -> number of claimants nw_t

	// deps[ti] lists the pending-task indexes of ti's unsatisfied
	// dependencies; satisfiedDeps[ti] counts dependencies met by earlier
	// batches. A dependency outside the batch and not satisfied makes the
	// task permanently dead this batch (deadTask).
	deps          [][]int
	depCount      []int // |D_t| (full dependency-set size, for the α·|D_t| share)
	dependants    [][]int
	deadTask      []bool
	satisfiedDeps []int
	weight        []float64 // effective task weights (1 in the paper's setting)
}

// newGameState wires the dependency structure of the batch.
func newGameState(b *Batch, alpha float64) *gameState {
	n := len(b.Tasks)
	gs := &gameState{
		b:             b,
		alpha:         alpha,
		strategy:      make([]int, len(b.Workers)),
		claims:        make([]int, n),
		deps:          make([][]int, n),
		depCount:      make([]int, n),
		dependants:    make([][]int, n),
		deadTask:      make([]bool, n),
		satisfiedDeps: make([]int, n),
		weight:        make([]float64, n),
	}
	for i := range gs.strategy {
		gs.strategy[i] = -1
	}
	// Duplicate dependency entries (possible in instances that bypass
	// Validate) are collapsed so |D_t| and the dependant lists stay true to
	// the set semantics of Equation 3.
	seen := make(map[model.TaskID]bool)
	for ti, t := range b.Tasks {
		gs.weight[ti] = t.EffWeight()
		clear(seen)
		for _, d := range t.Deps {
			if seen[d] {
				continue
			}
			seen[d] = true
			gs.depCount[ti]++
			if b.Satisfied[d] {
				gs.satisfiedDeps[ti]++
				continue
			}
			di := b.TaskIndex(d)
			if di < 0 {
				gs.deadTask[ti] = true
				continue
			}
			gs.deps[ti] = append(gs.deps[ti], di)
			gs.dependants[di] = append(gs.dependants[di], ti)
		}
	}
	return gs
}

// live reports a_t for pending task ti under the current claims: a task is
// live when at least one worker claims it. extraTi (if ≥ 0) is treated as
// claimed by one additional worker, and minusTi as claimed by one fewer —
// the pattern needed to evaluate a unilateral deviation without mutating.
func (gs *gameState) live(ti, extraTi, minusTi int) bool {
	c := gs.claims[ti]
	if ti == extraTi {
		c++
	}
	if ti == minusTi {
		c--
	}
	return c > 0
}

// depsLive reports ∏_{f∈D_t} a_f for pending task ti: every dependency
// satisfied earlier or currently claimed. Dead tasks are never live.
func (gs *gameState) depsLive(ti, extraTi, minusTi int) bool {
	if gs.deadTask[ti] {
		return false
	}
	for _, di := range gs.deps[ti] {
		if !gs.live(di, extraTi, minusTi) {
			return false
		}
	}
	return true
}

// utility evaluates U_w (Equation 3) for a worker hypothetically claiming
// task ti, given that the worker's current claim is curTi (-1 if idle).
// The evaluation perturbs the claim counts by moving the worker from curTi
// to ti without mutating the state.
func (gs *gameState) utility(ti, curTi int) float64 {
	if ti < 0 {
		return 0
	}
	extra, minus := ti, curTi
	if ti == curTi { // no move: counts unchanged
		extra, minus = -1, -1
	}
	nw := float64(gs.claims[ti])
	if ti != curTi {
		nw++
	}
	if nw <= 0 {
		return 0
	}
	var u float64
	// Utility_Self: w_t·(α−1)/α · ∏_{f∈D_t} a_f / nw_t for dependent tasks,
	// w_t/nw_t for root tasks (w_t = 1 in the paper's setting).
	if gs.depCount[ti] > 0 {
		if gs.depsLive(ti, extra, minus) {
			u += gs.weight[ti] * (gs.alpha - 1) / (gs.alpha * nw)
		}
	} else {
		u += gs.weight[ti] / nw
	}
	// Utility_Dependency: for every pending dependant l with t ∈ D_l,
	// w_l·∏_{f∈D_l∪{l}} a_f / (α·|D_l|·nw_t).
	for _, li := range gs.dependants[ti] {
		if !gs.live(li, extra, minus) {
			continue
		}
		if !gs.depsLive(li, extra, minus) {
			continue
		}
		u += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]) * nw)
	}
	return u
}

// move switches worker wi's strategy to ti (-1 = idle), updating counts.
func (gs *gameState) move(wi, ti int) {
	cur := gs.strategy[wi]
	if cur == ti {
		return
	}
	if cur >= 0 {
		gs.claims[cur]--
	}
	if ti >= 0 {
		gs.claims[ti]++
	}
	gs.strategy[wi] = ti
}

// totalUtility returns U(S) = Σ_w U_w(s_w, s̄_w) under the current strategy
// profile.
func (gs *gameState) totalUtility() float64 {
	var sum float64
	for wi := range gs.strategy {
		sum += gs.utility(gs.strategy[wi], gs.strategy[wi])
	}
	return sum
}

// potential returns the congestion-game potential Φ(S) = Σ_t V_t(S)·H(nw_t)
// where V_t is the task's full (unshared) utility value and H the harmonic
// number. For dependency-free instances the best-response dynamic increases
// Φ by exactly the deviating worker's utility gain (the exact-potential
// identity of Theorem IV.1); the property tests rely on this.
func (gs *gameState) potential() float64 {
	var phi float64
	for ti := range gs.claims {
		n := gs.claims[ti]
		if n == 0 {
			continue
		}
		var v float64
		if gs.depCount[ti] > 0 {
			if gs.depsLive(ti, -1, -1) {
				v += gs.weight[ti] * (gs.alpha - 1) / gs.alpha
			}
		} else {
			v += gs.weight[ti]
		}
		for _, li := range gs.dependants[ti] {
			if gs.live(li, -1, -1) && gs.depsLive(li, -1, -1) {
				v += gs.weight[li] / (gs.alpha * float64(gs.depCount[li]))
			}
		}
		phi += v * harmonic(n)
	}
	return phi
}

// harmonic returns H(n) = 1 + 1/2 + … + 1/n.
func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
