package core

import (
	"math/rand"
	"testing"

	"dasc/internal/geo"
	"dasc/internal/model"
)

func TestEquilibriumQualityExample1(t *testing.T) {
	b := NewStaticBatch(model.Example1())
	q := MeasureEquilibriumQuality(b, GameOptions{}, DFSOptions{}, 8, 1)
	if !q.Exact || q.Optimum != 3 {
		t.Fatalf("optimum = %d exact=%v, want 3/true", q.Optimum, q.Exact)
	}
	if q.Best < q.Worst || q.Best > q.Optimum {
		t.Errorf("inconsistent extremes: %+v", q)
	}
	if q.BestRatio < q.WorstRatio || q.BestRatio > 1 {
		t.Errorf("inconsistent ratios: %+v", q)
	}
	if q.Mean < float64(q.Worst) || q.Mean > float64(q.Best) {
		t.Errorf("mean outside extremes: %+v", q)
	}
	if q.Samples != 8 {
		t.Errorf("Samples = %d", q.Samples)
	}
}

func TestEquilibriumQualityRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 4+rng.Intn(4), 4+rng.Intn(6), 3, true)
		b := NewStaticBatch(in)
		q := MeasureEquilibriumQuality(b, GameOptions{}, DFSOptions{}, 5, int64(trial))
		if q.Best > q.Optimum {
			t.Fatalf("trial %d: equilibrium %d beats exact optimum %d", trial, q.Best, q.Optimum)
		}
		// Theorem IV.2 only lower-bounds equilibria loosely; empirically the
		// worst equilibrium should still assign something when the optimum
		// does (a zero-score equilibrium would mean best-response is broken).
		if q.Optimum > 0 && q.Worst == 0 {
			t.Fatalf("trial %d: zero-score equilibrium with optimum %d", trial, q.Optimum)
		}
	}
}

func TestEquilibriumQualityTruncatedDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	in := randomInstance(rng, 10, 12, 2, true)
	b := NewStaticBatch(in)
	q := MeasureEquilibriumQuality(b, GameOptions{}, DFSOptions{MaxNodes: 3}, 4, 1)
	if q.Exact {
		t.Error("Exact with a 3-node DFS cap")
	}
	if q.Best > q.Optimum {
		t.Error("reference not widened to cover the game's best")
	}
	// samples < 1 clamps.
	q2 := MeasureEquilibriumQuality(b, GameOptions{}, DFSOptions{MaxNodes: 3}, 0, 1)
	if q2.Samples != 1 {
		t.Errorf("Samples = %d, want clamped 1", q2.Samples)
	}
}

// TestAllocatorsHonourCustomMetric: the paper notes the approaches work with
// any distance function; with Manhattan distance the diagonal task becomes
// unreachable while the axis-aligned one stays reachable.
func TestAllocatorsHonourCustomMetric(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{{
			ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 10,
			Skills: model.NewSkillSet(0),
		}},
		Tasks: []model.Task{
			{ID: 0, Loc: mustPt(7, 7), Start: 0, Wait: 100, Requires: 0}, // L1 = 14 > 10, L2 ≈ 9.9 ≤ 10
			{ID: 1, Loc: mustPt(9, 0), Start: 0, Wait: 100, Requires: 0}, // L1 = L2 = 9
		},
	}
	euclid := NewStaticBatch(in)
	if !euclid.Feasible(0, &in.Tasks[0]) {
		t.Fatal("diagonal task should be Euclidean-feasible")
	}
	inM := *in
	inM.Dist = manhattan
	man := NewStaticBatch(&inM)
	if man.Feasible(0, &in.Tasks[0]) {
		t.Fatal("diagonal task should be Manhattan-infeasible")
	}
	a := NewGreedy().Assign(man)
	if a.Size() != 1 || a.Pairs[0].Task != 1 {
		t.Errorf("greedy under Manhattan = %v, want only t1", a)
	}
}

func mustPt(x, y float64) geo.Point { return geo.Pt(x, y) }

func manhattan(a, b geo.Point) float64 { return geo.Manhattan(a, b) }
