package core

import (
	"math/rand"
	"testing"

	"dasc/internal/model"
)

func TestImproveNeverShrinksAndStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), 4+rng.Intn(12), 3, true)
		b := NewStaticBatch(in)
		for _, name := range AllNames() {
			alloc, _ := NewByName(name, int64(trial))
			base := DependencyFixpoint(b, alloc.Assign(b))
			improved := Improve(b, base)
			validateBatchAssignment(t, b, improved)
			if improved.Size() < base.Size() {
				t.Fatalf("trial %d %s: improve shrank %d → %d", trial, name, base.Size(), improved.Size())
			}
			// The base task set must be contained in the improved one.
			got := improved.TaskSet()
			for _, p := range base.Pairs {
				if !got[p.Task] {
					t.Fatalf("trial %d %s: improve dropped task %d", trial, name, p.Task)
				}
			}
		}
	}
}

func TestImproveNeverBeatsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 3+rng.Intn(5), 3+rng.Intn(7), 3, true)
		b := NewStaticBatch(in)
		opt := NewDFS(DFSOptions{}).Assign(b).Size()
		improved := NewImproved(NewRandom(int64(trial))).Assign(b)
		validateBatchAssignment(t, b, improved)
		if improved.Size() > opt {
			t.Fatalf("trial %d: improved %d > optimum %d", trial, improved.Size(), opt)
		}
	}
}

// TestImproveRecoversStrandedWorker: the reshuffle case the greedy cannot
// reach. Worker w0 can do both tasks, w1 only t0. If w0 sits on t0 (a poor
// but valid assignment), Improve must reshuffle: w1→t0, w0→t1.
func TestImproveRecoversStrandedWorker(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0, 1)},
			{ID: 1, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Start: 0, Wait: 100, Requires: 1},
		},
	}
	b := NewStaticBatch(in)
	poor := model.NewAssignment()
	poor.Add(0, 0) // w0 → t0, stranding w1
	improved := Improve(b, poor)
	if improved.Size() != 2 {
		t.Fatalf("improve failed to reshuffle: %v", improved)
	}
	validateBatchAssignment(t, b, improved)
}

// TestImproveUnlocksDependants: adopting a task can make its dependants
// eligible in the next sweep.
func TestImproveUnlocksDependants(t *testing.T) {
	in := &model.Instance{
		Workers: []model.Worker{
			{ID: 0, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
			{ID: 1, Start: 0, Wait: 100, Velocity: 1, MaxDist: 100, Skills: model.NewSkillSet(0)},
		},
		Tasks: []model.Task{
			{ID: 0, Start: 0, Wait: 100, Requires: 0},
			{ID: 1, Start: 0, Wait: 100, Requires: 0, Deps: []model.TaskID{0}},
		},
	}
	b := NewStaticBatch(in)
	improved := Improve(b, model.NewAssignment()) // start from nothing
	if improved.Size() != 2 {
		t.Fatalf("improve from empty = %v, want the whole chain", improved)
	}
}

func TestImprovedAllocatorName(t *testing.T) {
	w := NewImproved(NewGreedy())
	if w.Name() != "Greedy+aug" {
		t.Errorf("Name = %q", w.Name())
	}
	b := NewStaticBatch(model.Example1())
	a := w.Assign(b)
	validateBatchAssignment(t, b, a)
	if a.Size() != 3 {
		t.Errorf("Greedy+aug on Example1 = %d", a.Size())
	}
}
