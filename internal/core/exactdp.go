package core

import (
	"math/bits"

	"dasc/internal/matching"
	"dasc/internal/model"
)

// ExactDP is a second exact solver, independent of the DFS branch-and-bound:
// it enumerates task subsets as bitmasks, keeps only the dependency-closed
// ones, and checks staffability with a maximum bipartite matching. The best
// closed, fully-staffable subset is the optimum, because any valid
// assignment's task set is closed and staffable, and vice versa.
//
// Limited to batches with at most 24 pending tasks (2^24 subsets); larger
// batches return ok=false from AssignExact. Its role is cross-validating DFS
// in tests and tiny deployments, approaching the optimum from a completely
// different algorithmic angle.
type ExactDP struct {
	// MaxTasks overrides the 24-task guard (mostly for tests).
	MaxTasks int
}

// NewExactDP returns the subset-DP exact solver.
func NewExactDP() *ExactDP { return &ExactDP{} }

// Name implements Allocator.
func (e *ExactDP) Name() string { return "ExactDP" }

// Assign implements Allocator. Batches beyond the task limit return an
// empty assignment; use AssignExact to detect that case.
func (e *ExactDP) Assign(b *Batch) *model.Assignment {
	a, _ := e.AssignExact(b)
	return a
}

// AssignExact computes the optimal batch assignment. ok is false when the
// batch exceeds the subset-enumeration limit.
func (e *ExactDP) AssignExact(b *Batch) (*model.Assignment, bool) {
	limit := e.MaxTasks
	if limit <= 0 {
		limit = 24
	}
	m := len(b.Tasks)
	if m > limit {
		return model.NewAssignment(), false
	}

	// depMask[ti] = bitmask of ti's unsatisfied dependencies; dead tasks
	// (dependency outside the batch and unsatisfied) can never be assigned.
	depMask := make([]uint32, m)
	dead := uint32(0)
	for ti, t := range b.Tasks {
		for _, d := range t.Deps {
			if b.Satisfied[d] {
				continue
			}
			di := b.TaskIndex(d)
			if di < 0 {
				dead |= 1 << uint(ti)
				break
			}
			depMask[ti] |= 1 << uint(di)
		}
	}
	candidates := make([][]int, m)
	for ti, t := range b.Tasks {
		candidates[ti] = b.CandidateWorkers(t)
	}

	weights := make([]float64, m)
	maxW := 0.0
	for ti, t := range b.Tasks {
		weights[ti] = t.EffWeight()
		if weights[ti] > maxW {
			maxW = weights[ti]
		}
	}
	bestMask := uint32(0)
	bestWeight := 0.0
	total := uint32(1) << uint(m)
	for mask := uint32(1); mask < total; mask++ {
		// Weight upper bound prunes the matching calls.
		if float64(bits.OnesCount32(mask))*maxW <= bestWeight {
			continue
		}
		if mask&dead != 0 {
			continue
		}
		var weight float64
		for rest := mask; rest != 0; rest &= rest - 1 {
			weight += weights[bits.TrailingZeros32(rest)]
		}
		if weight <= bestWeight {
			continue
		}
		// Closure: every member's dependencies are inside the mask.
		closed := true
		rest := mask
		for rest != 0 {
			ti := bits.TrailingZeros32(rest)
			rest &= rest - 1
			if depMask[ti]&^mask != 0 {
				closed = false
				break
			}
		}
		if !closed {
			continue
		}
		if e.staffable(b, mask, candidates) {
			bestMask, bestWeight = mask, weight
		}
	}
	if bestMask == 0 {
		return model.NewAssignment(), true
	}
	// Materialise one concrete staffing for the winning subset.
	members := make([]int, 0, bits.OnesCount32(bestMask))
	for rest := bestMask; rest != 0; rest &= rest - 1 {
		members = append(members, bits.TrailingZeros32(rest))
	}
	bg, cols := subsetGraph(b, members, candidates)
	matchL, _ := bg.MaxMatchingHK()
	out := model.NewAssignment()
	for row, ti := range members {
		out.Add(b.Workers[cols[matchL[row]]].W.ID, b.Tasks[ti].ID)
	}
	return finishAssignment(b, out), true
}

// staffable reports whether every task in the mask can get a distinct
// feasible worker.
func (e *ExactDP) staffable(b *Batch, mask uint32, candidates [][]int) bool {
	members := make([]int, 0, bits.OnesCount32(mask))
	for rest := mask; rest != 0; rest &= rest - 1 {
		members = append(members, bits.TrailingZeros32(rest))
	}
	bg, _ := subsetGraph(b, members, candidates)
	_, size := bg.MaxMatchingHK()
	return size == len(members)
}

// subsetGraph builds the bipartite graph of the member tasks against the
// union of their candidate workers, returning the worker-index column map.
func subsetGraph(b *Batch, members []int, candidates [][]int) (*matching.Bipartite, []int) {
	colOf := make(map[int]int)
	var cols []int
	bg := matching.NewBipartite(len(members), 0)
	for row, ti := range members {
		for _, wi := range candidates[ti] {
			ci, ok := colOf[wi]
			if !ok {
				ci = len(cols)
				colOf[wi] = ci
				cols = append(cols, wi)
			}
			bg.Adj[row] = append(bg.Adj[row], ci)
		}
	}
	bg.N = len(cols)
	return bg, cols
}
