package core

// EquilibriumQuality summarises how good DASC_Game's Nash equilibria are on
// one batch, the empirical counterpart of Theorem IV.2's price-of-stability /
// price-of-anarchy bounds. Optimum is the exact DFS score (or the best score
// seen, if the DFS truncated); Best/Worst are the extreme equilibrium scores
// over the sampled random initialisations.
type EquilibriumQuality struct {
	Optimum    int
	Exact      bool // Optimum is provably optimal (DFS completed)
	Best       int
	Worst      int
	Mean       float64
	Samples    int
	BestRatio  float64 // empirical price of stability: Best / Optimum
	WorstRatio float64 // empirical price of anarchy:   Worst / Optimum
}

// MeasureEquilibriumQuality runs DASC_Game from `samples` different random
// initialisations (seeds seedBase..seedBase+samples−1) against the DFS
// optimum. Intended for small instances — the DFS is exponential; cap its
// effort through dfsOpt.MaxNodes for larger ones.
func MeasureEquilibriumQuality(b *Batch, opt GameOptions, dfsOpt DFSOptions, samples int, seedBase int64) EquilibriumQuality {
	if samples < 1 {
		samples = 1
	}
	d := NewDFS(dfsOpt)
	q := EquilibriumQuality{
		Optimum: d.Assign(b).Size(),
		Exact:   d.Exact(),
		Samples: samples,
	}
	sum := 0
	for i := 0; i < samples; i++ {
		o := opt
		o.Seed = seedBase + int64(i)
		score := NewGame(o).Assign(b).Size()
		if i == 0 || score > q.Best {
			q.Best = score
		}
		if i == 0 || score < q.Worst {
			q.Worst = score
		}
		sum += score
	}
	q.Mean = float64(sum) / float64(samples)
	// A truncated DFS can be beaten by the game; widen the reference so the
	// ratios stay ≤ 1 and meaningful.
	if q.Best > q.Optimum {
		q.Optimum = q.Best
		q.Exact = false
	}
	if q.Optimum > 0 {
		q.BestRatio = float64(q.Best) / float64(q.Optimum)
		q.WorstRatio = float64(q.Worst) / float64(q.Optimum)
	}
	return q
}
