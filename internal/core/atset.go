package core

// atSet is one associative task set tc_t = ({t} ∪ D_t) \ Satisfied: the
// anchor task plus every not-yet-satisfied dependency, all of which must be
// staffed simultaneously for the anchor to become assignable. Task members
// are stored as indexes into the batch's pending task slice.
type atSet struct {
	anchor  int   // index of t in Batch.Tasks
	members []int // pending task indexes, including the anchor
	alive   int   // number of members not yet assigned this batch
	// weight is the summed effective weight of the alive members — equal to
	// alive under the paper's unit weights, and the greedy selection key in
	// the weighted extension.
	weight float64
}

// atSets builds one associative set per pending task whose dependencies are
// all satisfiable this batch (Satisfied or co-pending); anchors with an
// unreachable dependency are skipped — they cannot be validly assigned in
// batch b no matter what.
//
// Members are deduplicated: a task listing the same dependency twice (legal
// in hand-built instances that bypass Instance.Validate) must not
// double-count the set's weight or make staff demand two distinct workers
// for one task — that would turn a staffable set spuriously infeasible.
func atSets(b *Batch) []*atSet {
	var sets []*atSet
	seen := make(map[int]bool)
	for ti, t := range b.Tasks {
		if !b.DepSatisfiable(t) {
			continue
		}
		s := &atSet{anchor: ti}
		clear(seen)
		seen[ti] = true
		s.members = append(s.members, ti)
		for _, d := range t.Deps {
			if b.Satisfied[d] {
				continue
			}
			di := b.TaskIndex(d)
			if seen[di] {
				continue
			}
			seen[di] = true
			s.members = append(s.members, di)
		}
		s.alive = len(s.members)
		for _, ti := range s.members {
			s.weight += b.Tasks[ti].EffWeight()
		}
		sets = append(sets, s)
	}
	return sets
}

// aliveMembers returns the member task indexes not yet assigned, given the
// assigned marker slice (indexed by pending task index).
func (s *atSet) aliveMembers(assigned []bool) []int {
	out := make([]int, 0, s.alive)
	for _, ti := range s.members {
		if !assigned[ti] {
			out = append(out, ti)
		}
	}
	return out
}

// recount refreshes s.alive and s.weight against the assigned markers,
// returning the alive count. The batch supplies the task weights.
func (s *atSet) recount(b *Batch, assigned []bool) int {
	n := 0
	var w float64
	for _, ti := range s.members {
		if !assigned[ti] {
			n++
			w += b.Tasks[ti].EffWeight()
		}
	}
	s.alive = n
	s.weight = w
	return n
}

// setHeap is a max-heap of associative sets ordered by recorded weight
// (larger first; ties by anchor index ascending for determinism). Entries may
// be stale — pop-time recount handles that lazily.
type setHeap struct {
	entries []setEntry
}

type setEntry struct {
	weight float64
	set    *atSet
}

func (h *setHeap) push(e setEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.entries[p], h.entries[i] = h.entries[i], h.entries[p]
		i = p
	}
}

// less orders entry i before entry j when i has the larger weight (or equal
// weight and smaller anchor).
func (h *setHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.weight != b.weight {
		return a.weight > b.weight
	}
	return a.set.anchor < b.set.anchor
}

func (h *setHeap) pop() (setEntry, bool) {
	if len(h.entries) == 0 {
		return setEntry{}, false
	}
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.less(l, best) {
			best = l
		}
		if r < last && h.less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		h.entries[i], h.entries[best] = h.entries[best], h.entries[i]
		i = best
	}
	return top, true
}

func (h *setHeap) len() int { return len(h.entries) }
