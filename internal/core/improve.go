package core

import (
	"sort"

	"dasc/internal/model"
)

// Improve post-processes a valid batch assignment by matching augmentation:
// it repeatedly tries to add one more pending task whose dependency
// obligations are met by the current assignment (or by Batch.Satisfied),
// re-staffing the whole enlarged task set with a fresh bipartite matching so
// existing workers may be reshuffled to make room. The result is always
// valid, never smaller, and contains the input's task set.
//
// This is an extension beyond the paper: DASC_Greedy commits associative
// sets monotonically and DASC_Game stops at a Nash equilibrium, and both can
// strand a worker that an alternating-path reshuffle would free. Improve
// closes exactly that gap at the cost of one matching per adopted task.
//
// The input must satisfy the dependency constraint (allocator outputs do;
// raw baseline output must go through DependencyFixpoint first).
func Improve(b *Batch, a *model.Assignment) *model.Assignment {
	candidates := make([][]int, len(b.Tasks))
	for ti, t := range b.Tasks {
		candidates[ti] = b.CandidateWorkers(t)
	}

	assigned := make(map[model.TaskID]bool, a.Size())
	var members []int // pending-task indexes currently in the assignment
	for _, p := range a.Pairs {
		assigned[p.Task] = true
		if ti := b.TaskIndex(p.Task); ti >= 0 {
			members = append(members, ti)
		}
	}
	sort.Ints(members)

	// eligible returns pending tasks not yet assigned whose dependencies are
	// met by the current assignment or by earlier batches.
	eligible := func() []int {
		var out []int
		for ti, t := range b.Tasks {
			if assigned[t.ID] {
				continue
			}
			ok := true
			for _, d := range t.Deps {
				if !assigned[d] && !b.Satisfied[d] {
					ok = false
					break
				}
			}
			if ok && len(candidates[ti]) > 0 {
				out = append(out, ti)
			}
		}
		return out
	}

	var matchL []int
	var cols []int
	for {
		adoptedAny := false
		for _, ti := range eligible() {
			trial := append(append([]int(nil), members...), ti)
			bg, trialCols := subsetGraph(b, trial, candidates)
			m, size := bg.MaxMatchingHK()
			if size != len(trial) {
				continue
			}
			members = trial
			matchL, cols = m, trialCols
			assigned[b.Tasks[ti].ID] = true
			adoptedAny = true
		}
		if !adoptedAny {
			break
		}
		// Newly assigned tasks may have unlocked their dependants; loop.
	}
	if matchL == nil {
		// Nothing adopted: return the input unchanged (already canonical).
		return a
	}
	out := model.NewAssignment()
	for row, ti := range members {
		out.Add(b.Workers[cols[matchL[row]]].W.ID, b.Tasks[ti].ID)
	}
	return finishAssignment(b, out)
}

// Improved wraps an allocator with the Improve post-pass.
type Improved struct {
	Inner Allocator
}

// NewImproved returns the inner allocator followed by matching augmentation.
// Raw baseline output is dependency-filtered before improving.
func NewImproved(inner Allocator) *Improved { return &Improved{Inner: inner} }

// Name implements Allocator, e.g. "Greedy+aug".
func (i *Improved) Name() string { return i.Inner.Name() + "+aug" }

// Assign implements Allocator.
func (i *Improved) Assign(b *Batch) *model.Assignment {
	base := DependencyFixpoint(b, i.Inner.Assign(b))
	return Improve(b, base)
}
