package core

import (
	"fmt"
	"math/rand"
	"sort"

	"dasc/internal/model"
)

// Allocator assigns the workers of one batch to its tasks. Implementations
// must return an assignment that satisfies all four DA-SC constraints with
// respect to the batch (dependencies may be met by batch-internal
// co-assignment or by Batch.Satisfied).
type Allocator interface {
	// Name returns the identifier used in experiment tables, e.g. "Greedy".
	Name() string
	// Assign computes the batch assignment M_b.
	Assign(b *Batch) *model.Assignment
}

// Known allocator names, matching the labels of the paper's figures.
const (
	NameGreedy  = "Greedy"
	NameGame    = "Game"
	NameGame5   = "Game-5%"
	NameGG      = "G-G"
	NameClosest = "Closest"
	NameRandom  = "Random"
	NameDFS     = "DFS"
)

// NewByName constructs an allocator from its paper label, seeding its
// randomness from seed. It returns an error on unknown names.
func NewByName(name string, seed int64) (Allocator, error) {
	switch name {
	case NameGreedy:
		return NewGreedy(), nil
	case NameGame:
		return NewGame(GameOptions{Seed: seed}), nil
	case NameGame5:
		return NewGame(GameOptions{Seed: seed, Threshold: 0.05}), nil
	case NameGG:
		return NewGame(GameOptions{Seed: seed, GreedyInit: true}), nil
	case NameClosest:
		return NewClosest(), nil
	case NameRandom:
		return NewRandom(seed), nil
	case NameDFS:
		return NewDFS(DFSOptions{}), nil
	default:
		return nil, fmt.Errorf("core: unknown allocator %q", name)
	}
}

// AllNames lists the six approaches compared throughout Section V, in the
// paper's plotting order.
func AllNames() []string {
	return []string{NameGG, NameGame, NameGame5, NameGreedy, NameClosest, NameRandom}
}

// finishAssignment applies the batch-aware dependency fixpoint filter and
// sorts, so every allocator returns a canonical, constraint-satisfying
// result. Pair feasibility (skill/deadline/distance) is the allocator's
// responsibility — every implementation only ever proposes pairs that passed
// Batch.Feasible.
func finishAssignment(b *Batch, a *model.Assignment) *model.Assignment {
	out := DependencyFixpoint(b, a)
	out.Sort()
	return out
}

// DependencyFixpoint repeatedly removes pairs whose task has a dependency
// that is neither kept in the assignment nor in b.Satisfied, until stable.
// The result satisfies the dependency constraint by construction.
func DependencyFixpoint(b *Batch, a *model.Assignment) *model.Assignment {
	cur := a
	for {
		kept := cur.TaskSet()
		next := model.NewAssignment()
		for _, p := range cur.Pairs {
			t := b.In.Task(p.Task)
			ok := true
			for _, d := range t.Deps {
				if !kept[d] && !b.Satisfied[d] {
					ok = false
					break
				}
			}
			if ok {
				next.Add(p.Worker, p.Task)
			}
		}
		if next.Size() == cur.Size() {
			return next
		}
		cur = next
	}
}

// newRNG returns a deterministic generator for the given seed.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// stableSortByDesc sorts idxs descending by key, breaking ties by index
// ascending, deterministically.
func stableSortByDesc(idxs []int, key func(int) float64) {
	sort.SliceStable(idxs, func(i, j int) bool {
		ki, kj := key(idxs[i]), key(idxs[j])
		if ki != kj {
			return ki > kj
		}
		return idxs[i] < idxs[j]
	})
}
