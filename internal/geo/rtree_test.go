package geo

import (
	"math/rand"
	"testing"
)

func rtreeItems(rng *rand.Rand, n int, box BBox) []KDItem {
	pts := randPoints(rng, n, box)
	items := make([]KDItem, n)
	for i, p := range pts {
		items[i] = KDItem{ID: i, Pt: p}
	}
	return items
}

func TestRTreeWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for _, n := range []int{1, 7, 16, 17, 100, 513} {
		items := rtreeItems(rng, n, NewBBox(Pt(0, 0), Pt(1, 1)))
		tree := NewRTree(items)
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		pts := make([]Point, n)
		for _, it := range items {
			pts[it.ID] = it.Pt
		}
		for trial := 0; trial < 30; trial++ {
			q := Point{rng.Float64() * 1.2, rng.Float64() * 1.2}
			r := rng.Float64() * 0.4
			got := tree.Within(q, r, nil)
			want := bruteWithin(pts, nil, q, r)
			if !equalIntSets(got, want) {
				t.Fatalf("n=%d trial %d: Within = %v, want %v", n, trial, got, want)
			}
		}
	}
}

func TestRTreeSearchRect(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	items := rtreeItems(rng, 300, NewBBox(Pt(0, 0), Pt(1, 1)))
	tree := NewRTree(items)
	for trial := 0; trial < 30; trial++ {
		box := NewBBox(
			Pt(rng.Float64(), rng.Float64()),
			Pt(rng.Float64(), rng.Float64()),
		)
		got := tree.SearchRect(box, nil)
		var want []int
		for _, it := range items {
			if box.Contains(it.Pt) {
				want = append(want, it.ID)
			}
		}
		if !equalIntSets(got, want) {
			t.Fatalf("trial %d: SearchRect = %v, want %v", trial, got, want)
		}
	}
}

func TestRTreeNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	items := rtreeItems(rng, 257, NewBBox(Pt(-1, -1), Pt(1, 1)))
	tree := NewRTree(items)
	for trial := 0; trial < 100; trial++ {
		q := Point{rng.Float64()*3 - 1.5, rng.Float64()*3 - 1.5}
		_, d, ok := tree.Nearest(q)
		if !ok {
			t.Fatal("Nearest !ok")
		}
		bestD := -1.0
		for _, it := range items {
			if dd := it.Pt.DistanceTo(q); bestD < 0 || dd < bestD {
				bestD = dd
			}
		}
		if !almostEq(d, bestD) {
			t.Fatalf("trial %d: rtree %v, brute %v", trial, d, bestD)
		}
	}
}

func TestRTreeClusteredData(t *testing.T) {
	// Heavily skewed points must still query correctly (the R-tree's reason
	// to exist next to the grid index).
	rng := rand.New(rand.NewSource(133))
	var items []KDItem
	for i := 0; i < 200; i++ {
		items = append(items, KDItem{ID: i, Pt: Pt(rng.NormFloat64()*0.001, rng.NormFloat64()*0.001)})
	}
	for i := 200; i < 210; i++ {
		items = append(items, KDItem{ID: i, Pt: Pt(100+rng.Float64(), 100+rng.Float64())})
	}
	tree := NewRTree(items)
	got := tree.Within(Pt(0, 0), 0.1, nil)
	if len(got) != 200 {
		t.Errorf("cluster query found %d of 200", len(got))
	}
	far := tree.Within(Pt(100.5, 100.5), 2, nil)
	if len(far) != 10 {
		t.Errorf("outlier query found %d of 10", len(far))
	}
}

func TestRTreeEmptyAndBounds(t *testing.T) {
	empty := NewRTree(nil)
	if _, _, ok := empty.Nearest(Pt(0, 0)); ok {
		t.Error("empty Nearest should be !ok")
	}
	if got := empty.Within(Pt(0, 0), 5, nil); len(got) != 0 {
		t.Error("empty Within should be empty")
	}
	if got := empty.SearchRect(NewBBox(Pt(0, 0), Pt(1, 1)), nil); len(got) != 0 {
		t.Error("empty SearchRect should be empty")
	}
	one := NewRTree([]KDItem{{ID: 9, Pt: Pt(2, 3)}})
	if b := one.Bounds(); b.Min != Pt(2, 3) || b.Max != Pt(2, 3) {
		t.Errorf("Bounds = %v", b)
	}
}
