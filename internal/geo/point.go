// Package geo provides the spatial primitives used by the DA-SC platform:
// points, distance functions, bounding boxes, and two spatial indexes (a
// uniform grid and a k-d tree) for radius and nearest-neighbour queries.
//
// Coordinates are unit-less float64 pairs. For the synthetic workloads they
// live in [0, 0.5]^2 as in the paper; for the Meetup-substitute workload they
// are (longitude, latitude) degrees inside the Hong Kong bounding box.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane. X and Y are unit-less coordinates
// (or longitude/latitude degrees for geographic workloads).
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns the component-wise sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both components multiplied by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// DistanceTo returns the Euclidean distance from p to q.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// SqDistanceTo returns the squared Euclidean distance from p to q. It avoids
// the square root and is the preferred comparison key inside indexes.
func (p Point) SqDistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction f of the way from p to q.
// f=0 yields p, f=1 yields q; f outside [0,1] extrapolates.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }
