package geo

import (
	"math"
	"sort"
)

// KDTree is an immutable 2-d tree built once over a point set. It supports
// nearest-neighbour, k-nearest-neighbour and radius queries. Compared with
// GridIndex it needs no bounding box up front and degrades gracefully on
// clustered data; the allocation core uses it when worker radii vary by
// orders of magnitude.
type KDTree struct {
	nodes []kdNode
	root  int32
}

type kdNode struct {
	pt          Point
	id          int32
	left, right int32 // -1 = none
	axis        uint8 // 0 = X, 1 = Y
}

// KDItem pairs an item ID with its location for bulk tree construction.
type KDItem struct {
	ID int
	Pt Point
}

// NewKDTree builds a balanced tree over items in O(n log² n).
// The input slice is not modified.
func NewKDTree(items []KDItem) *KDTree {
	t := &KDTree{nodes: make([]kdNode, 0, len(items)), root: -1}
	work := make([]KDItem, len(items))
	copy(work, items)
	t.root = t.build(work, 0)
	return t
}

// Len returns the number of points in the tree.
func (t *KDTree) Len() int { return len(t.nodes) }

func (t *KDTree) build(items []KDItem, depth int) int32 {
	if len(items) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	sort.Slice(items, func(i, j int) bool {
		if axis == 0 {
			return items[i].Pt.X < items[j].Pt.X
		}
		return items[i].Pt.Y < items[j].Pt.Y
	})
	mid := len(items) / 2
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{
		pt:   items[mid].Pt,
		id:   int32(items[mid].ID),
		axis: axis,
		left: -1, right: -1,
	})
	left := t.build(items[:mid], depth+1)
	right := t.build(items[mid+1:], depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Nearest returns the ID of the point closest to q and its distance.
// ok is false for an empty tree.
func (t *KDTree) Nearest(q Point) (id int, dist float64, ok bool) {
	if t.root < 0 {
		return 0, 0, false
	}
	bestID := int32(-1)
	bestSq := math.Inf(1)
	t.nearest(t.root, q, &bestID, &bestSq)
	return int(bestID), math.Sqrt(bestSq), true
}

func (t *KDTree) nearest(ni int32, q Point, bestID *int32, bestSq *float64) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	d := n.pt.SqDistanceTo(q)
	if d < *bestSq || (d == *bestSq && n.id < *bestID) {
		*bestSq, *bestID = d, n.id
	}
	var qc, nc float64
	if n.axis == 0 {
		qc, nc = q.X, n.pt.X
	} else {
		qc, nc = q.Y, n.pt.Y
	}
	near, far := n.left, n.right
	if qc > nc {
		near, far = far, near
	}
	t.nearest(near, q, bestID, bestSq)
	if diff := qc - nc; diff*diff <= *bestSq {
		t.nearest(far, q, bestID, bestSq)
	}
}

// Within appends the IDs of all points at distance ≤ r from q to dst and
// returns the extended slice. Order is unspecified.
func (t *KDTree) Within(q Point, r float64, dst []int) []int {
	if t.root < 0 || r < 0 {
		return dst
	}
	return t.within(t.root, q, r*r, dst)
}

func (t *KDTree) within(ni int32, q Point, r2 float64, dst []int) []int {
	if ni < 0 {
		return dst
	}
	n := &t.nodes[ni]
	if n.pt.SqDistanceTo(q) <= r2 {
		dst = append(dst, int(n.id))
	}
	var diff float64
	if n.axis == 0 {
		diff = q.X - n.pt.X
	} else {
		diff = q.Y - n.pt.Y
	}
	if diff <= 0 || diff*diff <= r2 {
		dst = t.within(n.left, q, r2, dst)
	}
	if diff >= 0 || diff*diff <= r2 {
		dst = t.within(n.right, q, r2, dst)
	}
	return dst
}

// KNearest returns up to k IDs ordered from closest to farthest.
func (t *KDTree) KNearest(q Point, k int) []int {
	if t.root < 0 || k <= 0 {
		return nil
	}
	h := &kdHeap{}
	t.kNearest(t.root, q, k, h)
	out := make([]int, len(h.items))
	// Heap pops farthest-first; fill from the back for near-to-far order.
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = int(h.pop().id)
	}
	return out
}

func (t *KDTree) kNearest(ni int32, q Point, k int, h *kdHeap) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	d := n.pt.SqDistanceTo(q)
	if len(h.items) < k {
		h.push(kdCand{id: n.id, sq: d})
	} else if d < h.items[0].sq {
		h.pop()
		h.push(kdCand{id: n.id, sq: d})
	}
	var qc, nc float64
	if n.axis == 0 {
		qc, nc = q.X, n.pt.X
	} else {
		qc, nc = q.Y, n.pt.Y
	}
	near, far := n.left, n.right
	if qc > nc {
		near, far = far, near
	}
	t.kNearest(near, q, k, h)
	diff := qc - nc
	if len(h.items) < k || diff*diff <= h.items[0].sq {
		t.kNearest(far, q, k, h)
	}
}

// kdHeap is a max-heap on squared distance, holding the current k best.
type kdCand struct {
	id int32
	sq float64
}

type kdHeap struct{ items []kdCand }

func (h *kdHeap) push(c kdCand) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].sq >= h.items[i].sq {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *kdHeap) pop() kdCand {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.items[l].sq > h.items[big].sq {
			big = l
		}
		if r < last && h.items[r].sq > h.items[big].sq {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}
