package geo

import (
	"math/rand"
	"testing"
)

// The three spatial indexes answer the same radius query; these benchmarks
// make the trade-off measurable: the grid wins on uniform data with known
// bounds, the k-d tree on point queries, the R-tree on clustered data and
// rectangle scans.

func benchUniform(n int) ([]KDItem, []Point) {
	rng := rand.New(rand.NewSource(42))
	items := make([]KDItem, n)
	for i := range items {
		items[i] = KDItem{ID: i, Pt: Pt(rng.Float64(), rng.Float64())}
	}
	queries := make([]Point, 256)
	for i := range queries {
		queries[i] = Pt(rng.Float64(), rng.Float64())
	}
	return items, queries
}

func BenchmarkGridWithin(b *testing.B) {
	items, queries := benchUniform(10000)
	g := NewGridIndex(NewBBox(Pt(0, 0), Pt(1, 1)), len(items))
	for _, it := range items {
		g.Insert(it.ID, it.Pt)
	}
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(queries[i%len(queries)], 0.05, buf[:0])
	}
}

func BenchmarkKDTreeWithin(b *testing.B) {
	items, queries := benchUniform(10000)
	t := NewKDTree(items)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.Within(queries[i%len(queries)], 0.05, buf[:0])
	}
}

func BenchmarkRTreeWithin(b *testing.B) {
	items, queries := benchUniform(10000)
	t := NewRTree(items)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.Within(queries[i%len(queries)], 0.05, buf[:0])
	}
}

func BenchmarkGridNearest(b *testing.B) {
	items, queries := benchUniform(10000)
	g := NewGridIndex(NewBBox(Pt(0, 0), Pt(1, 1)), len(items))
	for _, it := range items {
		g.Insert(it.ID, it.Pt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(queries[i%len(queries)])
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	items, queries := benchUniform(10000)
	t := NewKDTree(items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Nearest(queries[i%len(queries)])
	}
}

func BenchmarkRTreeNearest(b *testing.B) {
	items, queries := benchUniform(10000)
	t := NewRTree(items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Nearest(queries[i%len(queries)])
	}
}

func BenchmarkKDTreeBuild(b *testing.B) {
	items, _ := benchUniform(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewKDTree(items)
	}
}

func BenchmarkRTreeBuild(b *testing.B) {
	items, _ := benchUniform(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRTree(items)
	}
}
