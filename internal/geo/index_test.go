package geo

import (
	"math/rand"
	"sort"
	"testing"
)

// randPoints returns n deterministic pseudo-random points inside box.
func randPoints(rng *rand.Rand, n int, box BBox) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: box.Min.X + rng.Float64()*box.Width(),
			Y: box.Min.Y + rng.Float64()*box.Height(),
		}
	}
	return pts
}

// bruteWithin is the oracle for radius queries.
func bruteWithin(pts []Point, present []bool, q Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if present != nil && !present[i] {
			continue
		}
		if p.DistanceTo(q) <= r {
			out = append(out, i)
		}
	}
	return out
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}

func equalIntSets(a, b []int) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridIndexWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := NewBBox(Pt(0, 0), Pt(1, 1))
	pts := randPoints(rng, 300, box)
	g := NewGridIndex(box, len(pts))
	for i, p := range pts {
		g.Insert(i, p)
	}
	for trial := 0; trial < 50; trial++ {
		q := Point{rng.Float64(), rng.Float64()}
		r := rng.Float64() * 0.4
		got := g.Within(q, r, nil)
		want := bruteWithin(pts, nil, q, r)
		if !equalIntSets(got, want) {
			t.Fatalf("trial %d: Within(%v, %v) = %v, want %v", trial, q, r, got, want)
		}
	}
}

func TestGridIndexRemove(t *testing.T) {
	box := NewBBox(Pt(0, 0), Pt(1, 1))
	g := NewGridIndex(box, 16)
	g.Insert(0, Pt(0.1, 0.1))
	g.Insert(1, Pt(0.2, 0.2))
	g.Insert(2, Pt(0.9, 0.9))
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	g.Remove(1)
	if g.Contains(1) {
		t.Error("Contains(1) after Remove")
	}
	got := g.Within(Pt(0, 0), 0.5, nil)
	if !equalIntSets(got, []int{0}) {
		t.Errorf("Within after remove = %v", got)
	}
	g.Remove(1) // idempotent
	g.Remove(99)
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
}

func TestGridIndexReinsertAfterRemove(t *testing.T) {
	box := NewBBox(Pt(0, 0), Pt(1, 1))
	g := NewGridIndex(box, 4)
	g.Insert(7, Pt(0.5, 0.5))
	g.Remove(7)
	g.Insert(7, Pt(0.9, 0.9))
	got := g.Within(Pt(0.9, 0.9), 0.05, nil)
	if !equalIntSets(got, []int{7}) {
		t.Errorf("Within = %v", got)
	}
}

func TestGridIndexNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := NewBBox(Pt(0, 0), Pt(1, 1))
	pts := randPoints(rng, 200, box)
	g := NewGridIndex(box, 128)
	for i, p := range pts {
		g.Insert(i, p)
	}
	for trial := 0; trial < 100; trial++ {
		q := Point{rng.Float64() * 1.2, rng.Float64() * 1.2}
		id, d, ok := g.Nearest(q)
		if !ok {
			t.Fatal("Nearest returned !ok on non-empty index")
		}
		bestD := -1.0
		for _, p := range pts {
			if dd := p.DistanceTo(q); bestD < 0 || dd < bestD {
				bestD = dd
			}
		}
		if !almostEq(d, bestD) {
			t.Fatalf("trial %d: Nearest dist %v, brute %v (id=%d)", trial, d, bestD, id)
		}
	}
}

func TestGridIndexEmpty(t *testing.T) {
	g := NewGridIndex(NewBBox(Pt(0, 0), Pt(1, 1)), 8)
	if _, _, ok := g.Nearest(Pt(0.5, 0.5)); ok {
		t.Error("Nearest on empty index should be !ok")
	}
	if got := g.Within(Pt(0.5, 0.5), 10, nil); len(got) != 0 {
		t.Errorf("Within on empty index = %v", got)
	}
}

func TestGridIndexClampedOutsidePoints(t *testing.T) {
	// Points outside the declared box must still be stored and findable.
	g := NewGridIndex(NewBBox(Pt(0, 0), Pt(1, 1)), 16)
	g.Insert(0, Pt(5, 5))
	got := g.Within(Pt(5, 5), 0.1, nil)
	if !equalIntSets(got, []int{0}) {
		t.Errorf("outside point not found: %v", got)
	}
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := NewBBox(Pt(-1, -1), Pt(1, 1))
	pts := randPoints(rng, 257, box)
	items := make([]KDItem, len(pts))
	for i, p := range pts {
		items[i] = KDItem{ID: i, Pt: p}
	}
	tree := NewKDTree(items)
	if tree.Len() != len(pts) {
		t.Fatalf("Len = %d", tree.Len())
	}
	for trial := 0; trial < 100; trial++ {
		q := Point{rng.Float64()*3 - 1.5, rng.Float64()*3 - 1.5}
		_, d, ok := tree.Nearest(q)
		if !ok {
			t.Fatal("Nearest !ok")
		}
		bestD := -1.0
		for _, p := range pts {
			if dd := p.DistanceTo(q); bestD < 0 || dd < bestD {
				bestD = dd
			}
		}
		if !almostEq(d, bestD) {
			t.Fatalf("trial %d: kd nearest %v, brute %v", trial, d, bestD)
		}
	}
}

func TestKDTreeWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := NewBBox(Pt(0, 0), Pt(1, 1))
	pts := randPoints(rng, 300, box)
	items := make([]KDItem, len(pts))
	for i, p := range pts {
		items[i] = KDItem{ID: i, Pt: p}
	}
	tree := NewKDTree(items)
	for trial := 0; trial < 50; trial++ {
		q := Point{rng.Float64(), rng.Float64()}
		r := rng.Float64() * 0.5
		got := tree.Within(q, r, nil)
		want := bruteWithin(pts, nil, q, r)
		if !equalIntSets(got, want) {
			t.Fatalf("trial %d: kd Within = %v, want %v", trial, got, want)
		}
	}
}

func TestKDTreeKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := NewBBox(Pt(0, 0), Pt(1, 1))
	pts := randPoints(rng, 100, box)
	items := make([]KDItem, len(pts))
	for i, p := range pts {
		items[i] = KDItem{ID: i, Pt: p}
	}
	tree := NewKDTree(items)
	for trial := 0; trial < 20; trial++ {
		q := Point{rng.Float64(), rng.Float64()}
		k := 1 + rng.Intn(20)
		got := tree.KNearest(q, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d ids, want %d", len(got), k)
		}
		// Verify the result is sorted near-to-far and matches the brute top-k set.
		for i := 1; i < len(got); i++ {
			if pts[got[i-1]].DistanceTo(q) > pts[got[i]].DistanceTo(q)+1e-12 {
				t.Fatalf("KNearest not ordered at %d", i)
			}
		}
		type cand struct {
			id int
			d  float64
		}
		all := make([]cand, len(pts))
		for i, p := range pts {
			all[i] = cand{i, p.DistanceTo(q)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		if kd, bd := pts[got[k-1]].DistanceTo(q), all[k-1].d; !almostEq(kd, bd) {
			t.Fatalf("k-th distance %v, brute %v", kd, bd)
		}
	}
}

func TestKDTreeEmptyAndDegenerate(t *testing.T) {
	empty := NewKDTree(nil)
	if _, _, ok := empty.Nearest(Pt(0, 0)); ok {
		t.Error("empty tree Nearest should be !ok")
	}
	if got := empty.KNearest(Pt(0, 0), 3); got != nil {
		t.Errorf("empty KNearest = %v", got)
	}
	one := NewKDTree([]KDItem{{ID: 42, Pt: Pt(1, 1)}})
	id, d, ok := one.Nearest(Pt(0, 0))
	if !ok || id != 42 || !almostEq(d, Pt(1, 1).Norm()) {
		t.Errorf("single-point tree: id=%d d=%v ok=%v", id, d, ok)
	}
	// All points identical: still well-formed.
	same := make([]KDItem, 10)
	for i := range same {
		same[i] = KDItem{ID: i, Pt: Pt(0.3, 0.3)}
	}
	dup := NewKDTree(same)
	if got := dup.Within(Pt(0.3, 0.3), 0, nil); len(got) != 10 {
		t.Errorf("duplicate-point Within = %d ids, want 10", len(got))
	}
}
