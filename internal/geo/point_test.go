package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tc := range tests {
		if got := tc.a.DistanceTo(tc.b); !almostEq(got, tc.want) {
			t.Errorf("DistanceTo(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.a.SqDistanceTo(tc.b); !almostEq(got, tc.want*tc.want) {
			t.Errorf("SqDistanceTo(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want*tc.want)
		}
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by int32) bool {
		a := Pt(float64(ax)/1e4, float64(ay)/1e4)
		b := Pt(float64(bx)/1e4, float64(by)/1e4)
		return almostEq(a.DistanceTo(b), b.DistanceTo(a)) &&
			a.DistanceTo(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestMetrics(t *testing.T) {
	a, b := Pt(0, 0), Pt(3, 4)
	if got := Euclidean(a, b); !almostEq(got, 5) {
		t.Errorf("Euclidean = %v", got)
	}
	if got := Manhattan(a, b); !almostEq(got, 7) {
		t.Errorf("Manhattan = %v", got)
	}
	if got := Chebyshev(a, b); !almostEq(got, 4) {
		t.Errorf("Chebyshev = %v", got)
	}
}

func TestHaversine(t *testing.T) {
	// One degree of latitude is ~111.2 km everywhere.
	d := Haversine(Pt(114, 22), Pt(114, 23))
	if d < 110 || d > 112.5 {
		t.Errorf("1° latitude = %v km, want ≈111.2", d)
	}
	if got := Haversine(Pt(114, 22), Pt(114, 22)); !almostEq(got, 0) {
		t.Errorf("zero distance = %v", got)
	}
	// Symmetry.
	if a, b := Haversine(Pt(113.9, 22.3), Pt(114.2, 22.5)), Haversine(Pt(114.2, 22.5), Pt(113.9, 22.3)); !almostEq(a, b) {
		t.Errorf("asymmetric haversine: %v vs %v", a, b)
	}
}
