package geo

import (
	"math"
	"sort"
)

// RTree is an immutable R-tree over points, bulk-loaded with the
// Sort-Tile-Recursive (STR) packing algorithm. It answers rectangle and
// radius queries; compared with GridIndex it needs no pre-declared bounding
// box and stays balanced on heavily skewed data (the hotspot workloads),
// and compared with KDTree its fat leaves make range scans cheaper.
type RTree struct {
	nodes  []rtreeNode
	leaves []KDItem // all items, grouped by leaf
	root   int32
}

const rtreeFanout = 16

type rtreeNode struct {
	box      BBox
	children []int32 // internal: child node indexes
	from, to int32   // leaf: leaves[from:to]
	leaf     bool
}

// NewRTree bulk-loads a tree over items. The input slice is not modified.
func NewRTree(items []KDItem) *RTree {
	t := &RTree{}
	if len(items) == 0 {
		t.root = -1
		return t
	}
	work := make([]KDItem, len(items))
	copy(work, items)

	// STR: sort by X, slice into vertical strips, sort each strip by Y,
	// pack runs of rtreeFanout into leaves.
	sort.Slice(work, func(i, j int) bool { return work[i].Pt.X < work[j].Pt.X })
	leafCount := (len(work) + rtreeFanout - 1) / rtreeFanout
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perStrip := stripCount * rtreeFanout
	var leafIdx []int32
	for s := 0; s < len(work); s += perStrip {
		end := s + perStrip
		if end > len(work) {
			end = len(work)
		}
		strip := work[s:end]
		sort.Slice(strip, func(i, j int) bool { return strip[i].Pt.Y < strip[j].Pt.Y })
		for l := 0; l < len(strip); l += rtreeFanout {
			le := l + rtreeFanout
			if le > len(strip) {
				le = len(strip)
			}
			from := int32(len(t.leaves))
			t.leaves = append(t.leaves, strip[l:le]...)
			to := int32(len(t.leaves))
			box := boxOfItems(t.leaves[from:to])
			leafIdx = append(leafIdx, int32(len(t.nodes)))
			t.nodes = append(t.nodes, rtreeNode{box: box, from: from, to: to, leaf: true})
		}
	}
	// Pack upward until a single root remains.
	level := leafIdx
	for len(level) > 1 {
		var next []int32
		for s := 0; s < len(level); s += rtreeFanout {
			end := s + rtreeFanout
			if end > len(level) {
				end = len(level)
			}
			children := append([]int32(nil), level[s:end]...)
			box := t.nodes[children[0]].box
			for _, c := range children[1:] {
				box = unionBox(box, t.nodes[c].box)
			}
			next = append(next, int32(len(t.nodes)))
			t.nodes = append(t.nodes, rtreeNode{box: box, children: children})
		}
		level = next
	}
	t.root = level[0]
	return t
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return len(t.leaves) }

// Bounds returns the root bounding box (zero box when empty).
func (t *RTree) Bounds() BBox {
	if t.root < 0 {
		return BBox{}
	}
	return t.nodes[t.root].box
}

// SearchRect appends the IDs of all points inside the box (inclusive) to dst.
func (t *RTree) SearchRect(box BBox, dst []int) []int {
	if t.root < 0 {
		return dst
	}
	return t.searchRect(t.root, box, dst)
}

func (t *RTree) searchRect(ni int32, box BBox, dst []int) []int {
	n := &t.nodes[ni]
	if !n.box.Intersects(box) {
		return dst
	}
	if n.leaf {
		for _, it := range t.leaves[n.from:n.to] {
			if box.Contains(it.Pt) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = t.searchRect(c, box, dst)
	}
	return dst
}

// Within appends the IDs of all points at Euclidean distance ≤ r from q.
func (t *RTree) Within(q Point, r float64, dst []int) []int {
	if t.root < 0 || r < 0 {
		return dst
	}
	return t.within(t.root, q, r, r*r, dst)
}

func (t *RTree) within(ni int32, q Point, r, r2 float64, dst []int) []int {
	n := &t.nodes[ni]
	if n.box.SqDistanceTo(q) > r2 {
		return dst
	}
	if n.leaf {
		for _, it := range t.leaves[n.from:n.to] {
			if it.Pt.SqDistanceTo(q) <= r2 {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = t.within(c, q, r, r2, dst)
	}
	return dst
}

// Nearest returns the closest point's ID and distance; ok is false when the
// tree is empty. Branch-and-bound on the node boxes.
func (t *RTree) Nearest(q Point) (id int, dist float64, ok bool) {
	if t.root < 0 {
		return 0, 0, false
	}
	bestID := -1
	bestSq := math.Inf(1)
	t.nearest(t.root, q, &bestID, &bestSq)
	return bestID, math.Sqrt(bestSq), true
}

func (t *RTree) nearest(ni int32, q Point, bestID *int, bestSq *float64) {
	n := &t.nodes[ni]
	if n.box.SqDistanceTo(q) > *bestSq {
		return
	}
	if n.leaf {
		for _, it := range t.leaves[n.from:n.to] {
			d := it.Pt.SqDistanceTo(q)
			if d < *bestSq || (d == *bestSq && it.ID < *bestID) {
				*bestSq, *bestID = d, it.ID
			}
		}
		return
	}
	// Visit children closest-first so the bound tightens quickly.
	type cand struct {
		c  int32
		sq float64
	}
	cands := make([]cand, len(n.children))
	for i, c := range n.children {
		cands[i] = cand{c, t.nodes[c].box.SqDistanceTo(q)}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].sq < cands[j].sq })
	for _, c := range cands {
		t.nearest(c.c, q, bestID, bestSq)
	}
}

func boxOfItems(items []KDItem) BBox {
	box := BBox{Min: items[0].Pt, Max: items[0].Pt}
	for _, it := range items[1:] {
		box = unionBox(box, BBox{Min: it.Pt, Max: it.Pt})
	}
	return box
}

func unionBox(a, b BBox) BBox {
	return BBox{
		Min: Point{math.Min(a.Min.X, b.Min.X), math.Min(a.Min.Y, b.Min.Y)},
		Max: Point{math.Max(a.Max.X, b.Max.X), math.Max(a.Max.Y, b.Max.Y)},
	}
}
