package geo

import "math"

// GridIndex is a uniform-cell spatial hash over a fixed bounding box. It
// answers radius queries in time proportional to the number of cells the
// query disc touches, which makes it the workhorse for "which tasks can this
// worker reach" lookups where the radius is the worker's maximum moving
// distance.
//
// Items are identified by small dense integer IDs chosen by the caller
// (worker/task indexes), so the index stores no payloads.
type GridIndex struct {
	box        BBox
	cellSize   float64
	cols, rows int
	cells      [][]int32 // cell -> item IDs
	points     []Point   // id -> location (sparse IDs allowed; grown on demand)
	present    []bool
	count      int
}

// NewGridIndex creates an index over box with approximately targetCells cells
// (minimum 1). A good default for n uniformly distributed points is
// targetCells ≈ n.
func NewGridIndex(box BBox, targetCells int) *GridIndex {
	if targetCells < 1 {
		targetCells = 1
	}
	w, h := box.Width(), box.Height()
	if w <= 0 {
		w = 1e-9
	}
	if h <= 0 {
		h = 1e-9
	}
	// Choose a square-ish cell so cols*rows ≈ targetCells.
	cell := math.Sqrt(w * h / float64(targetCells))
	if cell <= 0 || math.IsNaN(cell) {
		cell = math.Max(w, h)
	}
	cols := int(math.Ceil(w / cell))
	rows := int(math.Ceil(h / cell))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &GridIndex{
		box:      box,
		cellSize: cell,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
	}
}

// Len returns the number of items currently in the index.
func (g *GridIndex) Len() int { return g.count }

// Bounds returns the box the index was built over.
func (g *GridIndex) Bounds() BBox { return g.box }

func (g *GridIndex) cellOf(p Point) int {
	cx := int((p.X - g.box.Min.X) / g.cellSize)
	cy := int((p.Y - g.box.Min.Y) / g.cellSize)
	cx = clampInt(cx, 0, g.cols-1)
	cy = clampInt(cy, 0, g.rows-1)
	return cy*g.cols + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Insert adds item id at location p. Points outside the index box are clamped
// to the border cell, so they remain findable by sufficiently large radius
// queries. Inserting an existing id is a no-op on membership but updates its
// location only via Remove+Insert.
func (g *GridIndex) Insert(id int, p Point) {
	for id >= len(g.points) {
		g.points = append(g.points, Point{})
		g.present = append(g.present, false)
	}
	if g.present[id] {
		return
	}
	g.points[id] = p
	g.present[id] = true
	c := g.cellOf(p)
	g.cells[c] = append(g.cells[c], int32(id))
	g.count++
}

// Remove deletes item id from the index. Removing an absent id is a no-op.
func (g *GridIndex) Remove(id int) {
	if id < 0 || id >= len(g.present) || !g.present[id] {
		return
	}
	c := g.cellOf(g.points[id])
	bucket := g.cells[c]
	for i, v := range bucket {
		if int(v) == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[c] = bucket[:len(bucket)-1]
			break
		}
	}
	g.present[id] = false
	g.count--
}

// Contains reports whether item id is in the index.
func (g *GridIndex) Contains(id int) bool {
	return id >= 0 && id < len(g.present) && g.present[id]
}

// Within appends to dst the IDs of all items at Euclidean distance ≤ r from
// center and returns the extended slice. Order is unspecified.
func (g *GridIndex) Within(center Point, r float64, dst []int) []int {
	if r < 0 || g.count == 0 {
		return dst
	}
	r2 := r * r
	minCX := clampInt(int((center.X-r-g.box.Min.X)/g.cellSize), 0, g.cols-1)
	maxCX := clampInt(int((center.X+r-g.box.Min.X)/g.cellSize), 0, g.cols-1)
	minCY := clampInt(int((center.Y-r-g.box.Min.Y)/g.cellSize), 0, g.rows-1)
	maxCY := clampInt(int((center.Y+r-g.box.Min.Y)/g.cellSize), 0, g.rows-1)
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if g.points[id].SqDistanceTo(center) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// Nearest returns the id of the item closest to center and its distance.
// ok is false when the index is empty. Ties break toward the lower id.
func (g *GridIndex) Nearest(center Point) (id int, dist float64, ok bool) {
	if g.count == 0 {
		return 0, 0, false
	}
	// Expanding ring search: examine cells in growing square rings until a
	// candidate is found whose distance is certified minimal.
	best := -1
	bestSq := math.Inf(1)
	ccx := clampInt(int((center.X-g.box.Min.X)/g.cellSize), 0, g.cols-1)
	ccy := clampInt(int((center.Y-g.box.Min.Y)/g.cellSize), 0, g.rows-1)
	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once we have a candidate, stop when the ring is provably farther
		// than it: every cell in ring k is at least (k-1)*cellSize away.
		if best >= 0 {
			minPossible := float64(ring-1) * g.cellSize
			if minPossible > 0 && minPossible*minPossible > bestSq {
				break
			}
		}
		scan := func(cx, cy int) {
			if cx < 0 || cx >= g.cols || cy < 0 || cy >= g.rows {
				return
			}
			for _, raw := range g.cells[cy*g.cols+cx] {
				i := int(raw)
				d := g.points[i].SqDistanceTo(center)
				if d < bestSq || (d == bestSq && i < best) {
					bestSq, best = d, i
				}
			}
		}
		if ring == 0 {
			scan(ccx, ccy)
			continue
		}
		for cx := ccx - ring; cx <= ccx+ring; cx++ {
			scan(cx, ccy-ring)
			scan(cx, ccy+ring)
		}
		for cy := ccy - ring + 1; cy <= ccy+ring-1; cy++ {
			scan(ccx-ring, cy)
			scan(ccx+ring, cy)
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, math.Sqrt(bestSq), true
}
