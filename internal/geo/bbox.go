package geo

import "fmt"

// BBox is an axis-aligned bounding box, closed on all sides.
type BBox struct {
	Min, Max Point
}

// NewBBox returns the bounding box spanning the two corner points, fixing the
// corner order so Min ≤ Max component-wise.
func NewBBox(a, b Point) BBox {
	box := BBox{Min: a, Max: b}
	if box.Min.X > box.Max.X {
		box.Min.X, box.Max.X = box.Max.X, box.Min.X
	}
	if box.Min.Y > box.Max.Y {
		box.Min.Y, box.Max.Y = box.Max.Y, box.Min.Y
	}
	return box
}

// UnitHalf is the paper's synthetic data space [0, 0.5]^2.
var UnitHalf = BBox{Min: Point{0, 0}, Max: Point{0.5, 0.5}}

// HongKong is the paper's real-data extract region:
// longitude 113.843°–114.283°, latitude 22.209°–22.609°.
var HongKong = BBox{Min: Point{113.843, 22.209}, Max: Point{114.283, 22.609}}

// Contains reports whether p lies inside the box (boundary inclusive).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Width returns the extent of the box along X.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the extent of the box along Y.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the box midpoint.
func (b BBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Diagonal returns the Euclidean length of the box diagonal, an upper bound
// on the distance between any two contained points.
func (b BBox) Diagonal() float64 { return b.Min.DistanceTo(b.Max) }

// Expand returns the box grown by margin on every side.
func (b BBox) Expand(margin float64) BBox {
	return BBox{
		Min: Point{b.Min.X - margin, b.Min.Y - margin},
		Max: Point{b.Max.X + margin, b.Max.Y + margin},
	}
}

// Intersects reports whether the two boxes overlap (boundary touching counts).
func (b BBox) Intersects(o BBox) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y
}

// SqDistanceTo returns the squared Euclidean distance from p to the nearest
// point of the box (0 when p is inside). Used for k-d tree pruning.
func (b BBox) SqDistanceTo(p Point) float64 {
	dx := clampResidual(p.X, b.Min.X, b.Max.X)
	dy := clampResidual(p.Y, b.Min.Y, b.Max.Y)
	return dx*dx + dy*dy
}

// clampResidual returns how far v lies outside [lo, hi], signed magnitude only.
func clampResidual(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (b BBox) String() string { return fmt.Sprintf("[%v %v]", b.Min, b.Max) }
