package geo

import (
	"math"
	"reflect"
	"testing"
)

// doubled and halved are package-level metrics with dedicated code pointers,
// so the registry tests cannot collide with each other (or with roadnet's
// process-wide registration) through a shared closure site.
func doubled(a, b Point) float64 { return 2 * Euclidean(a, b) }
func halved(a, b Point) float64  { return 0.5 * Euclidean(a, b) }

func TestFuncIDMatchesReflect(t *testing.T) {
	var id FuncID
	if got := id.Of(nil); got != 0 {
		t.Fatalf("Of(nil) = %#x, want 0", got)
	}
	for _, f := range []DistanceFunc{Euclidean, Manhattan, Chebyshev, Haversine, doubled} {
		want := reflect.ValueOf(f).Pointer()
		if got := id.Of(f); got != want {
			t.Fatalf("Of = %#x, want reflect pointer %#x", got, want)
		}
		// Second call hits the funcval memo; the answer must not change.
		if got := id.Of(f); got != want {
			t.Fatalf("memoized Of = %#x, want %#x", got, want)
		}
	}
}

func TestRegisterEuclideanBound(t *testing.T) {
	if _, ok := EuclideanBoundScale(doubled); ok {
		t.Fatal("unregistered metric recognised")
	}
	// Euclidean ≤ 0.5·doubled, so scale 0.5 is the (tight) valid bound.
	RegisterEuclideanBound(doubled, 0.5)
	if s, ok := EuclideanBoundScale(doubled); !ok || s != 0.5 {
		t.Fatalf("registered metric: scale=%v ok=%v, want 0.5 true", s, ok)
	}
	// Invalid registrations are ignored, not recorded.
	RegisterEuclideanBound(nil, 1)
	RegisterEuclideanBound(halved, 0)
	RegisterEuclideanBound(halved, -2)
	RegisterEuclideanBound(halved, math.NaN())
	RegisterEuclideanBound(halved, math.Inf(1))
	if _, ok := EuclideanBoundScale(halved); ok {
		t.Fatal("invalid registrations must not be recorded")
	}
	// Built-in recognition is unaffected by registry activity.
	if s, ok := EuclideanBoundScale(Euclidean); !ok || s != 1 {
		t.Fatalf("Euclidean: scale=%v ok=%v", s, ok)
	}
	if s, ok := EuclideanBoundScale(Chebyshev); !ok || s != math.Sqrt2 {
		t.Fatalf("Chebyshev: scale=%v ok=%v", s, ok)
	}
	if _, ok := EuclideanBoundScale(Haversine); ok {
		t.Fatal("Haversine must stay unrecognised")
	}
}
