package geo

import "testing"

func TestNewBBoxNormalizesCorners(t *testing.T) {
	b := NewBBox(Pt(5, 1), Pt(2, 7))
	if b.Min != Pt(2, 1) || b.Max != Pt(5, 7) {
		t.Errorf("NewBBox = %v", b)
	}
}

func TestBBoxContains(t *testing.T) {
	b := NewBBox(Pt(0, 0), Pt(1, 1))
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0.5, 0.5), true},
		{Pt(0, 0), true}, // boundary inclusive
		{Pt(1, 1), true}, // boundary inclusive
		{Pt(1.01, 0.5), false},
		{Pt(-0.01, 0.5), false},
	}
	for _, tc := range tests {
		if got := b.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBBoxGeometry(t *testing.T) {
	b := NewBBox(Pt(1, 2), Pt(4, 6))
	if got := b.Width(); got != 3 {
		t.Errorf("Width = %v", got)
	}
	if got := b.Height(); got != 4 {
		t.Errorf("Height = %v", got)
	}
	if got := b.Center(); got != Pt(2.5, 4) {
		t.Errorf("Center = %v", got)
	}
	if got := b.Diagonal(); !almostEq(got, 5) {
		t.Errorf("Diagonal = %v", got)
	}
}

func TestBBoxExpand(t *testing.T) {
	b := NewBBox(Pt(0, 0), Pt(1, 1)).Expand(0.5)
	if b.Min != Pt(-0.5, -0.5) || b.Max != Pt(1.5, 1.5) {
		t.Errorf("Expand = %v", b)
	}
}

func TestBBoxIntersects(t *testing.T) {
	a := NewBBox(Pt(0, 0), Pt(2, 2))
	tests := []struct {
		o    BBox
		want bool
	}{
		{NewBBox(Pt(1, 1), Pt(3, 3)), true},
		{NewBBox(Pt(2, 2), Pt(3, 3)), true}, // corner touch
		{NewBBox(Pt(2.1, 0), Pt(3, 1)), false},
		{NewBBox(Pt(-1, -1), Pt(4, 4)), true}, // containment
	}
	for _, tc := range tests {
		if got := a.Intersects(tc.o); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.o, got, tc.want)
		}
		if got := tc.o.Intersects(a); got != tc.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", tc.o, got, tc.want)
		}
	}
}

func TestBBoxSqDistanceTo(t *testing.T) {
	b := NewBBox(Pt(0, 0), Pt(1, 1))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(0.5, 0.5), 0},
		{Pt(2, 0.5), 1},
		{Pt(2, 2), 2},
		{Pt(-3, 0.5), 9},
	}
	for _, tc := range tests {
		if got := b.SqDistanceTo(tc.p); !almostEq(got, tc.want) {
			t.Errorf("SqDistanceTo(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPaperRegions(t *testing.T) {
	if !UnitHalf.Contains(Pt(0.25, 0.25)) || UnitHalf.Contains(Pt(0.6, 0.1)) {
		t.Error("UnitHalf region wrong")
	}
	// Hong Kong bbox per the paper's extract.
	if !HongKong.Contains(Pt(114.0, 22.4)) {
		t.Error("HongKong should contain central HK")
	}
	if HongKong.Contains(Pt(113.0, 22.4)) {
		t.Error("HongKong should not contain far-west point")
	}
}
