package geo

import (
	"math"
	"reflect"
)

// DistanceFunc measures the travel distance between two locations. The paper
// uses Euclidean distance but notes the approaches work with any metric
// (e.g. road-network distance); every component of this library that needs a
// distance takes a DistanceFunc so alternatives plug in without code changes.
type DistanceFunc func(a, b Point) float64

// Euclidean is the straight-line distance, the paper's default metric.
func Euclidean(a, b Point) float64 { return a.DistanceTo(b) }

// Manhattan is the L1 (taxicab) distance, a cheap stand-in for grid-like road
// networks.
func Manhattan(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Chebyshev is the L∞ distance.
func Chebyshev(a, b Point) float64 {
	return math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// earthRadiusKm is the mean Earth radius used by Haversine.
const earthRadiusKm = 6371.0088

// EuclideanBoundScale reports a factor c such that Euclidean(a, b) ≤ c·f(a, b)
// for all point pairs, enabling spatial indexes (which answer Euclidean radius
// queries) to prune candidates for the metric f: any pair within metric
// distance r lies inside the Euclidean disc of radius c·r. The factor is
// recognised for the package's own metrics — Euclidean and Manhattan dominate
// the straight line (c = 1), Chebyshev underestimates it by at most √2 — and
// ok is false for anything else (road networks, Haversine, user closures),
// signalling the caller to skip spatial pruning and filter exhaustively.
func EuclideanBoundScale(f DistanceFunc) (scale float64, ok bool) {
	if f == nil {
		return 1, true
	}
	switch reflect.ValueOf(f).Pointer() {
	case reflect.ValueOf(Euclidean).Pointer():
		return 1, true
	case reflect.ValueOf(Manhattan).Pointer():
		return 1, true
	case reflect.ValueOf(Chebyshev).Pointer():
		return math.Sqrt2, true
	}
	return 0, false
}

// Haversine treats points as (longitude, latitude) in degrees and returns the
// great-circle distance in kilometres. Useful when the Meetup-substitute
// workload should be interpreted geographically rather than in raw degrees.
func Haversine(a, b Point) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}
