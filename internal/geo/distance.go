package geo

import (
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// DistanceFunc measures the travel distance between two locations. The paper
// uses Euclidean distance but notes the approaches work with any metric
// (e.g. road-network distance); every component of this library that needs a
// distance takes a DistanceFunc so alternatives plug in without code changes.
type DistanceFunc func(a, b Point) float64

// Euclidean is the straight-line distance, the paper's default metric.
func Euclidean(a, b Point) float64 { return a.DistanceTo(b) }

// Manhattan is the L1 (taxicab) distance, a cheap stand-in for grid-like road
// networks.
func Manhattan(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Chebyshev is the L∞ distance.
func Chebyshev(a, b Point) float64 {
	return math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// earthRadiusKm is the mean Earth radius used by Haversine.
const earthRadiusKm = 6371.0088

// FuncID memoizes the code-pointer identity of DistanceFunc values.
// Deriving the identity via reflect costs an interface conversion and a
// reflection walk; callers that re-check the same stored metric on every
// batch (core.EngineCache) instead pay one pointer compare: a func value
// is a pointer to its funcval, so an unchanged funcval pointer implies an
// unchanged code pointer. A changed funcval falls back to reflect, so the
// result is always exactly reflect.ValueOf(f).Pointer(). Not safe for
// concurrent use; embed one per single-threaded consumer.
type FuncID struct {
	fv  unsafe.Pointer
	ptr uintptr
}

// Of returns the code-pointer identity of f (0 for nil), memoized.
func (d *FuncID) Of(f DistanceFunc) uintptr {
	if f == nil {
		return 0
	}
	fv := *(*unsafe.Pointer)(unsafe.Pointer(&f))
	if fv == d.fv {
		return d.ptr
	}
	d.fv = fv
	d.ptr = reflect.ValueOf(f).Pointer()
	return d.ptr
}

// boundScales holds caller-registered Euclidean lower-bound factors beyond
// the built-in metrics, keyed by code pointer.
var (
	boundMu     sync.RWMutex
	boundScales map[uintptr]float64
)

// RegisterEuclideanBound declares that Euclidean(a, b) ≤ scale·f(a, b)
// holds for every point pair, extending EuclideanBoundScale's recognition
// to caller-provided metrics — e.g. a road network whose edge weights
// dominate the straight-line length registers scale 1, and its users get
// spatial-grid pruning instead of exhaustive filtering. Nil functions and
// non-positive or non-finite scales are ignored.
//
// Identity is the function's code pointer, the same best-effort identity
// EuclideanBoundScale uses: every closure or method value sharing that
// code shares the registration. Register only bounds that hold for every
// instance behind the code pointer (roadnet hands out a distinct
// unregistered method for networks whose weights undercut the straight
// line, keeping the shared registration sound).
func RegisterEuclideanBound(f DistanceFunc, scale float64) {
	if f == nil || math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return
	}
	p := reflect.ValueOf(f).Pointer()
	boundMu.Lock()
	if boundScales == nil {
		boundScales = make(map[uintptr]float64)
	}
	boundScales[p] = scale
	boundMu.Unlock()
}

// EuclideanBoundScale reports a factor c such that Euclidean(a, b) ≤ c·f(a, b)
// for all point pairs, enabling spatial indexes (which answer Euclidean radius
// queries) to prune candidates for the metric f: any pair within metric
// distance r lies inside the Euclidean disc of radius c·r. The factor is
// recognised for the package's own metrics — Euclidean and Manhattan dominate
// the straight line (c = 1), Chebyshev underestimates it by at most √2 — and
// for metrics registered via RegisterEuclideanBound (e.g. road networks
// whose edge weights dominate the straight line). ok is false for anything
// else (Haversine, unregistered user closures), signalling the caller to
// skip spatial pruning and filter exhaustively.
func EuclideanBoundScale(f DistanceFunc) (scale float64, ok bool) {
	if f == nil {
		return 1, true
	}
	p := reflect.ValueOf(f).Pointer()
	switch p {
	case reflect.ValueOf(Euclidean).Pointer():
		return 1, true
	case reflect.ValueOf(Manhattan).Pointer():
		return 1, true
	case reflect.ValueOf(Chebyshev).Pointer():
		return math.Sqrt2, true
	}
	boundMu.RLock()
	s, ok := boundScales[p]
	boundMu.RUnlock()
	if ok {
		return s, true
	}
	return 0, false
}

// Haversine treats points as (longitude, latitude) in degrees and returns the
// great-circle distance in kilometres. Useful when the Meetup-substitute
// workload should be interpreted geographically rather than in raw degrees.
func Haversine(a, b Point) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}
