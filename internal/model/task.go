package model

import (
	"fmt"

	"dasc/internal/geo"
)

// TaskID identifies a task. IDs are dense indexes into Instance.Tasks.
type TaskID int32

// Task is a dependency-aware spatial task t = ⟨l_t, s_t, w_t, rs_t, D_t⟩
// (Definition 2): it appears at location Loc at time Start, must have its
// service *started* within Wait time, requires a worker holding Requires,
// and may only be conducted once every task in Deps is assigned.
//
// Deps is kept transitively closed throughout this library, mirroring the
// paper's data construction ("when we add t_j into t_i's dependency set, we
// also add t_j's dependency set D_j"). An associative task set of the greedy
// algorithm is therefore simply {t} ∪ Deps.
type Task struct {
	ID       TaskID
	Loc      geo.Point
	Start    float64 // s_t: timestamp the task appears on the platform
	Wait     float64 // w_t: service must start within this much time
	Requires Skill   // rs_t: the single required skill
	Deps     []TaskID
	// Weight is the task's value toward the weighted objective Σ w_t·I(w,t)
	// — an extension of the paper's unit objective (Equation 1 is the
	// special case of all weights equal). Non-positive means 1.
	Weight float64
}

// Deadline returns s_t + w_t, the latest service-start time.
func (t *Task) Deadline() float64 { return t.Start + t.Wait }

// EffWeight returns the task's effective objective weight: Weight when
// positive, else 1 (the paper's unweighted objective).
func (t *Task) EffWeight() float64 {
	if t.Weight > 0 {
		return t.Weight
	}
	return 1
}

// HasDeps reports whether the task depends on any other task.
func (t *Task) HasDeps() bool { return len(t.Deps) > 0 }

// DependsOn reports whether id is in the task's dependency set.
func (t *Task) DependsOn(id TaskID) bool {
	for _, d := range t.Deps {
		if d == id {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (t *Task) String() string {
	return fmt.Sprintf("t%d@%v requires=ψ%d deps=%v", t.ID, t.Loc, t.Requires, t.Deps)
}
