package model

import (
	"math"
	"testing"

	"dasc/internal/geo"
)

func baseWorker() Worker {
	return Worker{
		ID: 0, Loc: geo.Pt(0, 0),
		Start: 0, Wait: 100, Velocity: 1, MaxDist: 100,
		Skills: NewSkillSet(0),
	}
}

func baseTask() Task {
	return Task{ID: 0, Loc: geo.Pt(3, 4), Start: 0, Wait: 100, Requires: 0}
}

func TestFeasibleSkillConstraint(t *testing.T) {
	w, tk := baseWorker(), baseTask()
	if !Feasible(&w, &tk, geo.Euclidean) {
		t.Fatal("base case should be feasible")
	}
	tk.Requires = 5
	if Feasible(&w, &tk, geo.Euclidean) {
		t.Error("missing skill accepted")
	}
}

func TestFeasibleDeadlineConditions(t *testing.T) {
	// Condition (1): task must appear before the worker leaves.
	w, tk := baseWorker(), baseTask()
	w.Wait = 10
	tk.Start = 10 // exactly at expiry: allowed (s_t ≤ s_w + w_w)
	tk.Wait = 100
	if !Feasible(&w, &tk, geo.Euclidean) {
		t.Error("task at exact worker expiry rejected")
	}
	tk.Start = 10.01
	if Feasible(&w, &tk, geo.Euclidean) {
		t.Error("task after worker expiry accepted")
	}

	// Condition (2): w_t − max(s_w − s_t, 0) − ct ≥ 0.
	w, tk = baseWorker(), baseTask() // distance 5, velocity 1 → ct = 5
	tk.Wait = 5                      // exactly reachable
	if !Feasible(&w, &tk, geo.Euclidean) {
		t.Error("boundary travel time rejected")
	}
	tk.Wait = 4.99
	if Feasible(&w, &tk, geo.Euclidean) {
		t.Error("late arrival accepted")
	}
	// Worker appearing after the task consumes part of the task's wait.
	tk.Wait = 7
	w.Start = 3 // max(s_w − s_t, 0) = 3; 7 − 3 − 5 < 0
	if Feasible(&w, &tk, geo.Euclidean) {
		t.Error("wait consumption by late worker ignored")
	}
	w.Start = 2 // 7 − 2 − 5 = 0
	if !Feasible(&w, &tk, geo.Euclidean) {
		t.Error("boundary after wait consumption rejected")
	}
}

func TestFeasibleDistanceConstraint(t *testing.T) {
	w, tk := baseWorker(), baseTask() // distance 5
	w.MaxDist = 5
	if !Feasible(&w, &tk, geo.Euclidean) {
		t.Error("boundary distance rejected")
	}
	w.MaxDist = 4.9
	if Feasible(&w, &tk, geo.Euclidean) {
		t.Error("over-distance accepted")
	}
}

func TestFeasibleZeroVelocity(t *testing.T) {
	w, tk := baseWorker(), baseTask()
	w.Velocity = 0
	if Feasible(&w, &tk, geo.Euclidean) {
		t.Error("immobile worker can reach remote task")
	}
	tk.Loc = w.Loc // colocated: zero travel regardless of velocity
	if !Feasible(&w, &tk, geo.Euclidean) {
		t.Error("colocated task rejected for immobile worker")
	}
}

func TestTravelTimeAndArrival(t *testing.T) {
	w := baseWorker()
	w.Velocity = 2
	tk := baseTask() // distance 5
	if got := w.TravelTime(w.Loc, tk.Loc, geo.Euclidean); got != 2.5 {
		t.Errorf("TravelTime = %v", got)
	}
	if got := ArrivalTime(&w, w.Loc, 0, &tk, geo.Euclidean); got != 2.5 {
		t.Errorf("ArrivalTime = %v", got)
	}
	// Departure waits for the task to appear.
	tk.Start = 10
	if got := ArrivalTime(&w, w.Loc, 0, &tk, geo.Euclidean); got != 12.5 {
		t.Errorf("ArrivalTime with late task = %v", got)
	}
	w.Velocity = 0
	if got := w.TravelTime(w.Loc, tk.Loc, geo.Euclidean); !math.IsInf(got, 1) {
		t.Errorf("immobile TravelTime = %v", got)
	}
}

func TestFeasibleDistanceBoundaryEpsilon(t *testing.T) {
	// The simulator accumulates travelled distance in floating point; a
	// worker that exactly exhausts its budget can be left with a remaining
	// budget a few ulps off. The budget check must tolerate that, exactly
	// as the deadline check tolerates timeEps.
	w, tk := baseWorker(), baseTask() // task at distance 5

	// Three 0.1 legs accumulate to 0.30000000000000004; remaining budget of
	// a 0.3-budget worker is then ~-4e-17. A colocated task (d = 0) must
	// stay feasible.
	used := 0.1 + 0.1 + 0.1
	remaining := 0.3 - used // slightly negative
	tk.Loc = geo.Pt(3, 3)
	if !FeasibleFrom(&w, geo.Pt(3, 3), 0, remaining, &tk, geo.Euclidean) {
		t.Error("colocated task rejected on float-noise budget")
	}

	// Remaining budget representably just below the exact distance: the
	// epsilon absorbs the gap.
	tk = baseTask() // distance 5
	below := 5.0 - 5e-10
	if !FeasibleFrom(&w, geo.Pt(0, 0), 0, below, &tk, geo.Euclidean) {
		t.Error("budget within DistEps of the distance rejected")
	}
	// A real shortfall must still fail.
	if FeasibleFrom(&w, geo.Pt(0, 0), 0, 4.9, &tk, geo.Euclidean) {
		t.Error("clear budget shortfall accepted")
	}
}

func TestFeasibleFromMidSimulation(t *testing.T) {
	w, tk := baseWorker(), baseTask() // dist 5, ct 5, deadline 100
	// Worker relocated next to the task with a tiny remaining budget.
	if FeasibleFrom(&w, geo.Pt(3, 3), 0, 0.5, &tk, geo.Euclidean) {
		t.Error("budget exhaustion ignored")
	}
	if !FeasibleFrom(&w, geo.Pt(3, 3), 0, 1.0, &tk, geo.Euclidean) {
		t.Error("reachable relocation rejected")
	}
	// Ready too late to make the deadline.
	if FeasibleFrom(&w, geo.Pt(3, 3), 99.5, 100, &tk, geo.Euclidean) {
		t.Error("late readiness ignored")
	}
}

func TestExpiryAndDeadline(t *testing.T) {
	w := Worker{Start: 5, Wait: 3}
	if w.Expiry() != 8 {
		t.Errorf("Expiry = %v", w.Expiry())
	}
	tk := Task{Start: 2, Wait: 7}
	if tk.Deadline() != 9 {
		t.Errorf("Deadline = %v", tk.Deadline())
	}
}

func TestTaskDependsOn(t *testing.T) {
	tk := Task{ID: 3, Deps: []TaskID{0, 1}}
	if !tk.DependsOn(0) || !tk.DependsOn(1) || tk.DependsOn(2) {
		t.Error("DependsOn wrong")
	}
	if !tk.HasDeps() {
		t.Error("HasDeps wrong")
	}
	if (&Task{}).HasDeps() {
		t.Error("empty deps reported")
	}
}
