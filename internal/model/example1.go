package model

import "dasc/internal/geo"

// Example1 builds the paper's motivating example (Figure 1, Tables I–II):
// three workers, five tasks, dependencies t2→t1, t3→{t1,t2}, t5→t4. All
// parties appear at time 0 with generous temporal and spatial budgets, so
// only the skill and dependency constraints bite. The optimal dependency-
// aware assignment finishes 3 tasks; the dependency-oblivious nearest-worker
// allocation finishes only 1.
//
// Skills ψ1…ψ4 map to Skill values 0…3; tasks t1…t5 map to TaskID 0…4 and
// workers w1…w3 to WorkerID 0…2.
func Example1() *Instance {
	const big = 1000.0
	mkWorker := func(id WorkerID, x, y float64, skills ...Skill) Worker {
		return Worker{
			ID: id, Loc: geo.Pt(x, y),
			Start: 0, Wait: big, Velocity: 10, MaxDist: big,
			Skills: NewSkillSet(skills...),
		}
	}
	mkTask := func(id TaskID, x, y float64, req Skill, deps ...TaskID) Task {
		return Task{
			ID: id, Loc: geo.Pt(x, y),
			Start: 0, Wait: big, Requires: req, Deps: deps,
		}
	}
	return &Instance{
		SkillUniverse: 4,
		Workers: []Worker{
			mkWorker(0, 2, 1, 0, 1),    // w1: {ψ1, ψ2}
			mkWorker(1, 3, 3, 3),       // w2: {ψ4}
			mkWorker(2, 5, 3, 0, 1, 2), // w3: {ψ1, ψ2, ψ3}
		},
		Tasks: []Task{
			mkTask(0, 4, 1, 0),       // t1: ψ1, no deps
			mkTask(1, 2, 2, 1, 0),    // t2: ψ2, deps {t1}
			mkTask(2, 5, 2, 2, 0, 1), // t3: ψ3, deps {t1, t2}
			mkTask(3, 3, 4, 3),       // t4: ψ4, no deps
			mkTask(4, 1, 2, 2, 3),    // t5: ψ3, deps {t4}
		},
	}
}
