package model

import (
	"fmt"

	"dasc/internal/dag"
	"dasc/internal/geo"
)

// Instance bundles the worker set W and task set T of one DA-SC problem,
// together with the distance function the platform uses. It is the unit the
// generators produce, the dataset codec serialises and the allocators and
// simulator consume.
type Instance struct {
	Workers []Worker
	Tasks   []Task
	// Dist is the travel metric; nil means geo.Euclidean, the paper's
	// default.
	Dist geo.DistanceFunc
	// SkillUniverse is r = |Ψ|, informational only.
	SkillUniverse int
}

// Distance returns the configured metric, defaulting to Euclidean.
func (in *Instance) Distance() geo.DistanceFunc {
	if in.Dist == nil {
		return geo.Euclidean
	}
	return in.Dist
}

// Worker returns the worker with the given ID, or nil when out of range.
func (in *Instance) Worker(id WorkerID) *Worker {
	if id < 0 || int(id) >= len(in.Workers) {
		return nil
	}
	return &in.Workers[id]
}

// Task returns the task with the given ID, or nil when out of range.
func (in *Instance) Task(id TaskID) *Task {
	if id < 0 || int(id) >= len(in.Tasks) {
		return nil
	}
	return &in.Tasks[id]
}

// DepGraph builds the dependency DAG over the instance's tasks.
func (in *Instance) DepGraph() (*dag.Graph, error) {
	g := dag.New(len(in.Tasks))
	for i := range in.Tasks {
		t := &in.Tasks[i]
		for _, d := range t.Deps {
			if in.Task(d) == nil {
				return nil, fmt.Errorf("model: task t%d depends on unknown task t%d", t.ID, d)
			}
			if err := g.AddDep(int(t.ID), int(d)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Validate checks structural sanity: consistent IDs, non-negative temporal
// and spatial parameters, known dependency targets, and acyclic (in fact
// transitively closed) dependencies. Generators and the dataset loader call
// it before handing an instance to the allocators.
func (in *Instance) Validate() error {
	for i := range in.Workers {
		w := &in.Workers[i]
		if int(w.ID) != i {
			return fmt.Errorf("model: worker at index %d has ID %d", i, w.ID)
		}
		if w.Wait < 0 || w.Velocity < 0 || w.MaxDist < 0 {
			return fmt.Errorf("model: worker w%d has negative parameter", w.ID)
		}
		if w.Skills.IsEmpty() {
			return fmt.Errorf("model: worker w%d has no skills", w.ID)
		}
	}
	for i := range in.Tasks {
		t := &in.Tasks[i]
		if int(t.ID) != i {
			return fmt.Errorf("model: task at index %d has ID %d", i, t.ID)
		}
		if t.Wait < 0 {
			return fmt.Errorf("model: task t%d has negative waiting time", t.ID)
		}
		if t.Requires < 0 {
			return fmt.Errorf("model: task t%d has negative required skill", t.ID)
		}
		seen := make(map[TaskID]bool, len(t.Deps))
		for _, d := range t.Deps {
			if in.Task(d) == nil {
				return fmt.Errorf("model: task t%d depends on unknown task t%d", t.ID, d)
			}
			if d == t.ID {
				return fmt.Errorf("model: task t%d depends on itself", t.ID)
			}
			if seen[d] {
				return fmt.Errorf("model: task t%d lists dependency t%d twice", t.ID, d)
			}
			seen[d] = true
		}
	}
	g, err := in.DepGraph()
	if err != nil {
		return err
	}
	if cyc := g.FindCycle(); cyc != nil {
		return fmt.Errorf("model: dependency cycle %v: %w", cyc, dag.ErrCycle)
	}
	return nil
}

// CloseDeps replaces every task's dependency list with its transitive
// closure, establishing the invariant the allocators rely on. It fails on
// cyclic dependencies.
func (in *Instance) CloseDeps() error {
	g, err := in.DepGraph()
	if err != nil {
		return err
	}
	closed, err := g.TransitiveClosure()
	if err != nil {
		return err
	}
	for i := range in.Tasks {
		anc := closed.Deps(i)
		deps := make([]TaskID, len(anc))
		for j, v := range anc {
			deps[j] = TaskID(v)
		}
		in.Tasks[i].Deps = deps
	}
	return nil
}

// Stats summarises an instance for logging and reports.
type Stats struct {
	Workers, Tasks     int
	Edges              int
	RootTasks          int // tasks with no dependencies
	MaxDepSetSize      int
	MeanDepSetSize     float64
	MaxWorkerSkills    int
	CriticalPathLength int
}

// ComputeStats derives summary statistics; dependency-graph figures are zero
// when the dependencies are cyclic.
func (in *Instance) ComputeStats() Stats {
	s := Stats{Workers: len(in.Workers), Tasks: len(in.Tasks)}
	totalDeps := 0
	for i := range in.Tasks {
		n := len(in.Tasks[i].Deps)
		totalDeps += n
		if n == 0 {
			s.RootTasks++
		}
		if n > s.MaxDepSetSize {
			s.MaxDepSetSize = n
		}
	}
	s.Edges = totalDeps
	if len(in.Tasks) > 0 {
		s.MeanDepSetSize = float64(totalDeps) / float64(len(in.Tasks))
	}
	for i := range in.Workers {
		if n := in.Workers[i].Skills.Len(); n > s.MaxWorkerSkills {
			s.MaxWorkerSkills = n
		}
	}
	if g, err := in.DepGraph(); err == nil {
		if cp, err := g.CriticalPathLen(); err == nil {
			s.CriticalPathLength = cp
		}
	}
	return s
}
