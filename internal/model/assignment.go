package model

import (
	"fmt"
	"sort"

	"dasc/internal/geo"
)

// Pair is one matched worker-and-task pair (w, t) of an assignment M.
type Pair struct {
	Worker WorkerID
	Task   TaskID
}

// Assignment is the result M of one batch: a set of worker-and-task pairs.
// Pairs are kept sorted by task ID for deterministic output.
type Assignment struct {
	Pairs []Pair
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment { return &Assignment{} }

// Add appends a pair. Callers are responsible for exclusivity; Validate
// catches violations.
func (a *Assignment) Add(w WorkerID, t TaskID) {
	a.Pairs = append(a.Pairs, Pair{Worker: w, Task: t})
}

// Size returns Sum(M) = |M|, the paper's objective value.
func (a *Assignment) Size() int { return len(a.Pairs) }

// WeightSum returns the weighted objective Σ w_t over assigned tasks, which
// equals Size() when all task weights are 1 (the paper's setting). Unknown
// task IDs contribute zero.
func (a *Assignment) WeightSum(in *Instance) float64 {
	var sum float64
	for _, p := range a.Pairs {
		if t := in.Task(p.Task); t != nil {
			sum += t.EffWeight()
		}
	}
	return sum
}

// TaskSet returns the set of assigned task IDs.
func (a *Assignment) TaskSet() map[TaskID]bool {
	out := make(map[TaskID]bool, len(a.Pairs))
	for _, p := range a.Pairs {
		out[p.Task] = true
	}
	return out
}

// WorkerOf returns the worker assigned to task t, or -1.
func (a *Assignment) WorkerOf(t TaskID) WorkerID {
	for _, p := range a.Pairs {
		if p.Task == t {
			return p.Worker
		}
	}
	return -1
}

// TaskOf returns the task assigned to worker w, or -1.
func (a *Assignment) TaskOf(w WorkerID) TaskID {
	for _, p := range a.Pairs {
		if p.Worker == w {
			return p.Task
		}
	}
	return -1
}

// Sort orders pairs by task ID (then worker ID) for stable output.
func (a *Assignment) Sort() {
	sort.Slice(a.Pairs, func(i, j int) bool {
		if a.Pairs[i].Task != a.Pairs[j].Task {
			return a.Pairs[i].Task < a.Pairs[j].Task
		}
		return a.Pairs[i].Worker < a.Pairs[j].Worker
	})
}

// String implements fmt.Stringer.
func (a *Assignment) String() string {
	s := "M{"
	for i, p := range a.Pairs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("(w%d,t%d)", p.Worker, p.Task)
	}
	return s + "}"
}

// ValidationOptions configures Assignment validation.
type ValidationOptions struct {
	// Satisfied marks task IDs whose dependency obligation is already met
	// outside this assignment (tasks assigned or completed in earlier
	// batches). May be nil.
	Satisfied map[TaskID]bool
	// Dist overrides the instance's distance function when non-nil.
	Dist geo.DistanceFunc
}

// Validate checks an assignment against all four constraints of
// Definition 3 and returns the first violation found, or nil.
func (a *Assignment) Validate(in *Instance, opt ValidationOptions) error {
	dist := opt.Dist
	if dist == nil {
		dist = in.Distance()
	}
	workerUsed := make(map[WorkerID]bool, len(a.Pairs))
	taskUsed := make(map[TaskID]bool, len(a.Pairs))
	for _, p := range a.Pairs {
		w, t := in.Worker(p.Worker), in.Task(p.Task)
		if w == nil {
			return fmt.Errorf("model: assignment references unknown worker w%d", p.Worker)
		}
		if t == nil {
			return fmt.Errorf("model: assignment references unknown task t%d", p.Task)
		}
		// Exclusive constraint.
		if workerUsed[p.Worker] {
			return fmt.Errorf("model: worker w%d assigned twice", p.Worker)
		}
		if taskUsed[p.Task] {
			return fmt.Errorf("model: task t%d assigned twice", p.Task)
		}
		workerUsed[p.Worker] = true
		taskUsed[p.Task] = true
		// Skill constraint.
		if !w.Skills.Has(t.Requires) {
			return fmt.Errorf("model: worker w%d lacks skill ψ%d for task t%d", w.ID, t.Requires, t.ID)
		}
		// Deadline + distance constraints.
		if !Feasible(w, t, dist) {
			return fmt.Errorf("model: pair (w%d,t%d) violates deadline or distance constraint", w.ID, t.ID)
		}
	}
	// Dependency constraint: every dependency of an assigned task must be
	// assigned in this batch or already satisfied.
	assigned := a.TaskSet()
	for _, p := range a.Pairs {
		t := in.Task(p.Task)
		for _, d := range t.Deps {
			if !assigned[d] && !opt.Satisfied[d] {
				return fmt.Errorf("model: task t%d assigned but dependency t%d is not", t.ID, d)
			}
		}
	}
	return nil
}

// ValidCount returns the number of pairs whose task has all dependencies
// satisfied (assigned in this batch or pre-satisfied) — the paper's score
// when an allocator (such as the Closest/Random baselines) produces pairs
// without honouring dependencies. Pairs must individually satisfy the
// skill/deadline/distance constraints; invalid pairs also count zero.
func (a *Assignment) ValidCount(in *Instance, opt ValidationOptions) int {
	dist := opt.Dist
	if dist == nil {
		dist = in.Distance()
	}
	assigned := a.TaskSet()
	count := 0
	for _, p := range a.Pairs {
		w, t := in.Worker(p.Worker), in.Task(p.Task)
		if w == nil || t == nil || !Feasible(w, t, dist) {
			continue
		}
		ok := true
		for _, d := range t.Deps {
			if !assigned[d] && !opt.Satisfied[d] {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// FilterValid returns a new assignment keeping only pairs counted by
// ValidCount, i.e. the enforceable subset of a dependency-oblivious result.
// Filtering uses the dependency information of the *original* pair set, as
// in the paper's evaluation of the baselines: a pair is kept when its
// dependencies were assigned, even if those assignments are themselves
// invalid. Call iteratively via FilterValidStrict for a fixpoint.
func (a *Assignment) FilterValid(in *Instance, opt ValidationOptions) *Assignment {
	dist := opt.Dist
	if dist == nil {
		dist = in.Distance()
	}
	assigned := a.TaskSet()
	out := NewAssignment()
	for _, p := range a.Pairs {
		w, t := in.Worker(p.Worker), in.Task(p.Task)
		if w == nil || t == nil || !Feasible(w, t, dist) {
			continue
		}
		ok := true
		for _, d := range t.Deps {
			if !assigned[d] && !opt.Satisfied[d] {
				ok = false
				break
			}
		}
		if ok {
			out.Add(p.Worker, p.Task)
		}
	}
	out.Sort()
	return out
}

// FilterValidStrict repeatedly removes pairs whose dependencies are not
// themselves *kept*, until a fixpoint: the result always passes Validate.
func (a *Assignment) FilterValidStrict(in *Instance, opt ValidationOptions) *Assignment {
	cur := a
	for {
		next := cur.FilterValid(in, opt)
		if next.Size() == cur.Size() {
			next.Sort()
			return next
		}
		cur = next
	}
}
