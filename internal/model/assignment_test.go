package model

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperOptimal is the dependency-aware allocation of Figure 1(c):
// w1→t1, w3→t2 … actually the paper assigns each worker one task so that all
// dependencies of assigned tasks are satisfied: (w1,t1), (w3,t2), (w2,t4).
func paperOptimal() *Assignment {
	a := NewAssignment()
	a.Add(0, 0) // w1 → t1
	a.Add(2, 1) // w3 → t2
	a.Add(1, 3) // w2 → t4
	return a
}

// paperNaive is the dependency-oblivious nearest assignment of Figure 1(b):
// (w1,t2), (w2,t4), (w3,t3). Only t4 is valid.
func paperNaive() *Assignment {
	a := NewAssignment()
	a.Add(0, 1) // w1 → t2 (invalid: t1 unassigned)
	a.Add(1, 3) // w2 → t4
	a.Add(2, 2) // w3 → t3 (invalid: t1, t2 unassigned)
	return a
}

func TestExample1OptimalValidates(t *testing.T) {
	in := Example1()
	a := paperOptimal()
	if err := a.Validate(in, ValidationOptions{}); err != nil {
		t.Fatalf("paper optimal rejected: %v", err)
	}
	if a.Size() != 3 {
		t.Errorf("Size = %d", a.Size())
	}
}

func TestExample1NaiveScoresOne(t *testing.T) {
	in := Example1()
	a := paperNaive()
	if err := a.Validate(in, ValidationOptions{}); err == nil {
		t.Fatal("naive assignment should violate dependency constraint")
	}
	if got := a.ValidCount(in, ValidationOptions{}); got != 1 {
		t.Errorf("ValidCount = %d, want 1 (only t4)", got)
	}
	kept := a.FilterValidStrict(in, ValidationOptions{})
	if kept.Size() != 1 || kept.Pairs[0].Task != 3 {
		t.Errorf("FilterValidStrict = %v", kept)
	}
	if err := kept.Validate(in, ValidationOptions{}); err != nil {
		t.Errorf("filtered assignment invalid: %v", err)
	}
}

func TestValidateExclusivity(t *testing.T) {
	in := Example1()
	a := NewAssignment()
	a.Add(0, 0)
	a.Add(0, 3) // same worker twice
	if err := a.Validate(in, ValidationOptions{}); err == nil || !strings.Contains(err.Error(), "worker w0 assigned twice") {
		t.Errorf("err = %v", err)
	}
	b := NewAssignment()
	b.Add(0, 0)
	b.Add(2, 0) // same task twice
	if err := b.Validate(in, ValidationOptions{}); err == nil || !strings.Contains(err.Error(), "task t0 assigned twice") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateSkill(t *testing.T) {
	in := Example1()
	a := NewAssignment()
	a.Add(1, 0) // w2 {ψ4} on t1 (ψ1)
	if err := a.Validate(in, ValidationOptions{}); err == nil || !strings.Contains(err.Error(), "lacks skill") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateUnknownIDs(t *testing.T) {
	in := Example1()
	a := NewAssignment()
	a.Add(99, 0)
	if err := a.Validate(in, ValidationOptions{}); err == nil || !strings.Contains(err.Error(), "unknown worker") {
		t.Errorf("err = %v", err)
	}
	b := NewAssignment()
	b.Add(0, 99)
	if err := b.Validate(in, ValidationOptions{}); err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Errorf("err = %v", err)
	}
}

func TestSatisfiedDependencies(t *testing.T) {
	in := Example1()
	// Assign only t2; its dependency t1 was completed in an earlier batch.
	a := NewAssignment()
	a.Add(2, 1) // w3 → t2
	if err := a.Validate(in, ValidationOptions{}); err == nil {
		t.Fatal("unsatisfied dependency accepted")
	}
	opt := ValidationOptions{Satisfied: map[TaskID]bool{0: true}}
	if err := a.Validate(in, opt); err != nil {
		t.Errorf("pre-satisfied dependency rejected: %v", err)
	}
	if got := a.ValidCount(in, opt); got != 1 {
		t.Errorf("ValidCount = %d", got)
	}
}

func TestFilterValidStrictCascade(t *testing.T) {
	in := Example1()
	// t2 assigned, t1 assigned but with an infeasible pairing (w2 lacks ψ1):
	// the t1 pair is dropped first, which must cascade into dropping t2.
	a := NewAssignment()
	a.Add(1, 0) // invalid: w2 lacks ψ1
	a.Add(0, 1) // w1 → t2, deps on t1
	kept := a.FilterValidStrict(in, ValidationOptions{})
	if kept.Size() != 0 {
		t.Errorf("cascade filter kept %v", kept)
	}
}

func TestAssignmentAccessors(t *testing.T) {
	a := paperOptimal()
	a.Sort()
	if got := a.WorkerOf(1); got != 2 {
		t.Errorf("WorkerOf(t2) = %d", got)
	}
	if got := a.WorkerOf(4); got != -1 {
		t.Errorf("WorkerOf(unassigned) = %d", got)
	}
	if got := a.TaskOf(1); got != 3 {
		t.Errorf("TaskOf(w2) = %d", got)
	}
	if got := a.TaskOf(9); got != -1 {
		t.Errorf("TaskOf(unknown) = %d", got)
	}
	ts := a.TaskSet()
	if len(ts) != 3 || !ts[0] || !ts[1] || !ts[3] {
		t.Errorf("TaskSet = %v", ts)
	}
	if s := a.String(); !strings.Contains(s, "(w0,t0)") {
		t.Errorf("String = %q", s)
	}
}

func TestAssignmentSortDeterminism(t *testing.T) {
	a := NewAssignment()
	a.Add(2, 4)
	a.Add(0, 1)
	a.Add(1, 3)
	a.Sort()
	want := []Pair{{0, 1}, {1, 3}, {2, 4}}
	for i, p := range a.Pairs {
		if p != want[i] {
			t.Fatalf("Sort order = %v", a.Pairs)
		}
	}
}

// TestFilterValidSubsetProperty: for arbitrary pair sets over Example1, the
// strict filter result is a subset of the input, idempotent, and every kept
// task's dependencies are kept.
func TestFilterValidSubsetProperty(t *testing.T) {
	in := Example1()
	f := func(rawWorkers, rawTasks []uint8) bool {
		a := NewAssignment()
		n := len(rawWorkers)
		if len(rawTasks) < n {
			n = len(rawTasks)
		}
		for i := 0; i < n && i < 6; i++ {
			a.Add(WorkerID(rawWorkers[i]%3), TaskID(rawTasks[i]%5))
		}
		kept := a.FilterValidStrict(in, ValidationOptions{})
		// Subset check.
		inInput := map[Pair]bool{}
		for _, p := range a.Pairs {
			inInput[p] = true
		}
		for _, p := range kept.Pairs {
			if !inInput[p] {
				return false
			}
		}
		// Idempotence.
		again := kept.FilterValidStrict(in, ValidationOptions{})
		if again.Size() != kept.Size() {
			return false
		}
		// Dependency closure within the kept set.
		keptTasks := kept.TaskSet()
		for _, p := range kept.Pairs {
			for _, d := range in.Task(p.Task).Deps {
				if !keptTasks[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
