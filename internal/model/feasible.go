package model

import "dasc/internal/geo"

// Feasible reports whether the pair (w, t) satisfies the paper's skill,
// deadline and distance constraints (Definition 3, constraints 1–2 plus the
// maximum-moving-distance part of Definition 1). The dependency and exclusive
// constraints are properties of a whole assignment, not a pair, and are
// checked by Assignment.Validate.
//
// The deadline constraint is exactly the paper's two conditions:
//
//	s_t ≤ s_w + w_w                              (task appears before the worker leaves)
//	w_t − max(s_w − s_t, 0) − ct_w(l_w, l_t) ≥ 0 (worker arrives before the deadline)
func Feasible(w *Worker, t *Task, dist geo.DistanceFunc) bool {
	return FeasibleFrom(w, w.Loc, maxf(w.Start, t.Start), w.MaxDist, t, dist)
}

// FeasibleFrom generalises Feasible to a worker mid-simulation: loc is the
// worker's current location, readyAt the earliest time it can start moving,
// and distBudget its remaining moving distance. The static case is
// FeasibleFrom(w, w.Loc, max(s_w, s_t), w.MaxDist, t, dist).
func FeasibleFrom(w *Worker, loc geo.Point, readyAt, distBudget float64, t *Task, dist geo.DistanceFunc) bool {
	if !w.Skills.Has(t.Requires) {
		return false
	}
	if t.Start > w.Expiry() {
		return false
	}
	d := dist(loc, t.Loc)
	if d > distBudget+DistEps {
		return false
	}
	depart := maxf(readyAt, t.Start)
	return depart+w.TravelTime(loc, t.Loc, dist) <= t.Deadline()+timeEps
}

// DeadlineFeasible re-evaluates only the deadline component of FeasibleFrom
// for a memoized travel time: it reports whether a worker that can start
// moving at readyAt and needs travel time units to reach t still arrives by
// t's deadline. For a worker whose location and distance budget are unchanged
// the other three components of FeasibleFrom (skill, window overlap, distance
// budget) do not depend on readyAt, so a pair known feasible at an earlier
// readyAt stays feasible at a later one iff this reports true — and because
// depart = max(readyAt, s_t) is non-decreasing in readyAt, advancing the
// clock can only flip feasible → infeasible, never back. This is the
// monotone-revalidation primitive of the cross-batch engine cache: unmoved
// workers' strategy sets are re-filtered by this pure time arithmetic over
// memoized travel times, with zero distance evaluations. The arithmetic is
// bit-identical to FeasibleFrom's deadline check.
func DeadlineFeasible(t *Task, readyAt, travel float64) bool {
	return maxf(readyAt, t.Start)+travel <= t.Deadline()+timeEps
}

// ArrivalTime returns when the worker reaches the task if it departs from loc
// no earlier than readyAt (and no earlier than the task's appearance).
func ArrivalTime(w *Worker, loc geo.Point, readyAt float64, t *Task, dist geo.DistanceFunc) float64 {
	depart := maxf(readyAt, t.Start)
	return depart + w.TravelTime(loc, t.Loc, dist)
}

// timeEps absorbs floating-point noise in deadline comparisons so that a
// worker exactly on the boundary (common in hand-built examples) is feasible.
const timeEps = 1e-9

// DistEps is the distance-budget counterpart of timeEps: the budget check of
// FeasibleFrom accepts d ≤ distBudget + DistEps. The simulator accumulates a
// worker's travelled distance leg by leg in floating point, so a worker that
// exactly exhausts its declared budget can end up with a remaining budget a
// few ulps below the true value (even slightly negative); without the epsilon
// a colocated task (d = 0) would flip infeasible. Exported so spatial pruning
// layers can widen their query radius to distBudget+DistEps and stay
// consistent with this predicate.
const DistEps = 1e-9

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
