package model

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dasc/internal/dag"
	"dasc/internal/geo"
)

func TestExample1Valid(t *testing.T) {
	in := Example1()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Workers) != 3 || len(in.Tasks) != 5 {
		t.Fatalf("sizes %d/%d", len(in.Workers), len(in.Tasks))
	}
	st := in.ComputeStats()
	if st.RootTasks != 2 || st.MaxDepSetSize != 2 || st.CriticalPathLength != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Dependencies are already transitively closed.
	g, err := in.DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTransitivelyClosed() {
		t.Error("Example1 deps not closed")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"bad worker id", func(in *Instance) { in.Workers[1].ID = 7 }, "has ID"},
		{"negative wait", func(in *Instance) { in.Workers[0].Wait = -1 }, "negative parameter"},
		{"no skills", func(in *Instance) { in.Workers[0].Skills = SkillSet{} }, "no skills"},
		{"bad task id", func(in *Instance) { in.Tasks[2].ID = 9 }, "has ID"},
		{"negative task wait", func(in *Instance) { in.Tasks[0].Wait = -2 }, "negative waiting"},
		{"unknown dep", func(in *Instance) { in.Tasks[1].Deps = []TaskID{99} }, "unknown task"},
		{"self dep", func(in *Instance) { in.Tasks[1].Deps = []TaskID{1} }, "itself"},
		{"dup dep", func(in *Instance) { in.Tasks[1].Deps = []TaskID{0, 0} }, "twice"},
	}
	for _, tc := range cases {
		in := Example1()
		tc.mutate(in)
		err := in.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateCycle(t *testing.T) {
	in := Example1()
	in.Tasks[0].Deps = []TaskID{2} // t1 → t3 while t3 → t1
	err := in.Validate()
	if !errors.Is(err, dag.ErrCycle) {
		t.Errorf("err = %v, want ErrCycle", err)
	}
}

func TestCloseDeps(t *testing.T) {
	in := Example1()
	// Break the closure: t3 only lists t2 directly.
	in.Tasks[2].Deps = []TaskID{1}
	if err := in.CloseDeps(); err != nil {
		t.Fatal(err)
	}
	if got := in.Tasks[2].Deps; !reflect.DeepEqual(got, []TaskID{0, 1}) {
		t.Errorf("closed deps = %v", got)
	}
}

func TestLookupOutOfRange(t *testing.T) {
	in := Example1()
	if in.Worker(-1) != nil || in.Worker(99) != nil {
		t.Error("out-of-range Worker not nil")
	}
	if in.Task(-1) != nil || in.Task(99) != nil {
		t.Error("out-of-range Task not nil")
	}
	if in.Worker(0) == nil || in.Task(4) == nil {
		t.Error("in-range lookup nil")
	}
}

func TestDistanceDefault(t *testing.T) {
	in := &Instance{}
	d := in.Distance()
	if d(geo.Pt(0, 0), geo.Pt(3, 4)) != 5 {
		t.Error("default metric is not Euclidean")
	}
	in.Dist = geo.Manhattan
	if in.Distance()(geo.Pt(0, 0), geo.Pt(3, 4)) != 7 {
		t.Error("custom metric ignored")
	}
}

func TestCandidateIndexExample1(t *testing.T) {
	in := Example1()
	ci := NewCandidateIndex(in)
	// w1 holds {ψ1, ψ2} → tasks t1 (ψ1) and t2 (ψ2).
	if got := ci.TasksFor(in.Worker(0)); !reflect.DeepEqual(got, []TaskID{0, 1}) {
		t.Errorf("TasksFor(w1) = %v", got)
	}
	// w2 holds {ψ4} → only t4.
	if got := ci.TasksFor(in.Worker(1)); !reflect.DeepEqual(got, []TaskID{3}) {
		t.Errorf("TasksFor(w2) = %v", got)
	}
	// w3 holds {ψ1, ψ2, ψ3} → t1, t2, t3, t5.
	if got := ci.TasksFor(in.Worker(2)); !reflect.DeepEqual(got, []TaskID{0, 1, 2, 4}) {
		t.Errorf("TasksFor(w3) = %v", got)
	}
	// t3 requires ψ3 → only w3.
	if got := ci.WorkersFor(in.Task(2)); !reflect.DeepEqual(got, []WorkerID{2}) {
		t.Errorf("WorkersFor(t3) = %v", got)
	}
	// t1 requires ψ1 → w1 and w3.
	if got := ci.WorkersFor(in.Task(0)); !reflect.DeepEqual(got, []WorkerID{0, 2}) {
		t.Errorf("WorkersFor(t1) = %v", got)
	}
}

func TestCandidateIndexHonoursConstraints(t *testing.T) {
	in := Example1()
	// Shrink w3's range so it can only reach t3 at (5,2) from (5,3).
	in.Workers[2].MaxDist = 1.0
	ci := NewCandidateIndex(in)
	if got := ci.TasksFor(in.Worker(2)); !reflect.DeepEqual(got, []TaskID{2}) {
		t.Errorf("TasksFor(w3 short range) = %v", got)
	}
}

func TestCandidateIndexTasksNear(t *testing.T) {
	in := Example1()
	ci := NewCandidateIndex(in)
	got := ci.TasksNear(geo.Pt(2, 2), 1.5)
	// Tasks within 1.5 of (2,2): t2 at (2,2), t5 at (1,2).
	if !reflect.DeepEqual(got, []TaskID{1, 4}) {
		t.Errorf("TasksNear = %v", got)
	}
}

func TestCandidateIndexEmptyInstance(t *testing.T) {
	ci := NewCandidateIndex(&Instance{})
	w := baseWorker()
	if got := ci.TasksFor(&w); len(got) != 0 {
		t.Errorf("TasksFor on empty = %v", got)
	}
}
