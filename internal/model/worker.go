package model

import (
	"fmt"
	"math"

	"dasc/internal/geo"
)

// WorkerID identifies a worker. IDs are dense indexes into Instance.Workers.
type WorkerID int32

// Worker is a heterogeneous worker w = ⟨l_w, s_w, w_w, v_w, d_w, WS_w⟩
// (Definition 1): it appears at location Loc at time Start, waits at most
// Wait time for an assignment, moves at Velocity with a total moving budget
// of MaxDist, and holds the skill set Skills.
type Worker struct {
	ID       WorkerID
	Loc      geo.Point
	Start    float64 // s_w: timestamp the worker appears on the platform
	Wait     float64 // w_w: how long the worker waits for an assignment
	Velocity float64 // v_w: moving speed (distance per time unit)
	MaxDist  float64 // d_w: maximum moving distance
	Skills   SkillSet
}

// Expiry returns the time s_w + w_w after which the worker no longer accepts
// assignments.
func (w *Worker) Expiry() float64 { return w.Start + w.Wait }

// TravelTime returns ct_w(from, to): the time w needs to move between two
// locations under the given distance function. A non-positive velocity means
// the worker cannot move; TravelTime then returns +Inf unless the distance is
// zero.
func (w *Worker) TravelTime(from, to geo.Point, dist geo.DistanceFunc) float64 {
	d := dist(from, to)
	if d == 0 {
		return 0
	}
	if w.Velocity <= 0 {
		return math.Inf(1)
	}
	return d / w.Velocity
}

// CanReach reports whether the location is within the worker's maximum
// moving distance from its current location. The comparison carries the
// same DistEps tolerance as FeasibleFrom, so the two predicates agree on
// boundary distances.
func (w *Worker) CanReach(to geo.Point, dist geo.DistanceFunc) bool {
	return dist(w.Loc, to) <= w.MaxDist+DistEps
}

// String implements fmt.Stringer.
func (w *Worker) String() string {
	return fmt.Sprintf("w%d@%v skills=%v", w.ID, w.Loc, w.Skills)
}
