package model

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSkillSetBasics(t *testing.T) {
	var s SkillSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Error("zero value should be empty")
	}
	s.Add(3)
	s.Add(70) // second word
	s.Add(3)  // duplicate
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Has(3) || !s.Has(70) || s.Has(4) || s.Has(-1) {
		t.Error("Has wrong")
	}
	s.Remove(3)
	if s.Has(3) || s.Len() != 1 {
		t.Error("Remove failed")
	}
	s.Remove(999) // out of range no-op
	s.Remove(-5)
}

func TestSkillSetOps(t *testing.T) {
	a := NewSkillSet(1, 2, 65)
	b := NewSkillSet(2, 3)
	if got := a.Union(b).Skills(); !reflect.DeepEqual(got, []Skill{1, 2, 3, 65}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Skills(); !reflect.DeepEqual(got, []Skill{2}) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.ContainsAll(NewSkillSet(1, 65)) {
		t.Error("ContainsAll false negative")
	}
	if a.ContainsAll(b) {
		t.Error("ContainsAll false positive")
	}
	if !a.ContainsAll(SkillSet{}) {
		t.Error("every set contains the empty set")
	}
	if !a.Equal(NewSkillSet(65, 2, 1)) {
		t.Error("Equal order-sensitive")
	}
	if a.Equal(b) {
		t.Error("Equal false positive")
	}
	// Equal must ignore trailing zero words.
	c := NewSkillSet(1, 200)
	c.Remove(200)
	if !c.Equal(NewSkillSet(1)) {
		t.Error("Equal tripped by trailing zero words")
	}
}

func TestSkillSetCloneIndependence(t *testing.T) {
	a := NewSkillSet(1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("Clone shares storage")
	}
}

func TestSkillSetString(t *testing.T) {
	if got := NewSkillSet(2, 10, 1).String(); got != "{ψ1, ψ2, ψ10}" {
		t.Errorf("String = %q", got)
	}
	if got := (SkillSet{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// TestSkillSetModelProperty cross-checks the bitset against a map-based
// reference model under random operation sequences.
func TestSkillSetModelProperty(t *testing.T) {
	type op struct {
		Add   bool
		Skill uint8
	}
	f := func(ops []op) bool {
		var s SkillSet
		ref := map[Skill]bool{}
		for _, o := range ops {
			sk := Skill(o.Skill)
			if o.Add {
				s.Add(sk)
				ref[sk] = true
			} else {
				s.Remove(sk)
				delete(ref, sk)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for sk := range ref {
			if !s.Has(sk) {
				return false
			}
		}
		for _, sk := range s.Skills() {
			if !ref[sk] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSkillSetUnionProperty: |A ∪ B| + |A ∩ B| == |A| + |B|.
func TestSkillSetUnionProperty(t *testing.T) {
	f := func(as, bs []uint8) bool {
		var a, b SkillSet
		for _, v := range as {
			a.Add(Skill(v))
		}
		for _, v := range bs {
			b.Add(Skill(v))
		}
		return a.Union(b).Len()+a.Intersect(b).Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkillNames(t *testing.T) {
	r := NewSkillNames()
	plumbing := r.MustIntern("plumbing")
	painting := r.MustIntern("painting")
	if plumbing != 0 || painting != 1 {
		t.Errorf("ids = %d, %d", plumbing, painting)
	}
	// Idempotent.
	if again := r.MustIntern("plumbing"); again != plumbing {
		t.Errorf("re-intern = %d", again)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if id, ok := r.Lookup("painting"); !ok || id != painting {
		t.Errorf("Lookup = %d, %v", id, ok)
	}
	if _, ok := r.Lookup("welding"); ok {
		t.Error("unknown name found")
	}
	if got := r.Name(plumbing); got != "plumbing" {
		t.Errorf("Name = %q", got)
	}
	if got := r.Name(99); got != "ψ99" {
		t.Errorf("unknown Name = %q", got)
	}
	if _, err := r.Intern(""); err == nil {
		t.Error("empty name accepted")
	}
	set, err := r.Set("painting", "welding")
	if err != nil {
		t.Fatal(err)
	}
	if !set.Has(painting) || set.Len() != 2 {
		t.Errorf("Set = %v", set)
	}
	if got := r.Describe(set); got != "{painting, welding}" {
		t.Errorf("Describe = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIntern(\"\") did not panic")
		}
	}()
	r.MustIntern("")
}
