package model

import (
	"sort"

	"dasc/internal/geo"
)

// CandidateIndex accelerates the two hot lookups of every allocator:
// "which tasks can this worker take" (the strategy set S_w of the game) and
// "which workers can staff this task" (the columns of the greedy Hungarian
// call). It combines a per-skill inverted list with a spatial grid so that a
// lookup touches only tasks of matching skill inside the reachable disc.
type CandidateIndex struct {
	in   *Instance
	dist geo.DistanceFunc

	tasksBySkill   map[Skill][]TaskID
	workersBySkill map[Skill][]WorkerID
	taskGrid       *geo.GridIndex
}

// NewCandidateIndex builds the index for an instance. The instance must not
// be mutated while the index is in use.
func NewCandidateIndex(in *Instance) *CandidateIndex {
	ci := &CandidateIndex{
		in:             in,
		dist:           in.Distance(),
		tasksBySkill:   make(map[Skill][]TaskID),
		workersBySkill: make(map[Skill][]WorkerID),
	}
	box := boundingBoxOf(in)
	ci.taskGrid = geo.NewGridIndex(box, len(in.Tasks)+1)
	for i := range in.Tasks {
		t := &in.Tasks[i]
		ci.tasksBySkill[t.Requires] = append(ci.tasksBySkill[t.Requires], t.ID)
		ci.taskGrid.Insert(int(t.ID), t.Loc)
	}
	for i := range in.Workers {
		w := &in.Workers[i]
		for _, sk := range w.Skills.Skills() {
			ci.workersBySkill[sk] = append(ci.workersBySkill[sk], w.ID)
		}
	}
	return ci
}

// boundingBoxOf returns a box covering every location in the instance.
func boundingBoxOf(in *Instance) geo.BBox {
	if len(in.Workers) == 0 && len(in.Tasks) == 0 {
		return geo.NewBBox(geo.Pt(0, 0), geo.Pt(1, 1))
	}
	var box geo.BBox
	first := true
	extend := func(p geo.Point) {
		if first {
			box = geo.BBox{Min: p, Max: p}
			first = false
			return
		}
		if p.X < box.Min.X {
			box.Min.X = p.X
		}
		if p.Y < box.Min.Y {
			box.Min.Y = p.Y
		}
		if p.X > box.Max.X {
			box.Max.X = p.X
		}
		if p.Y > box.Max.Y {
			box.Max.Y = p.Y
		}
	}
	for i := range in.Workers {
		extend(in.Workers[i].Loc)
	}
	for i := range in.Tasks {
		extend(in.Tasks[i].Loc)
	}
	return box
}

// TasksFor returns, in ascending task-ID order, every task the worker can
// feasibly take (skill + deadline + distance). The result is freshly
// allocated.
//
// When the distance metric admits a Euclidean lower bound (Euclidean,
// Manhattan, Chebyshev) the grid prunes by the worker's maximum moving
// distance; for other metrics it falls back to the per-skill lists (still far
// smaller than a full scan).
func (ci *CandidateIndex) TasksFor(w *Worker) []TaskID {
	return ci.TasksForFrom(w, w.Loc, w.Start, w.MaxDist)
}

// TasksForFrom generalises TasksFor to a worker mid-simulation: loc is the
// worker's current location, readyAt the earliest time it can start moving,
// and distBudget its remaining moving distance. The pruning strategy matches
// TasksFor: a spatial radius query of distBudget (scaled per metric) when the
// metric is Euclidean-boundable, per-skill inverted lists otherwise; every
// survivor is confirmed with the exact FeasibleFrom predicate.
func (ci *CandidateIndex) TasksForFrom(w *Worker, loc geo.Point, readyAt, distBudget float64) []TaskID {
	var out []TaskID
	if scale, ok := geo.EuclideanBoundScale(ci.in.Dist); ok {
		ids := ci.taskGrid.Within(loc, scale*(distBudget+DistEps), nil)
		for _, id := range ids {
			t := ci.in.Task(TaskID(id))
			if w.Skills.Has(t.Requires) && FeasibleFrom(w, loc, readyAt, distBudget, t, ci.dist) {
				out = append(out, t.ID)
			}
		}
	} else {
		for _, sk := range w.Skills.Skills() {
			for _, tid := range ci.tasksBySkill[sk] {
				if FeasibleFrom(w, loc, readyAt, distBudget, ci.in.Task(tid), ci.dist) {
					out = append(out, tid)
				}
			}
		}
	}
	sortTaskIDs(out)
	return out
}

// TasksNear returns task IDs within radius r of p using the spatial grid,
// regardless of skill. Useful for density diagnostics and the Closest
// baseline.
func (ci *CandidateIndex) TasksNear(p geo.Point, r float64) []TaskID {
	ids := ci.taskGrid.Within(p, r, nil)
	out := make([]TaskID, len(ids))
	for i, id := range ids {
		out[i] = TaskID(id)
	}
	sortTaskIDs(out)
	return out
}

// WorkersWithSkill returns, ascending, the IDs of the workers holding sk —
// the skill-bucket half of WorkersFor, for callers (like the online
// simulator) that must apply their own per-worker state checks.
func (ci *CandidateIndex) WorkersWithSkill(sk Skill) []WorkerID {
	return ci.workersBySkill[sk]
}

// WorkersFor returns, in ascending worker-ID order, every worker that can
// feasibly take the task.
func (ci *CandidateIndex) WorkersFor(t *Task) []WorkerID {
	var out []WorkerID
	for _, wid := range ci.workersBySkill[t.Requires] {
		w := ci.in.Worker(wid)
		if Feasible(w, t, ci.dist) {
			out = append(out, wid)
		}
	}
	return out
}

func sortTaskIDs(a []TaskID) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
