package model

import (
	"fmt"
	"sort"

	"dasc/internal/geo"
)

// SubsetByRegion extracts the sub-instance inside the box: the workers
// located in it and the tasks located in it whose transitive dependencies
// also fall inside (a task whose dependency lies outside cannot be allocated
// within the partition, so it is dropped). IDs are re-densified; the mapping
// back to the original IDs is returned alongside.
//
// Geographic sharding is how a production platform would split a planet-
// scale deployment into independently-allocated cells; the dependency-closed
// cut keeps each shard self-consistent.
func (in *Instance) SubsetByRegion(box geo.BBox) (*Instance, *IDMaps) {
	keepTask := make([]bool, len(in.Tasks))
	// A task survives iff it and all its (closed) dependencies are inside.
	for i := range in.Tasks {
		t := &in.Tasks[i]
		if !box.Contains(t.Loc) {
			continue
		}
		ok := true
		for _, d := range t.Deps {
			if dep := in.Task(d); dep == nil || !box.Contains(dep.Loc) {
				ok = false
				break
			}
		}
		keepTask[i] = ok
	}
	// Iterate: a kept task whose dependency was dropped (dep inside the box
	// but itself dependency-broken) must also drop.
	for changed := true; changed; {
		changed = false
		for i := range in.Tasks {
			if !keepTask[i] {
				continue
			}
			for _, d := range in.Tasks[i].Deps {
				if !keepTask[d] {
					keepTask[i] = false
					changed = true
					break
				}
			}
		}
	}

	out := &Instance{SkillUniverse: in.SkillUniverse, Dist: in.Dist}
	maps := &IDMaps{
		WorkerToOld: nil,
		TaskToOld:   nil,
		taskNew:     make(map[TaskID]TaskID),
	}
	for i := range in.Workers {
		w := in.Workers[i]
		if !box.Contains(w.Loc) {
			continue
		}
		maps.WorkerToOld = append(maps.WorkerToOld, w.ID)
		w.ID = WorkerID(len(out.Workers))
		w.Skills = w.Skills.Clone()
		out.Workers = append(out.Workers, w)
	}
	for i := range in.Tasks {
		if !keepTask[i] {
			continue
		}
		t := in.Tasks[i]
		maps.taskNew[t.ID] = TaskID(len(out.Tasks))
		maps.TaskToOld = append(maps.TaskToOld, t.ID)
		t.ID = TaskID(len(out.Tasks))
		out.Tasks = append(out.Tasks, t)
	}
	// Remap dependency IDs (all targets survived by construction).
	for i := range out.Tasks {
		old := out.Tasks[i].Deps
		deps := make([]TaskID, len(old))
		for j, d := range old {
			deps[j] = maps.taskNew[d]
		}
		sort.Slice(deps, func(a, b int) bool { return deps[a] < deps[b] })
		out.Tasks[i].Deps = deps
	}
	return out, maps
}

// IDMaps translates a sub-instance's dense IDs back to the original ones.
type IDMaps struct {
	WorkerToOld []WorkerID // new worker ID -> original
	TaskToOld   []TaskID   // new task ID -> original
	taskNew     map[TaskID]TaskID
}

// OriginalPair translates a sub-instance assignment pair back to original
// IDs. It panics on out-of-range IDs, which indicate a mismatched map.
func (m *IDMaps) OriginalPair(p Pair) Pair {
	return Pair{
		Worker: m.WorkerToOld[p.Worker],
		Task:   m.TaskToOld[p.Task],
	}
}

// MergeAssignments lifts per-shard assignments back into original IDs and
// concatenates them. Shards built from disjoint regions cannot collide on
// workers or tasks; Validate on the merged result guards against misuse.
func MergeAssignments(shards []*Assignment, maps []*IDMaps) (*Assignment, error) {
	if len(shards) != len(maps) {
		return nil, fmt.Errorf("model: %d assignments for %d maps", len(shards), len(maps))
	}
	out := NewAssignment()
	for i, a := range shards {
		for _, p := range a.Pairs {
			out.Add(maps[i].OriginalPair(p).Worker, maps[i].OriginalPair(p).Task)
		}
	}
	out.Sort()
	return out, nil
}
