package model

import (
	"testing"

	"dasc/internal/geo"
)

func TestSubsetByRegionExample1(t *testing.T) {
	in := Example1()
	// Left half: x ≤ 3.5. Workers w1 (2,1), w2 (3,3); tasks t2 (2,2),
	// t4 (3,4), t5 (1,2). t2 depends on t1 (4,1) — outside — so t2 drops;
	// t5 depends on t4 — inside — so both stay.
	box := geo.NewBBox(geo.Pt(0, 0), geo.Pt(3.5, 5))
	sub, maps := in.SubsetByRegion(box)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sub.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(sub.Workers))
	}
	if len(sub.Tasks) != 2 {
		t.Fatalf("tasks = %v, want t4 and t5", sub.Tasks)
	}
	if maps.TaskToOld[0] != 3 || maps.TaskToOld[1] != 4 {
		t.Errorf("TaskToOld = %v", maps.TaskToOld)
	}
	// The dependency of the re-densified t5 points at the re-densified t4.
	if len(sub.Tasks[1].Deps) != 1 || sub.Tasks[1].Deps[0] != 0 {
		t.Errorf("remapped deps = %v", sub.Tasks[1].Deps)
	}
}

func TestSubsetCascadingDrop(t *testing.T) {
	// Chain t0→t1→t2 where t0 is outside the box: t1 AND t2 must drop.
	in := &Instance{
		Workers: []Worker{{ID: 0, Loc: geo.Pt(1, 1), Start: 0, Wait: 10, Velocity: 1, MaxDist: 10, Skills: NewSkillSet(0)}},
		Tasks: []Task{
			{ID: 0, Loc: geo.Pt(9, 9), Start: 0, Wait: 10, Requires: 0},
			{ID: 1, Loc: geo.Pt(1, 1), Start: 0, Wait: 10, Requires: 0, Deps: []TaskID{0}},
			{ID: 2, Loc: geo.Pt(1, 2), Start: 0, Wait: 10, Requires: 0, Deps: []TaskID{0, 1}},
			{ID: 3, Loc: geo.Pt(2, 2), Start: 0, Wait: 10, Requires: 0},
		},
	}
	sub, _ := in.SubsetByRegion(geo.NewBBox(geo.Pt(0, 0), geo.Pt(5, 5)))
	if len(sub.Tasks) != 1 || sub.Tasks[0].Loc != geo.Pt(2, 2) {
		t.Fatalf("tasks = %v, want only the independent one", sub.Tasks)
	}
}

func TestMergeAssignments(t *testing.T) {
	in := Example1()
	left, lm := in.SubsetByRegion(geo.NewBBox(geo.Pt(0, 0), geo.Pt(3.5, 5)))
	right, rm := in.SubsetByRegion(geo.NewBBox(geo.Pt(3.6, 0), geo.Pt(9, 5)))
	// Trivial shard assignments: first worker takes first task where any
	// feasible pair exists.
	mk := func(sub *Instance) *Assignment {
		a := NewAssignment()
		for wi := range sub.Workers {
			for ti := range sub.Tasks {
				if len(sub.Tasks[ti].Deps) == 0 && Feasible(&sub.Workers[wi], &sub.Tasks[ti], geo.Euclidean) {
					a.Add(sub.Workers[wi].ID, sub.Tasks[ti].ID)
					return a
				}
			}
		}
		return a
	}
	la, ra := mk(left), mk(right)
	merged, err := MergeAssignments([]*Assignment{la, ra}, []*IDMaps{lm, rm})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Size() != la.Size()+ra.Size() {
		t.Fatalf("merged %d pairs from %d + %d", merged.Size(), la.Size(), ra.Size())
	}
	// Original-ID validity: feasibility must hold in the original instance.
	for _, p := range merged.Pairs {
		if !Feasible(in.Worker(p.Worker), in.Task(p.Task), geo.Euclidean) {
			t.Fatalf("merged pair %v infeasible in the original", p)
		}
	}
	if _, err := MergeAssignments([]*Assignment{la}, []*IDMaps{lm, rm}); err == nil {
		t.Error("mismatched shard counts accepted")
	}
}
