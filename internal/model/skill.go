// Package model defines the DA-SC domain objects from Section II of the
// paper — heterogeneous workers (Definition 1), dependency-aware spatial
// tasks (Definition 2) — together with the feasibility predicates encoding
// the four constraints of Definition 3 and whole-assignment validation.
package model

import (
	"fmt"
	"math/bits"
	"strings"
)

// Skill identifies one ability ψ in the skill universe Ψ. Skills are dense
// integers in [0, r).
type Skill int32

// SkillSet is a bitset over the skill universe. The synthetic workloads use
// universes up to ~2000 skills and workers holding ≤ 30 of them, so a packed
// bitset keeps the per-worker membership test at a couple of instructions.
type SkillSet struct {
	words []uint64
}

// NewSkillSet returns a set containing the given skills.
func NewSkillSet(skills ...Skill) SkillSet {
	var s SkillSet
	for _, sk := range skills {
		s.Add(sk)
	}
	return s
}

// Add inserts sk into the set. Negative skills panic.
func (s *SkillSet) Add(sk Skill) {
	if sk < 0 {
		panic(fmt.Sprintf("model: negative skill %d", sk))
	}
	w := int(sk) / 64
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(sk) % 64)
}

// Remove deletes sk from the set; removing an absent skill is a no-op.
func (s *SkillSet) Remove(sk Skill) {
	w := int(sk) / 64
	if sk < 0 || w >= len(s.words) {
		return
	}
	s.words[w] &^= 1 << (uint(sk) % 64)
}

// Has reports whether sk is in the set.
func (s SkillSet) Has(sk Skill) bool {
	w := int(sk) / 64
	if sk < 0 || w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(sk)%64)) != 0
}

// Len returns the number of skills in the set.
func (s SkillSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set holds no skills.
func (s SkillSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns a new set holding every skill in s or o.
func (s SkillSet) Union(o SkillSet) SkillSet {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return SkillSet{words: out}
}

// Intersect returns a new set holding the skills in both s and o.
func (s SkillSet) Intersect(o SkillSet) SkillSet {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & o.words[i]
	}
	return SkillSet{words: out}
}

// ContainsAll reports whether every skill of o is also in s.
func (s SkillSet) ContainsAll(o SkillSet) bool {
	for i, w := range o.words {
		var sw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets hold exactly the same skills.
func (s SkillSet) Equal(o SkillSet) bool {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for i := len(short); i < len(long); i++ {
		if long[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s SkillSet) Clone() SkillSet {
	return SkillSet{words: append([]uint64(nil), s.words...)}
}

// Skills returns the members in ascending order.
func (s SkillSet) Skills() []Skill {
	out := make([]Skill, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, Skill(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// String implements fmt.Stringer, e.g. "{ψ1, ψ4}". Skills appear in
// ascending numeric order.
func (s SkillSet) String() string {
	skills := s.Skills()
	parts := make([]string, len(skills))
	for i, sk := range skills {
		parts[i] = fmt.Sprintf("ψ%d", sk)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
