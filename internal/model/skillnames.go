package model

import (
	"fmt"
	"sort"
)

// SkillNames maps human-readable skill names to dense Skill IDs and back —
// the bridge between application vocabularies ("plumbing", "photography")
// and the library's integer skills. Intern is idempotent, so callers can
// build instances from string data without pre-declaring a universe.
//
// Not safe for concurrent mutation; wrap with a lock for shared use.
type SkillNames struct {
	byName map[string]Skill
	names  []string
}

// NewSkillNames returns an empty registry.
func NewSkillNames() *SkillNames {
	return &SkillNames{byName: make(map[string]Skill)}
}

// Intern returns the skill ID for name, allocating the next dense ID on
// first sight. Empty names are rejected.
func (r *SkillNames) Intern(name string) (Skill, error) {
	if name == "" {
		return 0, fmt.Errorf("model: empty skill name")
	}
	if id, ok := r.byName[name]; ok {
		return id, nil
	}
	id := Skill(len(r.names))
	r.byName[name] = id
	r.names = append(r.names, name)
	return id, nil
}

// MustIntern is Intern for static literals; it panics on the empty string.
func (r *SkillNames) MustIntern(name string) Skill {
	id, err := r.Intern(name)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the ID for a previously interned name.
func (r *SkillNames) Lookup(name string) (Skill, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Name returns the name of a skill ID, or "ψ<id>" for unknown IDs (so
// renderers degrade gracefully on instances built without the registry).
func (r *SkillNames) Name(id Skill) string {
	if id >= 0 && int(id) < len(r.names) {
		return r.names[id]
	}
	return fmt.Sprintf("ψ%d", id)
}

// Len returns the number of interned skills — usable as an Instance's
// SkillUniverse.
func (r *SkillNames) Len() int { return len(r.names) }

// Set builds a SkillSet from names, interning as needed.
func (r *SkillNames) Set(names ...string) (SkillSet, error) {
	var s SkillSet
	for _, n := range names {
		id, err := r.Intern(n)
		if err != nil {
			return SkillSet{}, err
		}
		s.Add(id)
	}
	return s, nil
}

// Describe renders a SkillSet with names, e.g. "{painting, plumbing}",
// sorted alphabetically.
func (r *SkillNames) Describe(s SkillSet) string {
	skills := s.Skills()
	names := make([]string, len(skills))
	for i, id := range skills {
		names[i] = r.Name(id)
	}
	sort.Strings(names)
	out := "{"
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out + "}"
}
