package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// NewLockDiscipline returns the lock-discipline analyzer. The server's
// Platform (and its Journal) follow the *Locked-suffix convention: methods
// documented `// requires: p.mu` assume the caller holds the receiver's
// mutex, and calling one unlocked corrupts the registries mid-publish. The
// convention lived only in comments; this analyzer makes the comment an
// annotation and checks every intra-package call site:
//
//   - a call to a method annotated `// requires: x.mu` is legal when the
//     calling function is itself annotated with the same lock, or when the
//     call is dominated (in source order) by `<recv>.mu.Lock()` on the same
//     receiver chain without an intervening non-deferred Unlock;
//   - an annotated method must not Lock its own annotated mutex (that is a
//     guaranteed self-deadlock under the convention).
//
// The held-lock tracking is lexical, not path-sensitive: a Lock in one
// branch does not leak into its sibling, because the walk processes
// branches independently. Function literals inherit the held set at their
// definition point (the once.Do / defer idiom). Escapes are annotated
// //lint:lockdiscipline-ok <reason>.
func NewLockDiscipline() *Analyzer {
	return &Analyzer{
		Name:     "lockdiscipline",
		Doc:      "checks that methods annotated `// requires: x.mu` are only called with the lock held",
		Suppress: "lockdiscipline-ok",
		Run:      runLockDiscipline,
	}
}

// requiresRe matches the annotation line: `// requires: p.mu`. Anchored to
// the start of a doc-comment line so prose MENTIONING the annotation (this
// analyzer's own doc, say) does not annotate the function it documents.
var requiresRe = regexp.MustCompile(`(?m)^\s*requires:\s*([A-Za-z_][A-Za-z_0-9]*)\.([A-Za-z_][A-Za-z_0-9]*)\s*$`)

// lockReq records one annotated function: the receiver parameter name it
// documents and the mutex field the caller must hold.
type lockReq struct {
	recv  string // receiver name in the annotation ("p")
	field string // mutex field name ("mu")
}

func runLockDiscipline(pass *Pass) error {
	annotated := map[*types.Func]lockReq{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			m := requiresRe.FindStringSubmatch(fd.Doc.Text())
			if m == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				annotated[fn] = lockReq{recv: m[1], field: m[2]}
			}
		}
	}
	if len(annotated) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockUse(pass, fd, annotated)
		}
	}
	return nil
}

// callerRequirement returns the lock expression ("p.mu") the enclosing
// function is annotated as requiring, or "".
func callerRequirement(pass *Pass, fd *ast.FuncDecl, annotated map[*types.Func]lockReq) string {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	req, ok := annotated[fn]
	if !ok {
		return ""
	}
	return req.recv + "." + req.field
}

// checkLockUse walks one function, tracking which mutex expressions are
// held at each point, and flags calls to annotated methods made unlocked
// (and self-locks inside annotated methods).
func checkLockUse(pass *Pass, fd *ast.FuncDecl, annotated map[*types.Func]lockReq) {
	held := map[string]bool{}
	selfReq := callerRequirement(pass, fd, annotated)
	if selfReq != "" {
		held[selfReq] = true
	}
	var walk func(n ast.Node, held map[string]bool)
	visitExpr := func(n ast.Node, held map[string]bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// Lock/Unlock on a mutex-typed selector: "<path>.mu.Lock()".
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "Unlock" {
				if lockSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && isMutex(pass.TypesInfo, lockSel) {
					path := types.ExprString(lockSel)
					if sel.Sel.Name == "Lock" {
						if selfReq != "" && path == selfReq {
							pass.Reportf(call.Pos(), "%s.Lock() inside a method annotated `requires: %s`; the caller already holds it (self-deadlock)", path, selfReq)
						}
						held[path] = true
					} else {
						delete(held, path)
					}
					return
				}
			}
		}
		// Call to an annotated method?
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		req, ok := annotated[fn]
		if !ok {
			return
		}
		// The lock the CALLER must hold is the callee's mutex field reached
		// through the call's receiver expression: p.journal.failLocked(...)
		// requires p.journal.mu.
		want := req.recv + "." + req.field
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			want = types.ExprString(sel.X) + "." + req.field
		}
		if !held[want] {
			pass.Reportf(call.Pos(), "call to %s (requires %s) without holding %s", fn.Name(), req.recv+"."+req.field, want)
		}
	}
	walk = func(n ast.Node, held map[string]bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.BlockStmt:
			for _, st := range n.List {
				walk(st, held)
			}
		case *ast.IfStmt:
			walk(n.Init, held)
			walkExprs(n.Cond, held, visitExpr)
			walk(n.Body, copyHeld(held))
			walk(n.Else, copyHeld(held))
		case *ast.ForStmt:
			walk(n.Init, held)
			walkExprs(n.Cond, held, visitExpr)
			walk(n.Body, copyHeld(held))
		case *ast.RangeStmt:
			walkExprs(n.X, held, visitExpr)
			walk(n.Body, copyHeld(held))
		case *ast.SwitchStmt:
			walk(n.Init, held)
			walkExprs(n.Tag, held, visitExpr)
			for _, c := range n.Body.List {
				cc := c.(*ast.CaseClause)
				ch := copyHeld(held)
				for _, st := range cc.Body {
					walk(st, ch)
				}
			}
		case *ast.TypeSwitchStmt:
			walk(n.Init, held)
			for _, c := range n.Body.List {
				cc := c.(*ast.CaseClause)
				ch := copyHeld(held)
				for _, st := range cc.Body {
					walk(st, ch)
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				ch := copyHeld(held)
				walk(cc.Comm, ch)
				for _, st := range cc.Body {
					walk(st, ch)
				}
			}
		case *ast.DeferStmt:
			// defer x.mu.Unlock() keeps the lock held through the rest of
			// the function body; other deferred calls are checked against
			// the CURRENT held set (close enough: the repo's deferred
			// cleanups run under the same lock state they were armed in).
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Unlock" {
				return
			}
			walkExprs(n.Call, held, visitExpr)
		case *ast.GoStmt:
			// A goroutine does not inherit the spawner's lock.
			walkExprs(n.Call, copyHeld(nil), visitExpr)
		case ast.Stmt:
			walkExprs(n, held, visitExpr)
		}
	}
	walk(fd.Body, held)
}

// walkExprs visits every node under n in source order with the current
// held set, entering function literals with a snapshot of it.
func walkExprs(n ast.Node, held map[string]bool, visit func(ast.Node, map[string]bool)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			inner := copyHeld(held)
			ast.Inspect(fl.Body, func(k ast.Node) bool {
				visit(k, inner)
				return true
			})
			return false
		}
		visit(m, held)
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k, v := range held {
		out[k] = v
	}
	return out
}

// isMutex reports whether the selector denotes a sync.Mutex / sync.RWMutex
// (or embedded equivalent) field.
func isMutex(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[sel]
	if !ok || tv.Type == nil {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
