package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewEpsFloat returns the epsilon-comparison analyzer. Feasibility
// predicates compare accumulated float64 time and distance values — the
// deadline constraint w_t − max(s_w − s_t, 0) − ct_w ≥ 0 is evaluated as
// depart + travel ≤ deadline, and the simulator accumulates both sides leg
// by leg — so a raw ==/!=/<=/>= between two computed time/distance values
// drifts by ulps exactly on the boundaries the paper's examples sit on.
// Every such comparison must go through the model epsilon constants
// (timeEps, DistEps) or the blessed helpers (model.FeasibleFrom,
// model.DeadlineFeasible) that embed them.
//
// The analyzer taints expressions derived from the model's time/distance
// surface (Task.Start/Wait/Deadline/Expiry, Worker fields and TravelTime,
// BatchWorker.ReadyAt/DistBudget, the cached mirrors, DistanceFunc calls)
// through local assignments, and flags ==, !=, <= and >= where both
// operands are non-constant floats and at least one is tainted — unless an
// operand mentions an *Eps constant, which is the blessed pattern.
// Comparisons against literal constants (x == 0, v <= 0) are exact and not
// flagged; strict < and > on interior values are the caller's business.
//
// Deliberate bit-identity checks (the engine cache's invalidation compares,
// which must NOT tolerate epsilon drift) are annotated
// //lint:epsfloat-ok <reason>.
func NewEpsFloat() *Analyzer {
	return &Analyzer{
		Name:     "epsfloat",
		Doc:      "forbids raw float64 ==/!=/<=/>= on model time/distance values outside the epsilon helpers",
		Suppress: "epsfloat-ok",
		AppliesTo: prefixFilter(
			"dasc/internal/core",
			"dasc/internal/dag",
			"dasc/internal/matching",
			"dasc/internal/geo",
			"dasc/internal/model",
			"dasc/internal/sim",
			"dasc/internal/server",
		),
		Run: runEpsFloat,
	}
}

// epsSources maps named types to the fields/methods whose values are
// epsilon-sensitive times or distances. Matching is by type NAME, not
// package path, so the testdata packages can model the shapes locally.
var epsSources = map[string]map[string]bool{
	"Task":         {"Start": true, "Wait": true, "Deadline": true, "Expiry": true},
	"Worker":       {"Start": true, "Wait": true, "MaxDist": true, "Expiry": true, "TravelTime": true},
	"BatchWorker":  {"ReadyAt": true, "DistBudget": true},
	"cachedWorker": {"readyAt": true, "distBudget": true, "start": true, "wait": true, "velocity": true, "maxDist": true, "costs": true},
	"workerState":  {"busyUntil": true, "distUsed": true},
}

// epsSourceFuncs are free functions whose results are epsilon-sensitive.
var epsSourceFuncs = map[string]bool{"ArrivalTime": true}

// epsSourceParams are conventional parameter names that carry
// time/distance values across function boundaries (model.DeadlineFeasible's
// signature is the canonical case).
var epsSourceParams = map[string]bool{"readyAt": true, "travel": true, "distBudget": true, "deadline": true}

func runEpsFloat(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tainted := taintFloats(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.EQL, token.NEQ, token.LEQ, token.GEQ:
				default:
					return true
				}
				if !isNonConstFloat(pass, be.X) || !isNonConstFloat(pass, be.Y) {
					return true
				}
				if mentionsEps(be.X) || mentionsEps(be.Y) {
					return true
				}
				if !exprTainted(pass, tainted, be.X) && !exprTainted(pass, tainted, be.Y) {
					return true
				}
				pass.Reportf(be.OpPos, "raw float64 %s on a model time/distance value; compare through timeEps/DistEps (or the model feasibility helpers)", be.Op)
				return true
			})
		}
	}
	return nil
}

// taintFloats seeds taint from conventionally named float parameters and
// propagates it through plain assignments, twice — the second pass reaches
// values that flow backwards through loop bodies.
func taintFloats(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if epsSourceParams[name.Name] && isFloatObj(pass.TypesInfo.Defs[name]) {
					tainted[pass.TypesInfo.Defs[name]] = true
				}
			}
		}
	}
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for k, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || !isFloatObj(obj) {
					continue
				}
				if exprTainted(pass, tainted, as.Rhs[k]) {
					tainted[obj] = true
				}
			}
			return true
		})
	}
	return tainted
}

func isFloatObj(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isNonConstFloat reports whether e is a float-typed expression that is not
// a compile-time constant (comparisons against constants are exact).
func isNonConstFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// mentionsEps reports whether the expression's subtree references an
// epsilon constant (an identifier ending in "Eps").
func mentionsEps(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.HasSuffix(id.Name, "Eps") {
			found = true
		}
		return !found
	})
	return found
}

// exprTainted reports whether the expression's subtree contains an
// epsilon-sensitive source: a tainted local, a selection of a registered
// time/distance member, a DistanceFunc call, or a registered source
// function.
func exprTainted(pass *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && tainted[obj] {
				found = true
			}
		case *ast.SelectorExpr:
			tn := namedTypeName(pass.TypesInfo, n.X)
			if members, ok := epsSources[tn]; ok && members[n.Sel.Name] {
				found = true
			}
		case *ast.CallExpr:
			// Calls of DistanceFunc-typed values (b.dist(...), dist(...)).
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.Type != nil && typeName(tv.Type) == "DistanceFunc" {
				found = true
			}
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && epsSourceFuncs[fn.Name()] {
				found = true
			}
		}
		return !found
	})
	return found
}
