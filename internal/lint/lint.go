// Package lint implements dasc-lint: a suite of custom static analyzers
// that machine-check the repo's unwritten correctness invariants — the
// determinism, epsilon-comparison, pooled-memory ownership, metric
// inventory and lock discipline rules that the differential tests and
// benches rely on (DESIGN.md §3.12).
//
// The analyzers are built directly on go/ast + go/types. The usual
// foundation for this kind of tool is golang.org/x/tools/go/analysis, but
// this module is dependency-free by policy, so package lint carries a
// minimal mirror of that API: an Analyzer runs over one type-checked
// package at a time (a Pass) and reports Diagnostics; analyzers that need
// whole-module state (the metric inventory) collect during Run and emit in
// Finish. The shapes are kept close enough to go/analysis that a future
// migration is mechanical.
//
// Findings are suppressed — never silently, always with a reason — by a
// same-line or preceding-line comment:
//
//	//lint:deterministic-ok order restored by slices.Sort below
//
// The suppression key is per-analyzer (Analyzer.Suppress); a matching
// annotation with no reason is itself a finding, so the escape hatch
// cannot decay into a bare mute.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer run over one type-checked package.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path ("dasc/internal/core"); for
	// testdata packages it is the synthetic test path.
	PkgPath string

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker. Run is called once per package (in
// import-path order); Finish, when non-nil, is called once after every
// package has been seen and may report whole-module findings.
type Analyzer struct {
	Name string
	Doc  string
	// Suppress is the annotation key that mutes a finding on its line
	// ("deterministic-ok" → //lint:deterministic-ok <reason>).
	Suppress string
	// AppliesTo filters packages by import path; nil means every package.
	// The testdata harness bypasses the filter by calling Run directly.
	AppliesTo func(pkgPath string) bool

	Run    func(*Pass) error
	Finish func(report func(Diagnostic)) error
}

// suppression is one //lint:<key> annotation found in a file.
type suppression struct {
	key    string
	reason string
	pos    token.Position
}

// fileSuppressions extracts every //lint: annotation of a file, keyed by
// the line it applies to: its own line, and — for a comment that stands
// alone on its line — the following line.
func fileSuppressions(fset *token.FileSet, f *ast.File) map[int][]suppression {
	out := map[int][]suppression{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			key, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
			pos := fset.Position(c.Pos())
			s := suppression{key: key, reason: strings.TrimSpace(reason), pos: pos}
			out[pos.Line] = append(out[pos.Line], s)
			// A standalone comment suppresses the next source line; an
			// end-of-line comment only its own. Column 1..indent heuristic:
			// treat the comment as standalone when nothing but whitespace
			// precedes it, which token positions expose as the comment
			// starting the line's first non-blank token. We approximate by
			// also registering the next line; a key match is required
			// anyway, so over-registration cannot hide unrelated findings.
			out[pos.Line+1] = append(out[pos.Line+1], s)
		}
	}
	return out
}

// applySuppressions filters diags through the //lint: annotations of the
// pass's files: a finding whose line (or preceding line) carries the
// analyzer's key with a reason is dropped; with an empty reason it is
// replaced by a finding demanding one. Returns kept diagnostics and how
// many were suppressed.
func applySuppressions(pass *Pass) (kept []Diagnostic, suppressed int) {
	byFile := map[string]map[int][]suppression{}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		byFile[pos.Filename] = fileSuppressions(pass.Fset, f)
	}
	key := pass.analyzer.Suppress
	for _, d := range pass.diags {
		lines := byFile[d.Pos.Filename]
		match := false
		for _, s := range lines[d.Pos.Line] {
			if s.key != key {
				continue
			}
			if s.reason == "" {
				kept = append(kept, Diagnostic{
					Analyzer: d.Analyzer,
					Pos:      s.pos,
					Message:  fmt.Sprintf("//lint:%s requires a reason (what makes this safe?)", key),
				})
				match = true
				break
			}
			match = true
			suppressed++
			break
		}
		if !match {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---- shared AST/type helpers used by several analyzers ----

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for calls of function-typed values, conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// namedTypeName returns the name of an expression's (pointer-dereferenced)
// named type, or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return typeName(tv.Type)
}

// typeName returns the name of a (pointer-dereferenced) named or
// generic-instantiated type, or "".
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Alias:
		return n.Obj().Name()
	}
	return ""
}

// rootIdent peels selectors, indexes, stars, parens and type assertions
// off an expression and returns the identifier at its root, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isSliceOrPointer reports whether the expression's type can alias memory:
// slices, pointers and maps (the shapes the ownership rules care about).
func isSliceOrPointer(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isAliasingType(tv.Type)
}

// isAliasingType reports whether values of t can alias memory.
func isAliasingType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}
