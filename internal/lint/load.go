package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` over the patterns in dir and
// decodes the package stream. -export populates each dependency's compiled
// export data from the build cache (building it if stale), which is what
// lets the loader type-check the module offline: dependencies are imported
// from export data instead of re-type-checked from source.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// reported, through the standard gc importer. One instance is shared across
// every type-checked package so imports are parsed once.
type exportImporter struct {
	exports map[string]string // import path → export data file
	gc      types.Importer
}

func newExportImporter(fset *token.FileSet, pkgs []*listPkg) *exportImporter {
	ei := &exportImporter{exports: map[string]string{}}
	for _, p := range pkgs {
		if p.Export != "" {
			ei.exports[p.ImportPath] = p.Export
		}
	}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

// Load lists patterns in dir, then parses and type-checks every matching
// main-module package (dependencies come from export data). Test files are
// not loaded: the invariants guard shipped code, and the differential tests
// deliberately hold allocator output across calls in ways the ownership
// analyzer would have to special-case.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, listed)

	var targets []*listPkg
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// typeCheck runs go/types over one package's parsed files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
