package lint

import (
	"go/ast"
	"go/types"
)

// NewPoolEscape returns the pooled-memory ownership analyzer. The engine
// cache's memory discipline (DESIGN.md §3.7) is one-way: memory carved from
// the cache's slab arenas or recycled through its cachedWorker free list is
// cache-owned forever, and the cache absorbs batch results by COPYING into
// that memory, never by aliasing slices out of a returned BatchIndex. The
// sync.Pool recycling added for game state and the server's request/body
// pools has the same shape: a pooled object is borrowed, used, and Put
// back — it must not outlive the borrow by escaping into a field, a
// global, a channel, or the package's exported surface.
//
// The analyzer computes a per-function taint: values produced by
// (sync.Pool).Get, by carve/carveLen on a slab reached through an owner
// type (EngineCache, cachedWorker), by free-list pops, or by reading an
// aliasing field (slice/pointer/map) of an owner, are pool-owned. It flags:
//
//   - returning a pool-owned value from an EXPORTED function or method
//     (unexported acquire helpers — newGameState, borrow* — are the blessed
//     idiom and stay inside the package);
//   - assigning a pool-owned value to a package-level variable, sending it
//     on a channel, or storing it into a field/element of a non-owner
//     object (that is how cache memory would alias into an escaping
//     BatchIndex);
//   - the reverse direction: assigning a foreign slice/pointer into an
//     owner's field without a copy — absorb must copy, so the only values
//     that may land in owner fields are owner-rooted reslices, carve
//     results, and fresh allocations (calls, literals).
//
// Deliberate exceptions are annotated //lint:poolescape-ok <reason>.
func NewPoolEscape() *Analyzer {
	return &Analyzer{
		Name:     "poolescape",
		Doc:      "enforces the one-way ownership rule for slab arenas, sync.Pool objects and the cachedWorker free list",
		Suppress: "poolescape-ok",
		AppliesTo: prefixFilter(
			"dasc/internal/core",
			"dasc/internal/server",
		),
		Run: runPoolEscape,
	}
}

// poolOwnerTypes are the types whose slabs, free lists and aliasing fields
// are pool-owned. New pool-owning types must be registered here.
var poolOwnerTypes = map[string]bool{"EngineCache": true, "cachedWorker": true}

func runPoolEscape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolEscapes(pass, fd)
		}
	}
	return nil
}

// ownerRooted reports whether the expression is reached through a value of
// a pool-owner type (c.free, cw.tasks, c.workers[id], a local *cachedWorker).
func ownerRooted(pass *Pass, e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil || obj.Type() == nil {
		return false
	}
	return poolOwnerTypes[typeName(obj.Type())]
}

// poolSource reports whether e directly produces pool-owned memory and a
// short description of the source.
func poolSource(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, e)
		if fn == nil {
			return "", false
		}
		if fn.Name() == "Get" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			return "sync.Pool memory", true
		}
		if fn.Name() == "carve" || fn.Name() == "carveLen" {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && ownerRooted(pass, sel.X) {
				return "cache-arena memory", true
			}
		}
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "free" && ownerRooted(pass, sel.X) {
			return "free-list memory", true
		}
	case *ast.SelectorExpr:
		// Reading an aliasing field out of an owner (cw.tasks, c.arrived).
		if ownerRooted(pass, e.X) && isSliceOrPointer(pass.TypesInfo, e) {
			return "cache-owned memory", true
		}
	case *ast.UnaryExpr:
		return poolSource(pass, e.X)
	case *ast.TypeAssertExpr:
		return poolSource(pass, e.X)
	case *ast.SliceExpr:
		return poolSource(pass, e.X)
	}
	return "", false
}

// checkPoolEscapes runs the per-function taint and escape checks.
func checkPoolEscapes(pass *Pass, fd *ast.FuncDecl) {
	exported := fd.Name.IsExported()
	tainted := map[types.Object]string{} // local object → source description

	// exprPoolTaint: can the VALUE of e alias pool-owned memory? The walk
	// follows aliasing structure, not the whole subtree: scalar-typed
	// subexpressions are pruned (an element read copies the element), and
	// calls are opaque (a method taking cache memory does not make its
	// result cache memory) except for append, which aliases its first
	// argument.
	var exprPoolTaint func(e ast.Expr) (string, bool)
	exprPoolTaint = func(e ast.Expr) (string, bool) {
		if e == nil {
			return "", false
		}
		if s, ok := poolSource(pass, e); ok {
			return s, true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
			if _, basic := tv.Type.Underlying().(*types.Basic); basic {
				return "", false
			}
		}
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				if s, ok := tainted[obj]; ok {
					return s, true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range e.Args {
						if s, ok := exprPoolTaint(arg); ok {
							return s, true
						}
					}
				}
			}
		case *ast.SelectorExpr:
			// A field of a pooled object is pooled.
			return exprPoolTaint(e.X)
		case *ast.ParenExpr:
			return exprPoolTaint(e.X)
		case *ast.IndexExpr:
			return exprPoolTaint(e.X)
		case *ast.SliceExpr:
			return exprPoolTaint(e.X)
		case *ast.StarExpr:
			return exprPoolTaint(e.X)
		case *ast.UnaryExpr:
			return exprPoolTaint(e.X)
		case *ast.TypeAssertExpr:
			return exprPoolTaint(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if s, ok := exprPoolTaint(el); ok {
					return s, true
				}
			}
		}
		return "", false
	}

	// Two passes so taint flows through loop-carried locals.
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for k, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				// Gate on the object's type, not info.Types: the LHS ident
				// of a short variable declaration is recorded only in Defs.
				if obj == nil || obj.Type() == nil || !isAliasingType(obj.Type()) {
					continue
				}
				if src, ok := exprPoolTaint(as.Rhs[k]); ok {
					tainted[obj] = src
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, res := range n.Results {
				if !isSliceOrPointer(pass.TypesInfo, res) {
					continue
				}
				if src, ok := exprPoolTaint(res); ok {
					pass.Reportf(n.Pos(), "%s returned from exported %s; pooled memory must not escape the package's exported surface — copy it", src, fd.Name.Name)
				}
			}
		case *ast.SendStmt:
			if src, ok := exprPoolTaint(n.Value); ok && isSliceOrPointer(pass.TypesInfo, n.Value) {
				pass.Reportf(n.Pos(), "%s sent on a channel; the receiver would alias recycled memory — copy it", src)
			}
		case *ast.AssignStmt:
			checkPoolStores(pass, n, exprPoolTaint)
		}
		return true
	})
}

// checkPoolStores classifies each assignment's sink and flags ownership
// violations in both directions.
func checkPoolStores(pass *Pass, as *ast.AssignStmt, exprPoolTaint func(ast.Expr) (string, bool)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for k, lhs := range as.Lhs {
		rhs := as.Rhs[k]
		if !isSliceOrPointer(pass.TypesInfo, lhs) {
			continue
		}
		switch sink := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			// Package-level variable?
			obj := pass.TypesInfo.Uses[sink]
			if obj == nil {
				obj = pass.TypesInfo.Defs[sink]
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				if src, ok := exprPoolTaint(rhs); ok {
					pass.Reportf(as.Pos(), "%s stored in package-level variable %s; pooled memory must stay with its owner — copy it", src, sink.Name)
				}
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			if ownerRooted(pass, sink) {
				// Absorb direction: owner fields take only owner-rooted or
				// fresh memory (copy-always).
				if _, rhsPooled := exprPoolTaint(rhs); rhsPooled || freshOrOwnerExpr(pass, rhs) {
					continue
				}
				pass.Reportf(as.Pos(), "foreign slice/pointer stored into cache-owned field without a copy; the cache must carve or copy (absorb is copy-always)")
			} else if src, ok := exprPoolTaint(rhs); ok {
				pass.Reportf(as.Pos(), "%s stored into non-owner structure; the store aliases recycled memory past its owner — copy it", src)
			}
		}
	}
}

// freshOrOwnerExpr reports whether rhs is safe to store into an owner
// field: freshly allocated (a call such as make/append/new, a composite
// literal, nil) or already owner-rooted (a reslice of the field itself).
func freshOrOwnerExpr(pass *Pass, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return freshOrOwnerExpr(pass, e.X)
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
	case *ast.SliceExpr:
		return ownerRooted(pass, e.X)
	}
	return ownerRooted(pass, rhs)
}
