package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// NewMetricInventory returns the metric-inventory analyzer, the proper
// successor of PR 8's go/parser lint test. The dasc_* metric names live as
// string constants in internal/obs/metrics.go — the inventory DESIGN.md
// §3.6 documents — and three rules keep exposition and inventory from
// drifting:
//
//   - every inventory constant must be referenced by some non-test code in
//     the module (a const nobody folds into is a stale entry, or a metric
//     that silently stopped being recorded);
//   - no non-test code outside metrics.go may spell a dasc_* name as a
//     string literal — call sites go through the consts, so renames stay
//     one-file changes;
//   - every obs.Labeled call must form a closed label set: the metric name
//     argument and every label KEY must be compile-time constants, and the
//     key/value arguments must pair up. Dynamic label values (routes) are
//     fine; dynamic names or keys would mint unbounded metric families.
//
// The first two rules are whole-module properties, so the analyzer collects
// during Run and reports in Finish.
func NewMetricInventory() *Analyzer {
	mi := &metricInventory{
		used:    map[string]bool{},
		pending: map[*Pass]bool{},
	}
	return &Analyzer{
		Name:     "metricinventory",
		Doc:      "keeps the dasc_* metric inventory (obs/metrics.go) closed, referenced and literal-free",
		Suppress: "metricinventory-ok",
		Run:      mi.run,
		Finish:   mi.finish,
	}
}

type metricConst struct {
	name  string
	value string
	pos   token.Position
}

type strayLit struct {
	value string
	diag  Diagnostic
}

type metricInventory struct {
	inventory []metricConst   // consts declared in obs/metrics.go
	used      map[string]bool // const name → referenced anywhere
	strays    []strayLit      // dasc_* literals outside metrics.go
	pending   map[*Pass]bool
}

// isMetricsFile reports whether the position is inside obs's metrics.go.
func isMetricsFile(pkgName string, pos token.Position) bool {
	return pkgName == "obs" && filepath.Base(pos.Filename) == "metrics.go"
}

func (mi *metricInventory) run(pass *Pass) error {
	for _, f := range pass.Files {
		filePos := pass.Fset.Position(f.Pos())
		inMetrics := isMetricsFile(pass.Pkg.Name(), filePos)
		if inMetrics {
			mi.collectInventory(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// A reference to an obs constant marks it used. Matching is
				// by (package name, const name): obs's own references come
				// from source objects, importers' from export data.
				if obj, ok := pass.TypesInfo.Uses[n].(*types.Const); ok {
					if obj.Pkg() != nil && obj.Pkg().Name() == "obs" {
						mi.used[obj.Name()] = true
					}
				}
			case *ast.BasicLit:
				if inMetrics || n.Kind != token.STRING {
					return true
				}
				v, err := strconv.Unquote(n.Value)
				// The bare prefix itself is a meta-literal (this analyzer
				// greps for it), not a metric name.
				if err != nil || !strings.HasPrefix(v, "dasc_") || v == "dasc_" {
					return true
				}
				mi.strays = append(mi.strays, strayLit{value: v, diag: Diagnostic{
					Analyzer: "metricinventory",
					Pos:      pass.Fset.Position(n.Pos()),
				}})
			case *ast.CallExpr:
				mi.checkLabeled(pass, n)
			}
			return true
		})
	}
	// Suppression filtering runs per-pass after run returns, but Finish
	// diagnostics bypass it; whole-module findings anchor to declarations
	// and literals, where an annotation comment would be checked by the
	// runner through the pass that owns the file. Keep Finish findings
	// unconditional: a stale const or stray literal has no safe variant.
	return nil
}

// collectInventory records every string constant declared in metrics.go.
func (mi *metricInventory) collectInventory(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				mi.inventory = append(mi.inventory, metricConst{
					name:  name.Name,
					value: v,
					pos:   pass.Fset.Position(name.Pos()),
				})
			}
		}
	}
}

// checkLabeled validates an obs.Labeled call's label-set shape.
func (mi *metricInventory) checkLabeled(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Labeled" || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return
	}
	if len(call.Args) == 0 || call.Ellipsis != token.NoPos {
		// Spread kv (Labeled(name, kv...)) defeats the closed-set check.
		if call.Ellipsis != token.NoPos {
			pass.Reportf(call.Pos(), "obs.Labeled with spread kv arguments; the label set must be closed at the call site")
		}
		return
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; !ok || tv.Value == nil {
		pass.Reportf(call.Args[0].Pos(), "obs.Labeled metric name must be a metrics.go constant, not a computed value")
	}
	kv := call.Args[1:]
	if len(kv)%2 != 0 {
		pass.Reportf(call.Pos(), "obs.Labeled kv arguments must pair up (key, value); got %d", len(kv))
		return
	}
	for i := 0; i < len(kv); i += 2 {
		if tv, ok := pass.TypesInfo.Types[kv[i]]; !ok || tv.Value == nil {
			pass.Reportf(kv[i].Pos(), "obs.Labeled label key must be a compile-time constant; dynamic keys mint unbounded metric families")
		}
	}
}

func (mi *metricInventory) finish(report func(Diagnostic)) error {
	known := map[string]bool{}
	for _, c := range mi.inventory {
		known[c.value] = true
	}
	for _, c := range mi.inventory {
		if !mi.used[c.name] {
			report(Diagnostic{
				Analyzer: "metricinventory",
				Pos:      c.pos,
				Message:  "metrics.go const " + c.name + " (" + strconv.Quote(c.value) + ") is referenced by no non-test code",
			})
		}
	}
	sort.SliceStable(mi.strays, func(i, j int) bool {
		a, b := mi.strays[i].diag.Pos, mi.strays[j].diag.Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, s := range mi.strays {
		d := s.diag
		if len(mi.inventory) > 0 && !known[s.value] {
			d.Message = "literal " + strconv.Quote(s.value) + " is not in the metrics.go inventory — add the const and reference it"
		} else {
			d.Message = "metric name " + strconv.Quote(s.value) + " spelled as a literal — use the metrics.go const"
		}
		report(d)
	}
	return nil
}
