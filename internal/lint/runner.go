package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Analyzers returns a fresh instance of every dasc-lint analyzer, in the
// order they run. Fresh instances matter: the metric inventory accumulates
// whole-module state across Run calls.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(),
		NewEpsFloat(),
		NewPoolEscape(),
		NewMetricInventory(),
		NewLockDiscipline(),
	}
}

// AnalyzerStat is one analyzer's run summary.
type AnalyzerStat struct {
	Name       string  `json:"name"`
	Packages   int     `json:"packages"`
	Findings   int     `json:"findings"`
	Suppressed int     `json:"suppressed"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// Finding is one diagnostic in the JSON report.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Result is a whole multichecker run.
type Result struct {
	Findings  []Finding      `json:"findings"`
	Analyzers []AnalyzerStat `json:"analyzers"`
}

// Run loads the patterns relative to dir and runs every analyzer over the
// matched packages. The returned Result is ready for rendering; load or
// analyzer errors come back as err.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Findings: []Finding{}, Analyzers: []AnalyzerStat{}}
	var all []Diagnostic
	for _, a := range analyzers {
		start := time.Now()
		stat := AnalyzerStat{Name: a.Name}
		for _, pkg := range pkgs {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			stat.Packages++
			kept, suppressed, err := RunOnPackage(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			stat.Suppressed += suppressed
			stat.Findings += len(kept)
			all = append(all, kept...)
		}
		if a.Finish != nil {
			if err := a.Finish(func(d Diagnostic) {
				stat.Findings++
				all = append(all, d)
			}); err != nil {
				return nil, fmt.Errorf("%s finish: %v", a.Name, err)
			}
		}
		stat.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
		res.Analyzers = append(res.Analyzers, stat)
	}
	sortDiagnostics(all)
	for _, d := range all {
		res.Findings = append(res.Findings, Finding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	return res, nil
}

// RunOnPackage runs one analyzer over one loaded package and applies the
// //lint: suppressions. Exposed for the analyzer tests, which drive
// testdata packages through the same path as the real runner.
func RunOnPackage(a *Analyzer, pkg *Package) (kept []Diagnostic, suppressed int, err error) {
	pass := &Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.Path,
		analyzer:  a,
	}
	if err := a.Run(pass); err != nil {
		return nil, 0, err
	}
	kept, suppressed = applySuppressions(pass)
	return kept, suppressed, nil
}

// RenderText writes findings to w (one per line, vet style) and the
// per-analyzer stats to statsW, so a caller can split stdout/stderr.
func (r *Result) RenderText(w, statsW io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	for _, s := range r.Analyzers {
		fmt.Fprintf(statsW, "dasc-lint: %-16s %3d pkgs  %3d findings  %3d suppressed  %8.1fms\n",
			s.Name, s.Packages, s.Findings, s.Suppressed, s.ElapsedMS)
	}
}

// RenderJSON writes the whole result as one JSON object.
func (r *Result) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
