// Package epsfloat is analyzer testdata. It models the repo's
// time/distance surface locally — the analyzer matches by type NAME
// (Task, Worker, BatchWorker, DistanceFunc), not package path.
package epsfloat

const (
	timeEps = 1e-9
	DistEps = 1e-9
)

type Point struct{ X, Y float64 }

type DistanceFunc func(a, b Point) float64

type Task struct {
	Start, Wait float64
}

func (t Task) Deadline() float64 { return t.Start + t.Wait }

type Worker struct {
	Start, Wait, MaxDist float64
	Loc                  Point
}

type BatchWorker struct {
	ReadyAt, DistBudget float64
}

func rawDeadline(t Task, arrive float64) bool {
	return arrive <= t.Deadline() // want "raw float64 <= on a model time/distance value"
}

func epsDeadline(t Task, arrive float64) bool {
	// Mentioning an *Eps constant is the blessed comparison pattern.
	return arrive <= t.Deadline()+timeEps
}

func rawDistBudget(bw BatchWorker, d float64) bool {
	return d >= bw.DistBudget // want "raw float64 >= on a model time/distance value"
}

func epsDistBudget(bw BatchWorker, d float64) bool {
	return d >= bw.DistBudget+DistEps
}

func rawEquality(w Worker, cached float64) bool {
	return cached == w.Start // want "raw float64 == on a model time/distance value"
}

func distFuncTaint(dist DistanceFunc, a, b Point, budget float64) bool {
	return dist(a, b) >= budget // want "raw float64 >= on a model time/distance value"
}

func localPropagation(t Task, travel float64) bool {
	deadline := t.Deadline()
	limit := deadline * 2
	return travel >= limit // want "raw float64 >= on a model time/distance value"
}

func constantIsExact(t Task) bool {
	// Comparisons against compile-time constants are bit-exact: not flagged.
	return t.Start == 0
}

func strictIsCallerBusiness(t Task, arrive float64) bool {
	// Strict < / > on interior values carry no boundary semantics.
	return arrive < t.Deadline()
}

func untaintedFloats(a, b float64) bool {
	// Neither operand derives from the time/distance surface.
	return a == b
}

func bitIdentity(w Worker, cachedStart float64) bool {
	return cachedStart == w.Start //lint:epsfloat-ok bit-identity cache invalidation must not tolerate drift
}
