// Package poolescape is analyzer testdata. It models the engine cache's
// ownership shapes locally — the analyzer matches pool owners by type NAME
// (EngineCache, cachedWorker) and slab carving by method name.
package poolescape

import "sync"

type cachedWorker struct {
	tasks []int32
	costs []float64
}

type slab struct{ buf []int32 }

func (s *slab) carveLen(n int) []int32 {
	start := len(s.buf)
	s.buf = append(s.buf, make([]int32, n)...)
	return s.buf[start : start+n]
}

type EngineCache struct {
	ids     slab
	free    []*cachedWorker
	scratch []int32
}

type BatchIndex struct {
	rows [][]int32
}

type state struct{ buf []byte }

var statePool = sync.Pool{New: func() any { return new(state) }}

var global []int32

func Borrow() *state {
	return statePool.Get().(*state) // want "sync.Pool memory returned from exported Borrow"
}

func borrow() *state {
	// Unexported acquire helpers are the blessed borrow idiom.
	return statePool.Get().(*state)
}

func CarvedTasks(c *EngineCache, n int) []int32 {
	return c.ids.carveLen(n) // want "cache-arena memory returned from exported CarvedTasks"
}

func carvedTasks(c *EngineCache, n int) []int32 {
	return c.ids.carveLen(n)
}

func sendLeak(c *EngineCache, ch chan []int32) {
	buf := c.ids.carveLen(4)
	ch <- buf // want "cache-arena memory sent on a channel"
}

func stashGlobal(c *EngineCache) {
	global = c.ids.carveLen(4) // want "cache-arena memory stored in package-level variable global"
}

func aliasIntoIndex(b *BatchIndex, cw *cachedWorker) {
	b.rows[0] = cw.tasks // want "cache-owned memory stored into non-owner structure"
}

func absorbWithoutCopy(cw *cachedWorker, foreign []int32) {
	cw.tasks = foreign // want "foreign slice/pointer stored into cache-owned field without a copy"
}

func absorbCopyAlways(c *EngineCache, cw *cachedWorker, foreign []int32) {
	// Carve owner memory, then copy: the blessed absorb shape.
	cw.tasks = c.ids.carveLen(len(foreign))
	copy(cw.tasks, foreign)
}

func FreePop(c *EngineCache) *cachedWorker {
	cw := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return cw // want "free-list memory returned from exported FreePop"
}

func scalarReadsAreCopies(cw *cachedWorker, k int) float64 {
	// Reading an element copies the scalar; no aliasing, no finding.
	return cw.costs[k]
}

func Scratch(c *EngineCache) []int32 {
	//lint:poolescape-ok documented contract: the only caller copies before the next batch reuses the buffer
	return c.scratch
}
