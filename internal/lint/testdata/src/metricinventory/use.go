package obs

func record() []string {
	out := []string{
		Labeled(MBatches, "algo", "greedy"),
		Labeled(MLatency, "code", dynamicKey()), // dynamic label VALUES are fine
		Labeled("dasc_rogue_total"),             // want "not in the metrics.go inventory"
		Labeled("dasc_batches_total"),           // want "spelled as a literal"
		Labeled(dynamicName()),                  // want "metric name must be a metrics.go constant"
		Labeled(MBatches, "algo"),               // want "kv arguments must pair up"
		Labeled(MBatches, dynamicKey(), "v"),    // want "label key must be a compile-time constant"
	}
	kv := []string{"a", "b"}
	out = append(out, Labeled(MBatches, kv...)) // want "spread kv arguments"
	return out
}
