package obs

// Labeled mirrors the real obs.Labeled signature the analyzer validates.
func Labeled(name string, kv ...string) string { return name }

func dynamicName() string { return "computed" }

func dynamicKey() string { return "route" }
