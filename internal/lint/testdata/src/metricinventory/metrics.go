// metrics.go is the inventory file: the analyzer keys on the package being
// named "obs" and the file being named metrics.go, exactly like the real
// internal/obs/metrics.go.
package obs

const (
	MBatches = "dasc_batches_total"
	MLatency = "dasc_http_request_seconds"
	MUnused  = "dasc_orphaned_total" // want "referenced by no non-test code"
)
