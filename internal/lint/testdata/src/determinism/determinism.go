// Package determinism is analyzer testdata: each want comment asserts a
// finding on its line; lines without one must stay clean.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func untilDeadline(d time.Time) time.Duration {
	return time.Until(d) // want "time.Until reads the wall clock"
}

func parseIsFine() (time.Time, error) {
	// Non-clock time functions are untouched.
	return time.Parse(time.RFC3339, "2020-01-01T00:00:00Z")
}

func globalDraw() int {
	return rand.Intn(10) // want "global rand.Intn draws from the process-wide RNG"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle draws from the process-wide RNG"
}

func seededDraw(r *rand.Rand) int {
	// Methods on an explicit generator carry their seed: blessed.
	return r.Intn(10)
}

func seededConstruction(seed int64) *rand.Rand {
	// Constructors build seeded sources; only draws are flagged.
	return rand.New(rand.NewSource(seed))
}

func orderLeaksAppend(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m { // want "range over map appends to a slice"
		out = append(out, k)
	}
	return out
}

func orderLeaksElement(m map[int]int, out []int) {
	i := 0
	for k := range m { // want "range over map writes a slice element"
		out[i] = k
		i++
	}
}

func orderLeaksSend(m map[int]int, ch chan int) {
	for k := range m { // want "range over map sends on a channel"
		ch <- k
	}
}

func orderFreeAggregation(m map[int]int) int {
	// Sums, counts and map/set inserts are order-insensitive: not flagged.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func orderFreeSetInsert(m map[int]int) map[int]bool {
	set := make(map[int]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return set
}

func orderLaundered(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//lint:deterministic-ok iteration order is laundered by the sort.Ints below
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
