// Package lockdiscipline is analyzer testdata mirroring the server's
// *Locked convention: methods annotated `// requires: p.mu` assume the
// caller holds the receiver's mutex.
package lockdiscipline

import "sync"

type Platform struct {
	mu    sync.Mutex
	count int
}

// statsLocked reads the registries.
//
// requires: p.mu
func (p *Platform) statsLocked() int { return p.count }

// requires: p.mu
func (p *Platform) bumpLocked() { p.count++ }

func (p *Platform) LockedCall() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statsLocked()
}

func (p *Platform) UnlockedCall() int {
	return p.statsLocked() // want "call to statsLocked (requires p.mu) without holding p.mu"
}

func (p *Platform) UnlockThenCall() int {
	p.mu.Lock()
	p.count++
	p.mu.Unlock()
	return p.statsLocked() // want "call to statsLocked (requires p.mu) without holding p.mu"
}

// An annotated method calls sibling annotated methods freely: the caller's
// obligation covers both.
//
// requires: p.mu
func (p *Platform) bothLocked() int {
	p.bumpLocked()
	return p.statsLocked()
}

// requires: p.mu
func (p *Platform) selfLock() {
	p.mu.Lock() // want "the caller already holds it (self-deadlock)"
	p.count++
}

func (p *Platform) branchScoped(cond bool) int {
	if cond {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.statsLocked()
	}
	return p.statsLocked() // want "call to statsLocked (requires p.mu) without holding p.mu"
}

func (p *Platform) goroutineLosesLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		_ = p.statsLocked() // want "call to statsLocked (requires p.mu) without holding p.mu"
	}()
}

func (p *Platform) funcLitInherits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := func() int { return p.statsLocked() }
	return f()
}

type Server struct {
	platform Platform
}

func (s *Server) Stats() int {
	s.platform.mu.Lock()
	defer s.platform.mu.Unlock()
	return s.platform.statsLocked()
}

func (s *Server) BadStats() int {
	return s.platform.statsLocked() // want "without holding s.platform.mu"
}

func (p *Platform) initTime() int {
	//lint:lockdiscipline-ok construction-time call; the platform is not shared yet
	return p.statsLocked()
}
