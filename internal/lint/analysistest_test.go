package lint

// A minimal analysistest-style harness: each testdata/src/<name> directory
// is parsed and type-checked as one package (stdlib imports come from
// export data, same as the real loader), the analyzer runs through
// RunOnPackage — the exact path the dasc-lint binary uses — and its
// findings are matched against `// want "substring"` comments. Every
// finding must be claimed by a want on its line, and every want must be
// claimed by a finding.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// wantQuoted extracts the quoted substrings of a `// want "a" "b"` comment.
var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

func collectWants(fset *token.FileSet, files []*ast.File) []*expectation {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantQuoted.FindAllStringSubmatch(c.Text[idx:], -1) {
					wants = append(wants, &expectation{
						file:   filepath.Base(pos.Filename),
						line:   pos.Line,
						substr: m[1],
					})
				}
			}
		}
	}
	return wants
}

// loadTestdataPackage parses and type-checks testdata/src/<name> as one
// package. Imports are resolved from build-cache export data via the same
// goList/exportImporter machinery the production loader uses.
func loadTestdataPackage(t *testing.T, name, pkgPath string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, fname := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, fname), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", fname, err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	var imp types.Importer
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(".", paths)
		if err != nil {
			t.Fatalf("listing testdata imports: %v", err)
		}
		imp = newExportImporter(fset, listed)
	}
	pkg, info, err := typeCheck(fset, pkgPath, files, imp)
	if err != nil {
		t.Fatalf("type-checking testdata/%s: %v", name, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: pkg, Info: info}
}

// runAnalyzerTestdata drives one analyzer over one testdata package and
// matches findings against want comments. Returns the suppressed count so
// tests can assert the //lint: escape hatch fired.
func runAnalyzerTestdata(t *testing.T, a *Analyzer, name, pkgPath string) int {
	t.Helper()
	pkg := loadTestdataPackage(t, name, pkgPath)
	wants := collectWants(pkg.Fset, pkg.Files)
	diags, suppressed, err := RunOnPackage(a, pkg)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	if a.Finish != nil {
		if err := a.Finish(func(d Diagnostic) { diags = append(diags, d) }); err != nil {
			t.Fatalf("%s finish: %v", a.Name, err)
		}
	}
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
	return suppressed
}

func TestDeterminismAnalyzer(t *testing.T) {
	suppressed := runAnalyzerTestdata(t, NewDeterminism(), "determinism", "dasc/internal/core/determinismtest")
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the annotated laundered loop)", suppressed)
	}
}

func TestEpsFloatAnalyzer(t *testing.T) {
	suppressed := runAnalyzerTestdata(t, NewEpsFloat(), "epsfloat", "dasc/internal/model/epsfloattest")
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the annotated bit-identity compare)", suppressed)
	}
}

func TestPoolEscapeAnalyzer(t *testing.T) {
	suppressed := runAnalyzerTestdata(t, NewPoolEscape(), "poolescape", "dasc/internal/core/poolescapetest")
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the annotated scratch return)", suppressed)
	}
}

func TestMetricInventoryAnalyzer(t *testing.T) {
	runAnalyzerTestdata(t, NewMetricInventory(), "metricinventory", "dasc/internal/obs")
}

func TestLockDisciplineAnalyzer(t *testing.T) {
	suppressed := runAnalyzerTestdata(t, NewLockDiscipline(), "lockdiscipline", "dasc/internal/server/locktest")
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the annotated init-time call)", suppressed)
	}
}

// TestSuppressionRequiresReason: a bare //lint: annotation with no reason
// does not mute the finding — it is replaced by a finding demanding one.
func TestSuppressionRequiresReason(t *testing.T) {
	const src = `package p

func f(m map[int]int) []int {
	var out []int
	//lint:deterministic-ok
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := typeCheck(fset, "dasc/internal/core/p", []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, suppressed, err := RunOnPackage(NewDeterminism(), &Package{
		Path: "dasc/internal/core/p", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info,
	})
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 0 {
		t.Errorf("suppressed = %d, want 0: a reasonless annotation must not mute", suppressed)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "requires a reason") {
		t.Errorf("diags = %v, want exactly one 'requires a reason' finding", diags)
	}
}
