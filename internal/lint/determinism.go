package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewDeterminism returns the determinism analyzer. The allocators must be
// pure functions of (batch, seed): the batch differentials (VerifyIndex,
// VerifyWorklist) and the GOMAXPROCS determinism sweeps prove bit-exactness
// only if nothing in the algorithmic packages reads a wall clock, draws
// from the process-global RNG, or lets Go's randomized map iteration order
// leak into slices or output. This analyzer flags:
//
//   - calls to time.Now / time.Since / time.Until;
//   - package-level math/rand and math/rand/v2 draws (rand.Intn, rand.Shuffle,
//     rand.Float64, ... — the process-global source; rand.New over an explicit
//     seeded Source remains the blessed construction);
//   - `range` over a map whose body appends to a slice, writes a slice
//     element, or sends on a channel — the shapes through which iteration
//     order becomes observable output. Loops that only aggregate
//     (count/sum/delete/set-insert) are order-insensitive and not flagged.
//
// A loop whose order is laundered afterwards (sorted, or provably
// order-free) is annotated //lint:deterministic-ok <reason>.
func NewDeterminism() *Analyzer {
	return &Analyzer{
		Name:     "determinism",
		Doc:      "forbids wall-clock reads, global RNG draws and order-sensitive map iteration in the algorithmic packages",
		Suppress: "deterministic-ok",
		AppliesTo: prefixFilter(
			"dasc/internal/core",
			"dasc/internal/dag",
			"dasc/internal/matching",
			"dasc/internal/geo",
		),
		Run: runDeterminism,
	}
}

// prefixFilter matches package paths equal to or nested under any prefix.
func prefixFilter(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

// globalRandConstructors are the math/rand functions that build explicitly
// seeded generators rather than drawing from the global source.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; batch output must be a pure function of (batch, seed)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					// Methods on *rand.Rand are fine (the receiver carries an
					// explicit seed); package-level draws use the global source.
					if fn.Type().(*types.Signature).Recv() == nil && !globalRandConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "global rand.%s draws from the process-wide RNG; thread a seeded *rand.Rand instead", fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags map-iteration loops whose body makes iteration order
// observable: appends, slice-element writes, or channel sends.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					sink = "appends to a slice"
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if lt, ok := pass.TypesInfo.Types[ix.X]; ok && lt.Type != nil {
						if _, isSlice := lt.Type.Underlying().(*types.Slice); isSlice {
							sink = "writes a slice element"
						}
					}
				}
			}
		case *ast.SendStmt:
			sink = "sends on a channel"
		}
		return true
	})
	if sink != "" {
		pass.Reportf(rng.Pos(), "range over map %s inside the loop; iteration order is randomized — collect and sort, or annotate why order cannot reach output", sink)
	}
}
