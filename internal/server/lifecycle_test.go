package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dasc/internal/core"
)

// TestTaskWeightRoundTripsThroughHTTPAndJournal pins the POST-side weight
// bug: taskDTO used to drop weight, so HTTP-registered tasks always carried
// weight 0 even though the model, the journal and GET /v1/instance all have
// the field.
func TestTaskWeightRoundTripsThroughHTTPAndJournal(t *testing.T) {
	var log bytes.Buffer
	j := NewJournal(&log, nil)
	p, err := NewPlatform(Config{Allocator: core.NewGreedy(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(p))
	defer ts.Close()

	resp, out := postJSON(t, ts.URL+"/v1/tasks",
		`{"x":1,"y":2,"start":0,"wait":100,"requires":0,"deps":[],"weight":2.5}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d (%v)", resp.StatusCode, out)
	}
	if w := p.Instance().Tasks[0].Weight; w != 2.5 {
		t.Fatalf("registered weight = %v, want 2.5", w)
	}
	if !strings.Contains(log.String(), `"weight":2.5`) {
		t.Fatalf("journal lost the weight: %q", log.String())
	}
	// And it survives replay.
	p2, _ := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err := Replay(bytes.NewReader(log.Bytes()), p2); err != nil {
		t.Fatal(err)
	}
	if w := p2.Instance().Tasks[0].Weight; w != 2.5 {
		t.Fatalf("replayed weight = %v, want 2.5", w)
	}
}

func TestRequestBodyCapReturns413(t *testing.T) {
	p, err := NewPlatform(Config{Allocator: core.NewGreedy(), MaxBodyBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(p))
	defer ts.Close()

	huge := `{"x":1,"y":2,"skills":[` + strings.Repeat("0,", 200) + `0]}`
	resp, _ := postJSON(t, ts.URL+"/v1/workers", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// Within the cap still works.
	resp, out := postJSON(t, ts.URL+"/v1/workers",
		`{"x":1,"y":2,"wait":10,"velocity":1,"max_dist":10,"skills":[0]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("small body: status %d (%v)", resp.StatusCode, out)
	}
}

func TestHealthzAlwaysUpReadyzGatesMutations(t *testing.T) {
	p, ts := newTestServer(t)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/v1/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := get("/v1/readyz"); got != http.StatusOK {
		t.Errorf("readyz while ready = %d", got)
	}

	p.SetReady(false)
	if got := get("/v1/healthz"); got != http.StatusOK {
		t.Errorf("healthz while recovering = %d, want 200 (liveness, not readiness)", got)
	}
	if got := get("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz while recovering = %d, want 503", got)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/workers",
		`{"x":1,"y":2,"wait":10,"velocity":1,"max_dist":10,"skills":[0]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while recovering = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After hint")
	}
	// Reads stay served during recovery.
	if got := get("/v1/stats"); got != http.StatusOK {
		t.Errorf("stats while recovering = %d", got)
	}

	p.SetReady(true)
	if got := get("/v1/readyz"); got != http.StatusOK {
		t.Errorf("readyz after recovery = %d", got)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/workers",
		`{"x":1,"y":2,"wait":10,"velocity":1,"max_dist":10,"skills":[0]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("POST after recovery = %d", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "state.snap")
	p, err := NewPlatform(Config{Allocator: core.NewGreedy(), SnapshotPath: spath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(p))
	defer ts.Close()
	driveExample(t, p)

	resp, out := postJSON(t, ts.URL+"/v1/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d (%v)", resp.StatusCode, out)
	}
	if out["bytes"].(float64) == 0 || out["path"].(string) != spath {
		t.Errorf("snapshot info = %v", out)
	}
	if _, err := os.Stat(spath); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	p2, _ := NewPlatform(Config{Allocator: core.NewGreedy()})
	rep, err := Recover(p2, spath, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotLoaded {
		t.Error("endpoint snapshot not loadable")
	}
	if s1, s2 := stateString(p), stateString(p2); s1 != s2 {
		t.Fatalf("recovered state differs:\n%s\n%s", s1, s2)
	}

	// Without a configured path the endpoint refuses rather than guessing.
	p3, _ := NewPlatform(Config{Allocator: core.NewGreedy()})
	ts3 := httptest.NewServer(Handler(p3))
	defer ts3.Close()
	if resp, _ := postJSON(t, ts3.URL+"/v1/snapshot", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("unconfigured snapshot: status %d, want 409", resp.StatusCode)
	}
}
