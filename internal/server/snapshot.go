package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dasc/internal/dataset"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// SnapshotVersion identifies the on-disk snapshot schema; bump on breaking
// changes.
const SnapshotVersion = 1

// snapshotFile is the JSON shape of a platform state snapshot: the full
// registries as a dataset-format instance, plus everything the instance does
// not carry — the logical clock, dispatch state per worker, and the
// assignment/botched/finish bookkeeping. Restoring it and replaying the
// post-rotation journal tail reproduces the pre-crash platform exactly.
type snapshotFile struct {
	Version  int                   `json:"version"`
	Now      float64               `json:"now"`
	Batches  int                   `json:"batches"`
	Wasted   int                   `json:"wasted"`
	Rogue    int                   `json:"rogue"`
	Instance json.RawMessage       `json:"instance"`
	Assigned []snapshotAssigned    `json:"assigned"`
	Botched  []model.TaskID        `json:"botched,omitempty"`
	Workers  []snapshotWorkerState `json:"worker_state"`
}

type snapshotAssigned struct {
	Task     model.TaskID   `json:"task"`
	Worker   model.WorkerID `json:"worker"`
	FinishAt float64        `json:"finish_at"`
}

type snapshotWorkerState struct {
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	BusyUntil float64 `json:"busy_until"`
	DistUsed  float64 `json:"dist_used"`
	Done      int     `json:"done"`
}

// WriteSnapshot serialises the platform's full state to w.
func (p *Platform) WriteSnapshot(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writeSnapshotLocked(w)
}

// requires: p.mu
func (p *Platform) writeSnapshotLocked(w io.Writer) error {
	var inst bytes.Buffer
	if err := dataset.WriteCompact(&inst, p.instanceLocked()); err != nil {
		return fmt.Errorf("server: snapshot instance: %w", err)
	}
	sf := snapshotFile{
		Version:  SnapshotVersion,
		Now:      p.now,
		Batches:  p.batches,
		Wasted:   p.wasted,
		Rogue:    p.rogue,
		Instance: json.RawMessage(inst.Bytes()),
		Workers:  make([]snapshotWorkerState, len(p.wstate)),
	}
	for i, ws := range p.wstate {
		sf.Workers[i] = snapshotWorkerState{
			X: ws.loc.X, Y: ws.loc.Y,
			BusyUntil: ws.busyUntil, DistUsed: ws.distUsed, Done: ws.done,
		}
	}
	for tid, wid := range p.assigned {
		sf.Assigned = append(sf.Assigned, snapshotAssigned{
			Task: tid, Worker: wid, FinishAt: p.finishAt[tid],
		})
	}
	sort.Slice(sf.Assigned, func(i, j int) bool { return sf.Assigned[i].Task < sf.Assigned[j].Task })
	for tid := range p.botched {
		sf.Botched = append(sf.Botched, tid)
	}
	sort.Slice(sf.Botched, func(i, j int) bool { return sf.Botched[i] < sf.Botched[j] })
	return json.NewEncoder(w).Encode(&sf)
}

// ReadSnapshot restores a snapshot into an empty platform (one with no
// registrations and no ticks run). The restored registries are NOT
// re-journaled: the snapshot replaces the journal prefix it rotated away.
func (p *Platform) ReadSnapshot(r io.Reader) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.workers) > 0 || len(p.tasks) > 0 || p.batches > 0 {
		return fmt.Errorf("server: snapshot restore into non-empty platform (%d workers, %d tasks, %d batches)",
			len(p.workers), len(p.tasks), p.batches)
	}
	var sf snapshotFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return fmt.Errorf("server: snapshot decode: %w", err)
	}
	if sf.Version != SnapshotVersion {
		return fmt.Errorf("server: unsupported snapshot version %d (want %d)", sf.Version, SnapshotVersion)
	}
	in, err := dataset.Read(bytes.NewReader(sf.Instance))
	if err != nil {
		return fmt.Errorf("server: snapshot instance: %w", err)
	}
	if len(sf.Workers) != len(in.Workers) {
		return fmt.Errorf("server: snapshot has %d worker states for %d workers",
			len(sf.Workers), len(in.Workers))
	}
	nTasks := len(in.Tasks)
	wstate := make([]workerState, len(sf.Workers))
	for i, ws := range sf.Workers {
		wstate[i] = workerState{
			loc:       pt(ws.X, ws.Y),
			busyUntil: ws.BusyUntil, distUsed: ws.DistUsed, done: ws.Done,
		}
	}
	assigned := make(map[model.TaskID]model.WorkerID, len(sf.Assigned))
	finishAt := make(map[model.TaskID]float64, len(sf.Assigned))
	for _, a := range sf.Assigned {
		if a.Task < 0 || int(a.Task) >= nTasks || a.Worker < 0 || int(a.Worker) >= len(in.Workers) {
			return fmt.Errorf("server: snapshot assignment (w%d, t%d) out of range", a.Worker, a.Task)
		}
		if _, dup := assigned[a.Task]; dup {
			return fmt.Errorf("server: snapshot assigns task t%d twice", a.Task)
		}
		assigned[a.Task] = a.Worker
		finishAt[a.Task] = a.FinishAt
	}
	botched := make(map[model.TaskID]bool, len(sf.Botched))
	for _, tid := range sf.Botched {
		if tid < 0 || int(tid) >= nTasks {
			return fmt.Errorf("server: snapshot botched task t%d out of range", tid)
		}
		botched[tid] = true
	}
	p.workers = in.Workers
	p.tasks = in.Tasks
	p.wstate = wstate
	p.assigned = assigned
	p.finishAt = finishAt
	p.botched = botched
	p.now = sf.Now
	p.batches = sf.Batches
	p.wasted = sf.Wasted
	p.rogue = sf.Rogue
	p.assignVer++
	p.publishViewLocked()
	return nil
}

// SnapshotInfo describes a written snapshot.
type SnapshotInfo struct {
	Path     string        `json:"path"`
	Bytes    int64         `json:"bytes"`
	Duration time.Duration `json:"duration_ns"`
	// Rotated reports that the platform's journal was rewound to zero
	// length after the snapshot landed.
	Rotated bool `json:"rotated"`
}

// SaveSnapshot atomically writes the platform state to path (temp file in
// the same directory, fsync, rename) and then rotates the platform's
// journal, so recovery becomes snapshot-load plus short-tail replay. The
// platform lock is held throughout: the snapshot and the rotation are one
// atomic cut of the event stream.
func (p *Platform) SaveSnapshot(path string) (SnapshotInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.saveSnapshotLocked(path)
}

// requires: p.mu
func (p *Platform) saveSnapshotLocked(path string) (info SnapshotInfo, err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			p.reg.Counter(obs.MSnapshotFailuresTotal).Inc()
		}
	}()
	var buf bytes.Buffer
	if err = p.writeSnapshotLocked(&buf); err != nil {
		return info, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".dasc-snap-*")
	if err != nil {
		return info, err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(buf.Bytes()); err != nil {
		return info, err
	}
	if err = tmp.Sync(); err != nil {
		return info, err
	}
	if err = tmp.Close(); err != nil {
		return info, err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return info, err
	}
	syncDir(dir)
	info = SnapshotInfo{Path: path, Bytes: int64(buf.Len()), Duration: time.Since(start)}
	if p.journal != nil {
		if err = p.journal.Rewind(); err != nil {
			return info, fmt.Errorf("server: journal rotation after snapshot: %w", err)
		}
		info.Rotated = true
	}
	p.ticksSinceSnap = 0
	p.reg.Counter(obs.MSnapshotsTotal).Inc()
	p.reg.Gauge(obs.MSnapshotBytesGauge).Set(float64(info.Bytes))
	p.reg.Histogram(obs.TSnapshotSeconds).ObserveDuration(info.Duration)
	p.log.Info("snapshot written",
		"path", info.Path, "bytes", info.Bytes,
		"elapsed", info.Duration, "journal_rotated", info.Rotated)
	return info, nil
}

// syncDir best-effort fsyncs a directory so a rename is durable; some
// filesystems reject directory syncs, which is not worth failing a snapshot
// over.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// maybeSnapshotLocked runs the automatic snapshot policy after a tick:
// every SnapshotEvery ticks, write SnapshotPath and rotate the journal.
// Suppressed while replaying (the journal file is being read, and rotating
// it mid-replay would pull the tail out from under the reader); failures
// are counted (dasc_snapshot_failures_total) but never fail the tick that
// triggered them — the tick itself is already journaled.
//
// requires: p.mu
func (p *Platform) maybeSnapshotLocked() {
	if p.snapPath == "" || p.snapEvery <= 0 || p.replaying {
		return
	}
	p.ticksSinceSnap++
	if p.ticksSinceSnap < p.snapEvery {
		return
	}
	if _, err := p.saveSnapshotLocked(p.snapPath); err != nil {
		p.log.Error("automatic snapshot failed", "path", p.snapPath, "error", err.Error())
	}
	p.ticksSinceSnap = 0
}

// RecoveryReport describes a Recover run: what the snapshot restored and
// what the journal tail replayed on top of it.
type RecoveryReport struct {
	SnapshotLoaded bool
	SnapshotPath   string
	SnapshotBytes  int64
	Replay         ReplayReport
	Duration       time.Duration
}

// Recover restores a platform from its durable state: load the snapshot at
// snapshotPath if one exists, then replay the journal at journalPath on top
// of it. Missing files are fine (first boot, or no snapshot taken yet). A
// torn final journal line is truncated from the file so subsequent appends
// cannot bury a partial line inside the journal (which would turn a
// tolerated torn tail into fatal interior corruption on the next restart).
func Recover(p *Platform, snapshotPath, journalPath string) (RecoveryReport, error) {
	start := time.Now()
	var rep RecoveryReport
	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		switch {
		case err == nil:
			rerr := p.ReadSnapshot(f)
			fi, serr := f.Stat()
			f.Close()
			if rerr != nil {
				return rep, fmt.Errorf("server: recover snapshot %s: %w", snapshotPath, rerr)
			}
			rep.SnapshotLoaded = true
			rep.SnapshotPath = snapshotPath
			if serr == nil {
				rep.SnapshotBytes = fi.Size()
			}
		case !os.IsNotExist(err):
			return rep, err
		}
	}
	if journalPath != "" {
		f, err := openForRead(journalPath)
		switch {
		case err == nil:
			rrep, rerr := ReplayJournal(f, p)
			f.Close()
			rep.Replay = rrep
			if rerr != nil {
				return rep, rerr
			}
			if rrep.TornTail {
				if fi, serr := os.Stat(journalPath); serr == nil {
					if terr := os.Truncate(journalPath, fi.Size()-int64(rrep.TornTailBytes)); terr != nil {
						return rep, fmt.Errorf("server: truncating torn journal tail: %w", terr)
					}
				}
			}
		case !os.IsNotExist(err):
			return rep, err
		}
	}
	rep.Duration = time.Since(start)
	return rep, nil
}
