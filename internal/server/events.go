package server

import (
	"context"
	"log/slog"
	"time"
)

// This file is the server's structured-logging surface: a nil-safe default
// logger and the lifecycle event helpers. The helpers exist so the event
// shapes are functions, not format strings scattered through main — the
// golden tests (events_test.go) pin the exact text and JSON renderings of
// the events operators grep for.

// discardHandler drops every record. slog.DiscardHandler only exists from Go
// 1.24 and this module declares go 1.22, so the platform carries its own:
// Enabled reports false, so disabled logging costs one interface call per
// event — no attribute formatting, no allocation.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// discardLogger is the logger platforms use when Config.Logger is nil:
// embedders that never think about logging get silence, not nil panics.
func discardLogger() *slog.Logger { return slog.New(discardHandler{}) }

// orDiscard returns l, or the discard logger when l is nil.
func orDiscard(l *slog.Logger) *slog.Logger {
	if l == nil {
		return discardLogger()
	}
	return l
}

// LogRecovery emits the startup recovery report: what the snapshot restored,
// what the journal tail replayed, and the resulting platform population.
func LogRecovery(log *slog.Logger, rep RecoveryReport, st Stats) {
	if log == nil {
		return
	}
	log.LogAttrs(context.Background(), slog.LevelInfo, "recovery complete",
		slog.Duration("elapsed", rep.Duration),
		slog.Bool("snapshot_loaded", rep.SnapshotLoaded),
		slog.Int64("snapshot_bytes", rep.SnapshotBytes),
		slog.Int("entries_replayed", rep.Replay.Entries),
		slog.Int("ticks_replayed", rep.Replay.Ticks),
		slog.Int("workers", st.Workers),
		slog.Int("tasks", st.Tasks),
		slog.Int("assigned", st.AssignedTasks),
	)
	if rep.Replay.TornTail {
		log.LogAttrs(context.Background(), slog.LevelWarn, "truncated torn journal tail",
			slog.Int("bytes", rep.Replay.TornTailBytes),
		)
	}
}

// LogShutdown emits the graceful-shutdown event pair: the drain start (with
// its limit) and, via the returned func, the completion with the drain's
// actual duration and error, if any.
func LogShutdown(log *slog.Logger, limit time.Duration) func(error) {
	if log == nil {
		return func(error) {}
	}
	log.LogAttrs(context.Background(), slog.LevelInfo, "signal received; draining",
		slog.Duration("limit", limit),
	)
	start := time.Now()
	return func(err error) {
		if err != nil {
			log.LogAttrs(context.Background(), slog.LevelError, "shutdown drain failed",
				slog.Duration("elapsed", time.Since(start)),
				slog.String("error", err.Error()),
			)
			return
		}
		log.LogAttrs(context.Background(), slog.LevelInfo, "stopped cleanly",
			slog.Duration("elapsed", time.Since(start)),
		)
	}
}
