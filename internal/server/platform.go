// Package server implements the dependency-aware spatial-crowdsourcing
// platform as a long-running service: requesters POST tasks (with
// dependencies), workers POST themselves, and every batch tick the
// configured allocator assigns the active workers to the pending tasks.
// Package platform.go holds the concurrency-safe state machine; http.go
// exposes it as a JSON HTTP API.
package server

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dasc/internal/core"
	"dasc/internal/geo"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// Platform is the mutable, concurrency-safe platform state. Logical time is
// supplied by the caller (the HTTP layer maps wall-clock or explicit ticks
// onto it); it must never go backwards.
type Platform struct {
	mu sync.Mutex

	alloc        core.Allocator
	serviceTime  float64
	dist         geo.DistanceFunc
	journal      *Journal
	replaying    bool
	cache        *core.EngineCache
	noCache      bool
	verifyCache  bool
	verifyGameWL bool

	// Durability policy: after snapEvery ticks the platform snapshots its
	// state to snapPath and rotates the journal (snapshot.go).
	snapPath       string
	snapEvery      int
	ticksSinceSnap int

	// maxBody caps HTTP request bodies (http.go); notReady gates mutating
	// endpoints while the process is still recovering (GET /v1/readyz).
	// Zero value = ready, so in-process embedders need no extra call.
	maxBody  int64
	notReady atomic.Bool

	// ing is the group-commit ingest pipeline (ingest.go); nil when
	// Config.IngestQueue is zero and registrations commit synchronously.
	ing *ingest

	// view is the atomically swapped read snapshot (view.go): every mutation
	// republishes it under mu, and the read endpoints serve from it without
	// touching the big mutex. assignVer changes whenever the assignment
	// bookkeeping may have (ticks, snapshot restores), letting an unchanged
	// assignment view be reused across registration-only publishes.
	view      atomic.Pointer[readView]
	assignVer uint64

	// reg and traces are the server's observability surface: every tick is
	// recorded as an obs.BatchTrace, folded into reg (GET /v1/metrics) and
	// buffered in traces (GET /v1/trace). Always on — the per-tick cost is
	// a handful of atomic adds and three clock reads.
	reg    *obs.Registry
	traces *obs.TraceRing
	// Hot-path ingest counters resolved once at construction (a registry
	// lookup is a mutex + map access the per-request path should not pay).
	cIngEnq *obs.Counter
	cIngRej *obs.Counter

	// log is the structured event logger (never nil — discard by default);
	// mw is the per-request telemetry state behind instrument (middleware.go).
	log *slog.Logger
	mw  *middleware

	workers []model.Worker
	wstate  []workerState
	tasks   []model.Task

	assigned map[model.TaskID]model.WorkerID // validly assigned tasks
	botched  map[model.TaskID]bool           // consumed by invalid dispatch
	finishAt map[model.TaskID]float64

	now     float64
	batches int
	wasted  int
	rogue   int
}

type workerState struct {
	loc       geo.Point
	busyUntil float64
	distUsed  float64
	done      int
}

// Config configures a Platform.
type Config struct {
	// Allocator decides batch assignments. Required.
	Allocator core.Allocator
	// ServiceTime is the on-site duration per task.
	ServiceTime float64
	// Dist is the travel metric; nil means Euclidean.
	Dist geo.DistanceFunc
	// Journal, when non-nil, receives every registration and tick so the
	// platform state can be rebuilt after a restart via Replay. Journal
	// write failures are returned to the caller of the mutating operation.
	Journal *Journal
	// DisableEngineCache rebuilds every tick's candidate engine from
	// scratch instead of carrying it across ticks incrementally
	// (core.EngineCache). The two builds agree exactly; the flag exists for
	// A/B benchmarks and debugging.
	DisableEngineCache bool
	// VerifyEngineCache cross-checks the incrementally maintained candidate
	// engine against a from-scratch build on every tick and fails the tick
	// on divergence. Differential-testing hook; expensive.
	VerifyEngineCache bool
	// DisableGameWorklist runs DASC_Game allocators with the naive full
	// best-response sweep instead of the incremental worklist engine — the
	// game-side analogue of DisableEngineCache. Ignored for non-game
	// allocators.
	DisableGameWorklist bool
	// VerifyGameWorklist cross-checks the worklist engine against the naive
	// sweep on every tick (identical assignments, rounds, update ratios) and
	// fails the tick on divergence. Ignored for non-game allocators.
	VerifyGameWorklist bool
	// TraceDepth is how many recent batch traces GET /v1/trace can serve;
	// zero means obs.DefaultTraceDepth.
	TraceDepth int
	// SnapshotPath, when non-empty, is where state snapshots are written
	// (atomically, temp-file + rename). POST /v1/snapshot writes one on
	// demand; with SnapshotEvery > 0 one is also written every that many
	// ticks. Each snapshot rotates (rewinds) the journal.
	SnapshotPath string
	// SnapshotEvery is the automatic snapshot cadence in ticks; zero means
	// manual snapshots only.
	SnapshotEvery int
	// MaxBodyBytes caps HTTP request bodies; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// IngestQueue, when positive, enables the group-commit ingest pipeline:
	// RegisterWorker/RegisterTask stage registrations through a bounded
	// admission queue of this capacity and a single committer goroutine
	// drains it, journaling each drain as one multi-entry record with a
	// single fsync before publishing (ingest.go). A full queue rejects with
	// ErrIngestBacklog (HTTP 429 + Retry-After). Platforms with the pipeline
	// enabled must be Close()d to stop the committer.
	IngestQueue int
	// IngestBatch caps how many staged registrations one drain commits
	// together; zero means DefaultIngestBatch. Only meaningful with
	// IngestQueue > 0.
	IngestBatch int
	// IngestWait is the group-commit formation window: after the first
	// staged registration of a drain, the committer keeps gathering for up
	// to this long (or until IngestBatch) before committing. Zero commits
	// immediately with whatever has queued. A sub-millisecond window trades
	// bounded per-request latency for much larger drains — and therefore
	// far fewer fsyncs — under concurrent load (cf. Postgres commit_delay).
	// Only meaningful with IngestQueue > 0.
	IngestWait time.Duration
	// Logger receives the platform's structured events (snapshot rotations,
	// journal failures, ingest drain failures, the sampled access log). Nil
	// means discard — embedders that never think about logging get silence.
	Logger *slog.Logger
	// AccessLogEvery samples the HTTP access log: every Nth instrumented
	// request logs one line (1 = every request). Zero or negative disables
	// the access log; lifecycle and failure events log regardless.
	AccessLogEvery int
}

// NewPlatform creates an empty platform.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.Allocator == nil {
		return nil, errors.New("server: Config.Allocator is required")
	}
	if cfg.ServiceTime < 0 {
		return nil, fmt.Errorf("server: negative service time %v", cfg.ServiceTime)
	}
	dist := cfg.Dist
	if dist == nil {
		dist = geo.Euclidean
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("server: negative snapshot cadence %d", cfg.SnapshotEvery)
	}
	if cfg.SnapshotEvery > 0 && cfg.SnapshotPath == "" {
		return nil, errors.New("server: Config.SnapshotEvery set without Config.SnapshotPath")
	}
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("server: negative request body cap %d", cfg.MaxBodyBytes)
	}
	if cfg.IngestQueue < 0 {
		return nil, fmt.Errorf("server: negative ingest queue capacity %d", cfg.IngestQueue)
	}
	if cfg.IngestBatch < 0 {
		return nil, fmt.Errorf("server: negative ingest batch cap %d", cfg.IngestBatch)
	}
	if cfg.IngestWait < 0 {
		return nil, fmt.Errorf("server: negative ingest formation window %v", cfg.IngestWait)
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	alloc := cfg.Allocator
	if cfg.DisableGameWorklist {
		if g, ok := alloc.(*core.Game); ok {
			alloc = g.WithWorklistDisabled(true)
		}
	}
	p := &Platform{
		alloc:        alloc,
		serviceTime:  cfg.ServiceTime,
		dist:         dist,
		journal:      cfg.Journal,
		cache:        core.NewEngineCache(),
		noCache:      cfg.DisableEngineCache,
		verifyCache:  cfg.VerifyEngineCache,
		verifyGameWL: cfg.VerifyGameWorklist,
		snapPath:     cfg.SnapshotPath,
		snapEvery:    cfg.SnapshotEvery,
		maxBody:      maxBody,
		reg:          obs.NewRegistry(),
		traces:       obs.NewTraceRing(cfg.TraceDepth),
		log:          orDiscard(cfg.Logger),
		assigned:     make(map[model.TaskID]model.WorkerID),
		botched:      make(map[model.TaskID]bool),
		finishAt:     make(map[model.TaskID]float64),
	}
	p.mw = newMiddleware(p.log, cfg.AccessLogEvery)
	p.cIngEnq = p.reg.Counter(obs.MIngestEnqueuedTotal)
	p.cIngRej = p.reg.Counter(obs.MIngestRejectedTotal)
	// Process-level runtime gauges (dasc_runtime_*), sampled when scraped.
	obs.RegisterRuntimeMetrics(p.reg)
	// The journal reports durability metrics through the platform registry
	// so appends/fsyncs show up on GET /v1/metrics, and journal failures
	// (append, flush, fsync) land in the structured log.
	p.journal.SetMetrics(p.reg)
	p.journal.SetLogger(p.log)
	p.publishView()
	if cfg.IngestQueue > 0 {
		p.ing = newIngest(cfg.IngestQueue, cfg.IngestBatch, cfg.IngestWait)
		go p.committer()
	}
	return p, nil
}

// Close stops the ingest committer after it commits everything already
// admitted to the queue. Idempotent; a no-op on platforms without the
// pipeline. The journal is not closed — its owner (whoever opened it) is.
func (p *Platform) Close() error {
	if p.ing != nil {
		p.ing.shutdown()
	}
	return nil
}

func (p *Platform) publishView() {
	p.mu.Lock()
	p.publishViewLocked()
	p.mu.Unlock()
}

// SetReady flips the platform's readiness (GET /v1/readyz; mutating
// endpoints return 503 while not ready). Platforms start ready; a serving
// process clears readiness before recovery and restores it after.
func (p *Platform) SetReady(ready bool) { p.notReady.Store(!ready) }

// Ready reports whether the platform accepts mutating requests.
func (p *Platform) Ready() bool { return !p.notReady.Load() }

// finiteField pairs a registration field with its wire name for non-finite
// rejection: NaN never compares true against a negativity guard (w.Wait < 0
// is false for NaN), so without these checks NaN/±Inf coordinates, times and
// budgets would pass validation and poison feasibility arithmetic.
type finiteField struct {
	name string
	v    float64
}

func checkFinite(fields ...finiteField) error {
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("non-finite field %s (%v)", f.name, f.v)
		}
	}
	return nil
}

// validateWorker checks every worker field the platform admits: all-finite
// floats, non-negative parameters, at least one skill.
func validateWorker(w *model.Worker) error {
	if err := checkFinite(
		finiteField{"x", w.Loc.X}, finiteField{"y", w.Loc.Y},
		finiteField{"start", w.Start}, finiteField{"wait", w.Wait},
		finiteField{"velocity", w.Velocity}, finiteField{"max_dist", w.MaxDist},
	); err != nil {
		return fmt.Errorf("server: worker: %w", err)
	}
	if w.Wait < 0 || w.Velocity < 0 || w.MaxDist < 0 {
		return errors.New("server: negative worker parameter")
	}
	if w.Skills.IsEmpty() {
		return errors.New("server: worker has no skills")
	}
	return nil
}

// validateTask checks the dependency-independent task fields; dependency
// validation needs the registry and stays under the platform lock
// (closeDepsLocked).
func validateTask(t *model.Task) error {
	if err := checkFinite(
		finiteField{"x", t.Loc.X}, finiteField{"y", t.Loc.Y},
		finiteField{"start", t.Start}, finiteField{"wait", t.Wait},
		finiteField{"weight", t.Weight},
	); err != nil {
		return fmt.Errorf("server: task: %w", err)
	}
	if t.Wait < 0 {
		return errors.New("server: negative task waiting time")
	}
	if t.Requires < 0 {
		return errors.New("server: negative required skill")
	}
	return nil
}

// closeDepsLocked validates t's dependency list against the registered tasks
// plus staged (tasks committed earlier in the same ingest drain, whose IDs
// follow len(p.tasks)) and returns the transitively closed list. Dependencies
// must reference already-registered tasks, which keeps the dependency graph
// acyclic by construction (as in the paper's generators, creation order is
// appearance order).
//
// requires: p.mu
func (p *Platform) closeDepsLocked(t *model.Task, staged []model.Task) ([]model.TaskID, error) {
	n := len(p.tasks) + len(staged)
	lookup := func(id model.TaskID) *model.Task {
		if int(id) < len(p.tasks) {
			return &p.tasks[id]
		}
		return &staged[int(id)-len(p.tasks)]
	}
	seen := make(map[model.TaskID]bool, len(t.Deps))
	for _, d := range t.Deps {
		if d < 0 || int(d) >= n {
			return nil, fmt.Errorf("server: dependency t%d not registered yet", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("server: duplicate dependency t%d", d)
		}
		seen[d] = true
	}
	// Keep dependency sets transitively closed, the library invariant.
	closed := append([]model.TaskID(nil), t.Deps...)
	for _, d := range t.Deps {
		for _, dd := range lookup(d).Deps {
			if !seen[dd] {
				seen[dd] = true
				closed = append(closed, dd)
			}
		}
	}
	return closed, nil
}

// AddWorker registers a worker and returns its ID. Fields other than the ID
// are taken from w verbatim; validation mirrors model.Instance.Validate.
// The journal append happens BEFORE the in-memory publish: a failed append
// returns ID 0 with an ErrJournal-classified error and leaves no trace in
// served state, so replayed state can never diverge from what was
// acknowledged.
func (p *Platform) AddWorker(w model.Worker) (model.WorkerID, error) {
	if err := validateWorker(&w); err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w.ID = model.WorkerID(len(p.workers))
	if p.journal != nil && !p.replaying {
		if err := p.journal.Worker(w); err != nil {
			return 0, journalFailure(err)
		}
	}
	p.workers = append(p.workers, w)
	p.wstate = append(p.wstate, workerState{loc: w.Loc})
	p.publishViewLocked()
	return w.ID, nil
}

// AddTask registers a task and returns its ID, with the same journal-first
// atomicity as AddWorker: validation, then the journal append, then the
// in-memory publish — an error at any stage returns ID 0 and changes
// nothing.
func (p *Platform) AddTask(t model.Task) (model.TaskID, error) {
	if err := validateTask(&t); err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	closed, err := p.closeDepsLocked(&t, nil)
	if err != nil {
		return 0, err
	}
	t.Deps = closed
	t.ID = model.TaskID(len(p.tasks))
	if p.journal != nil && !p.replaying {
		if err := p.journal.Task(t); err != nil {
			return 0, journalFailure(err)
		}
	}
	p.tasks = append(p.tasks, t)
	p.publishViewLocked()
	return t.ID, nil
}

// BatchOutcome reports one tick's allocation.
type BatchOutcome struct {
	Batch    int          `json:"batch"`
	Time     float64      `json:"time"`
	Workers  int          `json:"active_workers"`
	Tasks    int          `json:"pending_tasks"`
	Assigned []model.Pair `json:"assigned"`
	Wasted   int          `json:"wasted"`
	// Rogue counts allocator pairs dropped for naming a worker that was not
	// active in the batch (misbehaving custom Allocator); they are never
	// dispatched.
	Rogue int `json:"rogue"`
	// EngineCache outcomes for this tick: unmoved workers revalidated by
	// time arithmetic, workers rebuilt through the pruned scan, and
	// travel-time lookups served from a memo.
	WorkersRevalidated int   `json:"workers_revalidated"`
	WorkersRebuilt     int   `json:"workers_rebuilt"`
	MemoHits           int64 `json:"memo_hits"`
}

// Tick advances logical time to now and runs one batch process. Time must
// not go backwards and must be finite: a NaN would poison the logical clock
// (now < p.now is false for every subsequent time, so the backwards guard
// could never fire again).
func (p *Platform) Tick(now float64) (*BatchOutcome, error) {
	return p.TickTagged(now, "")
}

// TickTagged is Tick carrying the correlation ID of the request that
// triggered the batch; the ID lands on the batch's trace (GET /v1/trace), so
// a client can find exactly the batch its POST /v1/tick ran. Empty means an
// untagged (ticker- or replay-driven) batch.
func (p *Platform) TickTagged(now float64, requestID string) (*BatchOutcome, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return nil, fmt.Errorf("server: non-finite tick time %v", now)
	}
	if now < p.now {
		return nil, fmt.Errorf("server: time going backwards (%v < %v)", now, p.now)
	}
	if p.journal != nil && !p.replaying {
		if err := p.journal.TickAt(now); err != nil {
			return nil, journalFailure(err)
		}
	}
	p.now = now
	out := &BatchOutcome{Batch: p.batches, Time: now, Assigned: []model.Pair{}}
	p.batches++
	rec := obs.NewBatchRec(out.Batch, now)
	rec.SetRequestID(requestID)

	in := &model.Instance{Workers: p.workers, Tasks: p.tasks, Dist: p.dist}
	var bws []core.BatchWorker
	var wIdx []int
	for i := range p.workers {
		w := &p.workers[i]
		if w.Start > now || now > w.Expiry() || p.wstate[i].busyUntil > now {
			continue
		}
		bws = append(bws, core.BatchWorker{
			W:          w,
			Loc:        p.wstate[i].loc,
			ReadyAt:    now,
			DistBudget: w.MaxDist - p.wstate[i].distUsed,
		})
		wIdx = append(wIdx, i)
	}
	var pending []*model.Task
	for i := range p.tasks {
		t := &p.tasks[i]
		if _, ok := p.assigned[t.ID]; ok {
			continue
		}
		if p.botched[t.ID] || t.Start > now || t.Deadline() < now {
			continue
		}
		pending = append(pending, t)
	}
	out.Workers, out.Tasks = len(bws), len(pending)
	rec.SetPopulation(out.Workers, out.Tasks)
	if len(bws) == 0 || len(pending) == 0 {
		p.recordTick(out, rec)
		p.maybeSnapshotLocked()
		return out, nil
	}

	satisfied := make(map[model.TaskID]bool, len(p.assigned))
	for id := range p.assigned {
		satisfied[id] = true
	}
	b := core.NewBatch(in, bws, pending, satisfied)
	b.SetRecorder(rec)
	phaseStart := time.Now()
	if !p.noCache {
		p.cache.Attach(b)
		if p.verifyCache {
			if err := b.VerifyIndex(); err != nil {
				return nil, fmt.Errorf("server: tick %d: engine cache diverged: %w", out.Batch, err)
			}
		}
	} else {
		// Force the lazy build inside the timed window so the index phase
		// is attributed correctly (the build is idempotent).
		b.Index()
	}
	indexD := time.Since(phaseStart)
	phaseStart = time.Now()
	if p.verifyGameWL {
		if g, ok := p.alloc.(*core.Game); ok {
			if err := g.VerifyWorklist(b); err != nil {
				return nil, fmt.Errorf("server: tick %d: game worklist diverged: %w", out.Batch, err)
			}
		}
	}
	raw := p.alloc.Assign(b)
	out.Rogue = core.DropUnknownWorkers(b, raw)
	p.rogue += out.Rogue
	valid := core.DependencyFixpoint(b, raw)
	out.Assigned = valid.Pairs
	out.Wasted = raw.Size() - valid.Size()
	p.wasted += out.Wasted
	allocD := time.Since(phaseStart)
	phaseStart = time.Now()

	validSet := valid.TaskSet()
	for _, pair := range raw.Pairs {
		// DropUnknownWorkers already removed pairs naming workers outside
		// the batch; the guard stays as a backstop so a miss can never
		// dispatch through batch index 0.
		bi := b.WorkerIndex(pair.Worker)
		if bi < 0 {
			out.Rogue++
			p.rogue++
			continue
		}
		i := wIdx[bi]
		w := &p.workers[i]
		t := &p.tasks[pair.Task]
		d := p.dist(p.wstate[i].loc, t.Loc)
		arrive := math.Max(now, t.Start) + w.TravelTime(p.wstate[i].loc, t.Loc, p.dist)
		serviceStart := arrive
		for _, dep := range t.Deps {
			if fa, ok := p.finishAt[dep]; ok && fa > serviceStart {
				serviceStart = fa
			}
		}
		finish := serviceStart + p.serviceTime
		p.wstate[i].loc = t.Loc
		p.wstate[i].distUsed += d
		p.wstate[i].busyUntil = finish
		p.wstate[i].done++
		if validSet[pair.Task] {
			p.assigned[pair.Task] = pair.Worker
			p.finishAt[pair.Task] = finish
		} else {
			p.botched[pair.Task] = true
		}
	}
	rec.SetOutcome(valid.Size(), out.Wasted, out.Rogue)
	rec.ObservePhases(indexD, allocD, time.Since(phaseStart))
	p.recordTick(out, rec)
	p.maybeSnapshotLocked()
	return out, nil
}

// recordTick finalises the tick's trace, copies the cache counters onto the
// outcome, publishes both to the trace ring and the metric registry, and
// swaps in a fresh read view (ticks move the clock and may change the
// assignment bookkeeping).
//
// requires: p.mu
func (p *Platform) recordTick(out *BatchOutcome, rec *obs.BatchRec) {
	tr := rec.Finish()
	out.WorkersRevalidated = tr.WorkersRevalidated
	out.WorkersRebuilt = tr.WorkersRebuilt
	out.MemoHits = tr.MemoHits
	p.traces.Add(tr)
	obs.RecordBatch(p.reg, tr)
	p.assignVer++
	p.publishViewLocked()
}

// Metrics returns the platform's metric registry (GET /v1/metrics).
func (p *Platform) Metrics() *obs.Registry { return p.reg }

// Traces returns the platform's recent batch traces (GET /v1/trace).
func (p *Platform) Traces() *obs.TraceRing { return p.traces }

// Stats is a snapshot of platform counters.
type Stats struct {
	Now           float64 `json:"now"`
	Batches       int     `json:"batches"`
	Workers       int     `json:"workers"`
	Tasks         int     `json:"tasks"`
	AssignedTasks int     `json:"assigned_tasks"`
	WastedPairs   int     `json:"wasted_pairs"`
	RoguePairs    int     `json:"rogue_pairs"`
	Allocator     string  `json:"allocator"`
	// Cumulative EngineCache behaviour across all ticks (also exposed, with
	// the full per-phase breakdown, on /v1/metrics).
	WorkersRevalidated int64 `json:"workers_revalidated"`
	WorkersRebuilt     int64 `json:"workers_rebuilt"`
	MemoHits           int64 `json:"memo_hits"`
	MemoMisses         int64 `json:"memo_misses"`
}

// Snapshot returns current counters.
func (p *Platform) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statsLocked()
}

// requires: p.mu
func (p *Platform) statsLocked() Stats {
	return Stats{
		Now:           p.now,
		Batches:       p.batches,
		Workers:       len(p.workers),
		Tasks:         len(p.tasks),
		AssignedTasks: len(p.assigned),
		WastedPairs:   p.wasted,
		RoguePairs:    p.rogue,
		Allocator:     p.alloc.Name(),

		WorkersRevalidated: p.reg.Counter(obs.MCacheRevalidatedTotal).Value(),
		WorkersRebuilt:     p.reg.Counter(obs.MCacheRebuiltTotal).Value(),
		MemoHits:           p.reg.Counter(obs.MMemoHitsTotal).Value(),
		MemoMisses:         p.reg.Counter(obs.MMemoMissesTotal).Value(),
	}
}

// Assignments returns every valid pair so far, sorted by task ID.
func (p *Platform) Assignments() *model.Assignment {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := model.NewAssignment()
	for tid, wid := range p.assigned {
		a.Add(wid, tid)
	}
	a.Sort()
	return a
}

// Instance returns a deep copy of the current worker and task registries,
// suitable for archiving via the dataset codec.
func (p *Platform) Instance() *model.Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.instanceLocked()
}

// requires: p.mu
func (p *Platform) instanceLocked() *model.Instance {
	in := &model.Instance{
		Workers: append([]model.Worker(nil), p.workers...),
		Tasks:   make([]model.Task, len(p.tasks)),
	}
	for i, t := range p.tasks {
		t.Deps = append([]model.TaskID(nil), t.Deps...)
		in.Tasks[i] = t
	}
	for i := range in.Workers {
		in.Workers[i].Skills = in.Workers[i].Skills.Clone()
	}
	return in
}
