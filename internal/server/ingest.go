package server

import (
	"errors"
	"sync"
	"time"

	"dasc/internal/model"
	"dasc/internal/obs"
)

// This file is the group-commit ingest pipeline. Registrations arriving at
// rate (POST /v1/workers, /v1/tasks) no longer take the platform mutex and
// pay their own journal fsync one at a time; they stage through a bounded
// admission queue and a single committer goroutine drains it:
//
//	stage → drain (≤ IngestBatch) → assign IDs → journal one v2 multi-entry
//	record, ONE fsync → publish to platform state → answer every waiter
//
// Under -fsync=always this turns one disk flush per request into one per
// drain, and the drain size grows automatically with the arrival rate (while
// a commit is in flight the queue refills; the next drain takes everything).
// Backpressure is explicit: a full queue fails fast with ErrIngestBacklog
// and the HTTP layer answers 429 + Retry-After.
//
// Ordering: the committer journals and publishes under the platform mutex,
// the same mutex ticks and snapshots take, so journal order always equals
// publish order and a snapshot rotation can never cut a drain in half.

// DefaultIngestBatch caps how many staged registrations one committer drain
// commits as a single journal record when Config.IngestBatch is zero.
const DefaultIngestBatch = 256

// ErrIngestBacklog reports a full admission queue: the client should retry
// after a moment (HTTP 429 + Retry-After). Submissions are not blocked on a
// slow disk — the queue bound converts an overload into fast feedback.
var ErrIngestBacklog = errors.New("server: ingest queue full")

// ErrPlatformClosed reports a registration attempted after Close.
var ErrPlatformClosed = errors.New("server: platform closed")

type ingestKind uint8

const (
	ingestWorker ingestKind = iota
	ingestTask
)

// ingestReq is one staged registration; done (buffered, capacity 1) carries
// the committer's answer back to the waiting submitter. reqID is the HTTP
// correlation ID (middleware.go), reported on the drain trace that commits
// the entry; empty for untagged submissions.
type ingestReq struct {
	kind   ingestKind
	worker model.Worker
	task   model.Task
	reqID  string
	done   chan ingestResult
}

type ingestResult struct {
	id  int
	err error
}

// reqPool recycles ingestReqs (and their answer channels) between
// registrations. The done channel is capacity 1 and receives exactly one
// result per use, so a request that has been answered is empty and safe to
// reuse. putReq zeroes the payload so pooled requests do not retain skill or
// dependency slices.
var reqPool = sync.Pool{New: func() any {
	return &ingestReq{done: make(chan ingestResult, 1)}
}}

func getReq(kind ingestKind) *ingestReq {
	r := reqPool.Get().(*ingestReq)
	r.kind = kind
	return r
}

func putReq(r *ingestReq) {
	r.worker = model.Worker{}
	r.task = model.Task{}
	r.reqID = ""
	reqPool.Put(r)
}

// ingest is the admission queue plus committer lifecycle. The RWMutex
// fences queue sends against shutdown: submitters hold the read side across
// the closed-check-then-send, shutdown takes the write side before closing
// stop, so no request can land in the queue after the committer's final
// drain.
type ingest struct {
	mu     sync.RWMutex
	closed bool

	queue    chan *ingestReq
	batchMax int
	wait     time.Duration
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once

	seq    int // committer-goroutine only
	drains *obs.DrainRing
}

func newIngest(queueCap, batchMax int, wait time.Duration) *ingest {
	if batchMax <= 0 {
		batchMax = DefaultIngestBatch
	}
	return &ingest{
		queue:    make(chan *ingestReq, queueCap),
		batchMax: batchMax,
		wait:     wait,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		drains:   obs.NewDrainRing(0),
	}
}

// submit stages a request without blocking: a full queue is ErrIngestBacklog,
// a closed pipeline ErrPlatformClosed.
func (g *ingest) submit(r *ingestReq) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return ErrPlatformClosed
	}
	select {
	case g.queue <- r:
		return nil
	default:
		return ErrIngestBacklog
	}
}

// shutdown stops the committer after a final drain of everything admitted.
func (g *ingest) shutdown() {
	g.once.Do(func() {
		g.mu.Lock()
		g.closed = true
		g.mu.Unlock()
		close(g.stop)
		<-g.done
	})
}

// fill drains the queue non-blocking into batch, up to batchMax entries.
func (g *ingest) fill(batch []*ingestReq) []*ingestReq {
	for len(batch) < g.batchMax {
		select {
		case r := <-g.queue:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// gather extends a drain for up to the configured formation window, blocking
// for stragglers instead of only sweeping what already queued. Without a
// window, group commit is bistable under closed-loop clients: a small drain
// commits quickly, so few clients resubmit in time for the next drain, which
// is then also small — and the pipeline gets stuck paying near-per-request
// fsyncs. A sub-millisecond wait (cf. Postgres commit_delay) lets each drain
// form fully at high concurrency for a bounded latency cost. Shutdown cuts
// the window short; the final sweep in committer picks up anything left.
func (g *ingest) gather(batch []*ingestReq) []*ingestReq {
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	for len(batch) < g.batchMax {
		select {
		case r := <-g.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-g.stop:
			return batch
		}
	}
	return batch
}

// RegisterWorker registers a worker through the group-commit pipeline when
// it is enabled, falling back to the synchronous AddWorker path otherwise.
// The call returns once the registration is durable (journaled under the
// configured fsync policy) and visible in served state, exactly like
// AddWorker — only the commit is shared with every other registration in
// the same drain.
func (p *Platform) RegisterWorker(w model.Worker) (model.WorkerID, error) {
	return p.RegisterWorkerTagged(w, "")
}

// RegisterWorkerTagged is RegisterWorker carrying the correlation ID of the
// HTTP request, reported on the drain trace that commits the registration
// (GET /v1/ingest). Empty means untagged.
func (p *Platform) RegisterWorkerTagged(w model.Worker, requestID string) (model.WorkerID, error) {
	if p.ing == nil {
		return p.AddWorker(w)
	}
	// Field validation fails fast before taking a queue slot; the committer
	// re-checks nothing but dependencies (which need platform state).
	if err := validateWorker(&w); err != nil {
		return 0, err
	}
	req := getReq(ingestWorker)
	req.worker = w
	req.reqID = requestID
	if err := p.enqueue(req); err != nil {
		putReq(req)
		return 0, err
	}
	res := <-req.done
	putReq(req)
	return model.WorkerID(res.id), res.err
}

// RegisterTask is RegisterWorker for tasks: staged field validation up
// front, dependency validation and closure inside the commit (it needs the
// registry), group-committed with the rest of the drain.
func (p *Platform) RegisterTask(t model.Task) (model.TaskID, error) {
	return p.RegisterTaskTagged(t, "")
}

// RegisterTaskTagged is RegisterTask carrying the correlation ID of the HTTP
// request; see RegisterWorkerTagged.
func (p *Platform) RegisterTaskTagged(t model.Task, requestID string) (model.TaskID, error) {
	if p.ing == nil {
		return p.AddTask(t)
	}
	if err := validateTask(&t); err != nil {
		return 0, err
	}
	req := getReq(ingestTask)
	req.task = t
	req.reqID = requestID
	if err := p.enqueue(req); err != nil {
		putReq(req)
		return 0, err
	}
	res := <-req.done
	putReq(req)
	return model.TaskID(res.id), res.err
}

// IngestQueueDepth returns the admission-queue backlog and capacity; (0, 0)
// when the pipeline is disabled.
func (p *Platform) IngestQueueDepth() (depth, capacity int) {
	if p.ing == nil {
		return 0, 0
	}
	return len(p.ing.queue), cap(p.ing.queue)
}

// IngestDrains returns up to n recent drain traces, oldest first; empty when
// the pipeline is disabled.
func (p *Platform) IngestDrains(n int) []obs.DrainTrace {
	if p.ing == nil {
		return []obs.DrainTrace{}
	}
	return p.ing.drains.Last(n)
}

func (p *Platform) enqueue(r *ingestReq) error {
	err := p.ing.submit(r)
	switch err {
	case nil:
		p.cIngEnq.Inc()
	case ErrIngestBacklog:
		p.cIngRej.Inc()
	}
	return err
}

// committer is the pipeline's single drain loop: block for the first staged
// request, soak up whatever else arrived (bounded by batchMax), commit the
// drain, repeat. On shutdown it commits everything already admitted before
// exiting, so no accepted request is ever left unanswered.
func (p *Platform) committer() {
	g := p.ing
	defer close(g.done)
	var batch []*ingestReq
	for {
		select {
		case <-g.stop:
			for {
				batch = g.fill(batch[:0])
				if len(batch) == 0 {
					return
				}
				p.commitBatch(batch)
			}
		case r := <-g.queue:
			batch = append(batch[:0], r)
			if g.wait > 0 {
				batch = g.gather(batch)
			} else {
				batch = g.fill(batch)
			}
			p.commitBatch(batch)
		}
	}
}

// commitBatch commits one drain: stage IDs under the platform mutex, append
// every valid entry as one journal record with a single fsync, publish, then
// answer the waiters. A journal failure fails the WHOLE drain and publishes
// nothing — served state and journal never diverge, in either direction.
func (p *Platform) commitBatch(reqs []*ingestReq) {
	start := time.Now()
	results := make([]ingestResult, len(reqs))
	entries := make([]journalEntry, 0, len(reqs))
	staged := make([]int, 0, len(reqs)) // indices into reqs, in commit order

	p.mu.Lock()
	var stagedW []model.Worker
	var stagedT []model.Task
	for i, r := range reqs {
		switch r.kind {
		case ingestWorker:
			w := r.worker
			w.ID = model.WorkerID(len(p.workers) + len(stagedW))
			stagedW = append(stagedW, w)
			entries = append(entries, workerEntry(w))
			staged = append(staged, i)
			results[i] = ingestResult{id: int(w.ID)}
		case ingestTask:
			t := r.task
			closed, err := p.closeDepsLocked(&t, stagedT)
			if err != nil {
				results[i] = ingestResult{err: err}
				continue
			}
			t.Deps = closed
			t.ID = model.TaskID(len(p.tasks) + len(stagedT))
			stagedT = append(stagedT, t)
			entries = append(entries, taskEntry(t))
			staged = append(staged, i)
			results[i] = ingestResult{id: int(t.ID)}
		}
	}

	jstart := time.Now()
	var jerr error
	if len(entries) > 0 && p.journal != nil {
		if err := p.journal.Batch(entries); err != nil {
			jerr = journalFailure(err)
		}
	}
	journalD := time.Since(jstart)

	committed := 0
	var reqIDs []string
	if jerr != nil {
		for _, i := range staged {
			results[i] = ingestResult{err: jerr}
		}
		stagedW, stagedT = nil, nil
	} else {
		p.workers = append(p.workers, stagedW...)
		for i := range stagedW {
			p.wstate = append(p.wstate, workerState{loc: stagedW[i].Loc})
		}
		p.tasks = append(p.tasks, stagedT...)
		committed = len(staged)
		// Collect correlation IDs in commit order NOW: once a waiter is
		// answered below it recycles its request (putReq zeroes reqID).
		for _, i := range staged {
			if id := reqs[i].reqID; id != "" {
				reqIDs = append(reqIDs, id)
			}
		}
		p.publishViewLocked()
	}
	depth := len(p.ing.queue)
	p.mu.Unlock()

	if jerr != nil {
		p.log.Error("ingest drain failed",
			"requests", len(reqs), "queue_depth", depth, "error", jerr.Error())
	}

	for i := range reqs {
		reqs[i].done <- results[i]
	}

	p.ing.seq++
	tr := obs.DrainTrace{
		Seq:            p.ing.seq,
		Requests:       len(reqs),
		Committed:      committed,
		Workers:        len(stagedW),
		Tasks:          len(stagedT),
		Failed:         len(reqs) - committed,
		QueueDepth:     depth,
		CommitMS:       float64(time.Since(start)) / float64(time.Millisecond),
		JournalMS:      float64(journalD) / float64(time.Millisecond),
		RequestIDs:     obs.CapRequestIDs(reqIDs),
		RequestIDCount: len(reqIDs),
	}
	p.ing.drains.Add(tr)
	obs.RecordDrain(p.reg, tr)
}
