package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"dasc/internal/model"
	"dasc/internal/obs"
)

// FsyncMode is the journal's durability policy: how often appended events
// are forced to stable storage (fsync) rather than just flushed to the OS
// page cache.
type FsyncMode int

const (
	// FsyncNever flushes to the OS but never fsyncs; a machine crash can
	// lose every event the kernel had not yet written back. Process crashes
	// lose nothing (the flush per append still reaches the kernel).
	FsyncNever FsyncMode = iota
	// FsyncInterval fsyncs at most once per configured interval, amortising
	// the sync cost over many appends; a machine crash loses at most one
	// interval of events.
	FsyncInterval
	// FsyncAlways fsyncs after every append; nothing acknowledged is ever
	// lost, at one disk sync per event.
	FsyncAlways
)

// ParseFsyncMode parses "always", "interval" or "never".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncNever, fmt.Errorf("server: unknown fsync mode %q (want always, interval or never)", s)
}

// String returns the flag spelling of the mode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// DefaultFsyncInterval is the interval-mode sync cadence when none is given.
const DefaultFsyncInterval = time.Second

// ErrJournal classifies failures of the durability layer — a journal append,
// flush or fsync going wrong — as distinct from request-validation failures.
// Mutating platform operations wrap journal errors so errors.Is(err,
// ErrJournal) holds; the HTTP layer maps them to 503 + Retry-After (the
// server's disk is the problem, not the client's request).
var ErrJournal = errors.New("journal failure")

// journalError wraps an underlying journal error so it classifies as
// ErrJournal while keeping the original error chain and the stable
// "server: journal:" message prefix.
type journalError struct{ err error }

func (e *journalError) Error() string        { return "server: journal: " + e.err.Error() }
func (e *journalError) Unwrap() error        { return e.err }
func (e *journalError) Is(target error) bool { return target == ErrJournal }
func journalFailure(err error) error         { return &journalError{err: err} }

// Journal is an append-only JSONL event log for the platform: every worker
// registration, task registration and batch tick is recorded as one line, so
// a crashed or restarted server can rebuild its exact state with Replay.
// Entries are written through a buffered writer and flushed per event; the
// configured FsyncMode decides when flushes are additionally forced to disk.
// The file format is stable and human-greppable.
type Journal struct {
	mu       sync.Mutex
	w        *bufio.Writer
	c        io.Closer
	f        *os.File // nil when not file-backed (fsync and Rewind unavailable)
	mode     FsyncMode
	interval time.Duration
	lastSync time.Time
	reg      *obs.Registry // nil-safe metric sink (dasc_journal_*)
	cAppends *obs.Counter  // resolved once in SetMetrics; nil = no-op
	cBytes   *obs.Counter
	cFsyncs  *obs.Counter
	log      *slog.Logger // nil = silent (SetLogger)
	err      error
}

// journalBatchVersion identifies the multi-entry group-commit record format
// ("batch" lines). v1 lines are the single-entry worker/task/tick records;
// replay accepts both side by side.
const journalBatchVersion = 2

// journalEntry is one logged event. Exactly one of the payload fields is set.
type journalEntry struct {
	// Kind is "worker", "task", "tick" — or "batch" for the v2 multi-entry
	// group-commit record (V = journalBatchVersion, Entries = the
	// registrations committed together under a single fsync).
	Kind   string         `json:"kind"`
	Worker *journalWorker `json:"worker,omitempty"`
	Task   *journalTask   `json:"task,omitempty"`
	Tick   *float64       `json:"tick,omitempty"`

	V       int            `json:"v,omitempty"`
	Entries []journalEntry `json:"entries,omitempty"`
}

type journalWorker struct {
	X        float64       `json:"x"`
	Y        float64       `json:"y"`
	Start    float64       `json:"start"`
	Wait     float64       `json:"wait"`
	Velocity float64       `json:"velocity"`
	MaxDist  float64       `json:"max_dist"`
	Skills   []model.Skill `json:"skills"`
}

type journalTask struct {
	X        float64        `json:"x"`
	Y        float64        `json:"y"`
	Start    float64        `json:"start"`
	Wait     float64        `json:"wait"`
	Requires model.Skill    `json:"requires"`
	Deps     []model.TaskID `json:"deps,omitempty"`
	Weight   float64        `json:"weight,omitempty"`
}

// NewJournal writes events to w; close (may be nil) is closed by Close.
// Writer-backed journals have no durable file, so the fsync policy is
// FsyncNever and Rewind is unavailable.
func NewJournal(w io.Writer, close io.Closer) *Journal {
	return &Journal{w: bufio.NewWriter(w), c: close}
}

// OpenJournal appends to (creating if needed) the JSONL file at path with
// the FsyncNever policy. Use OpenJournalMode to choose a durability policy.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalMode(path, FsyncNever, 0)
}

// OpenJournalMode appends to (creating if needed) the JSONL file at path
// under the given durability policy. interval only matters for
// FsyncInterval; zero means DefaultFsyncInterval.
func OpenJournalMode(path string, mode FsyncMode, interval time.Duration) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = DefaultFsyncInterval
	}
	j := NewJournal(f, f)
	j.f = f
	j.mode = mode
	j.interval = interval
	return j, nil
}

// SetMetrics attaches a registry for the dasc_journal_* counters. Nil-safe
// on both sides; the platform wires its own registry here so journal
// durability shows up on GET /v1/metrics.
func (j *Journal) SetMetrics(reg *obs.Registry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.reg = reg
	// Resolve the hot-path counters once: Registry.Counter is a mutex + map
	// lookup, which the per-append/per-fsync path should not repay every
	// event. Nil-safe — a nil registry hands back nil (no-op) counters.
	j.cAppends = reg.Counter(obs.MJournalAppendsTotal)
	j.cBytes = reg.Counter(obs.MJournalBytesTotal)
	j.cFsyncs = reg.Counter(obs.MJournalFsyncsTotal)
	j.mu.Unlock()
}

// SetLogger attaches a structured logger for durability failures (append,
// flush, fsync, rewind). Nil-safe on both sides; the platform wires its own
// logger here. A journal failure is sticky (every later append fails fast
// with the first error), so each failure logs exactly once.
func (j *Journal) SetLogger(log *slog.Logger) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.log = log
	j.mu.Unlock()
}

// failLocked records the journal's first (sticky) failure and logs it.
//
// requires: j.mu
func (j *Journal) failLocked(op string, err error) error {
	j.err = err
	if j.log != nil {
		j.log.Error("journal failure", "op", op, "error", err.Error())
	}
	return err
}

func (j *Journal) append(e journalEntry) error { return j.appendN(e, 1) }

// appendN writes one record carrying events logical events (1 for v1 lines,
// len(Entries) for a v2 batch record) with a single flush and at most one
// fsync — the group-commit amortisation.
func (j *Journal) appendN(e journalEntry, events int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return j.failLocked("marshal", err)
	}
	n, err := j.w.Write(append(data, '\n'))
	if err != nil {
		return j.failLocked("append", err)
	}
	if err := j.w.Flush(); err != nil {
		return j.failLocked("flush", err)
	}
	j.cAppends.Add(int64(events))
	j.cBytes.Add(int64(n))
	if err := j.maybeSyncLocked(); err != nil {
		return j.failLocked("fsync", err)
	}
	return nil
}

// maybeSyncLocked applies the fsync policy after a flushed append.
//
// requires: j.mu
func (j *Journal) maybeSyncLocked() error {
	if j.f == nil {
		return nil
	}
	switch j.mode {
	case FsyncAlways:
		return j.syncLocked()
	case FsyncInterval:
		if time.Since(j.lastSync) >= j.interval {
			return j.syncLocked()
		}
	}
	return nil
}

// requires: j.mu
func (j *Journal) syncLocked() error {
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.lastSync = time.Now()
	j.cFsyncs.Inc()
	return nil
}

// Sync flushes buffered events and, for file-backed journals, forces them to
// stable storage regardless of the fsync policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		return j.failLocked("flush", err)
	}
	if err := j.syncLocked(); err != nil {
		return j.failLocked("fsync", err)
	}
	return nil
}

// Rewind truncates a file-backed journal to zero length after a snapshot has
// captured everything it contained, so recovery is snapshot-load plus a
// short tail replay instead of a full-history re-simulation. The journal
// stays open and appendable; only file-backed journals can rewind.
func (j *Journal) Rewind() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		return errors.New("server: journal is not file-backed; cannot rewind")
	}
	if err := j.w.Flush(); err != nil {
		return j.failLocked("flush", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return j.failLocked("rewind", err)
	}
	// O_APPEND writes ignore the offset, but keep it coherent for clarity.
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return j.failLocked("rewind", err)
	}
	if err := j.syncLocked(); err != nil {
		return j.failLocked("fsync", err)
	}
	return nil
}

// workerEntry builds the journal record of a worker registration.
func workerEntry(w model.Worker) journalEntry {
	return journalEntry{Kind: "worker", Worker: &journalWorker{
		X: w.Loc.X, Y: w.Loc.Y, Start: w.Start, Wait: w.Wait,
		Velocity: w.Velocity, MaxDist: w.MaxDist, Skills: w.Skills.Skills(),
	}}
}

// taskEntry builds the journal record of a task registration (with its
// closed dependency list — closure is idempotent, so the platform's reclose
// on replay is a no-op).
func taskEntry(t model.Task) journalEntry {
	return journalEntry{Kind: "task", Task: &journalTask{
		X: t.Loc.X, Y: t.Loc.Y, Start: t.Start, Wait: t.Wait,
		Requires: t.Requires, Deps: t.Deps, Weight: t.Weight,
	}}
}

// Worker logs a worker registration.
func (j *Journal) Worker(w model.Worker) error { return j.append(workerEntry(w)) }

// Task logs a task registration.
func (j *Journal) Task(t model.Task) error { return j.append(taskEntry(t)) }

// Batch logs a group of registration events as one journal record with a
// single flush and at most one fsync (group commit). A single entry stays a
// v1 line (so the common case remains greppable one-event-per-line); two or
// more become a v2 "batch" record that Replay applies in order.
func (j *Journal) Batch(entries []journalEntry) error {
	switch len(entries) {
	case 0:
		return nil
	case 1:
		return j.append(entries[0])
	}
	return j.appendN(journalEntry{Kind: "batch", V: journalBatchVersion, Entries: entries}, len(entries))
}

// TickAt logs a batch tick at the given logical time.
func (j *Journal) TickAt(now float64) error {
	return j.append(journalEntry{Kind: "tick", Tick: &now})
}

// Close flushes, syncs (per Sync) and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.w.Flush(); ferr != nil && j.err == nil {
		j.err = ferr
	}
	if j.f != nil && j.err == nil {
		if serr := j.syncLocked(); serr != nil {
			j.err = serr
		}
	}
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}

// ReplayReport describes what a journal replay applied.
type ReplayReport struct {
	// Entries is the number of journal entries applied (registrations and
	// ticks); Ticks is how many of those were batch ticks re-run.
	Entries int
	Ticks   int
	// TornTail reports that the final line was an unterminated partial
	// write (a crash mid-append); TornTailBytes is its length. The torn
	// bytes were NOT applied — the caller should truncate them from the
	// file before appending new events (Recover does).
	TornTail      bool
	TornTailBytes int
}

// Replay feeds a journal stream back into a fresh platform, reproducing its
// state. See ReplayJournal for the report-returning variant and the
// torn-tail contract.
func Replay(r io.Reader, p *Platform) error {
	_, err := ReplayJournal(r, p)
	return err
}

// ReplayJournal feeds a journal stream back into a platform, reproducing its
// state: registrations re-register and ticks re-run. The platform must use
// the same allocator configuration as the original for identical outcomes
// (allocators are deterministic for a fixed seed).
//
// A torn tail — a final line with no trailing newline that is not valid
// JSON, the signature of a crash mid-append — is treated as a clean EOF and
// reported, not returned as an error: the journal's complete prefix fully
// determines a consistent state. Any malformed *interior* line (terminated
// by a newline, or followed by more data) still fails loudly with its line
// number. Lines are read through bufio.Reader, so a single huge entry (e.g.
// a task with an enormous dependency list journaled before body limits) has
// no fixed size cap.
func ReplayJournal(r io.Reader, p *Platform) (ReplayReport, error) {
	var rep ReplayReport
	p.mu.Lock()
	p.replaying = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.replaying = false
		p.mu.Unlock()
	}()
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		data, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return rep, rerr
		}
		atEOF := rerr == io.EOF
		complete := len(data) > 0 && data[len(data)-1] == '\n'
		torn := atEOF && !complete && len(data) > 0
		trimmed := bytes.TrimSpace(data)
		if len(trimmed) > 0 {
			line++
			var e journalEntry
			if err := json.Unmarshal(trimmed, &e); err != nil {
				if torn {
					// Torn tail: a crash cut the final append short. The
					// complete prefix fully determines a consistent state;
					// drop the fragment and report it for truncation.
					rep.TornTail = true
					rep.TornTailBytes = len(data)
					recordRecovery(p, rep)
					return rep, nil
				}
				return rep, fmt.Errorf("server: journal line %d: %w", line, err)
			}
			// A torn write can at worst leave a byte-complete entry missing
			// only its newline, never valid JSON with different semantics —
			// so apply errors are real corruption even on the last line.
			applied, ticks, err := applyEntry(p, &e, line)
			if err != nil {
				return rep, err
			}
			rep.Entries += applied
			rep.Ticks += ticks
		} else if torn {
			// Whitespace-only unterminated tail: also torn, also dropped.
			rep.TornTail = true
			rep.TornTailBytes = len(data)
		}
		if atEOF {
			recordRecovery(p, rep)
			return rep, nil
		}
	}
}

// applyEntry applies one decoded journal entry — descending into v2 batch
// records — and returns how many logical events (and how many ticks) it
// applied; errors carry the line number.
func applyEntry(p *Platform, e *journalEntry, line int) (entries, ticks int, err error) {
	switch e.Kind {
	case "worker":
		if e.Worker == nil {
			return 0, 0, fmt.Errorf("server: journal line %d: worker entry without payload", line)
		}
		w := e.Worker
		_, err := p.AddWorker(model.Worker{
			Loc: pt(w.X, w.Y), Start: w.Start, Wait: w.Wait,
			Velocity: w.Velocity, MaxDist: w.MaxDist,
			Skills: model.NewSkillSet(w.Skills...),
		})
		if err != nil {
			return 0, 0, fmt.Errorf("server: journal line %d: %w", line, err)
		}
		return 1, 0, nil
	case "task":
		if e.Task == nil {
			return 0, 0, fmt.Errorf("server: journal line %d: task entry without payload", line)
		}
		t := e.Task
		_, err := p.AddTask(model.Task{
			Loc: pt(t.X, t.Y), Start: t.Start, Wait: t.Wait,
			Requires: t.Requires, Deps: t.Deps, Weight: t.Weight,
		})
		if err != nil {
			return 0, 0, fmt.Errorf("server: journal line %d: %w", line, err)
		}
		return 1, 0, nil
	case "tick":
		if e.Tick == nil {
			return 0, 0, fmt.Errorf("server: journal line %d: tick entry without time", line)
		}
		if _, err := p.Tick(*e.Tick); err != nil {
			return 0, 0, fmt.Errorf("server: journal line %d: %w", line, err)
		}
		return 1, 1, nil
	case "batch":
		// v2 group-commit record: registrations committed together under one
		// fsync, applied in order. Ticks never group (they are journaled by
		// Tick itself), and batches never nest, so both are corruption here.
		if e.V != journalBatchVersion {
			return 0, 0, fmt.Errorf("server: journal line %d: unsupported batch record version %d (want %d)", line, e.V, journalBatchVersion)
		}
		if len(e.Entries) == 0 {
			return 0, 0, fmt.Errorf("server: journal line %d: empty batch record", line)
		}
		for i := range e.Entries {
			sub := &e.Entries[i]
			if sub.Kind != "worker" && sub.Kind != "task" {
				return entries, 0, fmt.Errorf("server: journal line %d: batch record holds %q entry", line, sub.Kind)
			}
			n, _, err := applyEntry(p, sub, line)
			entries += n
			if err != nil {
				return entries, 0, err
			}
		}
		return entries, 0, nil
	default:
		return 0, 0, fmt.Errorf("server: journal line %d: unknown kind %q", line, e.Kind)
	}
}

// recordRecovery folds a replay's outcome into the platform's registry.
func recordRecovery(p *Platform, rep ReplayReport) {
	reg := p.Metrics()
	reg.Counter(obs.MRecoveryEntriesTotal).Add(int64(rep.Entries))
	reg.Counter(obs.MRecoveryTicksTotal).Add(int64(rep.Ticks))
	if rep.TornTail {
		reg.Counter(obs.MRecoveryTornLinesTotal).Inc()
		reg.Counter(obs.MRecoveryTornBytesTotal).Add(int64(rep.TornTailBytes))
	}
}

// openForRead opens a journal file for replay.
func openForRead(path string) (*os.File, error) { return os.Open(path) }
