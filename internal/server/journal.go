package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"dasc/internal/model"
)

// Journal is an append-only JSONL event log for the platform: every worker
// registration, task registration and batch tick is recorded as one line, so
// a crashed or restarted server can rebuild its exact state with Replay.
// Entries are written through a buffered writer and flushed per event; the
// file format is stable and human-greppable.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// journalEntry is one logged event. Exactly one of the payload fields is set.
type journalEntry struct {
	// Kind is "worker", "task" or "tick".
	Kind   string         `json:"kind"`
	Worker *journalWorker `json:"worker,omitempty"`
	Task   *journalTask   `json:"task,omitempty"`
	Tick   *float64       `json:"tick,omitempty"`
}

type journalWorker struct {
	X        float64       `json:"x"`
	Y        float64       `json:"y"`
	Start    float64       `json:"start"`
	Wait     float64       `json:"wait"`
	Velocity float64       `json:"velocity"`
	MaxDist  float64       `json:"max_dist"`
	Skills   []model.Skill `json:"skills"`
}

type journalTask struct {
	X        float64        `json:"x"`
	Y        float64        `json:"y"`
	Start    float64        `json:"start"`
	Wait     float64        `json:"wait"`
	Requires model.Skill    `json:"requires"`
	Deps     []model.TaskID `json:"deps,omitempty"`
	Weight   float64        `json:"weight,omitempty"`
}

// NewJournal writes events to w; close (may be nil) is closed by Close.
func NewJournal(w io.Writer, close io.Closer) *Journal {
	return &Journal{w: bufio.NewWriter(w), c: close}
}

// OpenJournal appends to (creating if needed) the JSONL file at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return NewJournal(f, f), nil
}

func (j *Journal) append(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		j.err = err
		return err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Worker logs a worker registration.
func (j *Journal) Worker(w model.Worker) error {
	return j.append(journalEntry{Kind: "worker", Worker: &journalWorker{
		X: w.Loc.X, Y: w.Loc.Y, Start: w.Start, Wait: w.Wait,
		Velocity: w.Velocity, MaxDist: w.MaxDist, Skills: w.Skills.Skills(),
	}})
}

// Task logs a task registration (with its pre-closure dependency list — the
// platform recloses on replay).
func (j *Journal) Task(t model.Task) error {
	return j.append(journalEntry{Kind: "task", Task: &journalTask{
		X: t.Loc.X, Y: t.Loc.Y, Start: t.Start, Wait: t.Wait,
		Requires: t.Requires, Deps: t.Deps, Weight: t.Weight,
	}})
}

// TickAt logs a batch tick at the given logical time.
func (j *Journal) TickAt(now float64) error {
	return j.append(journalEntry{Kind: "tick", Tick: &now})
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.w.Flush(); ferr != nil && j.err == nil {
		j.err = ferr
	}
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}

// Replay feeds a journal stream back into a fresh platform, reproducing its
// state: registrations re-register and ticks re-run. The platform must use
// the same allocator configuration as the original for identical outcomes
// (allocators are deterministic for a fixed seed).
func Replay(r io.Reader, p *Platform) error {
	p.mu.Lock()
	p.replaying = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.replaying = false
		p.mu.Unlock()
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("server: journal line %d: %w", line, err)
		}
		switch e.Kind {
		case "worker":
			if e.Worker == nil {
				return fmt.Errorf("server: journal line %d: worker entry without payload", line)
			}
			w := e.Worker
			_, err := p.AddWorker(model.Worker{
				Loc: pt(w.X, w.Y), Start: w.Start, Wait: w.Wait,
				Velocity: w.Velocity, MaxDist: w.MaxDist,
				Skills: model.NewSkillSet(w.Skills...),
			})
			if err != nil {
				return fmt.Errorf("server: journal line %d: %w", line, err)
			}
		case "task":
			if e.Task == nil {
				return fmt.Errorf("server: journal line %d: task entry without payload", line)
			}
			t := e.Task
			_, err := p.AddTask(model.Task{
				Loc: pt(t.X, t.Y), Start: t.Start, Wait: t.Wait,
				Requires: t.Requires, Deps: t.Deps, Weight: t.Weight,
			})
			if err != nil {
				return fmt.Errorf("server: journal line %d: %w", line, err)
			}
		case "tick":
			if e.Tick == nil {
				return fmt.Errorf("server: journal line %d: tick entry without time", line)
			}
			if _, err := p.Tick(*e.Tick); err != nil {
				return fmt.Errorf("server: journal line %d: %w", line, err)
			}
		default:
			return fmt.Errorf("server: journal line %d: unknown kind %q", line, e.Kind)
		}
	}
	return sc.Err()
}

// openForRead opens a journal file for replay.
func openForRead(path string) (*os.File, error) { return os.Open(path) }
