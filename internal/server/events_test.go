package server

import (
	"bytes"
	"errors"
	"log/slog"
	"testing"
	"time"
)

// goldenLogger renders deterministically: the record timestamp is dropped and
// every duration attr is pinned, so the assertions below are exact golden
// strings for the lines operators grep for.
func goldenLogger(buf *bytes.Buffer, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			switch {
			case a.Key == slog.TimeKey && len(groups) == 0:
				return slog.Attr{}
			case a.Value.Kind() == slog.KindDuration:
				return slog.Duration(a.Key, 1500*time.Millisecond)
			}
			return a
		},
	}
	if json {
		return slog.New(slog.NewJSONHandler(buf, opts))
	}
	return slog.New(slog.NewTextHandler(buf, opts))
}

func TestLogRecoveryGoldenText(t *testing.T) {
	rep := RecoveryReport{
		SnapshotLoaded: true,
		SnapshotBytes:  4096,
		Replay:         ReplayReport{Entries: 12, Ticks: 3},
		Duration:       time.Second,
	}
	st := Stats{Workers: 5, Tasks: 9, AssignedTasks: 4}

	var buf bytes.Buffer
	LogRecovery(goldenLogger(&buf, false), rep, st)
	want := `level=INFO msg="recovery complete" elapsed=1.5s snapshot_loaded=true snapshot_bytes=4096 entries_replayed=12 ticks_replayed=3 workers=5 tasks=9 assigned=4` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("text golden mismatch:\ngot  %q\nwant %q", got, want)
	}

	// Torn tail adds the warning line.
	rep.Replay.TornTail = true
	rep.Replay.TornTailBytes = 17
	buf.Reset()
	LogRecovery(goldenLogger(&buf, false), rep, st)
	want += `level=WARN msg="truncated torn journal tail" bytes=17` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("torn-tail golden mismatch:\ngot  %q\nwant %q", got, want)
	}
}

func TestLogRecoveryGoldenJSON(t *testing.T) {
	rep := RecoveryReport{Replay: ReplayReport{Entries: 2}, Duration: time.Second}
	var buf bytes.Buffer
	LogRecovery(goldenLogger(&buf, true), rep, Stats{Workers: 1})
	want := `{"level":"INFO","msg":"recovery complete","elapsed":1500000000,"snapshot_loaded":false,"snapshot_bytes":0,"entries_replayed":2,"ticks_replayed":0,"workers":1,"tasks":0,"assigned":0}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("json golden mismatch:\ngot  %q\nwant %q", got, want)
	}
}

func TestLogShutdownGolden(t *testing.T) {
	var buf bytes.Buffer
	done := LogShutdown(goldenLogger(&buf, false), 10*time.Second)
	done(nil)
	want := `level=INFO msg="signal received; draining" limit=1.5s` + "\n" +
		`level=INFO msg="stopped cleanly" elapsed=1.5s` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("clean shutdown golden mismatch:\ngot  %q\nwant %q", got, want)
	}

	buf.Reset()
	done = LogShutdown(goldenLogger(&buf, false), 10*time.Second)
	done(errors.New("drain deadline exceeded"))
	want = `level=INFO msg="signal received; draining" limit=1.5s` + "\n" +
		`level=ERROR msg="shutdown drain failed" elapsed=1.5s error="drain deadline exceeded"` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("failed shutdown golden mismatch:\ngot  %q\nwant %q", got, want)
	}
}

func TestLogHelpersNilSafe(t *testing.T) {
	LogRecovery(nil, RecoveryReport{}, Stats{})
	LogShutdown(nil, time.Second)(errors.New("x"))
	if orDiscard(nil) == nil {
		t.Fatal("orDiscard(nil) returned nil")
	}
	// The discard logger swallows events without formatting them.
	orDiscard(nil).Info("dropped", "k", "v")
	l := discardLogger()
	if l.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}
