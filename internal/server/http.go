package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"dasc/internal/dataset"
	"dasc/internal/geo"
	"dasc/internal/model"
	"dasc/internal/viz"
)

// DefaultMaxBodyBytes caps HTTP request bodies when Config.MaxBodyBytes is
// zero. 1 MiB fits any plausible worker or task registration (a task with
// tens of thousands of dependencies) while keeping a misbehaving client from
// buffering arbitrary amounts of memory server-side.
const DefaultMaxBodyBytes = 1 << 20

// workerDTO is the JSON body of POST /v1/workers.
type workerDTO struct {
	X        float64       `json:"x"`
	Y        float64       `json:"y"`
	Start    float64       `json:"start"`
	Wait     float64       `json:"wait"`
	Velocity float64       `json:"velocity"`
	MaxDist  float64       `json:"max_dist"`
	Skills   []model.Skill `json:"skills"`
}

// taskDTO is the JSON body of POST /v1/tasks. Weight must round-trip here:
// model.Task, the journal and GET /v1/instance all carry it, and dropping it
// at registration would silently zero every weighted-objective allocation.
type taskDTO struct {
	X        float64        `json:"x"`
	Y        float64        `json:"y"`
	Start    float64        `json:"start"`
	Wait     float64        `json:"wait"`
	Requires model.Skill    `json:"requires"`
	Deps     []model.TaskID `json:"deps"`
	Weight   float64        `json:"weight"`
}

// idResponse acknowledges a registration.
type idResponse struct {
	ID int `json:"id"`
}

// Handler returns the platform's HTTP API:
//
//	POST /v1/workers      register a worker            → {"id": n}
//	POST /v1/tasks        register a task              → {"id": n}
//	POST /v1/tick?t=12.5  run a batch at logical time  → BatchOutcome
//	POST /v1/snapshot     write a state snapshot, rotate the journal
//	GET  /v1/stats        counters
//	GET  /v1/metrics      metric registry, Prometheus text (?format=json for JSON)
//	GET  /v1/trace        recent per-batch traces (?last=N for the newest N)
//	GET  /v1/assignments  all valid pairs so far
//	GET  /v1/instance     dataset JSON (archivable)
//	GET  /v1/svg          spatial snapshot as SVG
//	GET  /v1/healthz      process liveness (always 200)
//	GET  /v1/readyz       503 until recovery completes, then 200
//
// Mutating endpoints (the POSTs) return 503 while the platform is not ready
// (recovering from its journal); reads are always served.
func Handler(p *Platform) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		var dto workerDTO
		if err := decode(p, w, r, &dto); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		id, err := p.AddWorker(model.Worker{
			Loc:      pt(dto.X, dto.Y),
			Start:    dto.Start,
			Wait:     dto.Wait,
			Velocity: dto.Velocity,
			MaxDist:  dto.MaxDist,
			Skills:   model.NewSkillSet(dto.Skills...),
		})
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusCreated, idResponse{ID: int(id)})
	})
	mux.HandleFunc("POST /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		var dto taskDTO
		if err := decode(p, w, r, &dto); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		id, err := p.AddTask(model.Task{
			Loc:      pt(dto.X, dto.Y),
			Start:    dto.Start,
			Wait:     dto.Wait,
			Requires: dto.Requires,
			Deps:     dto.Deps,
			Weight:   dto.Weight,
		})
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusCreated, idResponse{ID: int(id)})
	})
	mux.HandleFunc("POST /v1/tick", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		// strconv.ParseFloat (unlike a %g scan) rejects trailing garbage;
		// NaN and ±Inf parse but would poison the platform's logical clock,
		// so they are rejected explicitly.
		raw := r.URL.Query().Get("t")
		now, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid ?t=<time>: %q", raw))
			return
		}
		if math.IsNaN(now) || math.IsInf(now, 0) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("non-finite ?t=<time>: %q", raw))
			return
		}
		out, err := p.Tick(now)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		if p.snapPath == "" {
			httpError(w, http.StatusConflict, errors.New("no snapshot path configured (start the server with -snapshot)"))
			return
		}
		info, err := p.SaveSnapshot(p.snapPath)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		if !p.Ready() {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]bool{"ready": p.Ready()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Snapshot())
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "text":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := p.Metrics().WriteText(w); err != nil {
				httpError(w, http.StatusInternalServerError, err)
			}
		case "json":
			w.Header().Set("Content-Type", "application/json")
			if err := p.Metrics().WriteJSON(w); err != nil {
				httpError(w, http.StatusInternalServerError, err)
			}
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown ?format=%q (want text or json)", format))
		}
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		// Same hardening stance as /v1/tick?t=: strict integer parse, no
		// silent defaults for garbage.
		n := p.Traces().Len()
		if raw := r.URL.Query().Get("last"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("invalid ?last=%q: want a positive integer", raw))
				return
			}
			n = v // Last clamps over-asks to what is buffered
		}
		writeJSON(w, http.StatusOK, p.Traces().Last(n))
	})
	mux.HandleFunc("GET /v1/assignments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := dataset.WriteAssignment(w, p.Assignments()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	mux.HandleFunc("GET /v1/instance", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := dataset.Write(w, p.Instance()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	mux.HandleFunc("GET /v1/svg", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		err := viz.WriteSVG(w, p.Instance(), viz.SVGOptions{
			Assignment: p.Assignments(),
			DrawDeps:   true,
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	return mux
}

// ready gates mutating endpoints on platform readiness, answering 503 (with
// a Retry-After hint) while recovery is still replaying the journal.
func ready(p *Platform, w http.ResponseWriter) bool {
	if p.Ready() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, errors.New("platform is recovering; retry shortly"))
	return false
}

// decode reads a JSON request body capped at the platform's body limit.
func decode(p *Platform, w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, p.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// decodeStatus maps a decode failure to its HTTP status: 413 when the body
// blew the size cap, 400 for malformed JSON.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func pt(x, y float64) geo.Point { return geo.Pt(x, y) }
