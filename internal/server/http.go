package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"dasc/internal/dataset"
	"dasc/internal/geo"
	"dasc/internal/model"
	"dasc/internal/viz"
)

// DefaultMaxBodyBytes caps HTTP request bodies when Config.MaxBodyBytes is
// zero. 1 MiB fits any plausible worker or task registration (a task with
// tens of thousands of dependencies) while keeping a misbehaving client from
// buffering arbitrary amounts of memory server-side.
const DefaultMaxBodyBytes = 1 << 20

// workerDTO is the JSON body of POST /v1/workers.
type workerDTO struct {
	X        float64       `json:"x"`
	Y        float64       `json:"y"`
	Start    float64       `json:"start"`
	Wait     float64       `json:"wait"`
	Velocity float64       `json:"velocity"`
	MaxDist  float64       `json:"max_dist"`
	Skills   []model.Skill `json:"skills"`
}

// validate rejects non-finite numeric fields at the DTO layer (the platform
// re-checks; two layers so embedders calling AddWorker directly get the same
// protection HTTP clients do).
func (d *workerDTO) validate() error {
	return checkFinite(
		finiteField{"x", d.X}, finiteField{"y", d.Y},
		finiteField{"start", d.Start}, finiteField{"wait", d.Wait},
		finiteField{"velocity", d.Velocity}, finiteField{"max_dist", d.MaxDist},
	)
}

// taskDTO is the JSON body of POST /v1/tasks. Weight must round-trip here:
// model.Task, the journal and GET /v1/instance all carry it, and dropping it
// at registration would silently zero every weighted-objective allocation.
type taskDTO struct {
	X        float64        `json:"x"`
	Y        float64        `json:"y"`
	Start    float64        `json:"start"`
	Wait     float64        `json:"wait"`
	Requires model.Skill    `json:"requires"`
	Deps     []model.TaskID `json:"deps"`
	Weight   float64        `json:"weight"`
}

// validate rejects non-finite numeric fields at the DTO layer.
func (d *taskDTO) validate() error {
	return checkFinite(
		finiteField{"x", d.X}, finiteField{"y", d.Y},
		finiteField{"start", d.Start}, finiteField{"wait", d.Wait},
		finiteField{"weight", d.Weight},
	)
}

// idResponse acknowledges a registration.
type idResponse struct {
	ID int `json:"id"`
}

// writeID answers a registration with {"id":n}. This is the hottest response
// on the server, so it is formatted with strconv instead of going through the
// reflective json encoder (which shows up in ingest-benchmark profiles).
func writeID(w http.ResponseWriter, id int) {
	buf := make([]byte, 0, 24)
	buf = append(buf, `{"id":`...)
	buf = strconv.AppendInt(buf, int64(id), 10)
	buf = append(buf, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(buf)
}

// Handler returns the platform's HTTP API:
//
//	POST /v1/workers      register a worker            → {"id": n}
//	POST /v1/tasks        register a task              → {"id": n}
//	POST /v1/tick?t=12.5  run a batch at logical time  → BatchOutcome
//	POST /v1/snapshot     write a state snapshot, rotate the journal
//	GET  /v1/stats        counters
//	GET  /v1/ingest       group-commit pipeline: queue depth + recent drains (?last=N)
//	GET  /v1/metrics      metric registry, Prometheus text (?format=json for JSON)
//	GET  /v1/trace        recent per-batch traces (?last=N for the newest N)
//	GET  /v1/assignments  all valid pairs so far
//	GET  /v1/instance     dataset JSON (archivable)
//	GET  /v1/svg          spatial snapshot as SVG
//	GET  /v1/healthz      process liveness (always 200)
//	GET  /v1/readyz       503 until recovery completes, then 200
//
// Mutating endpoints (the POSTs) return 503 while the platform is not ready
// (recovering from its journal); reads are always served — /v1/stats,
// /v1/assignments, /v1/instance and /v1/svg from the atomically swapped read
// view, so they never contend with the ingest/tick mutex. Registration
// failures classify: 422 for invalid requests, 429 + Retry-After when the
// ingest admission queue is full, 503 + Retry-After when the journal (disk)
// failed.
//
// Every route runs through the request-telemetry middleware (middleware.go):
// X-Request-ID in/out, per-route dasc_http_* instruments, sampled access log.
func Handler(p *Platform) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, p.instrument(pattern, h))
	}
	handle("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		var dto workerDTO
		if err := decode(p, w, r, &dto); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		if err := dto.validate(); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		id, err := p.RegisterWorkerTagged(model.Worker{
			Loc:      pt(dto.X, dto.Y),
			Start:    dto.Start,
			Wait:     dto.Wait,
			Velocity: dto.Velocity,
			MaxDist:  dto.MaxDist,
			Skills:   model.NewSkillSet(dto.Skills...),
		}, requestIDFrom(r.Context()))
		if err != nil {
			httpError(w, registerStatus(w, err), err)
			return
		}
		writeID(w, int(id))
	})
	handle("POST /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		var dto taskDTO
		if err := decode(p, w, r, &dto); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		if err := dto.validate(); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		id, err := p.RegisterTaskTagged(model.Task{
			Loc:      pt(dto.X, dto.Y),
			Start:    dto.Start,
			Wait:     dto.Wait,
			Requires: dto.Requires,
			Deps:     dto.Deps,
			Weight:   dto.Weight,
		}, requestIDFrom(r.Context()))
		if err != nil {
			httpError(w, registerStatus(w, err), err)
			return
		}
		writeID(w, int(id))
	})
	handle("POST /v1/tick", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		// strconv.ParseFloat (unlike a %g scan) rejects trailing garbage;
		// NaN and ±Inf parse but would poison the platform's logical clock,
		// so they are rejected explicitly.
		raw := r.URL.Query().Get("t")
		now, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid ?t=<time>: %q", raw))
			return
		}
		if math.IsNaN(now) || math.IsInf(now, 0) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("non-finite ?t=<time>: %q", raw))
			return
		}
		out, err := p.TickTagged(now, requestIDFrom(r.Context()))
		if err != nil {
			// A tick that failed because the DISK failed is the server's
			// problem (503, retryable), not a request conflict.
			if errors.Is(err, ErrJournal) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})
	handle("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !ready(p, w) {
			return
		}
		if p.snapPath == "" {
			httpError(w, http.StatusConflict, errors.New("no snapshot path configured (start the server with -snapshot)"))
			return
		}
		info, err := p.SaveSnapshot(p.snapPath)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	handle("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		if !p.Ready() {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]bool{"ready": p.Ready()})
	})
	handle("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.StatsView())
	})
	handle("GET /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		depth, capacity := p.IngestQueueDepth()
		n := DefaultIngestBatch
		if raw := r.URL.Query().Get("last"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("invalid ?last=%q: want a positive integer", raw))
				return
			}
			n = v
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled":        capacity > 0,
			"queue_depth":    depth,
			"queue_capacity": capacity,
			"drains":         p.IngestDrains(n),
		})
	})
	handle("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "text":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := p.Metrics().WriteText(w); err != nil {
				httpError(w, http.StatusInternalServerError, err)
			}
		case "json":
			w.Header().Set("Content-Type", "application/json")
			if err := p.Metrics().WriteJSON(w); err != nil {
				httpError(w, http.StatusInternalServerError, err)
			}
		default:
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown ?format=%q (want text or json)", format))
		}
	})
	handle("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		// Same hardening stance as /v1/tick?t=: strict integer parse, no
		// silent defaults for garbage.
		n := p.Traces().Len()
		if raw := r.URL.Query().Get("last"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("invalid ?last=%q: want a positive integer", raw))
				return
			}
			n = v // Last clamps over-asks to what is buffered
		}
		writeJSON(w, http.StatusOK, p.Traces().Last(n))
	})
	handle("GET /v1/assignments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := dataset.WriteAssignment(w, p.AssignmentsView()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	handle("GET /v1/instance", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := dataset.Write(w, p.InstanceView()); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	handle("GET /v1/svg", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		err := viz.WriteSVG(w, p.InstanceView(), viz.SVGOptions{
			Assignment: p.AssignmentsView(),
			DrawDeps:   true,
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})
	return mux
}

// ready gates mutating endpoints on platform readiness, answering 503 (with
// a Retry-After hint) while recovery is still replaying the journal.
func ready(p *Platform, w http.ResponseWriter) bool {
	if p.Ready() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, errors.New("platform is recovering; retry shortly"))
	return false
}

// decode reads a JSON request body capped at the platform's body limit. The
// registration endpoints try the flat fast-path scanner first (fastdto.go)
// and fall back to this strict decoder for anything it does not recognise,
// so errors and edge cases are always the decoder's.
func decode(p *Platform, w http.ResponseWriter, r *http.Request, v any) error {
	body, bp, err := readBody(p, w, r)
	if err != nil {
		return err
	}
	defer bodyPool.Put(bp)
	switch d := v.(type) {
	case *workerDTO:
		if parseWorkerDTO(body, d) {
			return nil
		}
	case *taskDTO:
		if parseTaskDTO(body, d) {
			return nil
		}
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// readBody drains the request body into a pooled buffer, preserving the
// MaxBytesReader size cap (readers past the cap surface *MaxBytesError,
// which decodeStatus maps to 413). The returned pool entry must be Put back
// once the bytes are no longer referenced.
func readBody(p *Platform, w http.ResponseWriter, r *http.Request) ([]byte, *[]byte, error) {
	mb := http.MaxBytesReader(w, r.Body, p.maxBody)
	bp := bodyPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := mb.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return buf, bp, nil
		}
		if err != nil {
			*bp = buf
			bodyPool.Put(bp)
			return nil, nil, err
		}
	}
}

// registerStatus maps a registration failure to its HTTP status. Durability
// failures (ErrJournal) and a closing platform are the server's fault — 503
// with a Retry-After hint; a full admission queue is backpressure — 429 with
// Retry-After; everything else is request validation — 422.
func registerStatus(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrJournal), errors.Is(err, ErrPlatformClosed):
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrIngestBacklog):
		w.Header().Set("Retry-After", "1")
		return http.StatusTooManyRequests
	}
	return http.StatusUnprocessableEntity
}

// decodeStatus maps a decode failure to its HTTP status: 413 when the body
// blew the size cap, 400 for malformed JSON.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError answers with {"error":...} plus the request's correlation ID —
// read back off the response header, where the middleware set it before the
// handler ran, so error bodies self-identify with zero extra plumbing.
func httpError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if id := w.Header().Get(RequestIDHeader); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}

func pt(x, y float64) geo.Point { return geo.Pt(x, y) }
