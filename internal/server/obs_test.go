package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"dasc/internal/core"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// populateExample1 registers the Example 1 population directly on the
// platform.
func populateExample1(t *testing.T, p *Platform) {
	t.Helper()
	ex := model.Example1()
	for _, w := range ex.Workers {
		if _, err := p.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range ex.Tasks {
		if _, err := p.AddTask(tk); err != nil {
			t.Fatal(err)
		}
	}
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.String()
}

func TestMetricsEndpointTextAndJSON(t *testing.T) {
	p, ts := newTestServer(t)
	populateExample1(t, p)
	if resp, out := postJSON(t, ts.URL+"/v1/tick?t=0", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("tick: %d (%v)", resp.StatusCode, out)
	}

	resp, text := getBody(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	st := p.Snapshot()
	if st.AssignedTasks == 0 {
		t.Fatal("degenerate tick: nothing assigned")
	}
	// Golden-ish: the inventory names must be present with live values.
	for _, want := range []string{
		"# TYPE dasc_batches_total counter",
		"dasc_batches_total 1",
		fmt.Sprintf("dasc_assigned_pairs_total %d", st.AssignedTasks),
		"# TYPE dasc_cache_workers_rebuilt_total counter",
		"# TYPE dasc_phase_alloc_seconds histogram",
		`dasc_phase_alloc_seconds_bucket{le="+Inf"} 1`,
		"dasc_phase_alloc_seconds_count 1",
		"# TYPE dasc_batch_active_workers gauge",
		"dasc_batch_active_workers 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q\n%s", want, text)
		}
	}

	// The first tick is a full rebuild; its workers count as rebuilt.
	if !strings.Contains(text, "dasc_cache_workers_rebuilt_total 3") {
		t.Errorf("rebuilt counter not live:\n%s", text)
	}

	resp, body := getBody(t, ts.URL+"/v1/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics json status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON round-trip: %v\n%s", err, body)
	}
	if snap.Counters[obs.MBatchesTotal] != 1 || snap.Counters[obs.MAssignedTotal] != int64(st.AssignedTasks) {
		t.Errorf("json counters = %v", snap.Counters)
	}
	if snap.Histograms[obs.TPhaseIndex].Count != 1 {
		t.Errorf("json histograms = %v", snap.Histograms)
	}

	if resp, _ := getBody(t, ts.URL+"/v1/metrics?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsChangeAcrossTicks(t *testing.T) {
	p, ts := newTestServer(t)
	populateExample1(t, p)
	for i, now := range []float64{0, 5, 10} {
		if resp, out := postJSON(t, ts.URL+fmt.Sprintf("/v1/tick?t=%g", now), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d: %d (%v)", i, resp.StatusCode, out)
		}
	}
	_, body := getBody(t, ts.URL+"/v1/metrics?format=json")
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[obs.MBatchesTotal] != 3 {
		t.Errorf("batches = %d, want 3", snap.Counters[obs.MBatchesTotal])
	}
	// Steady-state ticks revalidate unmoved workers: the cache counters
	// must move past the first tick's full rebuild.
	if snap.Counters[obs.MCacheRevalidatedTotal] == 0 {
		t.Errorf("no revalidations across ticks: %v", snap.Counters)
	}
	st := p.Snapshot()
	if st.WorkersRevalidated != snap.Counters[obs.MCacheRevalidatedTotal] {
		t.Errorf("/v1/stats revalidated = %d, metrics = %d",
			st.WorkersRevalidated, snap.Counters[obs.MCacheRevalidatedTotal])
	}
	if st.WorkersRebuilt == 0 {
		t.Error("stats rebuilt counter not wired")
	}
}

func TestTraceEndpoint(t *testing.T) {
	p, ts := newTestServer(t)
	populateExample1(t, p)
	for _, now := range []float64{0, 5, 10, 15} {
		if resp, out := postJSON(t, ts.URL+fmt.Sprintf("/v1/tick?t=%g", now), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("tick at %g: %d (%v)", now, resp.StatusCode, out)
		}
	}

	// Default: everything buffered, oldest first.
	resp, body := getBody(t, ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var traces []obs.BatchTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if len(traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(traces))
	}
	if traces[0].Batch != 0 || traces[3].Batch != 3 {
		t.Errorf("trace order wrong: %+v", traces)
	}
	if traces[0].Assigned == 0 || !traces[0].FullRebuild {
		t.Errorf("first trace = %+v", traces[0])
	}
	if traces[0].CandidatesAdmitted == 0 {
		t.Error("engine counters missing from trace")
	}

	// last=N returns the newest N; over-asking clamps.
	_, body = getBody(t, ts.URL+"/v1/trace?last=2")
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || traces[0].Batch != 2 || traces[1].Batch != 3 {
		t.Errorf("last=2 → %+v", traces)
	}
	_, body = getBody(t, ts.URL+"/v1/trace?last=999")
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Errorf("last=999 → %d traces, want 4 (clamped)", len(traces))
	}

	// Bad inputs are 400s, mirroring the ?t= hardening.
	for _, bad := range []string{"0", "-1", "abc", "2.5", "2x", ""} {
		resp, _ := getBody(t, ts.URL+"/v1/trace?last="+bad)
		want := http.StatusBadRequest
		if bad == "" {
			want = http.StatusOK // empty means "default", not garbage
		}
		if resp.StatusCode != want {
			t.Errorf("last=%q status %d, want %d", bad, resp.StatusCode, want)
		}
	}
}

func TestTraceRingDepthConfigurable(t *testing.T) {
	p, err := NewPlatform(Config{Allocator: core.NewGreedy(), TraceDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, now := range []float64{0, 1, 2, 3} {
		if _, err := p.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Traces().Last(p.Traces().Len())
	if len(got) != 2 || got[0].Batch != 2 || got[1].Batch != 3 {
		t.Errorf("depth-2 ring = %+v", got)
	}
}

// TestEmptyTickStillTraced: ticks with no active workers or pending tasks
// still produce a trace and count a batch.
func TestEmptyTickStillTraced(t *testing.T) {
	p, err := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(1); err != nil {
		t.Fatal(err)
	}
	if p.Traces().Len() != 1 {
		t.Fatalf("empty tick not traced: %d", p.Traces().Len())
	}
	tr := p.Traces().Last(1)[0]
	if tr.Batch != 0 || tr.Time != 1 || tr.Workers != 0 || tr.Tasks != 0 {
		t.Errorf("empty-tick trace = %+v", tr)
	}
	if p.Metrics().Counter(obs.MBatchesTotal).Value() != 1 {
		t.Error("empty tick not counted")
	}
}
