package server

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dasc/internal/core"
	"dasc/internal/dataset"
	"dasc/internal/model"
	"dasc/internal/obs"
)

// failAfterWriter allows a fixed number of writes, then fails every later
// one with errDiskFull — a disk that fills up mid-run. Successful writes are
// kept so the journal prefix can be replayed and compared against served
// state.
type failAfterWriter struct {
	mu        sync.Mutex
	buf       bytes.Buffer
	remaining int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.remaining <= 0 {
		return 0, errDiskFull
	}
	w.remaining--
	return w.buf.Write(p)
}

func (w *failAfterWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

func exWorker(i int) model.Worker {
	return model.Worker{
		Loc: pt(float64(i), 1), Wait: 100, Velocity: 1, MaxDist: 100,
		Skills: model.NewSkillSet(model.Skill(i % 4)),
	}
}

func exTask(i int) model.Task {
	return model.Task{
		Loc: pt(float64(i), 2), Wait: 100,
		Requires: model.Skill(i % 4), Weight: 1,
	}
}

// assertReplayMatchesServed replays journal bytes into a fresh platform and
// requires its registries to be byte-identical (through the dataset codec)
// to the platform that served the writes.
func assertReplayMatchesServed(t *testing.T, p *Platform, journal []byte) {
	t.Helper()
	p2, err := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(bytes.NewReader(journal), p2); err != nil {
		t.Fatalf("replay: %v", err)
	}
	var served, replayed bytes.Buffer
	if err := dataset.WriteCompact(&served, p.Instance()); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCompact(&replayed, p2.Instance()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), replayed.Bytes()) {
		t.Errorf("journal replay diverges from served state:\nserved:   %s\nreplayed: %s",
			served.Bytes(), replayed.Bytes())
	}
}

// TestAddWorkerJournalFailureAtomic pins the journal/state divergence bug on
// the synchronous path: when the journal write fails, the registration must
// not be published (the old code published first and journaled second, so a
// disk failure left served state ahead of the journal — acknowledged workers
// vanished on restart). Journal first means replayed state always equals
// served state, before and after the failure.
func TestAddWorkerJournalFailureAtomic(t *testing.T) {
	fw := &failAfterWriter{remaining: 2}
	p, err := NewPlatform(Config{Allocator: core.NewGreedy(), Journal: NewJournal(fw, nil)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.AddWorker(exWorker(i)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := p.AddWorker(exWorker(2))
	if err == nil {
		t.Fatal("AddWorker succeeded on a failing journal")
	}
	if !errors.Is(err, ErrJournal) {
		t.Errorf("error = %v, want ErrJournal", err)
	}
	if !errors.Is(err, errDiskFull) {
		t.Errorf("error = %v does not unwrap to the disk error", err)
	}
	if id != 0 {
		t.Errorf("failed AddWorker returned ID %d, want 0", id)
	}
	if _, err := p.AddTask(exTask(0)); err == nil {
		t.Error("AddTask succeeded on a failing journal")
	}
	if st := p.Snapshot(); st.Workers != 2 || st.Tasks != 0 {
		t.Errorf("served %d workers %d tasks after journal failure, want 2 and 0", st.Workers, st.Tasks)
	}
	assertReplayMatchesServed(t, p, fw.bytes())
}

// TestIngestJournalFailureFailsWholeDrain is the same regression through the
// group-commit pipeline: a drain whose single journal append fails must fail
// every registration in it and publish nothing.
func TestIngestJournalFailureFailsWholeDrain(t *testing.T) {
	fw := &failAfterWriter{remaining: 1}
	p, err := NewPlatform(Config{
		Allocator: core.NewGreedy(), Journal: NewJournal(fw, nil),
		IngestQueue: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First drain commits fine and spends the last good write.
	if _, err := p.RegisterWorker(exWorker(0)); err != nil {
		t.Fatal(err)
	}

	// Group three registrations into one drain by stalling the committer on
	// the platform mutex while they queue up.
	p.mu.Lock()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	ids := make([]model.WorkerID, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = p.RegisterWorker(exWorker(i + 1))
		}(i)
	}
	waitFor(t, func() bool {
		return p.reg.Counter(obs.MIngestEnqueuedTotal).Value() == 4
	})
	p.mu.Unlock()
	wg.Wait()

	for i := range errs {
		if !errors.Is(errs[i], ErrJournal) {
			t.Errorf("registration %d: error = %v, want ErrJournal", i, errs[i])
		}
		if ids[i] != 0 {
			t.Errorf("registration %d: ID = %d, want 0 on failure", i, ids[i])
		}
	}
	if st := p.Snapshot(); st.Workers != 1 {
		t.Errorf("served %d workers, want 1 (failed drain must publish nothing)", st.Workers)
	}
	assertReplayMatchesServed(t, p, fw.bytes())
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestGroupCommit checks that concurrent registrations actually share
// journal records and fsyncs: N registrations stalled behind the platform
// mutex commit in a handful of drains, appear as v2 batch lines, get dense
// unique IDs, and replay to the exact served state.
func TestIngestGroupCommit(t *testing.T) {
	var log safeBuffer
	p, err := NewPlatform(Config{
		Allocator: core.NewGreedy(), Journal: NewJournal(&log, nil),
		IngestQueue: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 40
	p.mu.Lock()
	var wg sync.WaitGroup
	ids := make([]model.WorkerID, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := p.RegisterWorker(exWorker(i))
			if err != nil {
				t.Errorf("register %d: %v", i, err)
			}
			ids[i] = id
		}(i)
	}
	waitFor(t, func() bool {
		return p.reg.Counter(obs.MIngestEnqueuedTotal).Value() == n
	})
	p.mu.Unlock()
	wg.Wait()

	seen := make(map[model.WorkerID]bool, n)
	for _, id := range ids {
		if id < 0 || int(id) >= n || seen[id] {
			t.Fatalf("IDs not a dense unique 0..%d assignment: %v", n-1, ids)
		}
		seen[id] = true
	}
	drains := p.reg.Counter(obs.MIngestDrainsTotal).Value()
	if drains < 1 || drains > 5 {
		t.Errorf("drains = %d for %d stalled registrations, want a handful (group commit)", drains, n)
	}
	if got := p.reg.Counter(obs.MIngestCommittedTotal).Value(); got != n {
		t.Errorf("committed = %d, want %d", got, n)
	}
	text := log.String()
	if lines := strings.Count(text, "\n"); lines != int(drains) {
		t.Errorf("journal lines = %d, want one per drain (%d)", lines, drains)
	}
	if !strings.Contains(text, `"kind":"batch"`) {
		t.Error("journal has no v2 batch record despite multi-entry drains")
	}
	assertReplayMatchesServed(t, p, []byte(text))
}

// TestIngestFormationWindow checks the -ingest-wait gather behaviour: with a
// generous window, registrations that trickle in over tens of milliseconds
// still share ONE drain (one journal record, one fsync), and a drain that
// reaches IngestBatch commits without sitting out the rest of the window.
func TestIngestFormationWindow(t *testing.T) {
	t.Run("stragglers share a drain", func(t *testing.T) {
		var log safeBuffer
		p, err := NewPlatform(Config{
			Allocator: core.NewGreedy(), Journal: NewJournal(&log, nil),
			IngestQueue: 64, IngestWait: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()

		const n = 8
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				time.Sleep(time.Duration(i) * 5 * time.Millisecond)
				if _, err := p.RegisterWorker(exWorker(i)); err != nil {
					t.Errorf("register %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		if drains := p.reg.Counter(obs.MIngestDrainsTotal).Value(); drains != 1 {
			t.Errorf("drains = %d, want 1 (the window should gather every straggler)", drains)
		}
		if got := p.Snapshot().Workers; got != n {
			t.Errorf("workers = %d, want %d", got, n)
		}
		assertReplayMatchesServed(t, p, []byte(log.String()))
	})

	t.Run("full batch commits early", func(t *testing.T) {
		var log safeBuffer
		p, err := NewPlatform(Config{
			Allocator: core.NewGreedy(), Journal: NewJournal(&log, nil),
			IngestQueue: 64, IngestBatch: 2, IngestWait: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()

		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := p.RegisterWorker(exWorker(i)); err != nil {
					t.Errorf("register %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		if d := time.Since(start); d > 10*time.Second {
			t.Errorf("full drain took %v, want an immediate commit (not the window)", d)
		}
		if got := p.Snapshot().Workers; got != 2 {
			t.Errorf("workers = %d, want 2", got)
		}
	})

	t.Run("negative window rejected", func(t *testing.T) {
		_, err := NewPlatform(Config{
			Allocator: core.NewGreedy(), IngestQueue: 4, IngestWait: -time.Second,
		})
		if err == nil {
			t.Fatal("NewPlatform accepted a negative ingest formation window")
		}
	})
}

// safeBuffer is a bytes.Buffer usable as a journal sink from the committer
// goroutine while the test reads it.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestIngestBackpressure fills the bounded admission queue and expects fast
// ErrIngestBacklog / HTTP 429 + Retry-After instead of unbounded queueing.
func TestIngestBackpressure(t *testing.T) {
	p, err := NewPlatform(Config{
		Allocator:   core.NewGreedy(),
		IngestQueue: 4,
		IngestBatch: 1, // committer takes exactly one request per drain
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ts := httptest.NewServer(Handler(p))
	defer ts.Close()

	// Stall the committer: it pulls one primer request (batch max 1) and
	// blocks on the platform mutex; everything after stays in the queue.
	p.mu.Lock()
	primerDone := make(chan struct{})
	go func() {
		defer close(primerDone)
		if _, err := p.RegisterWorker(exWorker(0)); err != nil {
			t.Errorf("primer: %v", err)
		}
	}()
	waitFor(t, func() bool {
		depth, _ := p.IngestQueueDepth()
		return depth == 0 && p.reg.Counter(obs.MIngestEnqueuedTotal).Value() == 1
	})

	for i := 0; i < 4; i++ {
		if err := p.ing.submit(&ingestReq{kind: ingestWorker, worker: exWorker(i + 1), done: make(chan ingestResult, 1)}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := p.RegisterWorker(exWorker(9)); !errors.Is(err, ErrIngestBacklog) {
		t.Errorf("full queue: error = %v, want ErrIngestBacklog", err)
	}
	if got := p.reg.Counter(obs.MIngestRejectedTotal).Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	resp, err := http.Post(ts.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"x":1,"y":1,"wait":10,"velocity":1,"max_dist":10,"skills":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	p.mu.Unlock()
	<-primerDone
	waitFor(t, func() bool { depth, _ := p.IngestQueueDepth(); return depth == 0 })
}

// TestRegisterHTTPJournalFailure503 pins the error-classification fix: a
// journal (disk) failure is the server's fault — 503 + Retry-After, not the
// 422 the old code answered for every AddWorker error.
func TestRegisterHTTPJournalFailure503(t *testing.T) {
	for _, queue := range []int{0, 64} {
		t.Run(fmt.Sprintf("queue=%d", queue), func(t *testing.T) {
			p, err := NewPlatform(Config{
				Allocator:   core.NewGreedy(),
				Journal:     NewJournal(failingWriter{}, nil),
				IngestQueue: queue,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			ts := httptest.NewServer(Handler(p))
			defer ts.Close()

			resp, err := http.Post(ts.URL+"/v1/workers", "application/json",
				strings.NewReader(`{"x":1,"y":1,"wait":10,"velocity":1,"max_dist":10,"skills":[0]}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("journal failure: status = %d, want 503", resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After header")
			}

			// Validation failures must still be the client's 422.
			resp, err = http.Post(ts.URL+"/v1/tasks", "application/json",
				strings.NewReader(`{"x":1,"y":1,"wait":10,"requires":0,"deps":[99]}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Errorf("bad dependency: status = %d, want 422", resp.StatusCode)
			}

			// A journaled tick is a disk failure too.
			resp, err = http.Post(ts.URL+"/v1/tick?t=1", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("tick with failing journal: status = %d, want 503", resp.StatusCode)
			}
		})
	}
}

// TestNonFiniteRegistrationRejected checks every float field at the platform
// layer: NaN and ±Inf never reach the registries (they would poison every
// distance computation and serialise as invalid JSON).
func TestNonFiniteRegistrationRejected(t *testing.T) {
	p, err := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	workerMut := map[string]func(*model.Worker, float64){
		"x":        func(w *model.Worker, v float64) { w.Loc.X = v },
		"y":        func(w *model.Worker, v float64) { w.Loc.Y = v },
		"start":    func(w *model.Worker, v float64) { w.Start = v },
		"wait":     func(w *model.Worker, v float64) { w.Wait = v },
		"velocity": func(w *model.Worker, v float64) { w.Velocity = v },
		"max_dist": func(w *model.Worker, v float64) { w.MaxDist = v },
	}
	for name, mut := range workerMut {
		for _, v := range bad {
			w := exWorker(0)
			mut(&w, v)
			id, err := p.AddWorker(w)
			if err == nil {
				t.Errorf("AddWorker accepted %s = %v", name, v)
			}
			if id != 0 {
				t.Errorf("AddWorker(%s = %v) returned ID %d with error, want 0", name, v, id)
			}
		}
	}
	taskMut := map[string]func(*model.Task, float64){
		"x":      func(tk *model.Task, v float64) { tk.Loc.X = v },
		"y":      func(tk *model.Task, v float64) { tk.Loc.Y = v },
		"start":  func(tk *model.Task, v float64) { tk.Start = v },
		"wait":   func(tk *model.Task, v float64) { tk.Wait = v },
		"weight": func(tk *model.Task, v float64) { tk.Weight = v },
	}
	for name, mut := range taskMut {
		for _, v := range bad {
			tk := exTask(0)
			mut(&tk, v)
			id, err := p.AddTask(tk)
			if err == nil {
				t.Errorf("AddTask accepted %s = %v", name, v)
			}
			if id != 0 {
				t.Errorf("AddTask(%s = %v) returned ID %d with error, want 0", name, v, id)
			}
		}
	}
	if st := p.Snapshot(); st.Workers != 0 || st.Tasks != 0 {
		t.Errorf("non-finite registrations leaked into state: %+v", st)
	}
}

// TestNonFiniteDTORejected checks the same guard at the DTO layer, field by
// field, plus the HTTP vector that actually produces an infinity: a JSON
// number too large for float64.
func TestNonFiniteDTORejected(t *testing.T) {
	nan := math.NaN()
	workerDTOs := map[string]workerDTO{
		"x":        {X: nan}, // zero values elsewhere are finite
		"y":        {Y: nan},
		"start":    {Start: nan},
		"wait":     {Wait: nan},
		"velocity": {Velocity: nan},
		"max_dist": {MaxDist: nan},
	}
	for name, dto := range workerDTOs {
		if err := dto.validate(); err == nil || !strings.Contains(err.Error(), name) {
			t.Errorf("workerDTO.validate with NaN %s: err = %v, want mention of the field", name, err)
		}
	}
	taskDTOs := map[string]taskDTO{
		"x":      {X: nan},
		"y":      {Y: nan},
		"start":  {Start: nan},
		"wait":   {Wait: nan},
		"weight": {Weight: nan},
	}
	for name, dto := range taskDTOs {
		if err := dto.validate(); err == nil || !strings.Contains(err.Error(), name) {
			t.Errorf("taskDTO.validate with NaN %s: err = %v, want mention of the field", name, err)
		}
	}

	p, err := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(p))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"x":1e999,"y":1,"wait":10,"velocity":1,"max_dist":10,"skills":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Errorf("overflowing JSON number: status = %d, want a 4xx rejection", resp.StatusCode)
	}
	if st := p.Snapshot(); st.Workers != 0 {
		t.Errorf("overflowing registration leaked into state")
	}
}

// TestJournalBatchRecord pins the v2 record format: what Batch writes, what
// Replay accepts, and which malformed shapes it rejects.
func TestJournalBatchRecord(t *testing.T) {
	var log bytes.Buffer
	j := NewJournal(&log, nil)
	w := exWorker(0)
	w.ID = 0
	tk := exTask(0)
	tk.ID = 0
	if err := j.Batch([]journalEntry{workerEntry(w), workerEntry(w), taskEntry(tk)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Batch([]journalEntry{workerEntry(w)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Batch(nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(log.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal lines = %d, want 2 (one batch, one v1 single)", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"batch"`) || !strings.Contains(lines[0], `"v":2`) {
		t.Errorf("multi-entry record is not a v2 batch line: %s", lines[0])
	}
	if strings.Contains(lines[1], "batch") {
		t.Errorf("single-entry drain should stay a v1 line: %s", lines[1])
	}

	p, err := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(strings.NewReader(log.String()), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 4 {
		t.Errorf("replayed entries = %d, want 4 (batch counts per sub-entry)", rep.Entries)
	}
	if st := p.Snapshot(); st.Workers != 3 || st.Tasks != 1 {
		t.Errorf("replayed state = %d workers %d tasks, want 3 and 1", st.Workers, st.Tasks)
	}

	malformed := map[string]string{
		"wrong version": `{"kind":"batch","v":1,"entries":[{"kind":"worker","worker":{"x":1,"y":1,"wait":1,"velocity":1,"max_dist":1,"skills":[0]}}]}`,
		"empty":         `{"kind":"batch","v":2,"entries":[]}`,
		"nested batch":  `{"kind":"batch","v":2,"entries":[{"kind":"batch","v":2}]}`,
		"tick inside":   `{"kind":"batch","v":2,"entries":[{"kind":"tick","tick":1}]}`,
	}
	for name, line := range malformed {
		p, err := NewPlatform(Config{Allocator: core.NewGreedy()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReplayJournal(strings.NewReader(line+"\n"), p); err == nil {
			t.Errorf("replay accepted malformed batch record (%s)", name)
		}
	}
}

// TestIngestConcurrentHammer is the race-detector workout: concurrent
// registrars, a monotonically advancing ticker, lock-free readers and
// mid-run snapshot rotations, all at once. Afterwards: IDs are dense and
// unique, nothing registered was lost, and recovering from the rotated
// snapshot + journal tail reproduces the served state exactly.
func TestIngestConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "events.jsonl")
	snapPath := filepath.Join(dir, "events.jsonl.snap")
	j, err := OpenJournalMode(jpath, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	p, err := NewPlatform(Config{
		Allocator:    core.NewGreedy(),
		Journal:      j,
		IngestQueue:  1024,
		IngestBatch:  32,
		SnapshotPath: snapPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		registrars = 6
		perG       = 40
	)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})

	workerIDs := make([][]model.WorkerID, registrars)
	taskIDs := make([][]model.TaskID, registrars)
	for g := 0; g < registrars; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%3 == 0 {
					id, err := p.RegisterTask(exTask(g*perG + i))
					if err != nil {
						t.Errorf("task %d/%d: %v", g, i, err)
						return
					}
					taskIDs[g] = append(taskIDs[g], id)
				} else {
					id, err := p.RegisterWorker(exWorker(g*perG + i))
					if err != nil {
						t.Errorf("worker %d/%d: %v", g, i, err)
						return
					}
					workerIDs[g] = append(workerIDs[g], id)
				}
			}
		}(g)
	}

	// One ticker: strictly increasing logical time, interleaved with ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 15; i++ {
			if _, err := p.Tick(float64(i)); err != nil {
				t.Errorf("tick %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Snapshot rotations race the committer's drains.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := p.SaveSnapshot(snapPath); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Lock-free readers must never observe torn state.
	for r := 0; r < 2; r++ {
		go func() {
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				st := p.StatsView()
				if st.Workers < 0 {
					t.Error("negative worker count in read view")
				}
				a := p.AssignmentsView()
				_ = a.Size
				in := p.InstanceView()
				if len(in.Workers) != st.Workers && len(in.Workers) < st.Workers-1024 {
					t.Error("instance view wildly behind stats view")
				}
			}
		}()
	}

	wg.Wait()
	close(stopReaders)
	p.Close()

	// Dense unique IDs, nothing lost.
	st := p.Snapshot()
	wantW, wantT := 0, 0
	seenW := make(map[model.WorkerID]bool)
	seenT := make(map[model.TaskID]bool)
	for g := 0; g < registrars; g++ {
		for _, id := range workerIDs[g] {
			if seenW[id] {
				t.Fatalf("duplicate worker ID %d", id)
			}
			seenW[id] = true
			wantW++
		}
		for _, id := range taskIDs[g] {
			if seenT[id] {
				t.Fatalf("duplicate task ID %d", id)
			}
			seenT[id] = true
			wantT++
		}
	}
	if st.Workers != wantW || st.Tasks != wantT {
		t.Fatalf("served %d workers %d tasks, want %d and %d (lost registrations)",
			st.Workers, st.Tasks, wantW, wantT)
	}
	for id := range seenW {
		if int(id) >= wantW {
			t.Errorf("worker ID %d outside dense range 0..%d", id, wantW-1)
		}
	}
	for id := range seenT {
		if int(id) >= wantT {
			t.Errorf("task ID %d outside dense range 0..%d", id, wantT-1)
		}
	}

	// Recover from the rotated snapshot + journal tail: identical state.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlatform(Config{Allocator: core.NewGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(p2, snapPath, jpath); err != nil {
		t.Fatal(err)
	}
	var served, recovered bytes.Buffer
	if err := dataset.WriteCompact(&served, p.Instance()); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCompact(&recovered, p2.Instance()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), recovered.Bytes()) {
		t.Error("recovered registries differ from served registries")
	}
	st2 := p2.Snapshot()
	if st2.Workers != st.Workers || st2.Tasks != st.Tasks || st2.Batches != st.Batches ||
		st2.AssignedTasks != st.AssignedTasks || st2.Now != st.Now {
		t.Errorf("recovered stats %+v differ from served %+v", st2, st)
	}
	var aServed, aRecovered bytes.Buffer
	if err := dataset.WriteAssignment(&aServed, p.Assignments()); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteAssignment(&aRecovered, p2.Assignments()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aServed.Bytes(), aRecovered.Bytes()) {
		t.Error("recovered assignments differ from served assignments")
	}
}

// TestIngestShutdownDrains checks the Close contract: every registration
// admitted before Close is committed and answered; registrations after
// Close fail with ErrPlatformClosed.
func TestIngestShutdownDrains(t *testing.T) {
	var log safeBuffer
	p, err := NewPlatform(Config{
		Allocator: core.NewGreedy(), Journal: NewJournal(&log, nil),
		IngestQueue: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.RegisterWorker(exWorker(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.RegisterWorker(exWorker(99)); !errors.Is(err, ErrPlatformClosed) {
		t.Errorf("register after Close: err = %v, want ErrPlatformClosed", err)
	}
	if st := p.Snapshot(); st.Workers != 10 {
		t.Errorf("workers = %d, want 10", st.Workers)
	}
	assertReplayMatchesServed(t, p, []byte(log.String()))
}
