package server

import (
	"strconv"
	"sync"

	"dasc/internal/model"
)

// Fast-path decoding for the two registration DTOs. POST /v1/workers and
// POST /v1/tasks dominate the ingest benchmark, and the generic
// encoding/json decoder is a measurable slice of per-request CPU there. The
// bodies are tiny flat objects with numeric fields and integer arrays, so a
// hand-rolled scanner covers the common case; ANYTHING it does not fully
// recognise (escapes, strings, nested objects, unknown keys, out-of-range
// numbers, trailing data) makes it bail and the caller re-parses with the
// strict json.Decoder, which produces the proper error or handles the
// oddity. The fast path therefore never changes observable behaviour — it
// only skips reflection for well-formed requests.

// dtoScan is a minimal JSON scanner over a complete body.
type dtoScan struct {
	b []byte
	i int
}

func (s *dtoScan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// lit consumes c (after whitespace) and reports whether it was present.
func (s *dtoScan) lit(c byte) bool {
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// key consumes a quoted object key with no escape sequences.
func (s *dtoScan) key() (string, bool) {
	if !s.lit('"') {
		return "", false
	}
	start := s.i
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case '\\':
			return "", false // escapes → generic decoder
		case '"':
			k := string(s.b[start:s.i])
			s.i++
			return k, true
		}
		s.i++
	}
	return "", false
}

// number consumes a JSON number token. Out-of-range values (1e999) fail here
// so the strict decoder can report them exactly as it always has.
func (s *dtoScan) number() (float64, bool) {
	s.ws()
	start := s.i
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			s.i++
		default:
			goto done
		}
	}
done:
	if s.i == start {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(s.b[start:s.i]), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// intArray consumes [n, n, ...] of integers (the skills / deps wire shape).
func (s *dtoScan) intArray() ([]int64, bool) {
	if !s.lit('[') {
		return nil, false
	}
	if s.lit(']') {
		return nil, true
	}
	var out []int64
	for {
		f, ok := s.number()
		if !ok {
			return nil, false
		}
		n := int64(f)
		if float64(n) != f {
			return nil, false // fractional or overflowing → generic decoder
		}
		out = append(out, n)
		if s.lit(',') {
			continue
		}
		if s.lit(']') {
			return out, true
		}
		return nil, false
	}
}

// end reports whether only whitespace remains. The generic path (one
// json.Decoder.Decode call) ignores trailing bytes, so trailing data is not
// an error — but it IS unusual, and bailing keeps this scanner honest.
func (s *dtoScan) end() bool {
	s.ws()
	return s.i == len(s.b)
}

// parseWorkerDTO fast-parses a POST /v1/workers body into d, reporting
// whether it fully recognised the input. false means "use the real decoder",
// not "invalid".
func parseWorkerDTO(body []byte, d *workerDTO) bool {
	s := dtoScan{b: body}
	if !s.lit('{') {
		return false
	}
	if s.lit('}') {
		return s.end()
	}
	for {
		k, ok := s.key()
		if !ok || !s.lit(':') {
			return false
		}
		switch k {
		case "x":
			d.X, ok = s.number()
		case "y":
			d.Y, ok = s.number()
		case "start":
			d.Start, ok = s.number()
		case "wait":
			d.Wait, ok = s.number()
		case "velocity":
			d.Velocity, ok = s.number()
		case "max_dist":
			d.MaxDist, ok = s.number()
		case "skills":
			var arr []int64
			arr, ok = s.intArray()
			if ok {
				d.Skills = d.Skills[:0]
				for _, n := range arr {
					d.Skills = append(d.Skills, model.Skill(n))
				}
			}
		default:
			return false // unknown field → decoder reports it (DisallowUnknownFields)
		}
		if !ok {
			return false
		}
		if s.lit(',') {
			continue
		}
		if s.lit('}') {
			return s.end()
		}
		return false
	}
}

// parseTaskDTO is parseWorkerDTO for POST /v1/tasks bodies.
func parseTaskDTO(body []byte, d *taskDTO) bool {
	s := dtoScan{b: body}
	if !s.lit('{') {
		return false
	}
	if s.lit('}') {
		return s.end()
	}
	for {
		k, ok := s.key()
		if !ok || !s.lit(':') {
			return false
		}
		switch k {
		case "x":
			d.X, ok = s.number()
		case "y":
			d.Y, ok = s.number()
		case "start":
			d.Start, ok = s.number()
		case "wait":
			d.Wait, ok = s.number()
		case "weight":
			d.Weight, ok = s.number()
		case "requires":
			var f float64
			f, ok = s.number()
			if ok {
				n := int64(f)
				if float64(n) != f {
					return false
				}
				d.Requires = model.Skill(n)
			}
		case "deps":
			var arr []int64
			arr, ok = s.intArray()
			if ok {
				d.Deps = d.Deps[:0]
				for _, n := range arr {
					d.Deps = append(d.Deps, model.TaskID(n))
				}
			}
		default:
			return false
		}
		if !ok {
			return false
		}
		if s.lit(',') {
			continue
		}
		if s.lit('}') {
			return s.end()
		}
		return false
	}
}

// bodyPool recycles request-body buffers for the registration endpoints.
var bodyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}
