package server

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// decodeStrict mirrors the fallback path in decode(): the strict generic
// decoder the fast path must agree with whenever it claims success.
func decodeStrict(t *testing.T, body string, v any) error {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader([]byte(body)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// TestParseWorkerDTOEquivalence feeds a spread of bodies through the fast
// scanner and the generic decoder. Whenever the fast path accepts, its
// result must equal the decoder's; whenever it bails, the decoder must be
// the one deciding (including producing errors for genuinely bad input).
func TestParseWorkerDTOEquivalence(t *testing.T) {
	cases := []struct {
		name string
		body string
		fast bool // fast path expected to fully recognise the body
	}{
		{"typical", `{"x":1.5,"y":-2,"start":0,"wait":1e6,"velocity":1,"max_dist":1000,"skills":[3]}`, true},
		{"whitespace", " {\n\t\"x\" : 2 , \"skills\" : [ 1 , 2 ] } ", true},
		{"empty object", `{}`, true},
		{"empty skills", `{"skills":[]}`, true},
		{"exponents", `{"x":-1.25e-3,"y":2E+2}`, true},
		{"unknown field", `{"x":1,"bogus":2}`, false},
		{"string value", `{"x":"1"}`, false},
		{"escaped key", `{"\u0078":1}`, false},
		{"nested object", `{"x":{"a":1}}`, false},
		{"null skills", `{"skills":null}`, false},
		{"fractional skill", `{"skills":[1.5]}`, false},
		{"out of range", `{"x":1e999}`, false},
		{"truncated", `{"x":1`, false},
		{"trailing garbage", `{"x":1}tail`, false},
		{"not an object", `[1,2]`, false},
		{"empty body", ``, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var fast workerDTO
			ok := parseWorkerDTO([]byte(c.body), &fast)
			if ok != c.fast {
				t.Fatalf("parseWorkerDTO recognised=%v, want %v", ok, c.fast)
			}
			if !ok {
				return // generic decoder decides; nothing to compare
			}
			var want workerDTO
			if err := decodeStrict(t, c.body, &want); err != nil {
				t.Fatalf("fast path accepted body the decoder rejects: %v", err)
			}
			if !reflect.DeepEqual(normWorker(fast), normWorker(want)) {
				t.Errorf("fast %+v != decoder %+v", fast, want)
			}
		})
	}
}

func TestParseTaskDTOEquivalence(t *testing.T) {
	cases := []struct {
		name string
		body string
		fast bool
	}{
		{"typical", `{"x":3,"y":4,"start":1,"wait":50,"requires":2,"deps":[0,1],"weight":1.5}`, true},
		{"no deps", `{"x":3,"y":4,"requires":1,"weight":2}`, true},
		{"empty deps", `{"deps":[]}`, true},
		{"fractional requires", `{"requires":1.5}`, false},
		{"unknown field", `{"velocity":1}`, false},
		{"deps of strings", `{"deps":["a"]}`, false},
		{"out of range weight", `{"weight":-1e999}`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var fast taskDTO
			ok := parseTaskDTO([]byte(c.body), &fast)
			if ok != c.fast {
				t.Fatalf("parseTaskDTO recognised=%v, want %v", ok, c.fast)
			}
			if !ok {
				return
			}
			var want taskDTO
			if err := decodeStrict(t, c.body, &want); err != nil {
				t.Fatalf("fast path accepted body the decoder rejects: %v", err)
			}
			if !reflect.DeepEqual(normTask(fast), normTask(want)) {
				t.Errorf("fast %+v != decoder %+v", fast, want)
			}
		})
	}
}

// normWorker/normTask canonicalise nil vs empty slices, which the two paths
// may legitimately differ on and no caller distinguishes.
func normWorker(d workerDTO) workerDTO {
	if len(d.Skills) == 0 {
		d.Skills = nil
	}
	return d
}

func normTask(d taskDTO) taskDTO {
	if len(d.Deps) == 0 {
		d.Deps = nil
	}
	return d
}
