package server

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dasc/internal/obs"
)

// This file is the request-telemetry middleware every API route runs through
// (Handler wraps each handler with instrument):
//
//   - Every request gets an X-Request-ID — the caller's, if it sent a valid
//     one, otherwise a generated one — echoed on the response (and inside
//     error bodies) before the handler runs. The ID threads through the
//     ingest drain traces (GET /v1/ingest) and tick batch traces
//     (GET /v1/trace), so one ID correlates a client's request with the
//     group commit and the batch it landed in.
//   - Per-route counters by status class, request/response byte counters,
//     and a log-scale latency histogram (dasc_http_*; see metrics.go).
//   - A sampled structured access log (request id, route, status, latency).
//
// The instruments are resolved once per route at mux construction, so the
// per-request cost is a handful of atomic adds and two clock reads — no
// registry lookups, no allocation beyond the status-recording writer.

// RequestIDHeader is the correlation header the middleware assigns or
// accepts, and every response echoes.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted inbound request IDs; anything longer (or
// containing non-printable bytes) is replaced with a generated ID rather
// than rejected — correlation is best-effort, not a validation surface.
const maxRequestIDLen = 128

type ctxKey int

const reqIDKey ctxKey = iota

// requestIDFrom returns the request's correlation ID, assigned by the
// middleware before the handler ran; empty for un-instrumented requests.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// validRequestID accepts printable-ASCII IDs without spaces, quotes or
// backslashes, at most maxRequestIDLen bytes. The exclusions keep IDs
// greppable in access logs and safe inside JSON and Prometheus label quoting
// without escaping.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c >= 0x7f || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// middleware holds the per-platform request-telemetry state: the ID
// generator, the access-log sampler and the structured logger.
type middleware struct {
	log *slog.Logger
	// accessEvery samples the access log: every Nth request per route group
	// logs one line (1 = every request, 0 = disabled). Sampling keeps the
	// log useful under load without logging 100k lines/s.
	accessEvery int64
	accessN     atomic.Int64
	// idPrefix is a per-process random prefix; idSeq a process-local
	// sequence. Together they make generated IDs unique across restarts
	// without per-request entropy reads.
	idPrefix string
	idSeq    atomic.Uint64
}

func newMiddleware(log *slog.Logger, accessEvery int) *middleware {
	var b [6]byte
	_, _ = crand.Read(b[:]) // zero prefix on entropy failure is still valid
	return &middleware{
		log:         log,
		accessEvery: int64(accessEvery),
		idPrefix:    hex.EncodeToString(b[:]),
	}
}

// nextID generates a request ID: <12 hex process chars>-<hex sequence>.
func (m *middleware) nextID() string {
	return m.idPrefix + "-" + strconv.FormatUint(m.idSeq.Add(1), 16)
}

// routeMetrics are one route's pre-resolved instruments; resolving at mux
// construction keeps registry lookups (a mutex + map access each) off the
// per-request path.
type routeMetrics struct {
	byClass   [5]*obs.Counter // 1xx..5xx by leading digit
	other     *obs.Counter    // status outside 100..599 (handler bug)
	reqBytes  *obs.Counter
	respBytes *obs.Counter
	latency   *obs.Histogram
}

func newRouteMetrics(reg *obs.Registry, route string) *routeMetrics {
	rm := &routeMetrics{
		other:     reg.Counter(obs.Labeled(obs.MHTTPRequestsTotal, "route", route, "code", "other")),
		reqBytes:  reg.Counter(obs.Labeled(obs.MHTTPRequestBytesTotal, "route", route)),
		respBytes: reg.Counter(obs.Labeled(obs.MHTTPResponseBytesTotal, "route", route)),
		latency:   reg.Histogram(obs.Labeled(obs.THTTPRequestSeconds, "route", route)),
	}
	for i := range rm.byClass {
		class := strconv.Itoa(i+1) + "xx"
		rm.byClass[i] = reg.Counter(obs.Labeled(obs.MHTTPRequestsTotal, "route", route, "code", class))
	}
	return rm
}

// counterFor maps a status code to its class counter.
func (rm *routeMetrics) counterFor(status int) *obs.Counter {
	if status < 100 || status > 599 {
		return rm.other
	}
	return rm.byClass[status/100-1]
}

// statusWriter records the status code and body bytes a handler wrote.
// Unwrap exposes the underlying writer for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one route's handler with the request telemetry: request-ID
// assignment and echo, status/byte/latency instruments, sampled access log.
// route is the mux pattern ("POST /v1/workers") — the label every dasc_http_*
// series carries.
func (p *Platform) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := newRouteMetrics(p.reg, route)
	m := p.mw
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = m.nextID()
		}
		// Set before the handler runs: error paths (httpError) read the ID
		// back off the header, and clients see it even on failures.
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey, id)))
		if sw.status == 0 {
			// Handler wrote nothing; net/http will answer 200 on return.
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)

		rm.counterFor(sw.status).Inc()
		if r.ContentLength > 0 {
			rm.reqBytes.Add(r.ContentLength)
		}
		rm.respBytes.Add(sw.bytes)
		rm.latency.Observe(elapsed.Seconds())

		if m.accessEvery > 0 && (m.accessN.Add(1)-1)%m.accessEvery == 0 {
			m.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("request_id", id),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("elapsed", elapsed),
			)
		}
	}
}
